//! Cross-crate integration: the ten-scenario evaluation matrix.
//!
//! These tests pin the *shape* of the thesis's findings (which goals and
//! subgoals fire per scenario, the hit/false-positive/false-negative
//! structure, and the quantitative anchors the thesis publishes) — the
//! reproduction's pass criteria from DESIGN.md §4.

use emergent_safety::scenarios::{catalog, runner};
use emergent_safety::vehicle::config::DefectSet;

fn thesis(n: u8) -> emergent_safety::scenarios::ScenarioReport {
    runner::run(&catalog::scenario(n), DefectSet::thesis()).expect("runs")
}

#[test]
fn every_scenario_is_clean_on_the_fixed_system() {
    for n in 1..=10 {
        let report = runner::run(&catalog::scenario(n), DefectSet::none()).expect("runs");
        assert!(
            report.violations.is_empty(),
            "scenario {n} fixed-system violations: {:?}",
            report
                .violations
                .iter()
                .map(|(id, v)| (id.clone(), v.len()))
                .collect::<Vec<_>>()
        );
        assert!(
            !report.collision,
            "scenario {n} fixed system must not crash"
        );
    }
}

#[test]
fn scenario_1_false_negatives_show_partial_composability() {
    let r = thesis(1);
    // Anchor: early termination in the 12–13 s band (thesis: 12.681 s).
    assert!(r.terminated_early && r.collision);
    assert!(
        (11.5..13.5).contains(&r.end_time_s),
        "termination at {}",
        r.end_time_s
    );
    // Goals 1 and 2 fire at the vehicle level.
    assert!(!r.violations_for("1").is_empty());
    assert!(!r.violations_for("2").is_empty());
    // Goal 1 has zero subgoal coverage: pure false negatives (the demon X).
    let row1 = r.correlation.for_goal("1").unwrap();
    assert_eq!(row1.hits, 0);
    assert!(row1.false_negatives > 0);
    // PA's rogue requests: 2B:PA fires twice (thesis: at 0.001 s and
    // 9.624 s) and 4B:PA once at the start — all false positives.
    assert_eq!(r.violations_for("2B:PA").len(), 2);
    assert!(r.violations_for("2B:PA")[0].start_tick < 5);
    assert!((9_400..9_800).contains(&r.violations_for("2B:PA")[1].start_tick));
    assert_eq!(r.violations_for("4B:PA").len(), 1);
    // CA's cancel edge trips its jerk-request subgoal for exactly 1 ms.
    assert!(r
        .violations_for("2B:CA")
        .iter()
        .all(|v| v.duration_ticks() == 1));
}

#[test]
fn scenario_2_goal_3_fires_and_terminates_earlier() {
    let (r1, r2) = (thesis(1), thesis(2));
    assert!(!r2.violations_for("3").is_empty(), "goal 3 must fire");
    assert!(!r2.violations_for("3A").is_empty());
    assert!(
        r2.end_time_s < r1.end_time_s,
        "thesis: 12.588 s vs 12.681 s"
    );
    // The violation begins when PA's engagement captures the command
    // (thesis: a 27 ms violation running into the termination).
    let v3 = r2.violations_for("3")[0];
    assert!(
        (12_440..12_700).contains(&v3.start_tick),
        "at {}",
        v3.start_tick
    );
    assert!(
        v3.duration_ticks() >= 10,
        "lasts {} ticks",
        v3.duration_ticks()
    );
}

#[test]
fn scenario_3_collides_under_throttle() {
    let r = thesis(3);
    assert!(r.collision, "intermittent CA + throttle ends in contact");
    assert!(!r.violations_for("2B:CA").is_empty());
}

#[test]
fn scenario_4_driver_override_violations_are_hits() {
    let r = thesis(4);
    let row5 = r.correlation.for_goal("5").unwrap();
    assert!(row5.goal_violations > 0, "goal 5 fires while ACC clings");
    assert_eq!(row5.false_negatives, 0, "5A/5B cover every violation");
    assert!(!r.violations_for("5B:ACC").is_empty());
}

#[test]
fn scenario_5_handoff_delay_anchor() {
    let r = thesis(5);
    // The throttle is released at 10.0 s; ACC becomes active 101 ms later
    // (thesis Fig. 5.9: control gained 0.101 s after release).
    let active = r.series.series("acc.active").expect("recorded signal");
    let gained = active
        .iter()
        .find(|(t, v)| *t > 10.0 && *v > 0.5)
        .map(|(t, _)| *t)
        .expect("ACC gains control after the release");
    assert!(
        (10.095..10.115).contains(&gained),
        "control gained at {gained} s (thesis: 10.101 s)"
    );
}

#[test]
fn scenario_6_reverse_motion_with_features_selected() {
    let r = thesis(6);
    // Fig. 5.11: the speed goes negative while LCA/ACC stay selected.
    let speeds = r.series.series("host.speed").expect("recorded");
    assert!(
        speeds.iter().any(|(_, v)| *v < -0.05),
        "speed must go negative"
    );
    let row8 = r.correlation.for_goal("8").unwrap();
    assert!(row8.goal_violations > 0 && row8.false_negatives == 0);
    // Fig. 5.10: LCA is granted control 1 ms after engagement (5.0 s) but
    // the steering command never moves.
    let lca_active = r.series.series("lca.active").expect("recorded");
    let granted = lca_active
        .iter()
        .find(|(_, v)| *v > 0.5)
        .map(|(t, _)| *t)
        .expect("LCA activates");
    assert!((5.0..5.01).contains(&granted), "granted at {granted}");
    let steering = r.series.series("arbiter.steering_cmd").expect("recorded");
    assert!(
        steering.iter().all(|(_, v)| v.abs() < 1e-9),
        "command frozen"
    );
}

#[test]
fn scenario_7_hazard_with_no_goal_violation_is_total_emergence() {
    let r = thesis(7);
    assert!(r.collision, "the host backs into the obstacle");
    // No vehicle-level goal fires: RCA never engages, so nothing in the
    // goal set constrains the hazard — emergence the monitors cannot see.
    for goal in ["1", "2", "3", "4", "5", "6", "7", "8", "9"] {
        assert!(
            r.violations_for(goal).is_empty(),
            "goal {goal} unexpectedly fired"
        );
    }
}

#[test]
fn scenario_8_reverse_acc_selection_anchor() {
    let r = thesis(8);
    // Fig. 5.13: engaged at 2.0 s, selected as the source at 2.05 s.
    let v8 = r.violations_for("8");
    assert!(!v8.is_empty());
    assert!(
        (2_040..2_060).contains(&v8[0].start_tick),
        "at {}",
        v8[0].start_tick
    );
    assert!(!r.violations_for("8B:ACC").is_empty());
}

#[test]
fn scenario_9_false_positive_masked_by_forwarding_defect() {
    let r = thesis(9);
    // 4B:PA fires (PA requests creep from an unauthorized stop)…
    assert!(!r.violations_for("4B:PA").is_empty());
    // …but the parent goal stays quiet: the arbiter never forwarded the
    // request (Fig. 5.14), so the vehicle never moved.
    assert!(r.violations_for("4").is_empty());
    let row4 = r.correlation.for_goal("4").unwrap();
    assert!(row4.false_positives > 0);
    // The command ≠ request decoupling is visible in the series.
    let req = r.series.series("pa.accel_request").expect("recorded");
    let cmd = r.series.series("arbiter.accel_cmd").expect("recorded");
    assert!(req.iter().any(|(_, v)| *v > 0.4));
    assert!(cmd.iter().all(|(_, v)| v.abs() < 1e-9));
}

#[test]
fn scenario_10_ghost_acceleration_is_fully_covered() {
    let r = thesis(10);
    for id in ["4", "4A", "4B:ACC"] {
        assert!(!r.violations_for(id).is_empty(), "{id} must fire");
    }
    let row4 = r.correlation.for_goal("4").unwrap();
    assert!(row4.hits > 0 && row4.false_negatives == 0);
}
