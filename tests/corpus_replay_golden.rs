//! Offline re-monitoring golden: a recorded grid subset, re-judged by
//! the `strict` suite (which the corpus was **not** recorded with),
//! must produce an aggregate byte-identical to running the strict
//! suite live over the same cells — and both are pinned against
//! `tests/golden/corpus_strict_replay_aggregate.json`.
//!
//! The pin makes suite-semantics drift visible: a change to the goal
//! formulas, the monitor engine, the corpus codec, or the batched
//! replay backend that alters *any* strict verdict on the archived
//! evidence fails this test with a JSON diff.
//!
//! Regenerate (after an intentional semantic change) with:
//! `UPDATE_GOLDEN=1 cargo test --test corpus_replay_golden`.

use emergent_safety::scenarios::{corpus, grid};

const GOLDEN: &str = include_str!("golden/corpus_strict_replay_aggregate.json");

/// The pinned subset: scenarios 1 and 2 across `none`, `thesis (all)`,
/// and the first single-defect ablation — colliding, clean, and
/// partially-degraded cells.
fn pinned_cells() -> Vec<grid::GridCell> {
    grid::cells(&[1, 2], &grid::ablation_configs()[..3])
}

#[test]
fn strict_replay_of_a_recorded_grid_matches_live_and_the_golden_pin() {
    let mut dir = std::env::temp_dir();
    dir.push(format!("esafe-corpus-golden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let (recorded, _, stats) = corpus::record_grid_corpus(&dir, pinned_cells()).unwrap();
    assert_eq!(stats.runs, 6);

    // Replay the archive with the strict suite at two stripe widths:
    // both must agree (width is an execution detail, not semantics).
    let (wide, reader) = corpus::replay_with_suite(&dir, "strict", 8).unwrap();
    let (narrow, _) = corpus::replay_with_suite(&dir, "strict", 1).unwrap();
    assert!(!reader.recovered());
    assert_eq!(wide.aggregate, narrow.aggregate);
    assert_ne!(
        wide.aggregate, recorded,
        "strict must judge the archived runs differently than the recording suite"
    );

    // The live reference: same cells, same dynamics, strict monitoring.
    let (live, _) = corpus::live_reference(pinned_cells(), "strict").unwrap();
    let replayed_json = serde_json::to_string_pretty(&wide.aggregate).unwrap();
    let live_json = serde_json::to_string_pretty(&live).unwrap();
    assert_eq!(
        replayed_json, live_json,
        "offline strict replay diverged from live strict monitoring"
    );

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/corpus_strict_replay_aggregate.json"
        );
        std::fs::write(path, format!("{replayed_json}\n")).unwrap();
    } else {
        assert_eq!(
            replayed_json.trim(),
            GOLDEN.trim(),
            "strict replay aggregate diverged from the golden pin"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
