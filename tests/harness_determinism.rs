//! Cross-crate determinism: the harness must produce byte-identical
//! reports for identical configurations on both substrates, and the
//! rayon-parallel sweep path must match the serial reference exactly.

use emergent_safety::elevator::faults::ElevatorFaults;
use emergent_safety::elevator::{ElevatorFamily, ElevatorSubstrate};
use emergent_safety::harness::{Experiment, RunReport, Sweep};
use emergent_safety::scenarios::{catalog, grid, runner};
use emergent_safety::vehicle::config::DefectSet;

/// Serializes a report with the series stripped (the `#[serde(skip)]`
/// field), then byte-compares — the strongest equality serde can see.
fn json(report: &RunReport) -> String {
    serde_json::to_string(report).expect("report serializes")
}

#[test]
fn vehicle_runs_are_byte_identical_per_scenario() {
    let scenario = catalog::scenario(1);
    let substrate = runner::substrate(&scenario, DefectSet::thesis());
    let run = || {
        Experiment::new(&substrate)
            .with_config(runner::thesis_config())
            .run()
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same scenario must reproduce exactly");
    assert_eq!(json(&a), json(&b));
}

#[test]
fn elevator_runs_are_byte_identical_per_seed() {
    let substrate = ElevatorSubstrate::new(ElevatorFaults::none(), 42).with_ticks(2000);
    let a = Experiment::new(&substrate).run().unwrap();
    let b = Experiment::new(&substrate).run().unwrap();
    assert_eq!(a, b, "same seed must reproduce exactly");
    assert_eq!(json(&a), json(&b));
}

#[test]
fn vehicle_grid_parallel_matches_serial_over_eight_cells() {
    let configs = vec![
        ("none".to_owned(), DefectSet::none()),
        ("thesis (all)".to_owned(), DefectSet::thesis()),
        (
            "ca_intermittent_braking".to_owned(),
            DefectSet {
                ca_intermittent_braking: true,
                ..DefectSet::none()
            },
        ),
        (
            "pa_requests_while_disabled".to_owned(),
            DefectSet {
                pa_requests_while_disabled: true,
                ..DefectSet::none()
            },
        ),
    ];
    let cells = grid::cells(&[1, 2], &configs);
    assert_eq!(cells.len(), 8);
    let parallel = grid::run_parallel(cells.clone()).unwrap();
    let serial = grid::run_serial(cells).unwrap();
    assert_eq!(parallel.aggregate(), serial.aggregate());
    assert_eq!(parallel, serial, "every report must match, in cell order");
    // The sweep must actually exercise the defect structure: the thesis
    // cells collide, the fixed cells stay clean.
    assert!(
        parallel
            .for_label("scenario-1/thesis (all)")
            .unwrap()
            .terminated_early
    );
    assert!(!parallel
        .for_label("scenario-1/none")
        .unwrap()
        .any_violations());
}

#[test]
fn elevator_seed_sweep_parallel_matches_serial_over_eight_cells() {
    let sweep = Sweep::new((0..8u64).collect::<Vec<_>>()).with_base_seed(2009);
    let build = |_cell: &u64, seed: u64| {
        ElevatorSubstrate::new(ElevatorFaults::none(), seed).with_ticks(1500)
    };
    let parallel = sweep.run(build).unwrap();
    let serial = sweep.run_serial(build).unwrap();
    assert_eq!(parallel.aggregate(), serial.aggregate());
    assert_eq!(parallel, serial);
    // Deterministic per-cell seeds give every cell distinct traffic.
    let labels: std::collections::BTreeSet<&String> =
        parallel.runs.iter().map(|r| &r.label).collect();
    assert_eq!(labels.len(), 8, "cell seeds must be distinct");
}

#[test]
fn elevator_family_sweep_matches_standalone_sweep_on_both_paths() {
    // The template/pooled path (family-derived substrates) against
    // per-cell compilation, parallel and serial — all four runs must be
    // byte-identical.
    let sweep = Sweep::new((0..6u64).collect::<Vec<_>>()).with_base_seed(1977);
    let family = ElevatorFamily::default();
    let fault = ElevatorFaults {
        drive_ignores_door: true,
        ..ElevatorFaults::none()
    };
    let in_family = |_cell: &u64, seed: u64| family.substrate(fault, seed).with_ticks(1200);
    let standalone = |_cell: &u64, seed: u64| ElevatorSubstrate::new(fault, seed).with_ticks(1200);
    let (family_parallel, stats) = sweep.run_timed(in_family).unwrap();
    let family_serial = sweep.run_serial(in_family).unwrap();
    let reference = sweep.run(standalone).unwrap();
    assert_eq!(family_parallel, family_serial);
    assert_eq!(family_parallel, reference);
    assert_eq!(stats.suites_compiled, 0, "family cells must not recompile");
    assert_eq!(stats.suites_instantiated + stats.suites_reused, 6);
}
