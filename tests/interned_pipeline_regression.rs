//! Determinism regression for the interned-signal redesign.
//!
//! The golden files under `tests/golden/` were produced by the *seed*
//! implementation (string-keyed `BTreeMap` states, per-tick map clones)
//! immediately before the `SignalTable`/`Frame` refactor. The interned
//! pipeline must replay both substrates onto bit-identical `RunReport`s:
//! same violation intervals, same correlation classification, same
//! timing, byte-identical JSON. Any divergence means the refactor changed
//! simulation or monitoring *semantics*, not just representation.

use emergent_safety::elevator::faults::ElevatorFaults;
use emergent_safety::elevator::ElevatorSubstrate;
use emergent_safety::harness::{Experiment, ExperimentConfig};
use emergent_safety::scenarios::{catalog, grid, runner};
use emergent_safety::vehicle::config::DefectSet;

#[test]
fn vehicle_scenario1_thesis_matches_seed_pipeline() {
    let scenario = catalog::scenario(1);
    let substrate = runner::substrate(&scenario, DefectSet::thesis());
    let report = Experiment::new(&substrate)
        .with_config(runner::thesis_config())
        .run()
        .unwrap();
    let json = serde_json::to_string_pretty(&report).unwrap();
    let golden = include_str!("golden/vehicle_scenario1_thesis.json");
    assert_eq!(
        json.trim(),
        golden.trim(),
        "vehicle scenario 1 diverged from the seed pipeline"
    );
}

/// The amortized sweep engine (compile-once suite template + per-worker
/// pooled run contexts — the production `repro --grid` path) against the
/// per-run-compile reference: the whole `SweepReport` must be
/// bit-identical, through actual JSON text, for a grid slice that
/// includes early-terminating, colliding, and clean cells.
#[test]
fn template_pooled_sweep_matches_per_run_compile_sweep() {
    let cells = grid::cells(&[1, 2, 10], &grid::ablation_configs());
    assert_eq!(cells.len(), 42);
    // Reference: every cell builds a standalone substrate and recompiles
    // its monitor suite (`grid::build_cell`), serially.
    let reference = grid::sweep(cells.clone())
        .run_serial(grid::build_cell)
        .unwrap();
    // Production: one family, template-instantiated suites, pooled
    // worker contexts, rayon-parallel.
    let amortized = grid::run_parallel(cells).unwrap();
    assert_eq!(
        serde_json::to_string_pretty(&amortized).unwrap(),
        serde_json::to_string_pretty(&reference).unwrap(),
        "amortized sweep diverged from the per-run-compile pipeline"
    );
    assert_eq!(amortized, reference, "series must match too");
    assert_eq!(amortized.aggregate(), reference.aggregate());
}

#[test]
fn elevator_fault_run_matches_seed_pipeline() {
    let faults = ElevatorFaults {
        drive_ignores_door: true,
        ..ElevatorFaults::none()
    };
    let substrate = ElevatorSubstrate::new(faults, 7).with_ticks(6000);
    let report = Experiment::new(&substrate)
        .with_config(ExperimentConfig {
            post_terminal_ms: 100,
            correlation_window_ms: 50,
        })
        .run()
        .unwrap();
    let json = serde_json::to_string_pretty(&report).unwrap();
    let golden = include_str!("golden/elevator_seed7_drive_ignores_door.json");
    assert_eq!(
        json.trim(),
        golden.trim(),
        "elevator seed-7 fault run diverged from the seed pipeline"
    );
}
