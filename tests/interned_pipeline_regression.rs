//! Determinism regression for the interned-signal redesign.
//!
//! The golden files under `tests/golden/` were produced by the *seed*
//! implementation (string-keyed `BTreeMap` states, per-tick map clones)
//! immediately before the `SignalTable`/`Frame` refactor. The interned
//! pipeline must replay both substrates onto bit-identical `RunReport`s:
//! same violation intervals, same correlation classification, same
//! timing, byte-identical JSON. Any divergence means the refactor changed
//! simulation or monitoring *semantics*, not just representation.

use emergent_safety::elevator::faults::ElevatorFaults;
use emergent_safety::elevator::ElevatorSubstrate;
use emergent_safety::harness::{Experiment, ExperimentConfig};
use emergent_safety::scenarios::{catalog, runner};
use emergent_safety::vehicle::config::DefectSet;

#[test]
fn vehicle_scenario1_thesis_matches_seed_pipeline() {
    let scenario = catalog::scenario(1);
    let substrate = runner::substrate(&scenario, DefectSet::thesis());
    let report = Experiment::new(&substrate)
        .with_config(runner::thesis_config())
        .run()
        .unwrap();
    let json = serde_json::to_string_pretty(&report).unwrap();
    let golden = include_str!("golden/vehicle_scenario1_thesis.json");
    assert_eq!(
        json.trim(),
        golden.trim(),
        "vehicle scenario 1 diverged from the seed pipeline"
    );
}

#[test]
fn elevator_fault_run_matches_seed_pipeline() {
    let faults = ElevatorFaults {
        drive_ignores_door: true,
        ..ElevatorFaults::none()
    };
    let substrate = ElevatorSubstrate::new(faults, 7).with_ticks(6000);
    let report = Experiment::new(&substrate)
        .with_config(ExperimentConfig {
            post_terminal_ms: 100,
            correlation_window_ms: 50,
        })
        .run()
        .unwrap();
    let json = serde_json::to_string_pretty(&report).unwrap();
    let golden = include_str!("golden/elevator_seed7_drive_ignores_door.json");
    assert_eq!(
        json.trim(),
        golden.trim(),
        "elevator seed-7 fault run diverged from the seed pipeline"
    );
}
