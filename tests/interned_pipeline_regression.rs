//! Determinism regression for the interned-signal redesign.
//!
//! The golden files under `tests/golden/` were produced by the *seed*
//! implementation (string-keyed `BTreeMap` states, per-tick map clones)
//! immediately before the `SignalTable`/`Frame` refactor. The interned
//! pipeline must replay both substrates onto bit-identical `RunReport`s:
//! same violation intervals, same correlation classification, same
//! timing, byte-identical JSON. Any divergence means the refactor changed
//! simulation or monitoring *semantics*, not just representation.

use emergent_safety::elevator::faults::ElevatorFaults;
use emergent_safety::elevator::ElevatorSubstrate;
use emergent_safety::harness::{Experiment, ExperimentConfig};
use emergent_safety::scenarios::{catalog, grid, runner};
use emergent_safety::vehicle::config::DefectSet;

#[test]
fn vehicle_scenario1_thesis_matches_seed_pipeline() {
    let scenario = catalog::scenario(1);
    let substrate = runner::substrate(&scenario, DefectSet::thesis());
    let report = Experiment::new(&substrate)
        .with_config(runner::thesis_config())
        .run()
        .unwrap();
    let json = serde_json::to_string_pretty(&report).unwrap();
    let golden = include_str!("golden/vehicle_scenario1_thesis.json");
    assert_eq!(
        json.trim(),
        golden.trim(),
        "vehicle scenario 1 diverged from the seed pipeline"
    );
}

/// The fused sweep engine (compile-once suite template whose
/// instantiations evaluate the whole 49-monitor suite as one
/// deduplicated DAG, per-worker pooled run contexts — the production
/// `repro --grid` path) against the per-run-compile reference, whose
/// standalone substrates self-compile one `CompiledMonitor` per goal:
/// the whole `SweepReport` must be bit-identical, through actual JSON
/// text, for a grid slice that includes early-terminating, colliding,
/// and clean cells. This is the fused-vs-per-monitor sweep golden.
#[test]
fn fused_template_sweep_matches_per_monitor_compile_sweep() {
    let cells = grid::cells(&[1, 2, 10], &grid::ablation_configs());
    assert_eq!(cells.len(), 42);
    // Reference: every cell builds a standalone substrate and recompiles
    // its monitor suite per-monitor (`grid::build_cell`), serially.
    let reference = grid::sweep(cells.clone())
        .run_serial(grid::build_cell)
        .unwrap();
    // Production: one family, fused template-instantiated suites, pooled
    // worker contexts, rayon-parallel.
    let fused = grid::run_parallel(cells).unwrap();
    assert_eq!(
        serde_json::to_string_pretty(&fused).unwrap(),
        serde_json::to_string_pretty(&reference).unwrap(),
        "fused sweep diverged from the per-monitor-compile pipeline"
    );
    assert_eq!(fused, reference, "series must match too");
    assert_eq!(fused.aggregate(), reference.aggregate());
}

/// The streaming sweep reducer (per-worker partial aggregates folded as
/// reports are produced, merged at join — memory O(workers)) against
/// the collect-all path, over a grid enlarged beyond the golden slice
/// by replicating its scenarios: the aggregates must be identical.
#[test]
fn streaming_sweep_aggregate_matches_collect_all_on_enlarged_grid() {
    // 6 scenario entries × 14 configurations = 84 cells — twice the
    // golden slice, with duplicate cells exercising accumulator merges
    // beyond one-report-per-key.
    let cells = grid::cells(&[1, 1, 2, 2, 10, 10], &grid::ablation_configs());
    assert_eq!(cells.len(), 84);
    let collected = grid::run_parallel(cells.clone()).unwrap().aggregate();
    let (streamed, stats) = grid::run_parallel_aggregate(cells).unwrap();
    assert_eq!(
        streamed, collected,
        "streaming reduction diverged from collect-then-aggregate"
    );
    assert_eq!(streamed.runs, 84);
    assert_eq!(stats.runs(), 84);
    assert_eq!(stats.suites_compiled, 0, "family sweeps never recompile");
}

#[test]
fn elevator_fault_run_matches_seed_pipeline() {
    let faults = ElevatorFaults {
        drive_ignores_door: true,
        ..ElevatorFaults::none()
    };
    let substrate = ElevatorSubstrate::new(faults, 7).with_ticks(6000);
    let report = Experiment::new(&substrate)
        .with_config(ExperimentConfig {
            post_terminal_ms: 100,
            correlation_window_ms: 50,
        })
        .run()
        .unwrap();
    let json = serde_json::to_string_pretty(&report).unwrap();
    let golden = include_str!("golden/elevator_seed7_drive_ignores_door.json");
    assert_eq!(
        json.trim(),
        golden.trim(),
        "elevator seed-7 fault run diverged from the seed pipeline"
    );
}
