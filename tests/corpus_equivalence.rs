//! The corpus replay equivalence wall: for a mixed archive of vehicle
//! and elevator runs, batched corpus replay (`observe_slab` over
//! striped lanes), scalar [`MonitorSuite::replay`] over the decoded
//! trace, and a live frame-by-frame scalar `observe` loop must agree
//! **per run** — violations and §5.1.2 correlation both — for *random*
//! goal suites the corpus was never recorded with, at stripe widths
//! 1–64 with ragged lanes and early retirement.
//!
//! This is the property that makes offline re-monitoring trustworthy:
//! the batched replay backend is not "approximately" the monitor
//! semantics, it *is* the monitor semantics, for any suite.

use emergent_safety::elevator::faults::ElevatorFaults;
use emergent_safety::elevator::{ElevatorFamily, ElevatorParams};
use emergent_safety::harness::corpus::replay_corpus_reports;
use emergent_safety::harness::{CorpusError, Sweep, TraceCorpusReader, TraceCorpusWriter};
use emergent_safety::logic::SignalTable;
use emergent_safety::monitor::MonitorSuite;
use emergent_safety::scenarios::{grid, runner};
use emergent_safety::vehicle::{VehicleFamily, VehicleParams};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

/// Records the shared mixed corpus once: two vehicle grid cells (one
/// colliding, one clean — so one trace ends early) and three
/// family-shared elevator runs with deliberately ragged tick counts.
/// Every proptest case replays this same archive.
fn corpus_dir() -> &'static PathBuf {
    static DIR: OnceLock<PathBuf> = OnceLock::new();
    DIR.get_or_init(|| {
        let mut dir = std::env::temp_dir();
        dir.push(format!("esafe-corpus-equiv-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let mut writer =
            TraceCorpusWriter::create(&dir, runner::thesis_config()).expect("fresh corpus dir");

        let cells = grid::cells(&[1], &grid::ablation_configs()[..2]);
        let vehicles = VehicleFamily::default();
        grid::sweep(cells)
            .run_aggregate_recorded(
                |cell, seed| grid::build_cell_in(&vehicles, cell, seed),
                &mut writer,
            )
            .expect("vehicle recording");

        let elevators = ElevatorFamily::default();
        let ragged = [(0u64, 500u64), (1, 1800), (2, 1100)];
        Sweep::new(ragged.to_vec())
            .with_base_seed(2009)
            .with_config(runner::thesis_config())
            .run_aggregate_recorded(
                |&(_, ticks), seed| {
                    elevators
                        .substrate(ElevatorFaults::none(), seed)
                        .with_ticks(ticks)
                },
                &mut writer,
            )
            .expect("elevator recording");

        writer.finish().expect("corpus commit");
        dir
    })
}

/// A "random suite": the substrate's full goal structure with
/// monitoring thresholds scaled by fuzzed factors. Different factors
/// flip different monitors between pass and violate on the same
/// archived evidence.
fn fuzzed_suite(
    substrate: &str,
    table: &Arc<SignalTable>,
    vehicle_scale: f64,
    elevator_scale: f64,
) -> Result<MonitorSuite, CorpusError> {
    let compile = |e: emergent_safety::logic::EvalError| CorpusError::Replay(e.to_string());
    match substrate {
        "vehicle" => {
            let d = VehicleParams::default();
            let params = VehicleParams {
                accel_limit: d.accel_limit * vehicle_scale,
                jerk_limit: d.jerk_limit * vehicle_scale,
                ..d
            };
            emergent_safety::vehicle::goals::build_suite(table, &params).map_err(compile)
        }
        "elevator" => {
            let d = ElevatorParams::default();
            let params = ElevatorParams {
                stop_margin_m: d.stop_margin_m * elevator_scale,
                ebrake_margin_m: d.ebrake_margin_m * elevator_scale,
                ..d
            };
            emergent_safety::elevator::goals::build_suite(table, &params).map_err(compile)
        }
        other => Err(CorpusError::Replay(format!(
            "unexpected substrate `{other}`"
        ))),
    }
}

proptest! {
    /// Batched replay ≡ scalar `replay` ≡ live scalar `observe`, per
    /// run, for fuzzed suites and widths.
    #[test]
    fn batched_replay_matches_scalar_replay_and_live_observe(
        vehicle_pct in 30u64..220,
        elevator_pct in 40u64..320,
        width in 1usize..65,
    ) {
        let vehicle_scale = vehicle_pct as f64 / 100.0;
        let elevator_scale = elevator_pct as f64 / 100.0;
        let reader = TraceCorpusReader::open(corpus_dir()).expect("committed corpus opens");
        prop_assert!(!reader.recovered());
        prop_assert_eq!(reader.len(), 5);

        let (replay, reports) = replay_corpus_reports(&reader, width, |substrate, table| {
            fuzzed_suite(substrate, table, vehicle_scale, elevator_scale)
        })
        .expect("batched replay");
        prop_assert_eq!(reports.len(), reader.len());

        for (i, batched) in reports.iter().enumerate() {
            let meta = reader.meta(i);
            let trace = reader.decode_trace(i).expect("archived runs decode");
            prop_assert_eq!(trace.len() as u64, meta.ticks);
            let window = reader.config().correlation_window_ms.div_ceil(meta.dt_millis);

            // Path 2: scalar replay of the decoded trace.
            let mut scalar = fuzzed_suite(
                &meta.substrate, trace.table(), vehicle_scale, elevator_scale,
            ).expect("suite compiles against the reader table");
            scalar.replay(&trace).expect("scalar replay");
            let scalar_correlation = scalar.correlate(window);
            let scalar_violations = scalar.take_violations();

            // Path 3: live frame-by-frame scalar observation, exactly
            // as an attached monitor would have seen the run.
            let mut live = fuzzed_suite(
                &meta.substrate, trace.table(), vehicle_scale, elevator_scale,
            ).expect("suite compiles against the reader table");
            let mut frame = trace.table().frame();
            for t in 0..trace.len() {
                trace.read_into(t, &mut frame);
                live.observe(&frame).expect("live observe");
            }
            live.finish();
            let live_correlation = live.correlate(window);
            let live_violations = live.take_violations();

            prop_assert_eq!(
                &batched.violations, &scalar_violations,
                "run {} (`{}`) width {}: batched != scalar replay", i, meta.label, width
            );
            prop_assert_eq!(
                &scalar_violations, &live_violations,
                "run {} (`{}`): scalar replay != live observe", i, meta.label
            );
            prop_assert_eq!(&batched.correlation, &scalar_correlation);
            prop_assert_eq!(&scalar_correlation, &live_correlation);
            prop_assert_eq!(batched.ticks, meta.ticks);
            prop_assert_eq!(batched.terminated_early, meta.terminated_early);
        }
        prop_assert_eq!(replay.runs, reader.len());
    }
}

/// The corpus really is mixed and ragged: both substrates present,
/// lane lengths spanning two orders of magnitude, and at least one
/// early-terminated vehicle run — so the proptest above genuinely
/// exercises grouping, ragged stripes, and early retirement.
#[test]
fn the_shared_corpus_is_mixed_and_ragged() {
    let reader = TraceCorpusReader::open(corpus_dir()).expect("committed corpus opens");
    let substrates: std::collections::BTreeSet<&str> = (0..reader.len())
        .map(|i| reader.meta(i).substrate.as_str())
        .collect();
    assert_eq!(
        substrates.into_iter().collect::<Vec<_>>(),
        ["elevator", "vehicle"]
    );
    let ticks: Vec<u64> = (0..reader.len()).map(|i| reader.meta(i).ticks).collect();
    let min = ticks.iter().min().unwrap();
    let max = ticks.iter().max().unwrap();
    assert!(max > &(min * 4), "lane lengths must be ragged: {ticks:?}");
    assert!(
        (0..reader.len()).any(|i| reader.meta(i).terminated_early),
        "at least one archived run must have terminated early"
    );
}
