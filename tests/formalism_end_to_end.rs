//! Cross-crate integration: the Chapter 3/4 formalism applied to the real
//! goal sets of both substrates.

use emergent_safety::core::catalog;
use emergent_safety::core::compose::{self, Composability};
use emergent_safety::core::realizability::check_realizable_by_all;
use emergent_safety::elevator::{goals as egoals, icpa as eicpa, ElevatorParams};
use emergent_safety::logic::{parse, prop};
use emergent_safety::vehicle::config::VehicleParams;

#[test]
fn elevator_door_icpa_verifies_or_defers_honestly() {
    let table = eicpa::door_or_stopped_icpa(&ElevatorParams::default());
    // The table contains bounded-window relationships, so propositional
    // verification defers (the thesis verifies these by model checking
    // or run-time monitoring — §4.4.3).
    assert_eq!(table.verify(), None);
    assert!(table.dangling_citations().is_empty());
}

#[test]
fn elevator_overweight_icpa_needs_an_inductive_argument() {
    // The entailment holds only by induction over time (the car is
    // already stopped when the threshold is crossed, and STOP keeps it
    // stopped) — beyond the propositional window check, exactly the case
    // the thesis routes to model checking or run-time monitoring.
    let table = eicpa::overweight_icpa(&ElevatorParams::default());
    assert_eq!(table.verify(), Some(false));
    // The run-time monitors discharge it instead: see
    // crates/elevator/src/goals.rs tests (healthy run clean, fault caught).
}

#[test]
fn table_4_4_subgoals_are_realizable_by_the_controller_pair() {
    let params = ElevatorParams::default();
    let graph = eicpa::control_graph(&params);
    let door_ctl = graph.agent("DoorController").unwrap();
    let drive_ctl = graph.agent("DriveController").unwrap();
    // Shared responsibility: the pair jointly realizes both subgoals.
    assert!(
        check_realizable_by_all(&egoals::door_controller_subgoal(), &[door_ctl, drive_ctl]).is_ok()
    );
    assert!(
        check_realizable_by_all(&egoals::drive_controller_subgoal(), &[door_ctl, drive_ctl])
            .is_ok()
    );
    // Neither alone realizes the other's subgoal: DoorController cannot
    // control the drive command.
    assert!(check_realizable_by_all(&egoals::drive_controller_subgoal(), &[door_ctl]).is_err());
}

#[test]
fn vehicle_goal_3_is_conjunctively_reducible_per_feature() {
    // Goal 3 is a conjunction over features; the conjunctive reduction
    // (§3.3.4) splits it exactly.
    let specs = emergent_safety::vehicle::goals::specs(&VehicleParams::default());
    let g3 = specs[2].goal.formal();
    let subs = compose::conjunctive_reduction(g3).expect("splits");
    assert_eq!(subs.len(), 5);
    let conj = emergent_safety::logic::Expr::and_all(subs);
    assert!(prop::equivalent(&conj, g3).unwrap());
}

#[test]
fn or_reduced_feature_subgoals_are_restrictive_not_equivalent() {
    // Subgoal 1B ("always bound the request") strengthens 1A's conditional
    // form — the OR-reduction the thesis applies (§5.3).
    let conditional = parse("selected -> request_below").unwrap();
    let unconditional = parse("always(request_below)").unwrap();
    let c = compose::classify(&conditional, &[vec![unconditional]]).unwrap();
    assert!(matches!(
        c,
        Composability::ComposableWithRestriction { excluded_models: 1 }
    ));
}

#[test]
fn hoistway_redundancy_classifies_as_redundant_composition() {
    // Two redundancy legs, each sufficient: primary stop or emergency
    // brake. Modeled propositionally: G = car_arrested, legs imply it.
    let parent = parse("arrested").unwrap();
    let primary = vec![
        parse("drive_stop").unwrap(),
        parse("drive_stop -> arrested").unwrap(),
    ];
    let secondary = vec![
        parse("ebrake").unwrap(),
        parse("ebrake -> arrested").unwrap(),
    ];
    let c = compose::classify(&parent, &[primary, secondary]).unwrap();
    // Each leg entails the parent but the parent can hold without either
    // (e.g. friction): partially composable with redundancy — the angel Y.
    assert!(matches!(
        c,
        Composability::EmergentPartiallyComposableWithRedundancy { .. }
    ));
}

#[test]
fn full_appendix_b_catalog_is_sound_and_sized() {
    let tables = catalog::appendix_b();
    assert_eq!(tables.len(), 13);
    let total_rows: usize = tables.iter().map(|(_, rows)| rows.len()).sum();
    // B.1: 27 rows; B.2–B.13: 27 rows each (3-var forms) → 351 rows.
    assert_eq!(total_rows, 27 + 12 * 27);
    for (name, rows) in &tables {
        for row in rows {
            if let Some(alt) = &row.alternative {
                assert!(
                    prop::entails_invariant(&[alt], &row.original).unwrap(),
                    "{name}: unsound row {alt}"
                );
            }
        }
    }
}

#[test]
fn monitoring_estimates_match_static_classification() {
    // Statically, {G1} with G = a ∧ b is partially composable (demon
    // region = a ∧ ¬b). Dynamically, a trace entering that region yields
    // a false negative. The two views must agree (§3.4).
    let parent = parse("a && b").unwrap();
    let sub = parse("a").unwrap();
    let c = compose::classify(&parent, &[vec![sub.clone()]]).unwrap();
    assert!(matches!(
        c,
        Composability::EmergentPartiallyComposable { demon_models: 1 }
    ));

    let mut builder = emergent_safety::logic::SignalTable::builder();
    let sig_a = builder.bool("a");
    let sig_b = builder.bool("b");
    let table = builder.finish();
    let mut suite = emergent_safety::monitor::MonitorSuite::new(table.clone());
    suite
        .add_goal("G", emergent_safety::monitor::Location::new("sys"), parent)
        .unwrap();
    suite
        .add_subgoal(
            "G1",
            "G",
            emergent_safety::monitor::Location::new("sub"),
            sub,
        )
        .unwrap();
    let mut frame = table.frame();
    for (a, b) in [(true, true), (true, false), (true, true)] {
        frame.set(sig_a, a);
        frame.set(sig_b, b);
        suite.observe(&frame).unwrap();
    }
    suite.finish();
    let row = suite.correlate(0);
    let g = row.for_goal("G").unwrap();
    assert_eq!(
        g.false_negatives, 1,
        "the demon region showed up at run time"
    );
}
