//! **emergent-safety** — a Rust reproduction of Jennifer Black's *System
//! Safety as an Emergent Property in Composite Systems* (CMU, 2009; the
//! DSN'09 paper of the same title summarizes it).
//!
//! The workspace delivers the thesis's three contributions as a usable
//! library stack:
//!
//! | Crate | Contribution |
//! |---|---|
//! | [`logic`] | Past-time temporal logic: parser, trace/incremental evaluation, propositional entailment |
//! | [`core`] | Emergence & composability formalism (Ch. 3), Indirect Control Path Analysis (Ch. 4), realizability catalog (Table 4.5 / Appendix B) |
//! | [`monitor`] | Hierarchical run-time goal monitoring with hit / false-positive / false-negative correlation (Ch. 5) |
//! | [`sim`] | Deterministic fixed-step simulation kernel |
//! | [`harness`] | Substrate-generic experiment loop and rayon-parallel sweeps |
//! | [`elevator`] | The Ch. 4 distributed elevator substrate |
//! | [`vehicle`] | The Ch. 5 semi-autonomous vehicle substrate with the thesis's defect population |
//! | [`scenarios`] | The ten evaluation scenarios, violation tables (D.1–D.11), figure series (5.2–5.15) |
//! | [`serve`] | Sharded streaming monitor service for fleets of live runs (hot-swappable suites, in-process + TCP transports) |
//!
//! # Quickstart
//!
//! ```
//! use emergent_safety::core::compose::{classify, Composability};
//! use emergent_safety::logic::parse;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Is "the vehicle stops for obstacles" fully composed by the
//! // collision-avoidance subgoals? (thesis eq. 3.4–3.6)
//! let parent = parse("object_in_path -> stop_vehicle")?;
//! let subgoals = vec![
//!     parse("object_in_path <-> ca.stop_vehicle")?,
//!     parse("ca.stop_vehicle -> stop_vehicle")?,
//! ];
//! match classify(&parent, &[subgoals])? {
//!     Composability::FullyComposable => println!("exact decomposition"),
//!     Composability::ComposableWithRestriction { excluded_models } => {
//!         println!("sound but prohibits {excluded_models} safe states");
//!     }
//!     other => println!("emergence remains: {other:?}"),
//! }
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable end-to-end demonstrations and
//! `crates/bench/src/bin/repro.rs` for the table/figure reproduction
//! harness (`cargo run -p esafe-bench --bin repro -- --all`).

pub use esafe_core as core;
pub use esafe_elevator as elevator;
pub use esafe_harness as harness;
pub use esafe_logic as logic;
pub use esafe_monitor as monitor;
pub use esafe_scenarios as scenarios;
pub use esafe_serve as serve;
pub use esafe_sim as sim;
pub use esafe_vehicle as vehicle;
