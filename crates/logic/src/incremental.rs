//! Incremental (per-tick) evaluation for run-time goal monitoring.
//!
//! A [`CompiledMonitor`] consumes one [`State`] per tick and reports the
//! goal's *current* truth in O(#subformulas) time and O(#subformulas)
//! memory, independent of trace length. This is the engine behind the
//! thesis's run-time safety-goal monitors.
//!
//! # Monitor semantics
//!
//! Run-time monitors cannot see the future, so the future-directed forms are
//! reinterpreted with *violation semantics* (see [`monitor_form`]):
//!
//! * `always(p)` monitors `p` — a violation is reported at exactly the
//!   states where `p` is false;
//! * `p => q` (all-states entailment) monitors `p -> q` per state;
//! * `p <-> q` monitors per-state agreement;
//! * `eventually`/`next` are rejected ([`EvalError::FutureOperator`]) —
//!   the thesis notes goals containing ♦ are not finitely violable.

use crate::error::EvalError;
use crate::eval;
use crate::expr::{CmpOp, Expr, Operand};
use crate::state::State;

/// Rewrites an expression into its run-time-monitorable form.
///
/// `always(p)` becomes `p`, `p => q` becomes `p -> q`, `p <-> q` becomes
/// `(p -> q) && (q -> p)`; all past-time operators pass through unchanged.
///
/// # Errors
///
/// Returns [`EvalError::FutureOperator`] if the expression contains
/// `eventually` or `next`.
///
/// # Example
///
/// ```
/// use esafe_logic::{parse, incremental::monitor_form};
/// let e = parse("always(p => q)").unwrap();
/// assert_eq!(monitor_form(&e).unwrap().to_string(), "p -> q");
/// ```
pub fn monitor_form(expr: &Expr) -> Result<Expr, EvalError> {
    Ok(match expr {
        Expr::Const(_) | Expr::Var(_) | Expr::Cmp { .. } => expr.clone(),
        Expr::Not(e) => Expr::not(monitor_form(e)?),
        Expr::And(items) => Expr::And(
            items
                .iter()
                .map(monitor_form)
                .collect::<Result<Vec<_>, _>>()?,
        ),
        Expr::Or(items) => Expr::Or(
            items
                .iter()
                .map(monitor_form)
                .collect::<Result<Vec<_>, _>>()?,
        ),
        Expr::Implies(a, b) => Expr::implies(monitor_form(a)?, monitor_form(b)?),
        Expr::Entails(a, b) => Expr::implies(monitor_form(a)?, monitor_form(b)?),
        Expr::Iff(a, b) => {
            let (a, b) = (monitor_form(a)?, monitor_form(b)?);
            Expr::and(Expr::implies(a.clone(), b.clone()), Expr::implies(b, a))
        }
        Expr::Prev(e) => Expr::prev(monitor_form(e)?),
        Expr::Once(e) => Expr::once(monitor_form(e)?),
        Expr::Historically(e) => Expr::historically(monitor_form(e)?),
        Expr::HeldFor { expr, ticks } => Expr::held_for(monitor_form(expr)?, *ticks),
        Expr::OnceWithin { expr, ticks } => Expr::once_within(monitor_form(expr)?, *ticks),
        Expr::Became(e) => Expr::became(monitor_form(e)?),
        Expr::Initially(e) => Expr::initially(monitor_form(e)?),
        Expr::Always(e) => monitor_form(e)?,
        Expr::Eventually(_) => {
            return Err(EvalError::FutureOperator {
                operator: "eventually",
            })
        }
        Expr::Next(_) => return Err(EvalError::FutureOperator { operator: "next" }),
    })
}

/// A compiled incremental monitor for one goal expression.
///
/// # Example
///
/// ```
/// use esafe_logic::{parse, State, CompiledMonitor};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut m = CompiledMonitor::compile(&parse("always(p || prev(q))")?)?;
/// let t1 = m.observe(&State::new().with_bool("p", false).with_bool("q", true))?;
/// let t2 = m.observe(&State::new().with_bool("p", false).with_bool("q", false))?;
/// assert!(!t1); // no previous state yet, p false
/// assert!(t2);  // q held in the previous state
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CompiledMonitor {
    root: Node,
    step: u64,
}

impl CompiledMonitor {
    /// Compiles an expression for incremental monitoring.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::FutureOperator`] if the expression contains
    /// `eventually` or `next`.
    pub fn compile(expr: &Expr) -> Result<Self, EvalError> {
        let rewritten = monitor_form(expr)?;
        Ok(CompiledMonitor {
            root: Node::build(&rewritten),
            step: 0,
        })
    }

    /// Feeds the next state sample and returns the goal's current truth.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] if a referenced variable is missing or
    /// mistyped in `state`. The monitor's history is still advanced
    /// consistently on error-free subtrees, so callers should treat an
    /// error as fatal for this monitor instance.
    pub fn observe(&mut self, state: &State) -> Result<bool, EvalError> {
        let step = usize::try_from(self.step).unwrap_or(usize::MAX);
        let v = self.root.eval(state, step)?;
        self.step += 1;
        Ok(v)
    }

    /// Number of samples observed so far.
    pub fn steps_observed(&self) -> u64 {
        self.step
    }

    /// Clears all history, returning the monitor to its initial state.
    pub fn reset(&mut self) {
        self.root.reset();
        self.step = 0;
    }
}

#[derive(Debug, Clone)]
enum Node {
    Const(bool),
    Var(String),
    Cmp {
        lhs: Operand,
        op: CmpOp,
        rhs: Operand,
    },
    Not(Box<Node>),
    And(Vec<Node>),
    Or(Vec<Node>),
    Implies(Box<Node>, Box<Node>),
    Prev {
        child: Box<Node>,
        last: Option<bool>,
    },
    Once {
        child: Box<Node>,
        seen_true_before: bool,
    },
    Historically {
        child: Box<Node>,
        all_true_before: bool,
    },
    HeldFor {
        child: Box<Node>,
        ticks: u64,
        run_before: u64,
    },
    OnceWithin {
        child: Box<Node>,
        ticks: u64,
        last_true_step: Option<u64>,
    },
    Became {
        child: Box<Node>,
        last: Option<bool>,
    },
    Initially {
        child: Box<Node>,
        captured: Option<bool>,
    },
}

impl Node {
    fn build(expr: &Expr) -> Node {
        match expr {
            Expr::Const(b) => Node::Const(*b),
            Expr::Var(v) => Node::Var(v.clone()),
            Expr::Cmp { lhs, op, rhs } => Node::Cmp {
                lhs: lhs.clone(),
                op: *op,
                rhs: rhs.clone(),
            },
            Expr::Not(e) => Node::Not(Box::new(Node::build(e))),
            Expr::And(items) => Node::And(items.iter().map(Node::build).collect()),
            Expr::Or(items) => Node::Or(items.iter().map(Node::build).collect()),
            Expr::Implies(a, b) => {
                Node::Implies(Box::new(Node::build(a)), Box::new(Node::build(b)))
            }
            Expr::Prev(e) => Node::Prev {
                child: Box::new(Node::build(e)),
                last: None,
            },
            Expr::Once(e) => Node::Once {
                child: Box::new(Node::build(e)),
                seen_true_before: false,
            },
            Expr::Historically(e) => Node::Historically {
                child: Box::new(Node::build(e)),
                all_true_before: true,
            },
            Expr::HeldFor { expr, ticks } => Node::HeldFor {
                child: Box::new(Node::build(expr)),
                ticks: *ticks,
                run_before: 0,
            },
            Expr::OnceWithin { expr, ticks } => Node::OnceWithin {
                child: Box::new(Node::build(expr)),
                ticks: *ticks,
                last_true_step: None,
            },
            Expr::Became(e) => Node::Became {
                child: Box::new(Node::build(e)),
                last: None,
            },
            Expr::Initially(e) => Node::Initially {
                child: Box::new(Node::build(e)),
                captured: None,
            },
            // monitor_form has eliminated these before Node::build runs
            Expr::Entails(..)
            | Expr::Iff(..)
            | Expr::Always(_)
            | Expr::Eventually(_)
            | Expr::Next(_) => unreachable!("monitor_form eliminates future forms"),
        }
    }

    fn eval(&mut self, state: &State, step: usize) -> Result<bool, EvalError> {
        match self {
            Node::Const(b) => Ok(*b),
            Node::Var(name) => eval::bool_var(state, name, step),
            Node::Cmp { lhs, op, rhs } => eval::compare(lhs, *op, rhs, state, step),
            Node::Not(e) => Ok(!e.eval(state, step)?),
            Node::And(items) => {
                // Evaluate every child so temporal sub-monitors keep their
                // history consistent even after a short-circuitable false.
                let mut all = true;
                for e in items {
                    all &= e.eval(state, step)?;
                }
                Ok(all)
            }
            Node::Or(items) => {
                let mut any = false;
                for e in items {
                    any |= e.eval(state, step)?;
                }
                Ok(any)
            }
            Node::Implies(a, b) => {
                let av = a.eval(state, step)?;
                let bv = b.eval(state, step)?;
                Ok(!av || bv)
            }
            Node::Prev { child, last } => {
                let cur = child.eval(state, step)?;
                let out = last.unwrap_or(false);
                *last = Some(cur);
                Ok(out)
            }
            Node::Once {
                child,
                seen_true_before,
            } => {
                let cur = child.eval(state, step)?;
                let out = *seen_true_before;
                *seen_true_before |= cur;
                Ok(out)
            }
            Node::Historically {
                child,
                all_true_before,
            } => {
                let cur = child.eval(state, step)?;
                let out = *all_true_before;
                *all_true_before &= cur;
                Ok(out)
            }
            Node::HeldFor {
                child,
                ticks,
                run_before,
            } => {
                let cur = child.eval(state, step)?;
                let out = *ticks == 0 || *run_before >= *ticks;
                *run_before = if cur { run_before.saturating_add(1) } else { 0 };
                Ok(out)
            }
            Node::OnceWithin {
                child,
                ticks,
                last_true_step,
            } => {
                let cur = child.eval(state, step)?;
                let step_u64 = step as u64;
                let out = last_true_step.is_some_and(|lt| step_u64.saturating_sub(lt) <= *ticks);
                if cur {
                    *last_true_step = Some(step_u64);
                }
                Ok(out)
            }
            Node::Became { child, last } => {
                let cur = child.eval(state, step)?;
                let out = cur && !last.unwrap_or(true);
                *last = Some(cur);
                Ok(out)
            }
            Node::Initially { child, captured } => {
                let cur = child.eval(state, step)?;
                if captured.is_none() {
                    *captured = Some(cur);
                }
                Ok(captured.expect("just set"))
            }
        }
    }

    fn reset(&mut self) {
        match self {
            Node::Const(_) | Node::Var(_) | Node::Cmp { .. } => {}
            Node::Not(e) => e.reset(),
            Node::And(items) | Node::Or(items) => {
                for e in items {
                    e.reset();
                }
            }
            Node::Implies(a, b) => {
                a.reset();
                b.reset();
            }
            Node::Prev { child, last } => {
                child.reset();
                *last = None;
            }
            Node::Once {
                child,
                seen_true_before,
            } => {
                child.reset();
                *seen_true_before = false;
            }
            Node::Historically {
                child,
                all_true_before,
            } => {
                child.reset();
                *all_true_before = true;
            }
            Node::HeldFor {
                child, run_before, ..
            } => {
                child.reset();
                *run_before = 0;
            }
            Node::OnceWithin {
                child,
                last_true_step,
                ..
            } => {
                child.reset();
                *last_true_step = None;
            }
            Node::Became { child, last } => {
                child.reset();
                *last = None;
            }
            Node::Initially { child, captured } => {
                child.reset();
                *captured = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_trace;
    use crate::parse;
    use crate::state::Trace;

    fn trace_of(bits: &[(&str, Vec<bool>)]) -> Trace {
        let n = bits[0].1.len();
        let mut t = Trace::with_tick_millis(1);
        for i in 0..n {
            let mut s = State::new();
            for (name, vals) in bits {
                s.set(*name, vals[i]);
            }
            t.push(s);
        }
        t
    }

    fn monitor_run(src: &str, t: &Trace) -> Vec<bool> {
        let mut m = CompiledMonitor::compile(&parse(src).unwrap()).unwrap();
        t.iter().map(|s| m.observe(s).unwrap()).collect()
    }

    #[test]
    fn matches_reference_on_past_only_formulas() {
        let t = trace_of(&[
            ("p", vec![true, false, true, true, false, true]),
            ("q", vec![false, false, true, false, true, true]),
        ]);
        for src in [
            "prev(p)",
            "once(p && q)",
            "historically(p || q)",
            "held_for(p, 2ticks)",
            "once_within(q, 3ticks)",
            "became(p)",
            "initially(p) -> q",
            "prev(prev(p)) && !q",
        ] {
            let reference = eval_trace(&parse(src).unwrap(), &t).unwrap();
            assert_eq!(monitor_run(src, &t), reference, "mismatch for {src}");
        }
    }

    #[test]
    fn always_uses_violation_semantics() {
        let t = trace_of(&[("p", vec![true, false, true])]);
        // reference `always` is suffix-true; the monitor flags per-state.
        assert_eq!(monitor_run("always(p)", &t), vec![true, false, true]);
    }

    #[test]
    fn entails_uses_per_state_semantics() {
        let t = trace_of(&[("p", vec![true, true]), ("q", vec![true, false])]);
        assert_eq!(monitor_run("p => q", &t), vec![true, false]);
    }

    #[test]
    fn iff_monitors_agreement() {
        let t = trace_of(&[("p", vec![true, false]), ("q", vec![true, true])]);
        assert_eq!(monitor_run("p <-> q", &t), vec![true, false]);
    }

    #[test]
    fn rejects_future_operators() {
        assert!(matches!(
            CompiledMonitor::compile(&parse("eventually(p)").unwrap()),
            Err(EvalError::FutureOperator { .. })
        ));
        assert!(matches!(
            CompiledMonitor::compile(&parse("next(p)").unwrap()),
            Err(EvalError::FutureOperator { .. })
        ));
    }

    #[test]
    fn short_circuit_does_not_desync_history() {
        // The `prev(q)` inside the And must track q even while p is false.
        let t = trace_of(&[
            ("p", vec![false, false, true]),
            ("q", vec![true, false, false]),
        ]);
        assert_eq!(monitor_run("p && prev(q)", &t), vec![false, false, false]);
        let t2 = trace_of(&[
            ("p", vec![false, true, true]),
            ("q", vec![true, true, false]),
        ]);
        assert_eq!(monitor_run("p && prev(q)", &t2), vec![false, true, true]);
    }

    #[test]
    fn reset_restores_initial_behaviour() {
        let mut m = CompiledMonitor::compile(&parse("prev(p)").unwrap()).unwrap();
        let s_true = State::new().with_bool("p", true);
        assert!(!m.observe(&s_true).unwrap());
        assert!(m.observe(&s_true).unwrap());
        m.reset();
        assert_eq!(m.steps_observed(), 0);
        assert!(!m.observe(&s_true).unwrap());
    }
}
