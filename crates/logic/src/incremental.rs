//! Incremental (per-tick) evaluation for run-time goal monitoring.
//!
//! A [`CompiledMonitor`] consumes one [`Frame`] per tick and reports the
//! goal's *current* truth in O(#subformulas) time and O(#subformulas)
//! memory, independent of trace length. This is the engine behind the
//! thesis's run-time safety-goal monitors.
//!
//! Compilation is two-phase: [`CompiledMonitor::compile_in`] resolves
//! every variable reference against a shared [`SignalTable`] **once**, so
//! the per-tick loop is pure [`SignalId`]-indexed slot access — no string
//! lookups, no allocation. [`CompiledMonitor::compile`] is the
//! table-less convenience for tests and goal authoring: it infers a
//! private table from the formula's own variables and accepts name-keyed
//! [`State`] samples through [`CompiledMonitor::observe_state`].
//!
//! # Monitor semantics
//!
//! Run-time monitors cannot see the future, so the future-directed forms are
//! reinterpreted with *violation semantics* (see [`monitor_form`]):
//!
//! * `always(p)` monitors `p` — a violation is reported at exactly the
//!   states where `p` is false;
//! * `p => q` (all-states entailment) monitors `p -> q` per state;
//! * `p <-> q` monitors per-state agreement;
//! * `eventually`/`next` are rejected ([`EvalError::FutureOperator`]) —
//!   the thesis notes goals containing ♦ are not finitely violable.

use crate::error::EvalError;
use crate::eval;
use crate::expr::{CmpOp, Expr, Operand};
use crate::signal::{Frame, SignalId, SignalKind, SignalTable};
use crate::state::State;
use crate::value::Value;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Rewrites an expression into its run-time-monitorable form.
///
/// `always(p)` becomes `p`, `p => q` becomes `p -> q`, `p <-> q` becomes
/// `(p -> q) && (q -> p)`; all past-time operators pass through unchanged.
///
/// # Errors
///
/// Returns [`EvalError::FutureOperator`] if the expression contains
/// `eventually` or `next`.
///
/// # Example
///
/// ```
/// use esafe_logic::{parse, incremental::monitor_form};
/// let e = parse("always(p => q)").unwrap();
/// assert_eq!(monitor_form(&e).unwrap().to_string(), "p -> q");
/// ```
pub fn monitor_form(expr: &Expr) -> Result<Expr, EvalError> {
    Ok(match expr {
        Expr::Const(_) | Expr::Var(_) | Expr::Cmp { .. } => expr.clone(),
        Expr::Not(e) => Expr::not(monitor_form(e)?),
        Expr::And(items) => Expr::And(
            items
                .iter()
                .map(monitor_form)
                .collect::<Result<Vec<_>, _>>()?,
        ),
        Expr::Or(items) => Expr::Or(
            items
                .iter()
                .map(monitor_form)
                .collect::<Result<Vec<_>, _>>()?,
        ),
        Expr::Implies(a, b) => Expr::implies(monitor_form(a)?, monitor_form(b)?),
        Expr::Entails(a, b) => Expr::implies(monitor_form(a)?, monitor_form(b)?),
        Expr::Iff(a, b) => {
            let (a, b) = (monitor_form(a)?, monitor_form(b)?);
            Expr::and(Expr::implies(a.clone(), b.clone()), Expr::implies(b, a))
        }
        Expr::Prev(e) => Expr::prev(monitor_form(e)?),
        Expr::Once(e) => Expr::once(monitor_form(e)?),
        Expr::Historically(e) => Expr::historically(monitor_form(e)?),
        Expr::HeldFor { expr, ticks } => Expr::held_for(monitor_form(expr)?, *ticks),
        Expr::OnceWithin { expr, ticks } => Expr::once_within(monitor_form(expr)?, *ticks),
        Expr::Became(e) => Expr::became(monitor_form(e)?),
        Expr::Initially(e) => Expr::initially(monitor_form(e)?),
        Expr::Always(e) => monitor_form(e)?,
        Expr::Eventually(_) => {
            return Err(EvalError::FutureOperator {
                operator: "eventually",
            })
        }
        Expr::Next(_) => return Err(EvalError::FutureOperator { operator: "next" }),
    })
}

/// Infers a private [`SignalTable`] from a formula's own variable
/// references: boolean atoms become [`SignalKind::Bool`], comparison
/// operands become [`SignalKind::Sym`] when compared against a symbol
/// literal and [`SignalKind::Real`] otherwise. Backs the table-less
/// [`CompiledMonitor::compile`] path.
pub fn infer_table(expr: &Expr) -> Arc<SignalTable> {
    let mut kinds: BTreeMap<String, SignalKind> = BTreeMap::new();
    expr.visit(&mut |e| match e {
        Expr::Var(v) => {
            kinds.entry(v.clone()).or_insert(SignalKind::Bool);
        }
        Expr::Cmp { lhs, op: _, rhs } => {
            let sym_literal = matches!(lhs, Operand::Lit(Value::Sym(_)))
                || matches!(rhs, Operand::Lit(Value::Sym(_)));
            for operand in [lhs, rhs] {
                if let Operand::Var(v) = operand {
                    let kind = if sym_literal {
                        SignalKind::Sym
                    } else {
                        SignalKind::Real
                    };
                    kinds.entry(v.clone()).or_insert(kind);
                }
            }
        }
        _ => {}
    });
    let mut builder = SignalTable::builder();
    for (name, kind) in kinds {
        builder.signal(&name, kind);
    }
    builder.finish()
}

/// A compiled incremental monitor for one goal expression.
///
/// # Example
///
/// ```
/// use esafe_logic::{parse, CompiledMonitor, SignalTable};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SignalTable::builder();
/// let p = b.bool("p");
/// let q = b.bool("q");
/// let table = b.finish();
///
/// let mut m = CompiledMonitor::compile_in(&parse("always(p || prev(q))")?, &table)?;
/// let mut frame = table.frame();
/// frame.set(p, false);
/// frame.set(q, true);
/// let t1 = m.observe(&frame)?;
/// frame.set(q, false);
/// let t2 = m.observe(&frame)?;
/// assert!(!t1); // no previous state yet, p false
/// assert!(t2);  // q held in the previous state
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CompiledMonitor {
    table: Arc<SignalTable>,
    root: Node,
    step: u64,
}

impl CompiledMonitor {
    /// Compiles an expression against a shared signal table, resolving
    /// every variable reference to a [`SignalId`] once.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::FutureOperator`] if the expression contains
    /// `eventually` or `next`, and [`EvalError::UnknownSignal`] if it
    /// references a name outside the table.
    pub fn compile_in(expr: &Expr, table: &Arc<SignalTable>) -> Result<Self, EvalError> {
        let rewritten = monitor_form(expr)?;
        Ok(CompiledMonitor {
            root: Node::build(&rewritten, table)?,
            table: Arc::clone(table),
            step: 0,
        })
    }

    /// Compiles an expression over a private table inferred from its own
    /// variables (see [`infer_table`]) — the goal-authoring convenience
    /// used with [`CompiledMonitor::observe_state`].
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::FutureOperator`] if the expression contains
    /// `eventually` or `next`.
    pub fn compile(expr: &Expr) -> Result<Self, EvalError> {
        Self::compile_in(expr, &infer_table(expr))
    }

    /// The signal table the monitor's variable references resolve into.
    pub fn table(&self) -> &Arc<SignalTable> {
        &self.table
    }

    /// Feeds the next frame and returns the goal's current truth.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] if a referenced signal is unset or mistyped
    /// in `frame`. The monitor's history is still advanced consistently on
    /// error-free subtrees, so callers should treat an error as fatal for
    /// this monitor instance.
    ///
    /// # Panics
    ///
    /// Panics if `frame` indexes a different table than the monitor was
    /// compiled against.
    pub fn observe(&mut self, frame: &Frame) -> Result<bool, EvalError> {
        assert!(
            Arc::ptr_eq(frame.table(), &self.table),
            "frame and monitor must share one signal table"
        );
        let step = usize::try_from(self.step).unwrap_or(usize::MAX);
        let v = self.root.eval(frame, step, &self.table)?;
        self.step += 1;
        Ok(v)
    }

    /// Feeds a name-keyed [`State`] sample by converting it to a frame
    /// over the monitor's table first (names the table does not know are
    /// ignored; referenced-but-absent names surface as
    /// [`EvalError::MissingVar`]). This is the seed-compatible slow path
    /// for tests and doctests — production loops hold [`Frame`]s.
    ///
    /// # Errors
    ///
    /// See [`CompiledMonitor::observe`].
    pub fn observe_state(&mut self, state: &State) -> Result<bool, EvalError> {
        let frame = self.table.frame_from_state_lossy(state);
        self.observe(&frame)
    }

    /// Number of samples observed so far.
    pub fn steps_observed(&self) -> u64 {
        self.step
    }

    /// Clears all history, returning the monitor to its initial state.
    pub fn reset(&mut self) {
        self.root.reset();
        self.step = 0;
    }
}

/// A comparison operand with its variable reference resolved.
#[derive(Debug, Clone, Copy)]
enum Slot {
    Sig(SignalId),
    Lit(Value),
}

impl Slot {
    fn resolve(op: &Operand, table: &SignalTable) -> Result<Slot, EvalError> {
        Ok(match op {
            Operand::Var(name) => Slot::Sig(resolve(name, table)?),
            Operand::Lit(v) => Slot::Lit(*v),
        })
    }

    #[inline]
    fn value(&self, frame: &Frame, step: usize, table: &SignalTable) -> Result<Value, EvalError> {
        match self {
            Slot::Lit(v) => Ok(*v),
            Slot::Sig(id) => frame.get(*id).ok_or_else(|| EvalError::MissingVar {
                name: table.name(*id).to_owned(),
                step,
            }),
        }
    }
}

fn resolve(name: &str, table: &SignalTable) -> Result<SignalId, EvalError> {
    table.id(name).ok_or_else(|| EvalError::UnknownSignal {
        name: name.to_owned(),
    })
}

#[inline]
fn frame_bool(
    frame: &Frame,
    id: SignalId,
    step: usize,
    table: &SignalTable,
) -> Result<bool, EvalError> {
    match frame.get(id) {
        None => Err(EvalError::MissingVar {
            name: table.name(id).to_owned(),
            step,
        }),
        Some(Value::Bool(b)) => Ok(b),
        Some(other) => Err(EvalError::NotBoolean {
            name: table.name(id).to_owned(),
            found: other.type_name(),
        }),
    }
}

#[derive(Debug, Clone)]
enum Node {
    Const(bool),
    Var(SignalId),
    Cmp {
        lhs: Slot,
        op: CmpOp,
        rhs: Slot,
    },
    Not(Box<Node>),
    And(Vec<Node>),
    Or(Vec<Node>),
    Implies(Box<Node>, Box<Node>),
    Prev {
        child: Box<Node>,
        last: Option<bool>,
    },
    Once {
        child: Box<Node>,
        seen_true_before: bool,
    },
    Historically {
        child: Box<Node>,
        all_true_before: bool,
    },
    HeldFor {
        child: Box<Node>,
        ticks: u64,
        run_before: u64,
    },
    OnceWithin {
        child: Box<Node>,
        ticks: u64,
        last_true_step: Option<u64>,
    },
    Became {
        child: Box<Node>,
        last: Option<bool>,
    },
    Initially {
        child: Box<Node>,
        captured: Option<bool>,
    },
}

impl Node {
    fn build(expr: &Expr, table: &SignalTable) -> Result<Node, EvalError> {
        Ok(match expr {
            Expr::Const(b) => Node::Const(*b),
            Expr::Var(v) => Node::Var(resolve(v, table)?),
            Expr::Cmp { lhs, op, rhs } => Node::Cmp {
                lhs: Slot::resolve(lhs, table)?,
                op: *op,
                rhs: Slot::resolve(rhs, table)?,
            },
            Expr::Not(e) => Node::Not(Box::new(Node::build(e, table)?)),
            Expr::And(items) => Node::And(
                items
                    .iter()
                    .map(|e| Node::build(e, table))
                    .collect::<Result<_, _>>()?,
            ),
            Expr::Or(items) => Node::Or(
                items
                    .iter()
                    .map(|e| Node::build(e, table))
                    .collect::<Result<_, _>>()?,
            ),
            Expr::Implies(a, b) => Node::Implies(
                Box::new(Node::build(a, table)?),
                Box::new(Node::build(b, table)?),
            ),
            Expr::Prev(e) => Node::Prev {
                child: Box::new(Node::build(e, table)?),
                last: None,
            },
            Expr::Once(e) => Node::Once {
                child: Box::new(Node::build(e, table)?),
                seen_true_before: false,
            },
            Expr::Historically(e) => Node::Historically {
                child: Box::new(Node::build(e, table)?),
                all_true_before: true,
            },
            Expr::HeldFor { expr, ticks } => Node::HeldFor {
                child: Box::new(Node::build(expr, table)?),
                ticks: *ticks,
                run_before: 0,
            },
            Expr::OnceWithin { expr, ticks } => Node::OnceWithin {
                child: Box::new(Node::build(expr, table)?),
                ticks: *ticks,
                last_true_step: None,
            },
            Expr::Became(e) => Node::Became {
                child: Box::new(Node::build(e, table)?),
                last: None,
            },
            Expr::Initially(e) => Node::Initially {
                child: Box::new(Node::build(e, table)?),
                captured: None,
            },
            // monitor_form has eliminated these before Node::build runs
            Expr::Entails(..)
            | Expr::Iff(..)
            | Expr::Always(_)
            | Expr::Eventually(_)
            | Expr::Next(_) => unreachable!("monitor_form eliminates future forms"),
        })
    }

    fn eval(&mut self, frame: &Frame, step: usize, table: &SignalTable) -> Result<bool, EvalError> {
        match self {
            Node::Const(b) => Ok(*b),
            Node::Var(id) => frame_bool(frame, *id, step, table),
            Node::Cmp { lhs, op, rhs } => {
                let a = lhs.value(frame, step, table)?;
                let b = rhs.value(frame, step, table)?;
                eval::compare_values(&a, *op, &b)
            }
            Node::Not(e) => Ok(!e.eval(frame, step, table)?),
            Node::And(items) => {
                // Evaluate every child so temporal sub-monitors keep their
                // history consistent even after a short-circuitable false.
                let mut all = true;
                for e in items {
                    all &= e.eval(frame, step, table)?;
                }
                Ok(all)
            }
            Node::Or(items) => {
                let mut any = false;
                for e in items {
                    any |= e.eval(frame, step, table)?;
                }
                Ok(any)
            }
            Node::Implies(a, b) => {
                let av = a.eval(frame, step, table)?;
                let bv = b.eval(frame, step, table)?;
                Ok(!av || bv)
            }
            Node::Prev { child, last } => {
                let cur = child.eval(frame, step, table)?;
                let out = last.unwrap_or(false);
                *last = Some(cur);
                Ok(out)
            }
            Node::Once {
                child,
                seen_true_before,
            } => {
                let cur = child.eval(frame, step, table)?;
                let out = *seen_true_before;
                *seen_true_before |= cur;
                Ok(out)
            }
            Node::Historically {
                child,
                all_true_before,
            } => {
                let cur = child.eval(frame, step, table)?;
                let out = *all_true_before;
                *all_true_before &= cur;
                Ok(out)
            }
            Node::HeldFor {
                child,
                ticks,
                run_before,
            } => {
                let cur = child.eval(frame, step, table)?;
                let out = *ticks == 0 || *run_before >= *ticks;
                *run_before = if cur { run_before.saturating_add(1) } else { 0 };
                Ok(out)
            }
            Node::OnceWithin {
                child,
                ticks,
                last_true_step,
            } => {
                let cur = child.eval(frame, step, table)?;
                let step_u64 = step as u64;
                let out = last_true_step.is_some_and(|lt| step_u64.saturating_sub(lt) <= *ticks);
                if cur {
                    *last_true_step = Some(step_u64);
                }
                Ok(out)
            }
            Node::Became { child, last } => {
                let cur = child.eval(frame, step, table)?;
                let out = cur && !last.unwrap_or(true);
                *last = Some(cur);
                Ok(out)
            }
            Node::Initially { child, captured } => {
                let cur = child.eval(frame, step, table)?;
                if captured.is_none() {
                    *captured = Some(cur);
                }
                Ok(captured.expect("just set"))
            }
        }
    }

    fn reset(&mut self) {
        match self {
            Node::Const(_) | Node::Var(_) | Node::Cmp { .. } => {}
            Node::Not(e) => e.reset(),
            Node::And(items) | Node::Or(items) => {
                for e in items {
                    e.reset();
                }
            }
            Node::Implies(a, b) => {
                a.reset();
                b.reset();
            }
            Node::Prev { child, last } => {
                child.reset();
                *last = None;
            }
            Node::Once {
                child,
                seen_true_before,
            } => {
                child.reset();
                *seen_true_before = false;
            }
            Node::Historically {
                child,
                all_true_before,
            } => {
                child.reset();
                *all_true_before = true;
            }
            Node::HeldFor {
                child, run_before, ..
            } => {
                child.reset();
                *run_before = 0;
            }
            Node::OnceWithin {
                child,
                last_true_step,
                ..
            } => {
                child.reset();
                *last_true_step = None;
            }
            Node::Became { child, last } => {
                child.reset();
                *last = None;
            }
            Node::Initially { child, captured } => {
                child.reset();
                *captured = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_trace;
    use crate::parse;
    use crate::state::Trace;

    fn trace_of(bits: &[(&str, Vec<bool>)]) -> Trace {
        let n = bits[0].1.len();
        let mut t = Trace::with_tick_millis(1);
        for i in 0..n {
            let mut s = State::new();
            for (name, vals) in bits {
                s.set(*name, vals[i]);
            }
            t.push(s);
        }
        t
    }

    fn monitor_run(src: &str, t: &Trace) -> Vec<bool> {
        let mut m = CompiledMonitor::compile(&parse(src).unwrap()).unwrap();
        t.iter().map(|s| m.observe_state(s).unwrap()).collect()
    }

    #[test]
    fn matches_reference_on_past_only_formulas() {
        let t = trace_of(&[
            ("p", vec![true, false, true, true, false, true]),
            ("q", vec![false, false, true, false, true, true]),
        ]);
        for src in [
            "prev(p)",
            "once(p && q)",
            "historically(p || q)",
            "held_for(p, 2ticks)",
            "once_within(q, 3ticks)",
            "became(p)",
            "initially(p) -> q",
            "prev(prev(p)) && !q",
        ] {
            let reference = eval_trace(&parse(src).unwrap(), &t).unwrap();
            assert_eq!(monitor_run(src, &t), reference, "mismatch for {src}");
        }
    }

    #[test]
    fn always_uses_violation_semantics() {
        let t = trace_of(&[("p", vec![true, false, true])]);
        // reference `always` is suffix-true; the monitor flags per-state.
        assert_eq!(monitor_run("always(p)", &t), vec![true, false, true]);
    }

    #[test]
    fn entails_uses_per_state_semantics() {
        let t = trace_of(&[("p", vec![true, true]), ("q", vec![true, false])]);
        assert_eq!(monitor_run("p => q", &t), vec![true, false]);
    }

    #[test]
    fn iff_monitors_agreement() {
        let t = trace_of(&[("p", vec![true, false]), ("q", vec![true, true])]);
        assert_eq!(monitor_run("p <-> q", &t), vec![true, false]);
    }

    #[test]
    fn rejects_future_operators() {
        assert!(matches!(
            CompiledMonitor::compile(&parse("eventually(p)").unwrap()),
            Err(EvalError::FutureOperator { .. })
        ));
        assert!(matches!(
            CompiledMonitor::compile(&parse("next(p)").unwrap()),
            Err(EvalError::FutureOperator { .. })
        ));
    }

    #[test]
    fn compile_in_rejects_unknown_signals() {
        let table = SignalTable::builder().finish();
        assert_eq!(
            CompiledMonitor::compile_in(&parse("p").unwrap(), &table).unwrap_err(),
            EvalError::UnknownSignal { name: "p".into() }
        );
        let mut b = SignalTable::builder();
        b.real("x");
        assert!(matches!(
            CompiledMonitor::compile_in(&parse("x < missing").unwrap(), &b.finish()),
            Err(EvalError::UnknownSignal { name }) if name == "missing"
        ));
    }

    #[test]
    fn infer_table_assigns_kinds_by_position() {
        let e = parse("p && x < 2.0 && cmd == 'STOP'").unwrap();
        let t = infer_table(&e);
        assert_eq!(t.kind(t.id("p").unwrap()), SignalKind::Bool);
        assert_eq!(t.kind(t.id("x").unwrap()), SignalKind::Real);
        assert_eq!(t.kind(t.id("cmd").unwrap()), SignalKind::Sym);
    }

    #[test]
    fn comparisons_resolve_against_interned_symbols() {
        let mut b = SignalTable::builder();
        let cmd = b.sym("cmd");
        let table = b.finish();
        let mut m = CompiledMonitor::compile_in(&parse("cmd == 'STOP'").unwrap(), &table).unwrap();
        let mut f = table.frame();
        f.set(cmd, Value::sym("STOP"));
        assert!(m.observe(&f).unwrap());
        f.set(cmd, Value::sym("GO"));
        assert!(!m.observe(&f).unwrap());
    }

    #[test]
    fn short_circuit_does_not_desync_history() {
        // The `prev(q)` inside the And must track q even while p is false.
        let t = trace_of(&[
            ("p", vec![false, false, true]),
            ("q", vec![true, false, false]),
        ]);
        assert_eq!(monitor_run("p && prev(q)", &t), vec![false, false, false]);
        let t2 = trace_of(&[
            ("p", vec![false, true, true]),
            ("q", vec![true, true, false]),
        ]);
        assert_eq!(monitor_run("p && prev(q)", &t2), vec![false, true, true]);
    }

    #[test]
    fn reset_restores_initial_behaviour() {
        let mut m = CompiledMonitor::compile(&parse("prev(p)").unwrap()).unwrap();
        let s_true = State::new().with_bool("p", true);
        assert!(!m.observe_state(&s_true).unwrap());
        assert!(m.observe_state(&s_true).unwrap());
        m.reset();
        assert_eq!(m.steps_observed(), 0);
        assert!(!m.observe_state(&s_true).unwrap());
    }

    #[test]
    fn missing_and_mistyped_signals_error_by_name() {
        let mut m = CompiledMonitor::compile(&parse("p").unwrap()).unwrap();
        assert_eq!(
            m.observe(&m.table().clone().frame()).unwrap_err(),
            EvalError::MissingVar {
                name: "p".into(),
                step: 0
            }
        );
        let mut m2 = CompiledMonitor::compile(&parse("p || q").unwrap()).unwrap();
        let s = State::new().with_int("p", 3).with_bool("q", true);
        assert!(matches!(
            m2.observe_state(&s),
            Err(EvalError::NotBoolean { name, found: "int" }) if name == "p"
        ));
    }
}
