//! Incremental (per-tick) evaluation for run-time goal monitoring.
//!
//! A [`CompiledMonitor`] consumes one [`Frame`] per tick and reports the
//! goal's *current* truth in O(#subformulas) time and O(#subformulas)
//! memory, independent of trace length. This is the engine behind the
//! thesis's run-time safety-goal monitors.
//!
//! Compilation is two-phase: [`CompiledMonitor::compile_in`] resolves
//! every variable reference against a shared [`SignalTable`] **once**, so
//! the per-tick loop is pure [`SignalId`]-indexed slot access — no string
//! lookups, no allocation. [`CompiledMonitor::compile`] is the
//! table-less convenience for tests and goal authoring: it infers a
//! private table from the formula's own variables and accepts name-keyed
//! [`State`] samples through [`CompiledMonitor::observe_state`].
//!
//! # Program / state split
//!
//! A compiled monitor is two parts:
//!
//! * a [`CompiledProgram`] — the immutable compiled form (expression
//!   nodes with resolved [`SignalId`] slots), shared across monitor
//!   instances via [`Arc`]. Compiling is the expensive step (parse-tree
//!   walk, name resolution); a program compiled once per sweep serves
//!   every cell.
//! * a small per-run state: one [`Cell`](CompiledProgram) per temporal
//!   subformula plus a step counter. [`CompiledProgram::instantiate`]
//!   materializes a fresh monitor in O(#temporal subformulas) — a single
//!   `memcpy` of the initial cell values — and
//!   [`CompiledMonitor::reset`] restores it in place without
//!   reallocating.
//!
//! Because the program knows, per subformula, whether any temporal state
//! lives below it, evaluation short-circuits `&&` / `||` / `->` over
//! *stateless* subtrees exactly like the reference evaluator
//! ([`crate::eval::eval_at`]) does, while still feeding every frame to
//! every stateful subformula so monitor history never desyncs. Verdicts
//! are identical to exhaustive evaluation on every error-free frame.
//!
//! # Suite-level fusion
//!
//! Monitors rarely run alone: a goal suite carries dozens of formulas
//! over a shared antecedent alphabet. [`FusedSuiteProgram`] compiles a
//! *whole suite* into one hash-consed DAG in which every structurally
//! identical subexpression — stateless atoms and temporal subtrees
//! alike, since all monitors of a suite observe the same frame stream —
//! is a single node evaluated once per tick ([`FusedSuite::observe`]:
//! one forward pass over the topologically-ordered nodes into a value
//! slab, one slab read per monitor verdict). Fused verdicts are
//! property-tested identical to independent per-monitor evaluation.
//!
//! # Monitor semantics
//!
//! Run-time monitors cannot see the future, so the future-directed forms are
//! reinterpreted with *violation semantics* (see [`monitor_form`]):
//!
//! * `always(p)` monitors `p` — a violation is reported at exactly the
//!   states where `p` is false;
//! * `p => q` (all-states entailment) monitors `p -> q` per state;
//! * `p <-> q` monitors per-state agreement;
//! * `eventually`/`next` are rejected ([`EvalError::FutureOperator`]) —
//!   the thesis notes goals containing ♦ are not finitely violable.

use crate::error::EvalError;
use crate::eval;
use crate::expr::{CmpOp, Expr, Operand};
use crate::frame_batch::FrameBatch;
use crate::signal::{Frame, SignalId, SignalKind, SignalTable};
use crate::state::State;
use crate::value::Value;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

/// Rewrites an expression into its run-time-monitorable form.
///
/// `always(p)` becomes `p`, `p => q` becomes `p -> q`, `p <-> q` becomes
/// `(p -> q) && (q -> p)`; all past-time operators pass through unchanged.
///
/// # Errors
///
/// Returns [`EvalError::FutureOperator`] if the expression contains
/// `eventually` or `next`.
///
/// # Example
///
/// ```
/// use esafe_logic::{parse, incremental::monitor_form};
/// let e = parse("always(p => q)").unwrap();
/// assert_eq!(monitor_form(&e).unwrap().to_string(), "p -> q");
/// ```
pub fn monitor_form(expr: &Expr) -> Result<Expr, EvalError> {
    Ok(match expr {
        Expr::Const(_) | Expr::Var(_) | Expr::Cmp { .. } => expr.clone(),
        Expr::Not(e) => Expr::not(monitor_form(e)?),
        Expr::And(items) => Expr::And(
            items
                .iter()
                .map(monitor_form)
                .collect::<Result<Vec<_>, _>>()?,
        ),
        Expr::Or(items) => Expr::Or(
            items
                .iter()
                .map(monitor_form)
                .collect::<Result<Vec<_>, _>>()?,
        ),
        Expr::Implies(a, b) => Expr::implies(monitor_form(a)?, monitor_form(b)?),
        Expr::Entails(a, b) => Expr::implies(monitor_form(a)?, monitor_form(b)?),
        Expr::Iff(a, b) => {
            let (a, b) = (monitor_form(a)?, monitor_form(b)?);
            Expr::and(Expr::implies(a.clone(), b.clone()), Expr::implies(b, a))
        }
        Expr::Prev(e) => Expr::prev(monitor_form(e)?),
        Expr::Once(e) => Expr::once(monitor_form(e)?),
        Expr::Historically(e) => Expr::historically(monitor_form(e)?),
        Expr::HeldFor { expr, ticks } => Expr::held_for(monitor_form(expr)?, *ticks),
        Expr::OnceWithin { expr, ticks } => Expr::once_within(monitor_form(expr)?, *ticks),
        Expr::Became(e) => Expr::became(monitor_form(e)?),
        Expr::Initially(e) => Expr::initially(monitor_form(e)?),
        Expr::Always(e) => monitor_form(e)?,
        Expr::Eventually(_) => {
            return Err(EvalError::FutureOperator {
                operator: "eventually",
            })
        }
        Expr::Next(_) => return Err(EvalError::FutureOperator { operator: "next" }),
    })
}

/// Infers a private [`SignalTable`] from a formula's own variable
/// references: boolean atoms become [`SignalKind::Bool`], comparison
/// operands become [`SignalKind::Sym`] when compared against a symbol
/// literal and [`SignalKind::Real`] otherwise. Backs the table-less
/// [`CompiledMonitor::compile`] path.
pub fn infer_table(expr: &Expr) -> Arc<SignalTable> {
    let mut kinds: BTreeMap<String, SignalKind> = BTreeMap::new();
    expr.visit(&mut |e| match e {
        Expr::Var(v) => {
            kinds.entry(v.clone()).or_insert(SignalKind::Bool);
        }
        Expr::Cmp { lhs, op: _, rhs } => {
            let sym_literal = matches!(lhs, Operand::Lit(Value::Sym(_)))
                || matches!(rhs, Operand::Lit(Value::Sym(_)));
            for operand in [lhs, rhs] {
                if let Operand::Var(v) = operand {
                    let kind = if sym_literal {
                        SignalKind::Sym
                    } else {
                        SignalKind::Real
                    };
                    kinds.entry(v.clone()).or_insert(kind);
                }
            }
        }
        _ => {}
    });
    let mut builder = SignalTable::builder();
    for (name, kind) in kinds {
        builder.signal(&name, kind);
    }
    builder.finish()
}

/// A compiled incremental monitor for one goal expression.
///
/// # Example
///
/// ```
/// use esafe_logic::{parse, CompiledMonitor, SignalTable};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SignalTable::builder();
/// let p = b.bool("p");
/// let q = b.bool("q");
/// let table = b.finish();
///
/// let mut m = CompiledMonitor::compile_in(&parse("always(p || prev(q))")?, &table)?;
/// let mut frame = table.frame();
/// frame.set(p, false);
/// frame.set(q, true);
/// let t1 = m.observe(&frame)?;
/// frame.set(q, false);
/// let t2 = m.observe(&frame)?;
/// assert!(!t1); // no previous state yet, p false
/// assert!(t2);  // q held in the previous state
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CompiledMonitor {
    program: Arc<CompiledProgram>,
    cells: Vec<Cell>,
    step: u64,
}

impl CompiledMonitor {
    /// Compiles an expression against a shared signal table, resolving
    /// every variable reference to a [`SignalId`] once.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::FutureOperator`] if the expression contains
    /// `eventually` or `next`, and [`EvalError::UnknownSignal`] if it
    /// references a name outside the table.
    pub fn compile_in(expr: &Expr, table: &Arc<SignalTable>) -> Result<Self, EvalError> {
        Ok(Arc::new(CompiledProgram::compile(expr, table)?).instantiate())
    }

    /// Compiles an expression over a private table inferred from its own
    /// variables (see [`infer_table`]) — the goal-authoring convenience
    /// used with [`CompiledMonitor::observe_state`].
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::FutureOperator`] if the expression contains
    /// `eventually` or `next`.
    pub fn compile(expr: &Expr) -> Result<Self, EvalError> {
        Self::compile_in(expr, &infer_table(expr))
    }

    /// The signal table the monitor's variable references resolve into.
    pub fn table(&self) -> &Arc<SignalTable> {
        &self.program.table
    }

    /// The immutable compiled program this monitor executes. Sharing it
    /// via [`CompiledProgram::instantiate`] yields further monitors
    /// without recompiling.
    pub fn program(&self) -> &Arc<CompiledProgram> {
        &self.program
    }

    /// Feeds the next frame and returns the goal's current truth.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] if a referenced signal is unset or mistyped
    /// in `frame`. The monitor's history is still advanced consistently on
    /// error-free subtrees, so callers should treat an error as fatal for
    /// this monitor instance.
    ///
    /// # Panics
    ///
    /// Panics if `frame` indexes a different table than the monitor was
    /// compiled against.
    pub fn observe(&mut self, frame: &Frame) -> Result<bool, EvalError> {
        assert!(
            Arc::ptr_eq(frame.table(), &self.program.table),
            "frame and monitor must share one signal table"
        );
        self.observe_trusted(frame)
    }

    /// [`CompiledMonitor::observe`] minus the release-mode table
    /// identity check — for batch callers (a [`MonitorSuite`]) that
    /// already verified the frame indexes this monitor's table once for
    /// many monitors. Identity is still `debug_assert`ed.
    ///
    /// [`MonitorSuite`]: ../../esafe_monitor/struct.MonitorSuite.html
    ///
    /// # Errors
    ///
    /// See [`CompiledMonitor::observe`].
    pub fn observe_trusted(&mut self, frame: &Frame) -> Result<bool, EvalError> {
        debug_assert!(
            Arc::ptr_eq(frame.table(), &self.program.table),
            "frame and monitor must share one signal table"
        );
        let step = usize::try_from(self.step).unwrap_or(usize::MAX);
        let v = self
            .program
            .root
            .node
            .eval(frame, step, &self.program.table, &mut self.cells)?;
        self.step += 1;
        Ok(v)
    }

    /// Feeds a name-keyed [`State`] sample by converting it to a frame
    /// over the monitor's table first (names the table does not know are
    /// ignored; referenced-but-absent names surface as
    /// [`EvalError::MissingVar`]). This is the seed-compatible slow path
    /// for tests and doctests — production loops hold [`Frame`]s.
    ///
    /// # Errors
    ///
    /// See [`CompiledMonitor::observe`].
    pub fn observe_state(&mut self, state: &State) -> Result<bool, EvalError> {
        let frame = self.program.table.frame_from_state_lossy(state);
        self.observe(&frame)
    }

    /// Number of samples observed so far.
    pub fn steps_observed(&self) -> u64 {
        self.step
    }

    /// Clears all history, returning the monitor to its initial state —
    /// a `memcpy` of the program's initial cell values, no allocation.
    pub fn reset(&mut self) {
        self.cells.copy_from_slice(&self.program.init_cells);
        self.step = 0;
    }
}

/// The immutable compiled form of one goal expression: the
/// [`monitor_form`]-rewritten node tree with every variable reference
/// resolved to a [`SignalId`] slot, plus the initial value of each
/// temporal state cell.
///
/// A program carries no run state, so one `Arc<CompiledProgram>` is
/// shared by every monitor instance evaluating the same goal — across
/// sweep cells, threads, and suite instantiations. See the
/// [module docs](self).
#[derive(Debug)]
pub struct CompiledProgram {
    table: Arc<SignalTable>,
    root: PChild,
    init_cells: Vec<Cell>,
}

impl CompiledProgram {
    /// Compiles an expression against a shared signal table.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::FutureOperator`] if the expression contains
    /// `eventually` or `next`, and [`EvalError::UnknownSignal`] if it
    /// references a name outside the table.
    pub fn compile(expr: &Expr, table: &Arc<SignalTable>) -> Result<Self, EvalError> {
        let rewritten = monitor_form(expr)?;
        let mut init_cells = Vec::new();
        let root = PChild::build(&rewritten, table, &mut init_cells)?;
        Ok(CompiledProgram {
            table: Arc::clone(table),
            root,
            init_cells,
        })
    }

    /// The signal table the program's variable references resolve into.
    pub fn table(&self) -> &Arc<SignalTable> {
        &self.table
    }

    /// Number of temporal state cells a monitor instance carries.
    pub fn state_cells(&self) -> usize {
        self.init_cells.len()
    }

    /// Materializes a fresh monitor over this program: one `Arc` clone
    /// plus a `memcpy` of the initial cell values — no parsing, no name
    /// resolution, no tree allocation.
    pub fn instantiate(self: &Arc<Self>) -> CompiledMonitor {
        CompiledMonitor {
            cells: self.init_cells.clone(),
            program: Arc::clone(self),
            step: 0,
        }
    }
}

/// A comparison operand with its variable reference resolved.
#[derive(Debug, Clone, Copy)]
enum Slot {
    Sig(SignalId),
    Lit(Value),
}

impl Slot {
    fn resolve(op: &Operand, table: &SignalTable) -> Result<Slot, EvalError> {
        Ok(match op {
            Operand::Var(name) => Slot::Sig(resolve(name, table)?),
            Operand::Lit(v) => Slot::Lit(*v),
        })
    }

    #[inline]
    fn value(&self, frame: &Frame, step: usize, table: &SignalTable) -> Result<Value, EvalError> {
        match self {
            Slot::Lit(v) => Ok(*v),
            Slot::Sig(id) => frame.get(*id).ok_or_else(|| EvalError::MissingVar {
                name: table.name(*id).to_owned(),
                step,
            }),
        }
    }

    /// [`Slot::value`] over one lane of a [`LaneSource`] — identical
    /// semantics, storage-generic.
    #[inline]
    fn value_in<S: LaneSource + ?Sized>(
        &self,
        src: &S,
        lane: usize,
        step: usize,
        table: &SignalTable,
    ) -> Result<Value, EvalError> {
        match self {
            Slot::Lit(v) => Ok(*v),
            Slot::Sig(id) => src.get(*id, lane).ok_or_else(|| EvalError::MissingVar {
                name: table.name(*id).to_owned(),
                step,
            }),
        }
    }

    /// Resolves this operand against a lane-major source, or `None` when
    /// the source has no rows (per-lane frames).
    #[inline]
    fn operand_row<'a, S: LaneSource + ?Sized>(&self, src: &'a S) -> Option<LaneOperand<'a>> {
        match self {
            Slot::Lit(v) => Some(LaneOperand::Lit(*v)),
            Slot::Sig(id) => src.row(*id).map(LaneOperand::Row),
        }
    }
}

/// One tick's per-lane signal samples, abstracted over storage: a
/// `&[Frame]` slice (one frame per lane) or a lane-major [`FrameBatch`]
/// slab read in place. Only `Var` and `Cmp` nodes touch the source, so
/// this is the entire surface batched evaluation needs.
trait LaneSource {
    /// The value of `id` in `lane`, or `None` if unset.
    fn get(&self, id: SignalId, lane: usize) -> Option<Value>;
    /// Whether `lane`'s sample indexes `table` (debug check only).
    fn shares_table(&self, lane: usize, table: &Arc<SignalTable>) -> bool;
    /// The contiguous lane-major row for `id`, when the storage has one
    /// (`Some` for a [`FrameBatch`] slab, `None` for per-lane frames).
    /// `Var`/`Cmp` nodes sweep rows in tight slice loops and only fall
    /// back to per-lane [`get`](LaneSource::get) when a row is absent or
    /// holds an unset/mistyped slot that needs exact error attribution.
    #[inline]
    fn row(&self, _id: SignalId) -> Option<&[Option<Value>]> {
        None
    }
}

impl LaneSource for [Frame] {
    #[inline]
    fn get(&self, id: SignalId, lane: usize) -> Option<Value> {
        self[lane].get(id)
    }

    fn shares_table(&self, lane: usize, table: &Arc<SignalTable>) -> bool {
        Arc::ptr_eq(self[lane].table(), table)
    }
}

impl LaneSource for FrameBatch {
    #[inline]
    fn get(&self, id: SignalId, lane: usize) -> Option<Value> {
        FrameBatch::get(self, id, lane)
    }

    fn shares_table(&self, _lane: usize, table: &Arc<SignalTable>) -> bool {
        Arc::ptr_eq(self.table(), table)
    }

    #[inline]
    fn row(&self, id: SignalId) -> Option<&[Option<Value>]> {
        Some(FrameBatch::row(self, id))
    }
}

/// A [`Cmp`](FusedNode::Cmp) operand resolved for row-sweep evaluation:
/// a signal's lane-major row, or a literal broadcast to every lane.
enum LaneOperand<'a> {
    Row(&'a [Option<Value>]),
    Lit(Value),
}

impl LaneOperand<'_> {
    #[inline]
    fn get(&self, lane: usize) -> Option<Value> {
        match self {
            LaneOperand::Row(r) => r[lane],
            LaneOperand::Lit(v) => Some(*v),
        }
    }
}

/// Sweeps an ordering comparison of one signal row against a fixed
/// numeric bound (`f` closes over the bound and the operator). Returns
/// `false` when any lane's slot is unset or non-numeric, so the caller
/// reruns the per-lane path for exact error attribution.
#[inline]
fn num_rows(out: &mut [bool], row: &[Option<Value>], f: impl Fn(f64) -> bool) -> bool {
    let mut ok = true;
    for (out, x) in out.iter_mut().zip(row) {
        match x {
            Some(Value::Real(x)) => *out = f(*x),
            Some(Value::Int(i)) => *out = f(*i as f64),
            _ => ok = false,
        }
    }
    ok
}

/// Sweeps `==`/`!=` of one signal row against a fixed numeric literal,
/// mirroring [`Value::num_eq`]: numeric slots compare as reals, and a
/// non-numeric slot never equals a numeric literal. Returns `false` on
/// any unset slot.
#[inline]
fn num_eq_rows(out: &mut [bool], row: &[Option<Value>], y: f64, want_eq: bool) -> bool {
    let mut ok = true;
    for (out, x) in out.iter_mut().zip(row) {
        *out = match x {
            Some(Value::Real(x)) => (*x == y) == want_eq,
            Some(Value::Int(i)) => (*i as f64 == y) == want_eq,
            Some(_) => !want_eq,
            None => {
                ok = false;
                false
            }
        };
    }
    ok
}

/// Sweeps `==`/`!=` of one signal row against a fixed symbol —
/// [`Value::num_eq`]'s variant-equality fallback, specialized: interned
/// symbols compare by id, and any non-symbol slot differs. Returns
/// `false` on any unset slot.
#[inline]
fn sym_eq_rows(out: &mut [bool], row: &[Option<Value>], s: crate::Sym, want_eq: bool) -> bool {
    let mut ok = true;
    for (out, x) in out.iter_mut().zip(row) {
        *out = match x {
            Some(Value::Sym(t)) => (*t == s) == want_eq,
            Some(_) => !want_eq,
            None => {
                ok = false;
                false
            }
        };
    }
    ok
}

/// [`sym_eq_rows`] for a fixed boolean literal.
#[inline]
fn bool_eq_rows(out: &mut [bool], row: &[Option<Value>], b: bool, want_eq: bool) -> bool {
    let mut ok = true;
    for (out, x) in out.iter_mut().zip(row) {
        *out = match x {
            Some(Value::Bool(t)) => (*t == b) == want_eq,
            Some(_) => !want_eq,
            None => {
                ok = false;
                false
            }
        };
    }
    ok
}

/// One [`Cmp`](FusedNode::Cmp) node swept across whole lane rows.
/// Signal-vs-literal dominates compiled suites (probed magnitudes
/// against thresholds, sources against symbols), so those shapes get
/// dedicated branch-light sweeps; anything else runs the generic
/// comparator lane by lane, still row-addressed. Returns `false` when
/// any lane's slot is unset, mistyped, or incomparable — callers then
/// rerun the per-lane path, which attributes the error exactly.
fn cmp_rows(out: &mut [bool], a: &LaneOperand, op: CmpOp, b: &LaneOperand) -> bool {
    match (a, b) {
        (LaneOperand::Row(r), LaneOperand::Lit(lit)) => {
            if let Some(y) = lit.as_real() {
                match op {
                    CmpOp::Eq => num_eq_rows(out, r, y, true),
                    CmpOp::Ne => num_eq_rows(out, r, y, false),
                    CmpOp::Lt => num_rows(out, r, |x| x < y),
                    CmpOp::Le => num_rows(out, r, |x| x <= y),
                    CmpOp::Gt => num_rows(out, r, |x| x > y),
                    CmpOp::Ge => num_rows(out, r, |x| x >= y),
                }
            } else {
                match (op, lit) {
                    (CmpOp::Eq, Value::Sym(s)) => sym_eq_rows(out, r, *s, true),
                    (CmpOp::Ne, Value::Sym(s)) => sym_eq_rows(out, r, *s, false),
                    (CmpOp::Eq, Value::Bool(v)) => bool_eq_rows(out, r, *v, true),
                    (CmpOp::Ne, Value::Bool(v)) => bool_eq_rows(out, r, *v, false),
                    // Ordering against a non-numeric literal is
                    // incomparable in every lane — let the per-lane
                    // path raise it.
                    _ => false,
                }
            }
        }
        _ => {
            let mut ok = true;
            for (l, out) in out.iter_mut().enumerate() {
                match (a.get(l), b.get(l)) {
                    (Some(x), Some(y)) => match eval::compare_values(&x, op, &y) {
                        Ok(v) => *out = v,
                        Err(_) => ok = false,
                    },
                    _ => ok = false,
                }
            }
            ok
        }
    }
}

fn resolve(name: &str, table: &SignalTable) -> Result<SignalId, EvalError> {
    table.id(name).ok_or_else(|| EvalError::UnknownSignal {
        name: name.to_owned(),
    })
}

#[inline]
fn frame_bool(
    frame: &Frame,
    id: SignalId,
    step: usize,
    table: &SignalTable,
) -> Result<bool, EvalError> {
    match frame.get(id) {
        None => Err(EvalError::MissingVar {
            name: table.name(id).to_owned(),
            step,
        }),
        Some(Value::Bool(b)) => Ok(b),
        Some(other) => Err(EvalError::NotBoolean {
            name: table.name(id).to_owned(),
            found: other.type_name(),
        }),
    }
}

/// [`frame_bool`] over one lane of a [`LaneSource`] — identical
/// semantics, storage-generic.
#[inline]
fn source_bool<S: LaneSource + ?Sized>(
    src: &S,
    id: SignalId,
    lane: usize,
    step: usize,
    table: &SignalTable,
) -> Result<bool, EvalError> {
    match src.get(id, lane) {
        None => Err(EvalError::MissingVar {
            name: table.name(id).to_owned(),
            step,
        }),
        Some(Value::Bool(b)) => Ok(b),
        Some(other) => Err(EvalError::NotBoolean {
            name: table.name(id).to_owned(),
            found: other.type_name(),
        }),
    }
}

/// The per-lane [`Var`](FusedNode::Var) evaluation with exact error
/// semantics, skipping retired lanes. Per-frame sources always take
/// this path; the row fast path falls back here when any slot in the
/// row is unset or mistyped, so the error names the right lane/step.
fn var_lanes<S: LaneSource + ?Sized>(
    out: &mut [bool],
    src: &S,
    id: SignalId,
    active: &[bool],
    steps: &[u64],
    table: &SignalTable,
) -> Result<(), (usize, EvalError)> {
    for (l, out) in out.iter_mut().enumerate() {
        if active[l] {
            let step = usize::try_from(steps[l]).unwrap_or(usize::MAX);
            *out = source_bool(src, id, l, step, table).map_err(|e| (l, e))?;
        }
    }
    Ok(())
}

/// The per-lane [`Cmp`](FusedNode::Cmp) evaluation — the exact-error
/// counterpart of [`var_lanes`] for comparisons.
#[allow(clippy::too_many_arguments)]
fn cmp_lanes<S: LaneSource + ?Sized>(
    out: &mut [bool],
    src: &S,
    lhs: &Slot,
    op: CmpOp,
    rhs: &Slot,
    active: &[bool],
    steps: &[u64],
    table: &SignalTable,
) -> Result<(), (usize, EvalError)> {
    for (l, out) in out.iter_mut().enumerate() {
        if active[l] {
            let step = usize::try_from(steps[l]).unwrap_or(usize::MAX);
            let a = lhs.value_in(src, l, step, table).map_err(|e| (l, e))?;
            let b = rhs.value_in(src, l, step, table).map_err(|e| (l, e))?;
            *out = eval::compare_values(&a, op, &b).map_err(|e| (l, e))?;
        }
    }
    Ok(())
}

/// One temporal subformula's run state. Each variant's "empty history"
/// value is recorded in [`CompiledProgram::init_cells`] at compile time;
/// reset and instantiation are slice copies.
#[derive(Debug, Clone, Copy)]
enum Cell {
    /// `prev` / `became`: the child's value at the previous step.
    Last(Option<bool>),
    /// `once`: whether the child held at any strictly-earlier step.
    Seen(bool),
    /// `historically`: whether the child held at every earlier step.
    All(bool),
    /// `held_for`: length of the child's current true-run before now.
    Run(u64),
    /// `once_within`: the last step at which the child held.
    LastTrue(Option<u64>),
    /// `initially`: the child's value at the first step, once seen.
    Captured(Option<bool>),
}

/// The single-step semantics of each temporal operator: advance the
/// cell with the child's current value and return the operator's output
/// at this step. **The one place these semantics live** — shared by the
/// per-monitor evaluator ([`PNode::eval`]) and the fused suite pass
/// ([`FusedSuite::observe`]), so the two engines cannot drift.
///
/// Each method panics (`unreachable!`) on a cell variant other than the
/// operator's own; variants are fixed at compile time.
impl Cell {
    /// `prev(p)`: the child's value at the previous step.
    #[inline]
    fn step_prev(&mut self, cur: bool) -> bool {
        let Cell::Last(last) = self else {
            unreachable!("cell kind fixed at compile time");
        };
        let out = last.unwrap_or(false);
        *last = Some(cur);
        out
    }

    /// `once(p)`: whether the child held at any strictly-earlier step.
    #[inline]
    fn step_once(&mut self, cur: bool) -> bool {
        let Cell::Seen(seen_true_before) = self else {
            unreachable!("cell kind fixed at compile time");
        };
        let out = *seen_true_before;
        *seen_true_before |= cur;
        out
    }

    /// `historically(p)`: whether the child held at every earlier step.
    #[inline]
    fn step_historically(&mut self, cur: bool) -> bool {
        let Cell::All(all_true_before) = self else {
            unreachable!("cell kind fixed at compile time");
        };
        let out = *all_true_before;
        *all_true_before &= cur;
        out
    }

    /// `held_for(p, ticks)`: whether the child's current true-run
    /// before now spans at least `ticks` steps.
    #[inline]
    fn step_held_for(&mut self, cur: bool, ticks: u64) -> bool {
        let Cell::Run(run_before) = self else {
            unreachable!("cell kind fixed at compile time");
        };
        let out = ticks == 0 || *run_before >= ticks;
        *run_before = if cur { run_before.saturating_add(1) } else { 0 };
        out
    }

    /// `once_within(p, ticks)`: whether the child held within the
    /// previous `ticks` steps (inclusive of now's history).
    #[inline]
    fn step_once_within(&mut self, cur: bool, step: usize, ticks: u64) -> bool {
        let Cell::LastTrue(last_true_step) = self else {
            unreachable!("cell kind fixed at compile time");
        };
        let step_u64 = step as u64;
        let out = last_true_step.is_some_and(|lt| step_u64.saturating_sub(lt) <= ticks);
        if cur {
            *last_true_step = Some(step_u64);
        }
        out
    }

    /// `became(p)` (`@p ≡ ●¬p ∧ p`): a false→true edge at this step.
    #[inline]
    fn step_became(&mut self, cur: bool) -> bool {
        let Cell::Last(last) = self else {
            unreachable!("cell kind fixed at compile time");
        };
        let out = cur && !last.unwrap_or(true);
        *last = Some(cur);
        out
    }

    /// `initially(p)` (`S0 ⊨ p`): the child's value at the first step.
    #[inline]
    fn step_initially(&mut self, cur: bool) -> bool {
        let Cell::Captured(captured) = self else {
            unreachable!("cell kind fixed at compile time");
        };
        if captured.is_none() {
            *captured = Some(cur);
        }
        captured.expect("just set")
    }
}

/// A compiled subformula plus whether any temporal state lives below it.
/// Stateless subtrees may be skipped once a connective's result is
/// decided; stateful ones must see every frame.
#[derive(Debug)]
struct PChild {
    node: PNode,
    has_state: bool,
}

impl PChild {
    fn build(expr: &Expr, table: &SignalTable, cells: &mut Vec<Cell>) -> Result<Self, EvalError> {
        let before = cells.len();
        let node = PNode::build(expr, table, cells)?;
        Ok(PChild {
            node,
            has_state: cells.len() > before,
        })
    }
}

/// The immutable node tree of a [`CompiledProgram`]: expression shape
/// with resolved [`Slot`]s; temporal operators reference their run state
/// by cell index instead of holding it inline.
#[derive(Debug)]
enum PNode {
    Const(bool),
    Var(SignalId),
    Cmp {
        lhs: Slot,
        op: CmpOp,
        rhs: Slot,
    },
    Not(Box<PChild>),
    And(Vec<PChild>),
    Or(Vec<PChild>),
    Implies(Box<PChild>, Box<PChild>),
    Prev {
        child: Box<PChild>,
        cell: usize,
    },
    Once {
        child: Box<PChild>,
        cell: usize,
    },
    Historically {
        child: Box<PChild>,
        cell: usize,
    },
    HeldFor {
        child: Box<PChild>,
        ticks: u64,
        cell: usize,
    },
    OnceWithin {
        child: Box<PChild>,
        ticks: u64,
        cell: usize,
    },
    Became {
        child: Box<PChild>,
        cell: usize,
    },
    Initially {
        child: Box<PChild>,
        cell: usize,
    },
}

/// Allocates a state cell with its empty-history value, returning its
/// index. The temporal node's child is built *first* (recursion in
/// `PNode::build`), so child cells precede parent cells — irrelevant to
/// semantics, but deterministic.
fn alloc_cell(cells: &mut Vec<Cell>, init: Cell) -> usize {
    cells.push(init);
    cells.len() - 1
}

impl PNode {
    fn build(expr: &Expr, table: &SignalTable, cells: &mut Vec<Cell>) -> Result<PNode, EvalError> {
        let child = |e: &Expr, cells: &mut Vec<Cell>| -> Result<Box<PChild>, EvalError> {
            Ok(Box::new(PChild::build(e, table, cells)?))
        };
        Ok(match expr {
            Expr::Const(b) => PNode::Const(*b),
            Expr::Var(v) => PNode::Var(resolve(v, table)?),
            Expr::Cmp { lhs, op, rhs } => PNode::Cmp {
                lhs: Slot::resolve(lhs, table)?,
                op: *op,
                rhs: Slot::resolve(rhs, table)?,
            },
            Expr::Not(e) => PNode::Not(child(e, cells)?),
            Expr::And(items) => PNode::And(
                items
                    .iter()
                    .map(|e| PChild::build(e, table, cells))
                    .collect::<Result<_, _>>()?,
            ),
            Expr::Or(items) => PNode::Or(
                items
                    .iter()
                    .map(|e| PChild::build(e, table, cells))
                    .collect::<Result<_, _>>()?,
            ),
            Expr::Implies(a, b) => PNode::Implies(child(a, cells)?, child(b, cells)?),
            Expr::Prev(e) => PNode::Prev {
                child: child(e, cells)?,
                cell: alloc_cell(cells, Cell::Last(None)),
            },
            Expr::Once(e) => PNode::Once {
                child: child(e, cells)?,
                cell: alloc_cell(cells, Cell::Seen(false)),
            },
            Expr::Historically(e) => PNode::Historically {
                child: child(e, cells)?,
                cell: alloc_cell(cells, Cell::All(true)),
            },
            Expr::HeldFor { expr, ticks } => PNode::HeldFor {
                child: child(expr, cells)?,
                ticks: *ticks,
                cell: alloc_cell(cells, Cell::Run(0)),
            },
            Expr::OnceWithin { expr, ticks } => PNode::OnceWithin {
                child: child(expr, cells)?,
                ticks: *ticks,
                cell: alloc_cell(cells, Cell::LastTrue(None)),
            },
            Expr::Became(e) => PNode::Became {
                child: child(e, cells)?,
                cell: alloc_cell(cells, Cell::Last(None)),
            },
            Expr::Initially(e) => PNode::Initially {
                child: child(e, cells)?,
                cell: alloc_cell(cells, Cell::Captured(None)),
            },
            // monitor_form has eliminated these before PNode::build runs
            Expr::Entails(..)
            | Expr::Iff(..)
            | Expr::Always(_)
            | Expr::Eventually(_)
            | Expr::Next(_) => unreachable!("monitor_form eliminates future forms"),
        })
    }

    fn eval(
        &self,
        frame: &Frame,
        step: usize,
        table: &SignalTable,
        cells: &mut [Cell],
    ) -> Result<bool, EvalError> {
        match self {
            PNode::Const(b) => Ok(*b),
            PNode::Var(id) => frame_bool(frame, *id, step, table),
            PNode::Cmp { lhs, op, rhs } => {
                let a = lhs.value(frame, step, table)?;
                let b = rhs.value(frame, step, table)?;
                eval::compare_values(&a, *op, &b)
            }
            PNode::Not(e) => Ok(!e.node.eval(frame, step, table, cells)?),
            PNode::And(items) => {
                // Skip stateless children once the result is decided;
                // temporal sub-monitors still see every frame so their
                // history stays consistent.
                let mut all = true;
                for e in items {
                    if all || e.has_state {
                        all &= e.node.eval(frame, step, table, cells)?;
                    }
                }
                Ok(all)
            }
            PNode::Or(items) => {
                let mut any = false;
                for e in items {
                    if !any || e.has_state {
                        any |= e.node.eval(frame, step, table, cells)?;
                    }
                }
                Ok(any)
            }
            PNode::Implies(a, b) => {
                let av = a.node.eval(frame, step, table, cells)?;
                if av {
                    b.node.eval(frame, step, table, cells)
                } else {
                    if b.has_state {
                        b.node.eval(frame, step, table, cells)?;
                    }
                    Ok(true)
                }
            }
            PNode::Prev { child, cell } => {
                let cur = child.node.eval(frame, step, table, cells)?;
                Ok(cells[*cell].step_prev(cur))
            }
            PNode::Once { child, cell } => {
                let cur = child.node.eval(frame, step, table, cells)?;
                Ok(cells[*cell].step_once(cur))
            }
            PNode::Historically { child, cell } => {
                let cur = child.node.eval(frame, step, table, cells)?;
                Ok(cells[*cell].step_historically(cur))
            }
            PNode::HeldFor { child, ticks, cell } => {
                let cur = child.node.eval(frame, step, table, cells)?;
                Ok(cells[*cell].step_held_for(cur, *ticks))
            }
            PNode::OnceWithin { child, ticks, cell } => {
                let cur = child.node.eval(frame, step, table, cells)?;
                Ok(cells[*cell].step_once_within(cur, step, *ticks))
            }
            PNode::Became { child, cell } => {
                let cur = child.node.eval(frame, step, table, cells)?;
                Ok(cells[*cell].step_became(cur))
            }
            PNode::Initially { child, cell } => {
                let cur = child.node.eval(frame, step, table, cells)?;
                Ok(cells[*cell].step_initially(cur))
            }
        }
    }
}

/// An evaluation error raised by a fused suite, attributed to the first
/// monitor (by suite order) whose formula demanded the failing node.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedError {
    /// Index of the owning monitor within the fused suite's root order.
    pub monitor: usize,
    /// The underlying evaluation error.
    pub source: EvalError,
}

impl fmt::Display for FusedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fused monitor #{}: {}", self.monitor, self.source)
    }
}

impl std::error::Error for FusedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// The structural identity of one fused node — the hash-consing key.
///
/// Children are identified by their already-interned node indices, so two
/// subtrees hash equal exactly when they are structurally identical after
/// [`monitor_form`] rewriting and [`SignalId`] resolution. `Real`
/// literals compare by bit pattern (structural, not numeric, identity).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum NodeKey {
    Const(bool),
    Var(u32),
    Cmp(SlotKey, CmpOp, SlotKey),
    Not(u32),
    And(Vec<u32>),
    Or(Vec<u32>),
    Implies(u32, u32),
    Prev(u32),
    Once(u32),
    Historically(u32),
    HeldFor(u32, u64),
    OnceWithin(u32, u64),
    Became(u32),
    Initially(u32),
}

/// A hashable [`Slot`]: reals are keyed by bit pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum SlotKey {
    Sig(u32),
    Bool(bool),
    Int(i64),
    Real(u64),
    Sym(crate::value::Sym),
}

impl SlotKey {
    fn of(slot: Slot) -> SlotKey {
        match slot {
            Slot::Sig(id) => SlotKey::Sig(id.index() as u32),
            Slot::Lit(Value::Bool(b)) => SlotKey::Bool(b),
            Slot::Lit(Value::Int(i)) => SlotKey::Int(i),
            Slot::Lit(Value::Real(r)) => SlotKey::Real(r.to_bits()),
            Slot::Lit(Value::Sym(s)) => SlotKey::Sym(s),
        }
    }
}

/// One node of a [`FusedSuiteProgram`]: expression shape with resolved
/// [`Slot`]s, children referenced by slab index (always smaller than the
/// node's own index — the node vector is topologically ordered), and
/// temporal operators referencing their suite-level state cell.
#[derive(Debug)]
enum FusedNode {
    Const(bool),
    Var(SignalId),
    Cmp { lhs: Slot, op: CmpOp, rhs: Slot },
    Not(u32),
    And(Box<[u32]>),
    Or(Box<[u32]>),
    Implies(u32, u32),
    Prev { child: u32, cell: u32 },
    Once { child: u32, cell: u32 },
    Historically { child: u32, cell: u32 },
    HeldFor { child: u32, ticks: u64, cell: u32 },
    OnceWithin { child: u32, ticks: u64, cell: u32 },
    Became { child: u32, cell: u32 },
    Initially { child: u32, cell: u32 },
}

/// The compile-once fused form of a whole goal suite: every monitor's
/// [`monitor_form`]-rewritten expression merged into **one** deduplicated
/// DAG over resolved [`SignalId`]s.
///
/// Compilation hash-conses every subexpression (`NodeKey`, the
/// structural identity over resolved ids and literal bit patterns): a
/// subformula shared by several monitors — the vehicle suite's
/// `probe.forward`, `probe.auto_accel_source == 'ACC'`, … antecedents —
/// becomes one node, evaluated **once per tick** into a shared value
/// slab. Temporal subformulas dedup too: every monitor in a suite
/// observes the same frame stream, so structurally identical temporal
/// subtrees carry identical history and can share one state cell. (This
/// is the suite-level analogue of what [`CompiledProgram`] does for one
/// monitor, and verdicts are identical — property-tested against
/// per-monitor evaluation on random suites and traces.)
///
/// Evaluation is a single forward pass over the topologically-ordered
/// node vector — no recursion, no pointer chasing, no per-monitor
/// re-walking — after which each monitor's verdict is one slab read at
/// its root index.
///
/// Like [`CompiledProgram`], a fused program is immutable and carries no
/// run state: one `Arc<FusedSuiteProgram>` is shared by every
/// [`FusedSuite`] instance across sweep cells and threads.
///
/// # Example
///
/// ```
/// use esafe_logic::{parse, FusedSuiteProgram, SignalTable};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SignalTable::builder();
/// let p = b.bool("p");
/// let q = b.bool("q");
/// let table = b.finish();
///
/// // Both goals share the atom `p`; the fused DAG evaluates it once.
/// let goals = [parse("p && q")?, parse("p && prev(q)")?];
/// let program = Arc::new(FusedSuiteProgram::compile(&goals, &table)?);
/// assert_eq!(program.roots(), 2);
/// assert!(program.unique_nodes() < program.source_nodes());
///
/// let mut suite = program.instantiate();
/// let mut frame = table.frame();
/// frame.set(p, true);
/// frame.set(q, true);
/// suite.observe(&frame)?;
/// assert!(suite.verdict(0));
/// assert!(!suite.verdict(1)); // no previous state yet
/// suite.observe(&frame)?;
/// assert!(suite.verdict(1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FusedSuiteProgram {
    table: Arc<SignalTable>,
    /// Topologically ordered: every child index precedes its parent.
    nodes: Vec<FusedNode>,
    /// First monitor (root index) that demanded each node — error
    /// attribution for the fused evaluation pass.
    owners: Vec<u32>,
    init_cells: Vec<Cell>,
    /// One slab index per monitor, in compile order.
    roots: Vec<u32>,
    /// Node count before deduplication (the sum of the per-monitor
    /// program sizes).
    source_nodes: usize,
}

/// Builder state for one [`FusedSuiteProgram`] compilation.
struct FusedBuilder<'t> {
    table: &'t SignalTable,
    nodes: Vec<FusedNode>,
    owners: Vec<u32>,
    cells: Vec<Cell>,
    interned: HashMap<NodeKey, u32>,
    source_nodes: usize,
}

impl FusedBuilder<'_> {
    /// Interns a node: an existing structural twin is reused (its state
    /// cell included), otherwise `make` materializes the node. Every
    /// call counts one *source* node toward the dedup ratio.
    fn intern(
        &mut self,
        key: NodeKey,
        monitor: u32,
        make: impl FnOnce(&mut Vec<Cell>) -> FusedNode,
    ) -> u32 {
        self.source_nodes += 1;
        if let Some(&idx) = self.interned.get(&key) {
            return idx;
        }
        let idx = u32::try_from(self.nodes.len()).expect("fused program too large");
        self.nodes.push(make(&mut self.cells));
        self.owners.push(monitor);
        self.interned.insert(key, idx);
        idx
    }

    fn build(&mut self, expr: &Expr, monitor: u32) -> Result<u32, EvalError> {
        Ok(match expr {
            Expr::Const(b) => self.intern(NodeKey::Const(*b), monitor, |_| FusedNode::Const(*b)),
            Expr::Var(v) => {
                let id = resolve(v, self.table)?;
                self.intern(NodeKey::Var(id.index() as u32), monitor, |_| {
                    FusedNode::Var(id)
                })
            }
            Expr::Cmp { lhs, op, rhs } => {
                let lhs = Slot::resolve(lhs, self.table)?;
                let rhs = Slot::resolve(rhs, self.table)?;
                self.intern(
                    NodeKey::Cmp(SlotKey::of(lhs), *op, SlotKey::of(rhs)),
                    monitor,
                    |_| FusedNode::Cmp { lhs, op: *op, rhs },
                )
            }
            Expr::Not(e) => {
                let c = self.build(e, monitor)?;
                self.intern(NodeKey::Not(c), monitor, |_| FusedNode::Not(c))
            }
            Expr::And(items) => {
                let cs = items
                    .iter()
                    .map(|e| self.build(e, monitor))
                    .collect::<Result<Vec<_>, _>>()?;
                self.intern(NodeKey::And(cs.clone()), monitor, |_| {
                    FusedNode::And(cs.into_boxed_slice())
                })
            }
            Expr::Or(items) => {
                let cs = items
                    .iter()
                    .map(|e| self.build(e, monitor))
                    .collect::<Result<Vec<_>, _>>()?;
                self.intern(NodeKey::Or(cs.clone()), monitor, |_| {
                    FusedNode::Or(cs.into_boxed_slice())
                })
            }
            Expr::Implies(a, b) => {
                let a = self.build(a, monitor)?;
                let b = self.build(b, monitor)?;
                self.intern(NodeKey::Implies(a, b), monitor, |_| {
                    FusedNode::Implies(a, b)
                })
            }
            Expr::Prev(e) => {
                let c = self.build(e, monitor)?;
                self.intern(NodeKey::Prev(c), monitor, |cells| FusedNode::Prev {
                    child: c,
                    cell: alloc_fused_cell(cells, Cell::Last(None)),
                })
            }
            Expr::Once(e) => {
                let c = self.build(e, monitor)?;
                self.intern(NodeKey::Once(c), monitor, |cells| FusedNode::Once {
                    child: c,
                    cell: alloc_fused_cell(cells, Cell::Seen(false)),
                })
            }
            Expr::Historically(e) => {
                let c = self.build(e, monitor)?;
                self.intern(NodeKey::Historically(c), monitor, |cells| {
                    FusedNode::Historically {
                        child: c,
                        cell: alloc_fused_cell(cells, Cell::All(true)),
                    }
                })
            }
            Expr::HeldFor { expr, ticks } => {
                let c = self.build(expr, monitor)?;
                self.intern(NodeKey::HeldFor(c, *ticks), monitor, |cells| {
                    FusedNode::HeldFor {
                        child: c,
                        ticks: *ticks,
                        cell: alloc_fused_cell(cells, Cell::Run(0)),
                    }
                })
            }
            Expr::OnceWithin { expr, ticks } => {
                let c = self.build(expr, monitor)?;
                self.intern(NodeKey::OnceWithin(c, *ticks), monitor, |cells| {
                    FusedNode::OnceWithin {
                        child: c,
                        ticks: *ticks,
                        cell: alloc_fused_cell(cells, Cell::LastTrue(None)),
                    }
                })
            }
            Expr::Became(e) => {
                let c = self.build(e, monitor)?;
                self.intern(NodeKey::Became(c), monitor, |cells| FusedNode::Became {
                    child: c,
                    cell: alloc_fused_cell(cells, Cell::Last(None)),
                })
            }
            Expr::Initially(e) => {
                let c = self.build(e, monitor)?;
                self.intern(NodeKey::Initially(c), monitor, |cells| {
                    FusedNode::Initially {
                        child: c,
                        cell: alloc_fused_cell(cells, Cell::Captured(None)),
                    }
                })
            }
            // monitor_form has eliminated these before build runs
            Expr::Entails(..)
            | Expr::Iff(..)
            | Expr::Always(_)
            | Expr::Eventually(_)
            | Expr::Next(_) => unreachable!("monitor_form eliminates future forms"),
        })
    }
}

/// Allocates a suite-level state cell, returning its index as `u32`.
fn alloc_fused_cell(cells: &mut Vec<Cell>, init: Cell) -> u32 {
    cells.push(init);
    u32::try_from(cells.len() - 1).expect("fused cell index overflow")
}

impl FusedSuiteProgram {
    /// Compiles a whole goal suite — one expression per monitor, in
    /// suite order — into a single deduplicated DAG over `table`.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::FutureOperator`] if any expression contains
    /// `eventually` or `next`, and [`EvalError::UnknownSignal`] if any
    /// references a name outside the table.
    pub fn compile(exprs: &[Expr], table: &Arc<SignalTable>) -> Result<Self, EvalError> {
        let mut b = FusedBuilder {
            table,
            nodes: Vec::new(),
            owners: Vec::new(),
            cells: Vec::new(),
            interned: HashMap::new(),
            source_nodes: 0,
        };
        let mut roots = Vec::with_capacity(exprs.len());
        for (monitor, expr) in exprs.iter().enumerate() {
            let rewritten = monitor_form(expr)?;
            let monitor = u32::try_from(monitor).expect("too many monitors");
            roots.push(b.build(&rewritten, monitor)?);
        }
        Ok(FusedSuiteProgram {
            table: Arc::clone(table),
            nodes: b.nodes,
            owners: b.owners,
            init_cells: b.cells,
            roots,
            source_nodes: b.source_nodes,
        })
    }

    /// The signal table the program's variable references resolve into.
    pub fn table(&self) -> &Arc<SignalTable> {
        &self.table
    }

    /// Number of monitors (roots) fused into the program.
    pub fn roots(&self) -> usize {
        self.roots.len()
    }

    /// Number of nodes in the deduplicated DAG — the work one tick
    /// actually performs.
    pub fn unique_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of nodes before deduplication (the sum of the standalone
    /// per-monitor program sizes) — the work per-monitor evaluation
    /// would perform without short-circuiting.
    pub fn source_nodes(&self) -> usize {
        self.source_nodes
    }

    /// Number of suite-level temporal state cells an instance carries.
    pub fn state_cells(&self) -> usize {
        self.init_cells.len()
    }

    /// Materializes a fresh fused suite: two slab allocations plus a
    /// `memcpy` of the initial cell values.
    pub fn instantiate(self: &Arc<Self>) -> FusedSuite {
        FusedSuite {
            cells: self.init_cells.clone(),
            slab: vec![false; self.nodes.len()],
            program: Arc::clone(self),
            step: 0,
        }
    }
}

/// The run state of one [`FusedSuiteProgram`] instance: the value slab
/// (one `bool` per DAG node, rewritten every tick) and the suite-level
/// temporal cells.
///
/// [`FusedSuite::observe`] makes one forward pass over the DAG;
/// [`FusedSuite::verdict`] then reads any monitor's current truth in
/// O(1). See [`FusedSuiteProgram`].
#[derive(Debug, Clone)]
pub struct FusedSuite {
    program: Arc<FusedSuiteProgram>,
    cells: Vec<Cell>,
    slab: Vec<bool>,
    step: u64,
}

impl FusedSuite {
    /// The immutable fused program this suite executes.
    pub fn program(&self) -> &Arc<FusedSuiteProgram> {
        &self.program
    }

    /// Feeds the next frame: one forward pass evaluating every DAG node
    /// exactly once, advancing every temporal cell.
    ///
    /// Verdicts are identical to per-monitor evaluation on error-free
    /// frames. Error behaviour differs in one corner: per-monitor
    /// evaluation may skip a stateless subtree whose connective is
    /// already decided, while the fused pass evaluates every node — so a
    /// frame leaving a *never-relevant* signal unset errors here. Treat
    /// an error as fatal for this suite instance, as with
    /// [`CompiledMonitor::observe`].
    ///
    /// # Errors
    ///
    /// Returns [`FusedError`] naming the first monitor (by suite order)
    /// whose formula demanded the failing node.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `frame` indexes a different table than
    /// the program was compiled against.
    pub fn observe(&mut self, frame: &Frame) -> Result<(), FusedError> {
        debug_assert!(
            Arc::ptr_eq(frame.table(), &self.program.table),
            "frame and fused suite must share one signal table"
        );
        let step = usize::try_from(self.step).unwrap_or(usize::MAX);
        let table = &self.program.table;
        let cells = &mut self.cells;
        for (i, node) in self.program.nodes.iter().enumerate() {
            let v = match node {
                FusedNode::Const(b) => *b,
                FusedNode::Var(id) => {
                    frame_bool(frame, *id, step, table).map_err(|e| FusedError {
                        monitor: self.program.owners[i] as usize,
                        source: e,
                    })?
                }
                FusedNode::Cmp { lhs, op, rhs } => {
                    let err = |e| FusedError {
                        monitor: self.program.owners[i] as usize,
                        source: e,
                    };
                    let a = lhs.value(frame, step, table).map_err(err)?;
                    let b = rhs.value(frame, step, table).map_err(err)?;
                    eval::compare_values(&a, *op, &b).map_err(err)?
                }
                FusedNode::Not(c) => !self.slab[*c as usize],
                FusedNode::And(cs) => cs.iter().all(|&c| self.slab[c as usize]),
                FusedNode::Or(cs) => cs.iter().any(|&c| self.slab[c as usize]),
                FusedNode::Implies(a, b) => !self.slab[*a as usize] | self.slab[*b as usize],
                FusedNode::Prev { child, cell } => {
                    cells[*cell as usize].step_prev(self.slab[*child as usize])
                }
                FusedNode::Once { child, cell } => {
                    cells[*cell as usize].step_once(self.slab[*child as usize])
                }
                FusedNode::Historically { child, cell } => {
                    cells[*cell as usize].step_historically(self.slab[*child as usize])
                }
                FusedNode::HeldFor { child, ticks, cell } => {
                    cells[*cell as usize].step_held_for(self.slab[*child as usize], *ticks)
                }
                FusedNode::OnceWithin { child, ticks, cell } => {
                    cells[*cell as usize].step_once_within(self.slab[*child as usize], step, *ticks)
                }
                FusedNode::Became { child, cell } => {
                    cells[*cell as usize].step_became(self.slab[*child as usize])
                }
                FusedNode::Initially { child, cell } => {
                    cells[*cell as usize].step_initially(self.slab[*child as usize])
                }
            };
            self.slab[i] = v;
        }
        self.step += 1;
        Ok(())
    }

    /// Monitor `monitor`'s verdict from the most recent
    /// [`FusedSuite::observe`] pass.
    ///
    /// # Panics
    ///
    /// Panics if `monitor` is out of range.
    #[inline]
    pub fn verdict(&self, monitor: usize) -> bool {
        self.slab[self.program.roots[monitor] as usize]
    }

    /// Number of frames observed so far.
    pub fn steps_observed(&self) -> u64 {
        self.step
    }

    /// Clears all history, returning the suite to its initial state — a
    /// `memcpy` of the program's initial cell values, no allocation.
    pub fn reset(&mut self) {
        self.cells.copy_from_slice(&self.program.init_cells);
        self.step = 0;
    }
}

/// An evaluation error raised by a batched fused pass, attributed to the
/// failing lane (run) and the first monitor whose formula demanded the
/// failing node.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchError {
    /// Index of the failing lane (run) within the batch.
    pub lane: usize,
    /// Index of the owning monitor within the fused suite's root order.
    pub monitor: usize,
    /// The underlying evaluation error.
    pub source: EvalError,
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fused lane #{} monitor #{}: {}",
            self.lane, self.monitor, self.source
        )
    }
}

impl std::error::Error for BatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// The run state of one [`FusedSuiteProgram`] evaluated over **many runs
/// at once** — the batch/SoA engine.
///
/// Where a [`FusedSuite`] holds one `bool` per DAG node, a batch holds a
/// *lane row* per node: `lanes` contiguous slots, one per run
/// (slab-of-lanes layout, `slab[node * lanes + lane]`), and likewise one
/// lane row per temporal state cell. [`FusedSuiteBatch::observe_batch`]
/// advances every lane by one frame in a single forward pass that steps
/// the whole batch through each DAG node before moving to the next:
/// the per-node inner loop is a straight-line sweep over contiguous
/// lanes — branch-free for the boolean combinators — so evaluating one
/// shared subexpression across N runs costs one node decode plus N slab
/// reads, instead of N full scalar passes.
///
/// Lanes are independent runs in lock-step: verdicts per lane are
/// **identical** to running a scalar [`FusedSuite`] per lane over the
/// same frame sequence (property-tested, including mid-batch
/// retirement). A run that ends early — a terminal event inside a sweep
/// stripe — is [`retire_lane`](FusedSuiteBatch::retire_lane)d: its
/// temporal cells and step counter freeze while the surviving lanes
/// keep advancing, so early termination in one lane cannot perturb its
/// neighbours.
///
/// # Example
///
/// ```
/// use esafe_logic::{parse, FusedSuiteProgram, SignalTable};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SignalTable::builder();
/// let p = b.bool("p");
/// let table = b.finish();
///
/// let program = Arc::new(FusedSuiteProgram::compile(&[parse("prev(p)")?], &table)?);
/// let mut batch = program.instantiate_batch(2);
///
/// // Lane 0 sees p=true, lane 1 sees p=false.
/// let mut frames = vec![table.frame(), table.frame()];
/// frames[0].set(p, true);
/// frames[1].set(p, false);
/// batch.observe_batch(&frames)?;
/// batch.observe_batch(&frames)?;
/// assert!(batch.verdict(0, 0)); // lane 0: p held in the previous state
/// assert!(!batch.verdict(1, 0)); // lane 1: it did not
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FusedSuiteBatch {
    program: Arc<FusedSuiteProgram>,
    lanes: usize,
    /// Temporal cells, one lane row per suite-level cell:
    /// `cells[cell * lanes + lane]`.
    cells: Vec<Cell>,
    /// Node values, one lane row per DAG node:
    /// `slab[node * lanes + lane]`, rewritten every pass.
    slab: Vec<bool>,
    /// Per-lane frames observed so far (frozen on retirement).
    steps: Vec<u64>,
    /// Per-lane liveness; retired lanes are skipped by every pass.
    active: Vec<bool>,
    retired: usize,
}

impl FusedSuiteProgram {
    /// Materializes a batch evaluator over this program with `lanes`
    /// independent runs, every lane starting from the initial (empty
    /// history) state.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn instantiate_batch(self: &Arc<Self>, lanes: usize) -> FusedSuiteBatch {
        assert!(lanes > 0, "a batch needs at least one lane");
        let mut cells = Vec::with_capacity(self.init_cells.len() * lanes);
        for &init in &self.init_cells {
            cells.extend(std::iter::repeat_n(init, lanes));
        }
        FusedSuiteBatch {
            cells,
            slab: vec![false; self.nodes.len() * lanes],
            steps: vec![0; lanes],
            active: vec![true; lanes],
            retired: 0,
            program: Arc::clone(self),
            lanes,
        }
    }
}

impl FusedSuiteBatch {
    /// The immutable fused program this batch executes.
    pub fn program(&self) -> &Arc<FusedSuiteProgram> {
        &self.program
    }

    /// Number of lanes (runs) in the batch, retired lanes included.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of lanes still advancing.
    pub fn active_lanes(&self) -> usize {
        self.lanes - self.retired
    }

    /// Whether `lane` is still advancing.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn is_active(&self, lane: usize) -> bool {
        self.active[lane]
    }

    /// Retires a lane: its temporal cells and step counter freeze, and
    /// subsequent [`observe_batch`](FusedSuiteBatch::observe_batch)
    /// passes skip it (its slot in `frames` is ignored). Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn retire_lane(&mut self, lane: usize) {
        if std::mem::replace(&mut self.active[lane], false) {
            self.retired += 1;
        }
    }

    /// Number of frames `lane` has observed so far.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn steps_observed(&self, lane: usize) -> u64 {
        self.steps[lane]
    }

    /// Temporarily freezes `lane` for the next observe pass(es): its
    /// temporal cells, step counter, and verdicts stay exactly as they
    /// are, and the pass skips it like a retired lane. Unlike
    /// [`retire_lane`](FusedSuiteBatch::retire_lane) the freeze is meant
    /// to be undone with [`resume_lane`](FusedSuiteBatch::resume_lane) —
    /// the pair lets a caller advance a *subset* of lanes through a pass
    /// (e.g. a streaming service whose streams deliver frames at
    /// different rates) while the rest hold their history bit-exactly.
    /// Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn suspend_lane(&mut self, lane: usize) {
        if std::mem::replace(&mut self.active[lane], false) {
            self.retired += 1;
        }
    }

    /// Reverses [`suspend_lane`](FusedSuiteBatch::suspend_lane): the lane
    /// rejoins subsequent passes with its history untouched, as if the
    /// passes it sat out never happened. Do **not** use this to revive a
    /// lane retired at end-of-run ([`retire_lane`](FusedSuiteBatch::retire_lane));
    /// a finished run's lane must be re-armed with
    /// [`reset_lane`](FusedSuiteBatch::reset_lane) instead. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn resume_lane(&mut self, lane: usize) {
        if !std::mem::replace(&mut self.active[lane], true) {
            self.retired -= 1;
        }
    }

    /// Feeds the next frame of every active lane — `frames[lane]` is
    /// that lane's sample; retired lanes' entries are ignored. One
    /// forward pass over the DAG advances **all** lanes through each
    /// node before moving to the next (see the type docs).
    ///
    /// Verdicts per lane are identical to a scalar [`FusedSuite`] fed
    /// the same frames, with the same error-behaviour caveat as
    /// [`FusedSuite::observe`]: every node of every active lane is
    /// evaluated, so an unset never-relevant signal errors here. Treat
    /// an error as fatal for the whole batch instance.
    ///
    /// # Errors
    ///
    /// Returns [`BatchError`] naming the failing lane and the first
    /// monitor (by suite order) whose formula demanded the failing node.
    ///
    /// # Panics
    ///
    /// Panics if `frames.len() != lanes`; debug builds also panic if an
    /// active lane's frame indexes a different table than the program
    /// was compiled against.
    pub fn observe_batch(&mut self, frames: &[Frame]) -> Result<(), BatchError> {
        assert_eq!(
            frames.len(),
            self.lanes,
            "one frame per lane, retired included"
        );
        self.observe_src(frames)
    }

    /// [`observe_batch`](FusedSuiteBatch::observe_batch) reading a
    /// lane-major [`FrameBatch`] slab **in place** — the zero-copy path a
    /// batched simulator feeds its state slab through (lane layouts
    /// match, so `Var`/`Cmp` reads sweep the slab's contiguous signal
    /// rows directly). Retired lanes' slab rows are ignored. Verdicts
    /// are identical to copying each lane out and calling
    /// [`observe_batch`](FusedSuiteBatch::observe_batch).
    ///
    /// # Errors
    ///
    /// As [`observe_batch`](FusedSuiteBatch::observe_batch).
    ///
    /// # Panics
    ///
    /// Panics if `slab.lanes() != lanes`; debug builds also panic if the
    /// slab indexes a different table than the program was compiled
    /// against.
    pub fn observe_slab(&mut self, slab: &FrameBatch) -> Result<(), BatchError> {
        assert_eq!(slab.lanes(), self.lanes, "one slab lane per batch lane");
        self.observe_src(slab)
    }

    /// The one shared forward pass behind
    /// [`observe_batch`](FusedSuiteBatch::observe_batch) and
    /// [`observe_slab`](FusedSuiteBatch::observe_slab): only `Var` and
    /// `Cmp` touch `src`, everything else is slab-to-slab.
    fn observe_src<S: LaneSource + ?Sized>(&mut self, src: &S) -> Result<(), BatchError> {
        let lanes = self.lanes;
        debug_assert!(
            (0..lanes).all(|l| !self.active[l] || src.shares_table(l, &self.program.table)),
            "active lanes and batch must share one signal table"
        );
        let program = Arc::clone(&self.program);
        let table = &program.table;
        let active = &self.active;
        let steps = &self.steps;
        let cells = &mut self.cells;
        for (i, node) in program.nodes.iter().enumerate() {
            // Children precede node `i` in the topological order, so
            // `prev` holds every child's lane row and `out` is node
            // `i`'s own row.
            let (prev, rest) = self.slab.split_at_mut(i * lanes);
            let out = &mut rest[..lanes];
            let row = |c: &u32| &prev[*c as usize * lanes..][..lanes];
            let err = |lane: usize, e: EvalError| BatchError {
                lane,
                monitor: program.owners[i] as usize,
                source: e,
            };
            match node {
                FusedNode::Const(b) => out.fill(*b),
                // `Var`/`Cmp` are the only nodes that read `src`. When
                // the source is lane-major, a signal's samples across
                // every run are one contiguous row, so both sweep whole
                // rows in tight slice loops — no per-lane step
                // bookkeeping, no active check (retired lanes' rows are
                // frozen-but-valid, and nothing reads their slab cells).
                // Any row that holds an unset or mistyped slot bails to
                // the per-lane path for exact error attribution, which
                // is also the only path frame-slice sources have.
                FusedNode::Var(id) => {
                    let fast = src.row(*id).is_some_and(|vals| {
                        let mut ok = true;
                        for (out, v) in out.iter_mut().zip(vals) {
                            match v {
                                Some(Value::Bool(b)) => *out = *b,
                                _ => ok = false,
                            }
                        }
                        ok
                    });
                    if !fast {
                        var_lanes(out, src, *id, active, steps, table)
                            .map_err(|(l, e)| err(l, e))?;
                    }
                }
                FusedNode::Cmp { lhs, op, rhs } => {
                    let fast = match (lhs.operand_row(src), rhs.operand_row(src)) {
                        (Some(a), Some(b)) => cmp_rows(out, &a, *op, &b),
                        _ => false,
                    };
                    if !fast {
                        cmp_lanes(out, src, lhs, *op, rhs, active, steps, table)
                            .map_err(|(l, e)| err(l, e))?;
                    }
                }
                // The boolean combinators are pure slab-to-slab sweeps:
                // no frame reads, no temporal state. They run over every
                // lane unconditionally — retired lanes compute garbage
                // from stale child rows that nothing ever reads — so the
                // inner loops stay branch-free and vectorizable.
                FusedNode::Not(c) => {
                    for (out, &v) in out.iter_mut().zip(row(c)) {
                        *out = !v;
                    }
                }
                FusedNode::And(cs) => {
                    out.fill(true);
                    for c in cs.iter() {
                        for (out, &v) in out.iter_mut().zip(row(c)) {
                            *out &= v;
                        }
                    }
                }
                FusedNode::Or(cs) => {
                    out.fill(false);
                    for c in cs.iter() {
                        for (out, &v) in out.iter_mut().zip(row(c)) {
                            *out |= v;
                        }
                    }
                }
                FusedNode::Implies(a, b) => {
                    for ((out, &av), &bv) in out.iter_mut().zip(row(a)).zip(row(b)) {
                        *out = !av | bv;
                    }
                }
                // Temporal nodes advance per-lane state, so retired
                // lanes must be skipped — their history is frozen.
                FusedNode::Prev { child, cell } => {
                    let cells = &mut cells[*cell as usize * lanes..][..lanes];
                    for ((l, out), (cell, &cur)) in out
                        .iter_mut()
                        .enumerate()
                        .zip(cells.iter_mut().zip(row(child)))
                    {
                        if active[l] {
                            *out = cell.step_prev(cur);
                        }
                    }
                }
                FusedNode::Once { child, cell } => {
                    let cells = &mut cells[*cell as usize * lanes..][..lanes];
                    for ((l, out), (cell, &cur)) in out
                        .iter_mut()
                        .enumerate()
                        .zip(cells.iter_mut().zip(row(child)))
                    {
                        if active[l] {
                            *out = cell.step_once(cur);
                        }
                    }
                }
                FusedNode::Historically { child, cell } => {
                    let cells = &mut cells[*cell as usize * lanes..][..lanes];
                    for ((l, out), (cell, &cur)) in out
                        .iter_mut()
                        .enumerate()
                        .zip(cells.iter_mut().zip(row(child)))
                    {
                        if active[l] {
                            *out = cell.step_historically(cur);
                        }
                    }
                }
                FusedNode::HeldFor { child, ticks, cell } => {
                    let cells = &mut cells[*cell as usize * lanes..][..lanes];
                    for ((l, out), (cell, &cur)) in out
                        .iter_mut()
                        .enumerate()
                        .zip(cells.iter_mut().zip(row(child)))
                    {
                        if active[l] {
                            *out = cell.step_held_for(cur, *ticks);
                        }
                    }
                }
                FusedNode::OnceWithin { child, ticks, cell } => {
                    let cells = &mut cells[*cell as usize * lanes..][..lanes];
                    for ((l, out), (cell, &cur)) in out
                        .iter_mut()
                        .enumerate()
                        .zip(cells.iter_mut().zip(row(child)))
                    {
                        if active[l] {
                            let step = usize::try_from(steps[l]).unwrap_or(usize::MAX);
                            *out = cell.step_once_within(cur, step, *ticks);
                        }
                    }
                }
                FusedNode::Became { child, cell } => {
                    let cells = &mut cells[*cell as usize * lanes..][..lanes];
                    for ((l, out), (cell, &cur)) in out
                        .iter_mut()
                        .enumerate()
                        .zip(cells.iter_mut().zip(row(child)))
                    {
                        if active[l] {
                            *out = cell.step_became(cur);
                        }
                    }
                }
                FusedNode::Initially { child, cell } => {
                    let cells = &mut cells[*cell as usize * lanes..][..lanes];
                    for ((l, out), (cell, &cur)) in out
                        .iter_mut()
                        .enumerate()
                        .zip(cells.iter_mut().zip(row(child)))
                    {
                        if active[l] {
                            *out = cell.step_initially(cur);
                        }
                    }
                }
            }
        }
        for (step, &a) in self.steps.iter_mut().zip(&self.active) {
            *step += u64::from(a);
        }
        Ok(())
    }

    /// Monitor `monitor`'s verdict in `lane` from the most recent
    /// [`FusedSuiteBatch::observe_batch`] pass the lane took part in.
    ///
    /// # Panics
    ///
    /// Panics if `lane` or `monitor` is out of range.
    #[inline]
    pub fn verdict(&self, lane: usize, monitor: usize) -> bool {
        assert!(lane < self.lanes, "lane out of range");
        self.slab[self.program.roots[monitor] as usize * self.lanes + lane]
    }

    /// Every lane's verdict for `monitor` from the most recent pass, as
    /// one contiguous lane row — the bulk counterpart of
    /// [`verdict`](FusedSuiteBatch::verdict). Retired lanes' cells hold
    /// their last active-pass verdict (nothing recomputes them from
    /// fresh inputs), so row-diffing against a previous copy sees no
    /// spurious transitions from retirement.
    ///
    /// # Panics
    ///
    /// Panics if `monitor` is out of range.
    #[inline]
    pub fn verdict_row(&self, monitor: usize) -> &[bool] {
        &self.slab[self.program.roots[monitor] as usize * self.lanes..][..self.lanes]
    }

    /// Clears all history in every lane and re-activates retired lanes,
    /// returning the batch to its freshly instantiated state without
    /// reallocating.
    pub fn reset(&mut self) {
        for (c, &init) in self.program.init_cells.iter().enumerate() {
            self.cells[c * self.lanes..][..self.lanes].fill(init);
        }
        self.steps.fill(0);
        self.active.fill(true);
        self.retired = 0;
    }

    /// Re-arms a single lane in place: its temporal cells return to the
    /// initial (empty history) state, its step counter zeroes, and it
    /// re-activates if retired — the per-lane slice of
    /// [`reset`](FusedSuiteBatch::reset). Nothing is reallocated and no
    /// other lane is touched, so a long-running batch can recycle a
    /// retired lane for a brand-new run while its neighbours keep
    /// advancing. The lane's stale slab rows are harmless: the next
    /// observe pass recomputes every node for active lanes before any
    /// verdict is read.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn reset_lane(&mut self, lane: usize) {
        assert!(lane < self.lanes, "lane out of range");
        for (c, &init) in self.program.init_cells.iter().enumerate() {
            self.cells[c * self.lanes + lane] = init;
        }
        self.steps[lane] = 0;
        if !std::mem::replace(&mut self.active[lane], true) {
            self.retired -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_trace;
    use crate::parse;
    use crate::state::Trace;

    fn trace_of(bits: &[(&str, Vec<bool>)]) -> Trace {
        let n = bits[0].1.len();
        let mut t = Trace::with_tick_millis(1);
        for i in 0..n {
            let mut s = State::new();
            for (name, vals) in bits {
                s.set(*name, vals[i]);
            }
            t.push(s);
        }
        t
    }

    fn monitor_run(src: &str, t: &Trace) -> Vec<bool> {
        let mut m = CompiledMonitor::compile(&parse(src).unwrap()).unwrap();
        t.iter().map(|s| m.observe_state(s).unwrap()).collect()
    }

    #[test]
    fn matches_reference_on_past_only_formulas() {
        let t = trace_of(&[
            ("p", vec![true, false, true, true, false, true]),
            ("q", vec![false, false, true, false, true, true]),
        ]);
        for src in [
            "prev(p)",
            "once(p && q)",
            "historically(p || q)",
            "held_for(p, 2ticks)",
            "once_within(q, 3ticks)",
            "became(p)",
            "initially(p) -> q",
            "prev(prev(p)) && !q",
        ] {
            let reference = eval_trace(&parse(src).unwrap(), &t).unwrap();
            assert_eq!(monitor_run(src, &t), reference, "mismatch for {src}");
        }
    }

    #[test]
    fn always_uses_violation_semantics() {
        let t = trace_of(&[("p", vec![true, false, true])]);
        // reference `always` is suffix-true; the monitor flags per-state.
        assert_eq!(monitor_run("always(p)", &t), vec![true, false, true]);
    }

    #[test]
    fn entails_uses_per_state_semantics() {
        let t = trace_of(&[("p", vec![true, true]), ("q", vec![true, false])]);
        assert_eq!(monitor_run("p => q", &t), vec![true, false]);
    }

    #[test]
    fn iff_monitors_agreement() {
        let t = trace_of(&[("p", vec![true, false]), ("q", vec![true, true])]);
        assert_eq!(monitor_run("p <-> q", &t), vec![true, false]);
    }

    #[test]
    fn rejects_future_operators() {
        assert!(matches!(
            CompiledMonitor::compile(&parse("eventually(p)").unwrap()),
            Err(EvalError::FutureOperator { .. })
        ));
        assert!(matches!(
            CompiledMonitor::compile(&parse("next(p)").unwrap()),
            Err(EvalError::FutureOperator { .. })
        ));
    }

    #[test]
    fn compile_in_rejects_unknown_signals() {
        let table = SignalTable::builder().finish();
        assert_eq!(
            CompiledMonitor::compile_in(&parse("p").unwrap(), &table).unwrap_err(),
            EvalError::UnknownSignal { name: "p".into() }
        );
        let mut b = SignalTable::builder();
        b.real("x");
        assert!(matches!(
            CompiledMonitor::compile_in(&parse("x < missing").unwrap(), &b.finish()),
            Err(EvalError::UnknownSignal { name }) if name == "missing"
        ));
    }

    #[test]
    fn infer_table_assigns_kinds_by_position() {
        let e = parse("p && x < 2.0 && cmd == 'STOP'").unwrap();
        let t = infer_table(&e);
        assert_eq!(t.kind(t.id("p").unwrap()), SignalKind::Bool);
        assert_eq!(t.kind(t.id("x").unwrap()), SignalKind::Real);
        assert_eq!(t.kind(t.id("cmd").unwrap()), SignalKind::Sym);
    }

    #[test]
    fn comparisons_resolve_against_interned_symbols() {
        let mut b = SignalTable::builder();
        let cmd = b.sym("cmd");
        let table = b.finish();
        let mut m = CompiledMonitor::compile_in(&parse("cmd == 'STOP'").unwrap(), &table).unwrap();
        let mut f = table.frame();
        f.set(cmd, Value::sym("STOP"));
        assert!(m.observe(&f).unwrap());
        f.set(cmd, Value::sym("GO"));
        assert!(!m.observe(&f).unwrap());
    }

    #[test]
    fn short_circuit_does_not_desync_history() {
        // The `prev(q)` inside the And must track q even while p is false.
        let t = trace_of(&[
            ("p", vec![false, false, true]),
            ("q", vec![true, false, false]),
        ]);
        assert_eq!(monitor_run("p && prev(q)", &t), vec![false, false, false]);
        let t2 = trace_of(&[
            ("p", vec![false, true, true]),
            ("q", vec![true, true, false]),
        ]);
        assert_eq!(monitor_run("p && prev(q)", &t2), vec![false, true, true]);
    }

    #[test]
    fn reset_restores_initial_behaviour() {
        let mut m = CompiledMonitor::compile(&parse("prev(p)").unwrap()).unwrap();
        let s_true = State::new().with_bool("p", true);
        assert!(!m.observe_state(&s_true).unwrap());
        assert!(m.observe_state(&s_true).unwrap());
        m.reset();
        assert_eq!(m.steps_observed(), 0);
        assert!(!m.observe_state(&s_true).unwrap());
    }

    /// Compiles `srcs` both ways and checks fused verdicts against
    /// independent per-monitor verdicts over `t`.
    fn assert_fused_matches_per_monitor(srcs: &[&str], t: &Trace) {
        let exprs: Vec<Expr> = srcs.iter().map(|s| parse(s).unwrap()).collect();
        let table = {
            let mut b = SignalTable::builder();
            for name in ["p", "q", "r"] {
                b.bool(name);
            }
            b.finish()
        };
        let mut monitors: Vec<CompiledMonitor> = exprs
            .iter()
            .map(|e| CompiledMonitor::compile_in(e, &table).unwrap())
            .collect();
        let mut fused = Arc::new(FusedSuiteProgram::compile(&exprs, &table).unwrap()).instantiate();
        for s in t.iter() {
            let frame = table.frame_from_state_lossy(s);
            fused.observe(&frame).unwrap();
            for (i, m) in monitors.iter_mut().enumerate() {
                assert_eq!(
                    fused.verdict(i),
                    m.observe(&frame).unwrap(),
                    "monitor {i} (`{}`) diverged at step {}",
                    srcs[i],
                    m.steps_observed() - 1
                );
            }
        }
    }

    #[test]
    fn fused_suite_matches_per_monitor_verdicts() {
        let t = trace_of(&[
            ("p", vec![true, false, true, true, false, true]),
            ("q", vec![false, false, true, false, true, true]),
            ("r", vec![true, true, false, false, true, false]),
        ]);
        assert_fused_matches_per_monitor(
            &[
                "always(p -> q)",
                "p -> prev(q)",
                "p && q && r",
                "once(p && q) || held_for(r, 2ticks)",
                "historically(p || q) -> became(r)",
                "initially(p) <-> once_within(q, 3ticks)",
                "p => q",
            ],
            &t,
        );
    }

    #[test]
    fn fused_suite_dedups_shared_subtrees_and_cells() {
        let table = {
            let mut b = SignalTable::builder();
            b.bool("p");
            b.bool("q");
            b.finish()
        };
        let exprs = [
            parse("p && prev(q)").unwrap(),
            parse("q || prev(q)").unwrap(),
            parse("p && prev(q)").unwrap(),
        ];
        let program = FusedSuiteProgram::compile(&exprs, &table).unwrap();
        // Unique nodes: p, q, prev(q), p && prev(q), q || prev(q).
        assert_eq!(program.unique_nodes(), 5);
        // Source nodes: 4 + 4 + 4 (each monitor re-counts its whole
        // tree: two leaves, the prev, the connective).
        assert_eq!(program.source_nodes(), 12);
        // The three `prev(q)` occurrences share one temporal cell.
        assert_eq!(program.state_cells(), 1);
        assert_eq!(program.roots(), 3);
    }

    #[test]
    fn fused_reset_restores_initial_behaviour() {
        let table = {
            let mut b = SignalTable::builder();
            let p = b.bool("p");
            (b.finish(), p)
        };
        let (table, p) = table;
        let exprs = [parse("prev(p)").unwrap()];
        let mut suite = Arc::new(FusedSuiteProgram::compile(&exprs, &table).unwrap()).instantiate();
        let mut frame = table.frame();
        frame.set(p, true);
        suite.observe(&frame).unwrap();
        suite.observe(&frame).unwrap();
        assert!(suite.verdict(0));
        assert_eq!(suite.steps_observed(), 2);
        suite.reset();
        assert_eq!(suite.steps_observed(), 0);
        suite.observe(&frame).unwrap();
        assert!(!suite.verdict(0), "reset must clear temporal history");
    }

    #[test]
    fn fused_errors_name_the_first_owning_monitor() {
        let mut b = SignalTable::builder();
        b.bool("p");
        b.bool("q");
        let table = b.finish();
        let exprs = [parse("p").unwrap(), parse("p || q").unwrap()];
        let mut suite = Arc::new(FusedSuiteProgram::compile(&exprs, &table).unwrap()).instantiate();
        let mut frame = table.frame();
        frame.set_named("p", true);
        // `q` is unset: the failing node is owned by monitor 1, the
        // first (and only) formula that demanded it.
        let err = suite.observe(&frame).unwrap_err();
        assert_eq!(err.monitor, 1);
        assert!(matches!(err.source, EvalError::MissingVar { ref name, .. } if name == "q"));
        assert!(err.to_string().contains("fused monitor #1"));
    }

    #[test]
    fn fused_rejects_future_operators_and_unknown_signals() {
        let table = SignalTable::builder().finish();
        assert!(matches!(
            FusedSuiteProgram::compile(&[parse("eventually(p)").unwrap()], &table),
            Err(EvalError::FutureOperator { .. })
        ));
        assert!(matches!(
            FusedSuiteProgram::compile(&[parse("p").unwrap()], &table),
            Err(EvalError::UnknownSignal { .. })
        ));
    }

    /// Feeds `t` to a scalar fused suite per lane and to one batch with
    /// a retirement schedule (`retire_at[l]` = observe count after which
    /// lane `l` stops), asserting identical verdicts at every step.
    fn assert_batch_matches_scalar_lanes(srcs: &[&str], traces: &[&Trace], retire_at: &[usize]) {
        let exprs: Vec<Expr> = srcs.iter().map(|s| parse(s).unwrap()).collect();
        let table = {
            let mut b = SignalTable::builder();
            for name in ["p", "q", "r"] {
                b.bool(name);
            }
            b.finish()
        };
        let program = Arc::new(FusedSuiteProgram::compile(&exprs, &table).unwrap());
        let lanes = traces.len();
        let mut batch = program.instantiate_batch(lanes);
        let mut scalars: Vec<FusedSuite> = (0..lanes).map(|_| program.instantiate()).collect();
        let max_len = traces.iter().map(|t| t.len()).max().unwrap_or(0);
        let mut frames: Vec<Frame> = (0..lanes).map(|_| table.frame()).collect();
        for step in 0..max_len {
            for l in 0..lanes {
                let lane_done = step >= retire_at[l].min(traces[l].len());
                if lane_done {
                    batch.retire_lane(l);
                } else {
                    frames[l] = table.frame_from_state_lossy(traces[l].state(step).unwrap());
                }
            }
            if batch.active_lanes() == 0 {
                break;
            }
            batch.observe_batch(&frames).unwrap();
            for (l, scalar) in scalars.iter_mut().enumerate() {
                if !batch.is_active(l) {
                    continue;
                }
                scalar.observe(&frames[l]).unwrap();
                for (m, src) in srcs.iter().enumerate() {
                    assert_eq!(
                        batch.verdict(l, m),
                        scalar.verdict(m),
                        "lane {l} monitor {m} (`{src}`) diverged at step {step}"
                    );
                }
            }
        }
        for (l, scalar) in scalars.iter().enumerate() {
            assert_eq!(
                batch.steps_observed(l),
                scalar.steps_observed(),
                "lane {l} step counter diverged"
            );
        }
    }

    #[test]
    fn batch_matches_scalar_fused_lanes() {
        let t0 = trace_of(&[
            ("p", vec![true, false, true, true, false, true]),
            ("q", vec![false, false, true, false, true, true]),
            ("r", vec![true, true, false, false, true, false]),
        ]);
        let t1 = trace_of(&[
            ("p", vec![false, false, true, false, true, true]),
            ("q", vec![true, true, true, false, false, false]),
            ("r", vec![false, true, false, true, false, true]),
        ]);
        let t2 = trace_of(&[
            ("p", vec![true, true, true, true, true, true]),
            ("q", vec![false, false, false, false, false, false]),
            ("r", vec![true, false, true, false, true, false]),
        ]);
        let srcs = [
            "always(p -> q)",
            "p -> prev(q)",
            "once(p && q) || held_for(r, 2ticks)",
            "historically(p || q) -> became(r)",
            "initially(p) <-> once_within(q, 3ticks)",
        ];
        // No retirement: all lanes run the full trace.
        assert_batch_matches_scalar_lanes(&srcs, &[&t0, &t1, &t2], &[6, 6, 6]);
        // Mid-batch retirement at different steps: surviving lanes'
        // verdicts and temporal history must be untouched.
        assert_batch_matches_scalar_lanes(&srcs, &[&t0, &t1, &t2], &[2, 6, 4]);
        assert_batch_matches_scalar_lanes(&srcs, &[&t0, &t1, &t2], &[0, 3, 6]);
    }

    #[test]
    fn batch_reset_reactivates_and_clears_history() {
        let mut b = SignalTable::builder();
        let p = b.bool("p");
        let table = b.finish();
        let program =
            Arc::new(FusedSuiteProgram::compile(&[parse("prev(p)").unwrap()], &table).unwrap());
        let mut batch = program.instantiate_batch(2);
        let mut frames = vec![table.frame(), table.frame()];
        frames[0].set(p, true);
        frames[1].set(p, true);
        batch.observe_batch(&frames).unwrap();
        batch.retire_lane(1);
        batch.retire_lane(1); // idempotent
        assert_eq!(batch.active_lanes(), 1);
        batch.observe_batch(&frames).unwrap();
        assert!(batch.verdict(0, 0));
        assert_eq!(batch.steps_observed(0), 2);
        assert_eq!(batch.steps_observed(1), 1, "retired lane froze");
        batch.reset();
        assert_eq!(batch.active_lanes(), 2);
        assert_eq!(batch.steps_observed(0), 0);
        batch.observe_batch(&frames).unwrap();
        assert!(!batch.verdict(0, 0), "reset must clear temporal history");
        assert!(!batch.verdict(1, 0), "reset must reactivate lane 1 clean");
    }

    #[test]
    fn reset_lane_rearms_one_lane_without_touching_neighbours() {
        let mut b = SignalTable::builder();
        let p = b.bool("p");
        let table = b.finish();
        let program = Arc::new(
            FusedSuiteProgram::compile(
                &[parse("prev(p)").unwrap(), parse("once(!p)").unwrap()],
                &table,
            )
            .unwrap(),
        );
        let mut batch = program.instantiate_batch(2);
        let mut frames = vec![table.frame(), table.frame()];
        frames[0].set(p, true);
        frames[1].set(p, false); // lane 1 trips `once(!p)` forever
        batch.observe_batch(&frames).unwrap();
        batch.observe_batch(&frames).unwrap();
        assert!(batch.verdict(1, 1), "lane 1 latched once(!p)");
        batch.retire_lane(1);
        assert_eq!(batch.active_lanes(), 1);

        // Re-arm lane 1 for a fresh run whose samples never violate.
        batch.reset_lane(1);
        assert_eq!(batch.active_lanes(), 2);
        assert_eq!(batch.steps_observed(1), 0);
        assert_eq!(batch.steps_observed(0), 2, "neighbour untouched");
        frames[1].set(p, true);
        batch.observe_batch(&frames).unwrap();
        assert!(
            !batch.verdict(1, 1),
            "reclaimed lane must not inherit the previous run's once() latch"
        );
        assert!(
            !batch.verdict(1, 0),
            "reclaimed lane restarts with empty prev() history"
        );
        assert!(batch.verdict(0, 0), "neighbour's prev(p) history survived");
        assert_eq!(batch.steps_observed(0), 3);
        assert_eq!(batch.steps_observed(1), 1);
    }

    #[test]
    fn batch_errors_name_the_lane_and_monitor() {
        let mut b = SignalTable::builder();
        b.bool("p");
        b.bool("q");
        let table = b.finish();
        let exprs = [parse("p").unwrap(), parse("p || q").unwrap()];
        let program = Arc::new(FusedSuiteProgram::compile(&exprs, &table).unwrap());
        let mut batch = program.instantiate_batch(2);
        let mut ok = table.frame();
        ok.set_named("p", true);
        ok.set_named("q", false);
        let mut missing_q = table.frame();
        missing_q.set_named("p", true);
        let err = batch.observe_batch(&[ok, missing_q]).unwrap_err();
        assert_eq!((err.lane, err.monitor), (1, 1));
        assert!(matches!(err.source, EvalError::MissingVar { ref name, .. } if name == "q"));
        assert!(err.to_string().contains("lane #1"));
    }

    #[test]
    fn missing_and_mistyped_signals_error_by_name() {
        let mut m = CompiledMonitor::compile(&parse("p").unwrap()).unwrap();
        assert_eq!(
            m.observe(&m.table().clone().frame()).unwrap_err(),
            EvalError::MissingVar {
                name: "p".into(),
                step: 0
            }
        );
        let mut m2 = CompiledMonitor::compile(&parse("p || q").unwrap()).unwrap();
        let s = State::new().with_int("p", 3).with_bool("q", true);
        assert!(matches!(
            m2.observe_state(&s),
            Err(EvalError::NotBoolean { name, found: "int" }) if name == "p"
        ));
    }
}
