//! Incremental (per-tick) evaluation for run-time goal monitoring.
//!
//! A [`CompiledMonitor`] consumes one [`Frame`] per tick and reports the
//! goal's *current* truth in O(#subformulas) time and O(#subformulas)
//! memory, independent of trace length. This is the engine behind the
//! thesis's run-time safety-goal monitors.
//!
//! Compilation is two-phase: [`CompiledMonitor::compile_in`] resolves
//! every variable reference against a shared [`SignalTable`] **once**, so
//! the per-tick loop is pure [`SignalId`]-indexed slot access — no string
//! lookups, no allocation. [`CompiledMonitor::compile`] is the
//! table-less convenience for tests and goal authoring: it infers a
//! private table from the formula's own variables and accepts name-keyed
//! [`State`] samples through [`CompiledMonitor::observe_state`].
//!
//! # Program / state split
//!
//! A compiled monitor is two parts:
//!
//! * a [`CompiledProgram`] — the immutable compiled form (expression
//!   nodes with resolved [`SignalId`] slots), shared across monitor
//!   instances via [`Arc`]. Compiling is the expensive step (parse-tree
//!   walk, name resolution); a program compiled once per sweep serves
//!   every cell.
//! * a small per-run state: one [`Cell`](CompiledProgram) per temporal
//!   subformula plus a step counter. [`CompiledProgram::instantiate`]
//!   materializes a fresh monitor in O(#temporal subformulas) — a single
//!   `memcpy` of the initial cell values — and
//!   [`CompiledMonitor::reset`] restores it in place without
//!   reallocating.
//!
//! Because the program knows, per subformula, whether any temporal state
//! lives below it, evaluation short-circuits `&&` / `||` / `->` over
//! *stateless* subtrees exactly like the reference evaluator
//! ([`crate::eval::eval_at`]) does, while still feeding every frame to
//! every stateful subformula so monitor history never desyncs. Verdicts
//! are identical to exhaustive evaluation on every error-free frame.
//!
//! # Monitor semantics
//!
//! Run-time monitors cannot see the future, so the future-directed forms are
//! reinterpreted with *violation semantics* (see [`monitor_form`]):
//!
//! * `always(p)` monitors `p` — a violation is reported at exactly the
//!   states where `p` is false;
//! * `p => q` (all-states entailment) monitors `p -> q` per state;
//! * `p <-> q` monitors per-state agreement;
//! * `eventually`/`next` are rejected ([`EvalError::FutureOperator`]) —
//!   the thesis notes goals containing ♦ are not finitely violable.

use crate::error::EvalError;
use crate::eval;
use crate::expr::{CmpOp, Expr, Operand};
use crate::signal::{Frame, SignalId, SignalKind, SignalTable};
use crate::state::State;
use crate::value::Value;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Rewrites an expression into its run-time-monitorable form.
///
/// `always(p)` becomes `p`, `p => q` becomes `p -> q`, `p <-> q` becomes
/// `(p -> q) && (q -> p)`; all past-time operators pass through unchanged.
///
/// # Errors
///
/// Returns [`EvalError::FutureOperator`] if the expression contains
/// `eventually` or `next`.
///
/// # Example
///
/// ```
/// use esafe_logic::{parse, incremental::monitor_form};
/// let e = parse("always(p => q)").unwrap();
/// assert_eq!(monitor_form(&e).unwrap().to_string(), "p -> q");
/// ```
pub fn monitor_form(expr: &Expr) -> Result<Expr, EvalError> {
    Ok(match expr {
        Expr::Const(_) | Expr::Var(_) | Expr::Cmp { .. } => expr.clone(),
        Expr::Not(e) => Expr::not(monitor_form(e)?),
        Expr::And(items) => Expr::And(
            items
                .iter()
                .map(monitor_form)
                .collect::<Result<Vec<_>, _>>()?,
        ),
        Expr::Or(items) => Expr::Or(
            items
                .iter()
                .map(monitor_form)
                .collect::<Result<Vec<_>, _>>()?,
        ),
        Expr::Implies(a, b) => Expr::implies(monitor_form(a)?, monitor_form(b)?),
        Expr::Entails(a, b) => Expr::implies(monitor_form(a)?, monitor_form(b)?),
        Expr::Iff(a, b) => {
            let (a, b) = (monitor_form(a)?, monitor_form(b)?);
            Expr::and(Expr::implies(a.clone(), b.clone()), Expr::implies(b, a))
        }
        Expr::Prev(e) => Expr::prev(monitor_form(e)?),
        Expr::Once(e) => Expr::once(monitor_form(e)?),
        Expr::Historically(e) => Expr::historically(monitor_form(e)?),
        Expr::HeldFor { expr, ticks } => Expr::held_for(monitor_form(expr)?, *ticks),
        Expr::OnceWithin { expr, ticks } => Expr::once_within(monitor_form(expr)?, *ticks),
        Expr::Became(e) => Expr::became(monitor_form(e)?),
        Expr::Initially(e) => Expr::initially(monitor_form(e)?),
        Expr::Always(e) => monitor_form(e)?,
        Expr::Eventually(_) => {
            return Err(EvalError::FutureOperator {
                operator: "eventually",
            })
        }
        Expr::Next(_) => return Err(EvalError::FutureOperator { operator: "next" }),
    })
}

/// Infers a private [`SignalTable`] from a formula's own variable
/// references: boolean atoms become [`SignalKind::Bool`], comparison
/// operands become [`SignalKind::Sym`] when compared against a symbol
/// literal and [`SignalKind::Real`] otherwise. Backs the table-less
/// [`CompiledMonitor::compile`] path.
pub fn infer_table(expr: &Expr) -> Arc<SignalTable> {
    let mut kinds: BTreeMap<String, SignalKind> = BTreeMap::new();
    expr.visit(&mut |e| match e {
        Expr::Var(v) => {
            kinds.entry(v.clone()).or_insert(SignalKind::Bool);
        }
        Expr::Cmp { lhs, op: _, rhs } => {
            let sym_literal = matches!(lhs, Operand::Lit(Value::Sym(_)))
                || matches!(rhs, Operand::Lit(Value::Sym(_)));
            for operand in [lhs, rhs] {
                if let Operand::Var(v) = operand {
                    let kind = if sym_literal {
                        SignalKind::Sym
                    } else {
                        SignalKind::Real
                    };
                    kinds.entry(v.clone()).or_insert(kind);
                }
            }
        }
        _ => {}
    });
    let mut builder = SignalTable::builder();
    for (name, kind) in kinds {
        builder.signal(&name, kind);
    }
    builder.finish()
}

/// A compiled incremental monitor for one goal expression.
///
/// # Example
///
/// ```
/// use esafe_logic::{parse, CompiledMonitor, SignalTable};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SignalTable::builder();
/// let p = b.bool("p");
/// let q = b.bool("q");
/// let table = b.finish();
///
/// let mut m = CompiledMonitor::compile_in(&parse("always(p || prev(q))")?, &table)?;
/// let mut frame = table.frame();
/// frame.set(p, false);
/// frame.set(q, true);
/// let t1 = m.observe(&frame)?;
/// frame.set(q, false);
/// let t2 = m.observe(&frame)?;
/// assert!(!t1); // no previous state yet, p false
/// assert!(t2);  // q held in the previous state
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CompiledMonitor {
    program: Arc<CompiledProgram>,
    cells: Vec<Cell>,
    step: u64,
}

impl CompiledMonitor {
    /// Compiles an expression against a shared signal table, resolving
    /// every variable reference to a [`SignalId`] once.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::FutureOperator`] if the expression contains
    /// `eventually` or `next`, and [`EvalError::UnknownSignal`] if it
    /// references a name outside the table.
    pub fn compile_in(expr: &Expr, table: &Arc<SignalTable>) -> Result<Self, EvalError> {
        Ok(Arc::new(CompiledProgram::compile(expr, table)?).instantiate())
    }

    /// Compiles an expression over a private table inferred from its own
    /// variables (see [`infer_table`]) — the goal-authoring convenience
    /// used with [`CompiledMonitor::observe_state`].
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::FutureOperator`] if the expression contains
    /// `eventually` or `next`.
    pub fn compile(expr: &Expr) -> Result<Self, EvalError> {
        Self::compile_in(expr, &infer_table(expr))
    }

    /// The signal table the monitor's variable references resolve into.
    pub fn table(&self) -> &Arc<SignalTable> {
        &self.program.table
    }

    /// The immutable compiled program this monitor executes. Sharing it
    /// via [`CompiledProgram::instantiate`] yields further monitors
    /// without recompiling.
    pub fn program(&self) -> &Arc<CompiledProgram> {
        &self.program
    }

    /// Feeds the next frame and returns the goal's current truth.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] if a referenced signal is unset or mistyped
    /// in `frame`. The monitor's history is still advanced consistently on
    /// error-free subtrees, so callers should treat an error as fatal for
    /// this monitor instance.
    ///
    /// # Panics
    ///
    /// Panics if `frame` indexes a different table than the monitor was
    /// compiled against.
    pub fn observe(&mut self, frame: &Frame) -> Result<bool, EvalError> {
        assert!(
            Arc::ptr_eq(frame.table(), &self.program.table),
            "frame and monitor must share one signal table"
        );
        self.observe_trusted(frame)
    }

    /// [`CompiledMonitor::observe`] minus the release-mode table
    /// identity check — for batch callers (a [`MonitorSuite`]) that
    /// already verified the frame indexes this monitor's table once for
    /// many monitors. Identity is still `debug_assert`ed.
    ///
    /// [`MonitorSuite`]: ../../esafe_monitor/struct.MonitorSuite.html
    ///
    /// # Errors
    ///
    /// See [`CompiledMonitor::observe`].
    pub fn observe_trusted(&mut self, frame: &Frame) -> Result<bool, EvalError> {
        debug_assert!(
            Arc::ptr_eq(frame.table(), &self.program.table),
            "frame and monitor must share one signal table"
        );
        let step = usize::try_from(self.step).unwrap_or(usize::MAX);
        let v = self
            .program
            .root
            .node
            .eval(frame, step, &self.program.table, &mut self.cells)?;
        self.step += 1;
        Ok(v)
    }

    /// Feeds a name-keyed [`State`] sample by converting it to a frame
    /// over the monitor's table first (names the table does not know are
    /// ignored; referenced-but-absent names surface as
    /// [`EvalError::MissingVar`]). This is the seed-compatible slow path
    /// for tests and doctests — production loops hold [`Frame`]s.
    ///
    /// # Errors
    ///
    /// See [`CompiledMonitor::observe`].
    pub fn observe_state(&mut self, state: &State) -> Result<bool, EvalError> {
        let frame = self.program.table.frame_from_state_lossy(state);
        self.observe(&frame)
    }

    /// Number of samples observed so far.
    pub fn steps_observed(&self) -> u64 {
        self.step
    }

    /// Clears all history, returning the monitor to its initial state —
    /// a `memcpy` of the program's initial cell values, no allocation.
    pub fn reset(&mut self) {
        self.cells.copy_from_slice(&self.program.init_cells);
        self.step = 0;
    }
}

/// The immutable compiled form of one goal expression: the
/// [`monitor_form`]-rewritten node tree with every variable reference
/// resolved to a [`SignalId`] slot, plus the initial value of each
/// temporal state cell.
///
/// A program carries no run state, so one `Arc<CompiledProgram>` is
/// shared by every monitor instance evaluating the same goal — across
/// sweep cells, threads, and suite instantiations. See the
/// [module docs](self).
#[derive(Debug)]
pub struct CompiledProgram {
    table: Arc<SignalTable>,
    root: PChild,
    init_cells: Vec<Cell>,
}

impl CompiledProgram {
    /// Compiles an expression against a shared signal table.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::FutureOperator`] if the expression contains
    /// `eventually` or `next`, and [`EvalError::UnknownSignal`] if it
    /// references a name outside the table.
    pub fn compile(expr: &Expr, table: &Arc<SignalTable>) -> Result<Self, EvalError> {
        let rewritten = monitor_form(expr)?;
        let mut init_cells = Vec::new();
        let root = PChild::build(&rewritten, table, &mut init_cells)?;
        Ok(CompiledProgram {
            table: Arc::clone(table),
            root,
            init_cells,
        })
    }

    /// The signal table the program's variable references resolve into.
    pub fn table(&self) -> &Arc<SignalTable> {
        &self.table
    }

    /// Number of temporal state cells a monitor instance carries.
    pub fn state_cells(&self) -> usize {
        self.init_cells.len()
    }

    /// Materializes a fresh monitor over this program: one `Arc` clone
    /// plus a `memcpy` of the initial cell values — no parsing, no name
    /// resolution, no tree allocation.
    pub fn instantiate(self: &Arc<Self>) -> CompiledMonitor {
        CompiledMonitor {
            cells: self.init_cells.clone(),
            program: Arc::clone(self),
            step: 0,
        }
    }
}

/// A comparison operand with its variable reference resolved.
#[derive(Debug, Clone, Copy)]
enum Slot {
    Sig(SignalId),
    Lit(Value),
}

impl Slot {
    fn resolve(op: &Operand, table: &SignalTable) -> Result<Slot, EvalError> {
        Ok(match op {
            Operand::Var(name) => Slot::Sig(resolve(name, table)?),
            Operand::Lit(v) => Slot::Lit(*v),
        })
    }

    #[inline]
    fn value(&self, frame: &Frame, step: usize, table: &SignalTable) -> Result<Value, EvalError> {
        match self {
            Slot::Lit(v) => Ok(*v),
            Slot::Sig(id) => frame.get(*id).ok_or_else(|| EvalError::MissingVar {
                name: table.name(*id).to_owned(),
                step,
            }),
        }
    }
}

fn resolve(name: &str, table: &SignalTable) -> Result<SignalId, EvalError> {
    table.id(name).ok_or_else(|| EvalError::UnknownSignal {
        name: name.to_owned(),
    })
}

#[inline]
fn frame_bool(
    frame: &Frame,
    id: SignalId,
    step: usize,
    table: &SignalTable,
) -> Result<bool, EvalError> {
    match frame.get(id) {
        None => Err(EvalError::MissingVar {
            name: table.name(id).to_owned(),
            step,
        }),
        Some(Value::Bool(b)) => Ok(b),
        Some(other) => Err(EvalError::NotBoolean {
            name: table.name(id).to_owned(),
            found: other.type_name(),
        }),
    }
}

/// One temporal subformula's run state. Each variant's "empty history"
/// value is recorded in [`CompiledProgram::init_cells`] at compile time;
/// reset and instantiation are slice copies.
#[derive(Debug, Clone, Copy)]
enum Cell {
    /// `prev` / `became`: the child's value at the previous step.
    Last(Option<bool>),
    /// `once`: whether the child held at any strictly-earlier step.
    Seen(bool),
    /// `historically`: whether the child held at every earlier step.
    All(bool),
    /// `held_for`: length of the child's current true-run before now.
    Run(u64),
    /// `once_within`: the last step at which the child held.
    LastTrue(Option<u64>),
    /// `initially`: the child's value at the first step, once seen.
    Captured(Option<bool>),
}

/// A compiled subformula plus whether any temporal state lives below it.
/// Stateless subtrees may be skipped once a connective's result is
/// decided; stateful ones must see every frame.
#[derive(Debug)]
struct PChild {
    node: PNode,
    has_state: bool,
}

impl PChild {
    fn build(expr: &Expr, table: &SignalTable, cells: &mut Vec<Cell>) -> Result<Self, EvalError> {
        let before = cells.len();
        let node = PNode::build(expr, table, cells)?;
        Ok(PChild {
            node,
            has_state: cells.len() > before,
        })
    }
}

/// The immutable node tree of a [`CompiledProgram`]: expression shape
/// with resolved [`Slot`]s; temporal operators reference their run state
/// by cell index instead of holding it inline.
#[derive(Debug)]
enum PNode {
    Const(bool),
    Var(SignalId),
    Cmp {
        lhs: Slot,
        op: CmpOp,
        rhs: Slot,
    },
    Not(Box<PChild>),
    And(Vec<PChild>),
    Or(Vec<PChild>),
    Implies(Box<PChild>, Box<PChild>),
    Prev {
        child: Box<PChild>,
        cell: usize,
    },
    Once {
        child: Box<PChild>,
        cell: usize,
    },
    Historically {
        child: Box<PChild>,
        cell: usize,
    },
    HeldFor {
        child: Box<PChild>,
        ticks: u64,
        cell: usize,
    },
    OnceWithin {
        child: Box<PChild>,
        ticks: u64,
        cell: usize,
    },
    Became {
        child: Box<PChild>,
        cell: usize,
    },
    Initially {
        child: Box<PChild>,
        cell: usize,
    },
}

/// Allocates a state cell with its empty-history value, returning its
/// index. The temporal node's child is built *first* (recursion in
/// `PNode::build`), so child cells precede parent cells — irrelevant to
/// semantics, but deterministic.
fn alloc_cell(cells: &mut Vec<Cell>, init: Cell) -> usize {
    cells.push(init);
    cells.len() - 1
}

impl PNode {
    fn build(expr: &Expr, table: &SignalTable, cells: &mut Vec<Cell>) -> Result<PNode, EvalError> {
        let child = |e: &Expr, cells: &mut Vec<Cell>| -> Result<Box<PChild>, EvalError> {
            Ok(Box::new(PChild::build(e, table, cells)?))
        };
        Ok(match expr {
            Expr::Const(b) => PNode::Const(*b),
            Expr::Var(v) => PNode::Var(resolve(v, table)?),
            Expr::Cmp { lhs, op, rhs } => PNode::Cmp {
                lhs: Slot::resolve(lhs, table)?,
                op: *op,
                rhs: Slot::resolve(rhs, table)?,
            },
            Expr::Not(e) => PNode::Not(child(e, cells)?),
            Expr::And(items) => PNode::And(
                items
                    .iter()
                    .map(|e| PChild::build(e, table, cells))
                    .collect::<Result<_, _>>()?,
            ),
            Expr::Or(items) => PNode::Or(
                items
                    .iter()
                    .map(|e| PChild::build(e, table, cells))
                    .collect::<Result<_, _>>()?,
            ),
            Expr::Implies(a, b) => PNode::Implies(child(a, cells)?, child(b, cells)?),
            Expr::Prev(e) => PNode::Prev {
                child: child(e, cells)?,
                cell: alloc_cell(cells, Cell::Last(None)),
            },
            Expr::Once(e) => PNode::Once {
                child: child(e, cells)?,
                cell: alloc_cell(cells, Cell::Seen(false)),
            },
            Expr::Historically(e) => PNode::Historically {
                child: child(e, cells)?,
                cell: alloc_cell(cells, Cell::All(true)),
            },
            Expr::HeldFor { expr, ticks } => PNode::HeldFor {
                child: child(expr, cells)?,
                ticks: *ticks,
                cell: alloc_cell(cells, Cell::Run(0)),
            },
            Expr::OnceWithin { expr, ticks } => PNode::OnceWithin {
                child: child(expr, cells)?,
                ticks: *ticks,
                cell: alloc_cell(cells, Cell::LastTrue(None)),
            },
            Expr::Became(e) => PNode::Became {
                child: child(e, cells)?,
                cell: alloc_cell(cells, Cell::Last(None)),
            },
            Expr::Initially(e) => PNode::Initially {
                child: child(e, cells)?,
                cell: alloc_cell(cells, Cell::Captured(None)),
            },
            // monitor_form has eliminated these before PNode::build runs
            Expr::Entails(..)
            | Expr::Iff(..)
            | Expr::Always(_)
            | Expr::Eventually(_)
            | Expr::Next(_) => unreachable!("monitor_form eliminates future forms"),
        })
    }

    fn eval(
        &self,
        frame: &Frame,
        step: usize,
        table: &SignalTable,
        cells: &mut [Cell],
    ) -> Result<bool, EvalError> {
        match self {
            PNode::Const(b) => Ok(*b),
            PNode::Var(id) => frame_bool(frame, *id, step, table),
            PNode::Cmp { lhs, op, rhs } => {
                let a = lhs.value(frame, step, table)?;
                let b = rhs.value(frame, step, table)?;
                eval::compare_values(&a, *op, &b)
            }
            PNode::Not(e) => Ok(!e.node.eval(frame, step, table, cells)?),
            PNode::And(items) => {
                // Skip stateless children once the result is decided;
                // temporal sub-monitors still see every frame so their
                // history stays consistent.
                let mut all = true;
                for e in items {
                    if all || e.has_state {
                        all &= e.node.eval(frame, step, table, cells)?;
                    }
                }
                Ok(all)
            }
            PNode::Or(items) => {
                let mut any = false;
                for e in items {
                    if !any || e.has_state {
                        any |= e.node.eval(frame, step, table, cells)?;
                    }
                }
                Ok(any)
            }
            PNode::Implies(a, b) => {
                let av = a.node.eval(frame, step, table, cells)?;
                if av {
                    b.node.eval(frame, step, table, cells)
                } else {
                    if b.has_state {
                        b.node.eval(frame, step, table, cells)?;
                    }
                    Ok(true)
                }
            }
            PNode::Prev { child, cell } => {
                let cur = child.node.eval(frame, step, table, cells)?;
                let Cell::Last(last) = &mut cells[*cell] else {
                    unreachable!("cell kind fixed at compile time");
                };
                let out = last.unwrap_or(false);
                *last = Some(cur);
                Ok(out)
            }
            PNode::Once { child, cell } => {
                let cur = child.node.eval(frame, step, table, cells)?;
                let Cell::Seen(seen_true_before) = &mut cells[*cell] else {
                    unreachable!("cell kind fixed at compile time");
                };
                let out = *seen_true_before;
                *seen_true_before |= cur;
                Ok(out)
            }
            PNode::Historically { child, cell } => {
                let cur = child.node.eval(frame, step, table, cells)?;
                let Cell::All(all_true_before) = &mut cells[*cell] else {
                    unreachable!("cell kind fixed at compile time");
                };
                let out = *all_true_before;
                *all_true_before &= cur;
                Ok(out)
            }
            PNode::HeldFor { child, ticks, cell } => {
                let cur = child.node.eval(frame, step, table, cells)?;
                let Cell::Run(run_before) = &mut cells[*cell] else {
                    unreachable!("cell kind fixed at compile time");
                };
                let out = *ticks == 0 || *run_before >= *ticks;
                *run_before = if cur { run_before.saturating_add(1) } else { 0 };
                Ok(out)
            }
            PNode::OnceWithin { child, ticks, cell } => {
                let cur = child.node.eval(frame, step, table, cells)?;
                let Cell::LastTrue(last_true_step) = &mut cells[*cell] else {
                    unreachable!("cell kind fixed at compile time");
                };
                let step_u64 = step as u64;
                let out = last_true_step.is_some_and(|lt| step_u64.saturating_sub(lt) <= *ticks);
                if cur {
                    *last_true_step = Some(step_u64);
                }
                Ok(out)
            }
            PNode::Became { child, cell } => {
                let cur = child.node.eval(frame, step, table, cells)?;
                let Cell::Last(last) = &mut cells[*cell] else {
                    unreachable!("cell kind fixed at compile time");
                };
                let out = cur && !last.unwrap_or(true);
                *last = Some(cur);
                Ok(out)
            }
            PNode::Initially { child, cell } => {
                let cur = child.node.eval(frame, step, table, cells)?;
                let Cell::Captured(captured) = &mut cells[*cell] else {
                    unreachable!("cell kind fixed at compile time");
                };
                if captured.is_none() {
                    *captured = Some(cur);
                }
                Ok(captured.expect("just set"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_trace;
    use crate::parse;
    use crate::state::Trace;

    fn trace_of(bits: &[(&str, Vec<bool>)]) -> Trace {
        let n = bits[0].1.len();
        let mut t = Trace::with_tick_millis(1);
        for i in 0..n {
            let mut s = State::new();
            for (name, vals) in bits {
                s.set(*name, vals[i]);
            }
            t.push(s);
        }
        t
    }

    fn monitor_run(src: &str, t: &Trace) -> Vec<bool> {
        let mut m = CompiledMonitor::compile(&parse(src).unwrap()).unwrap();
        t.iter().map(|s| m.observe_state(s).unwrap()).collect()
    }

    #[test]
    fn matches_reference_on_past_only_formulas() {
        let t = trace_of(&[
            ("p", vec![true, false, true, true, false, true]),
            ("q", vec![false, false, true, false, true, true]),
        ]);
        for src in [
            "prev(p)",
            "once(p && q)",
            "historically(p || q)",
            "held_for(p, 2ticks)",
            "once_within(q, 3ticks)",
            "became(p)",
            "initially(p) -> q",
            "prev(prev(p)) && !q",
        ] {
            let reference = eval_trace(&parse(src).unwrap(), &t).unwrap();
            assert_eq!(monitor_run(src, &t), reference, "mismatch for {src}");
        }
    }

    #[test]
    fn always_uses_violation_semantics() {
        let t = trace_of(&[("p", vec![true, false, true])]);
        // reference `always` is suffix-true; the monitor flags per-state.
        assert_eq!(monitor_run("always(p)", &t), vec![true, false, true]);
    }

    #[test]
    fn entails_uses_per_state_semantics() {
        let t = trace_of(&[("p", vec![true, true]), ("q", vec![true, false])]);
        assert_eq!(monitor_run("p => q", &t), vec![true, false]);
    }

    #[test]
    fn iff_monitors_agreement() {
        let t = trace_of(&[("p", vec![true, false]), ("q", vec![true, true])]);
        assert_eq!(monitor_run("p <-> q", &t), vec![true, false]);
    }

    #[test]
    fn rejects_future_operators() {
        assert!(matches!(
            CompiledMonitor::compile(&parse("eventually(p)").unwrap()),
            Err(EvalError::FutureOperator { .. })
        ));
        assert!(matches!(
            CompiledMonitor::compile(&parse("next(p)").unwrap()),
            Err(EvalError::FutureOperator { .. })
        ));
    }

    #[test]
    fn compile_in_rejects_unknown_signals() {
        let table = SignalTable::builder().finish();
        assert_eq!(
            CompiledMonitor::compile_in(&parse("p").unwrap(), &table).unwrap_err(),
            EvalError::UnknownSignal { name: "p".into() }
        );
        let mut b = SignalTable::builder();
        b.real("x");
        assert!(matches!(
            CompiledMonitor::compile_in(&parse("x < missing").unwrap(), &b.finish()),
            Err(EvalError::UnknownSignal { name }) if name == "missing"
        ));
    }

    #[test]
    fn infer_table_assigns_kinds_by_position() {
        let e = parse("p && x < 2.0 && cmd == 'STOP'").unwrap();
        let t = infer_table(&e);
        assert_eq!(t.kind(t.id("p").unwrap()), SignalKind::Bool);
        assert_eq!(t.kind(t.id("x").unwrap()), SignalKind::Real);
        assert_eq!(t.kind(t.id("cmd").unwrap()), SignalKind::Sym);
    }

    #[test]
    fn comparisons_resolve_against_interned_symbols() {
        let mut b = SignalTable::builder();
        let cmd = b.sym("cmd");
        let table = b.finish();
        let mut m = CompiledMonitor::compile_in(&parse("cmd == 'STOP'").unwrap(), &table).unwrap();
        let mut f = table.frame();
        f.set(cmd, Value::sym("STOP"));
        assert!(m.observe(&f).unwrap());
        f.set(cmd, Value::sym("GO"));
        assert!(!m.observe(&f).unwrap());
    }

    #[test]
    fn short_circuit_does_not_desync_history() {
        // The `prev(q)` inside the And must track q even while p is false.
        let t = trace_of(&[
            ("p", vec![false, false, true]),
            ("q", vec![true, false, false]),
        ]);
        assert_eq!(monitor_run("p && prev(q)", &t), vec![false, false, false]);
        let t2 = trace_of(&[
            ("p", vec![false, true, true]),
            ("q", vec![true, true, false]),
        ]);
        assert_eq!(monitor_run("p && prev(q)", &t2), vec![false, true, true]);
    }

    #[test]
    fn reset_restores_initial_behaviour() {
        let mut m = CompiledMonitor::compile(&parse("prev(p)").unwrap()).unwrap();
        let s_true = State::new().with_bool("p", true);
        assert!(!m.observe_state(&s_true).unwrap());
        assert!(m.observe_state(&s_true).unwrap());
        m.reset();
        assert_eq!(m.steps_observed(), 0);
        assert!(!m.observe_state(&s_true).unwrap());
    }

    #[test]
    fn missing_and_mistyped_signals_error_by_name() {
        let mut m = CompiledMonitor::compile(&parse("p").unwrap()).unwrap();
        assert_eq!(
            m.observe(&m.table().clone().frame()).unwrap_err(),
            EvalError::MissingVar {
                name: "p".into(),
                step: 0
            }
        );
        let mut m2 = CompiledMonitor::compile(&parse("p || q").unwrap()).unwrap();
        let s = State::new().with_int("p", 3).with_bool("q", true);
        assert!(matches!(
            m2.observe_state(&s),
            Err(EvalError::NotBoolean { name, found: "int" }) if name == "p"
        ));
    }
}
