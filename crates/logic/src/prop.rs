//! Bounded propositional analysis: unrolling and model enumeration.
//!
//! The composability definitions of the thesis's Chapter 3 and the
//! realizability catalog of Chapter 4 / Appendix B reason about goals as
//! propositional formulas over state variables, possibly offset into the
//! past by `prev` (●). This module unrolls such expressions into
//! propositional formulas over `(variable, age)` atoms — `p@0` is `p` now,
//! `p@1` is `p` one state ago — and checks entailment, equivalence, and
//! satisfiability by explicit model enumeration.
//!
//! # Soundness scope
//!
//! * Comparisons are treated as *opaque atoms*: `x <= 2` and `x <= 3` are
//!   independent. Checks are therefore sound for the boolean structure of
//!   goals but do not exploit arithmetic.
//! * Atoms at distinct ages are free: checks quantify over arbitrary
//!   state windows, ignoring the trace-initial corner where `prev(_)` is
//!   false. Validity over free windows implies validity at every
//!   mid-trace state, which is the guarantee the ICPA catalog needs; the
//!   initial state is covered separately by explicit `initially(_)`
//!   assumptions in elaborations (thesis §4.4.3).
//! * Unbounded-past (`once`, `historically`), bounded-window, and future
//!   operators cannot be unrolled and yield [`PropError::Unboundable`].

use crate::error::PropError;
use crate::expr::{Expr, Operand};
use std::collections::BTreeMap;

/// Maximum number of distinct `(variable, age)` atoms the enumerator will
/// accept (2^20 ≈ 1M models).
pub const ATOM_LIMIT: usize = 20;

/// A propositional atom: a variable (or opaque comparison) at a past age.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AtomKey {
    /// Variable name or canonical comparison rendering.
    pub key: String,
    /// Number of states into the past (0 = current state).
    pub age: u32,
}

impl std::fmt::Display for AtomKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.age == 0 {
            write!(f, "{}", self.key)
        } else {
            write!(f, "{}@{}", self.key, self.age)
        }
    }
}

#[derive(Debug, Clone)]
enum PropFormula {
    Const(bool),
    Atom(usize),
    Not(Box<PropFormula>),
    And(Vec<PropFormula>),
    Or(Vec<PropFormula>),
}

impl PropFormula {
    fn eval(&self, assignment: u64) -> bool {
        match self {
            PropFormula::Const(b) => *b,
            PropFormula::Atom(i) => assignment & (1 << i) != 0,
            PropFormula::Not(e) => !e.eval(assignment),
            PropFormula::And(items) => items.iter().all(|e| e.eval(assignment)),
            PropFormula::Or(items) => items.iter().any(|e| e.eval(assignment)),
        }
    }
}

/// A set of expressions unrolled over a shared atom table, ready for model
/// enumeration.
///
/// # Example
///
/// ```
/// use esafe_logic::{parse, prop::PropSet};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = parse("prev(p) -> q")?;
/// let b = parse("!q -> !prev(p)")?;
/// let set = PropSet::build(&[&a, &b])?;
/// assert!(set.equivalent(0, 1)); // contrapositive
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PropSet {
    atoms: Vec<AtomKey>,
    formulas: Vec<PropFormula>,
}

impl PropSet {
    /// Unrolls `exprs` over a shared atom table.
    ///
    /// # Errors
    ///
    /// [`PropError::Unboundable`] for expressions containing unbounded or
    /// future operators; [`PropError::TooManyAtoms`] past [`ATOM_LIMIT`].
    pub fn build(exprs: &[&Expr]) -> Result<Self, PropError> {
        let mut table: BTreeMap<AtomKey, usize> = BTreeMap::new();
        let mut formulas = Vec::with_capacity(exprs.len());
        for e in exprs {
            formulas.push(unroll(e, 0, &mut table)?);
        }
        if table.len() > ATOM_LIMIT {
            return Err(PropError::TooManyAtoms {
                found: table.len(),
                limit: ATOM_LIMIT,
            });
        }
        let mut atoms = vec![
            AtomKey {
                key: String::new(),
                age: 0
            };
            table.len()
        ];
        for (k, i) in table {
            atoms[i] = k;
        }
        Ok(PropSet { atoms, formulas })
    }

    /// The shared atom table.
    pub fn atoms(&self) -> &[AtomKey] {
        &self.atoms
    }

    /// Number of formulas in the set (indexing order follows `build`).
    pub fn len(&self) -> usize {
        self.formulas.len()
    }

    /// Whether the set holds no formulas.
    pub fn is_empty(&self) -> bool {
        self.formulas.is_empty()
    }

    fn model_count(&self) -> u64 {
        1u64 << self.atoms.len()
    }

    /// Evaluates formula `idx` under the given atom assignment bitmask.
    pub fn eval(&self, idx: usize, assignment: u64) -> bool {
        self.formulas[idx].eval(assignment)
    }

    /// Counts models satisfying `pred` over the formulas' truth values.
    ///
    /// `pred` receives the per-formula truth vector for each assignment.
    pub fn count_models_where(&self, mut pred: impl FnMut(&[bool]) -> bool) -> u64 {
        let mut truths = vec![false; self.formulas.len()];
        let mut count = 0;
        for m in 0..self.model_count() {
            for (i, f) in self.formulas.iter().enumerate() {
                truths[i] = f.eval(m);
            }
            if pred(&truths) {
                count += 1;
            }
        }
        count
    }

    /// Whether formula `a` entails formula `b` (every model of `a`
    /// satisfies `b`).
    pub fn entails(&self, a: usize, b: usize) -> bool {
        self.count_models_where(|t| t[a] && !t[b]) == 0
    }

    /// Whether the conjunction of `premises` entails formula `b`.
    pub fn all_entail(&self, premises: &[usize], b: usize) -> bool {
        self.count_models_where(|t| premises.iter().all(|&i| t[i]) && !t[b]) == 0
    }

    /// Whether formulas `a` and `b` agree in every model.
    pub fn equivalent(&self, a: usize, b: usize) -> bool {
        self.count_models_where(|t| t[a] != t[b]) == 0
    }

    /// Whether formula `a` has at least one model.
    pub fn satisfiable(&self, a: usize) -> bool {
        self.count_models_where(|t| t[a]) > 0
    }

    /// Whether the conjunction of all formulas is satisfiable.
    pub fn jointly_satisfiable(&self, idxs: &[usize]) -> bool {
        self.count_models_where(|t| idxs.iter().all(|&i| t[i])) > 0
    }
}

fn unroll(
    expr: &Expr,
    age: u32,
    table: &mut BTreeMap<AtomKey, usize>,
) -> Result<PropFormula, PropError> {
    let mut atom = |key: String, age: u32| -> PropFormula {
        let k = AtomKey { key, age };
        let next = table.len();
        let idx = *table.entry(k).or_insert(next);
        PropFormula::Atom(idx)
    };
    Ok(match expr {
        Expr::Const(b) => PropFormula::Const(*b),
        Expr::Var(v) => atom(v.clone(), age),
        Expr::Cmp { lhs, op, rhs } => {
            // Canonicalize so `x < 2` and `2 > x` share one atom.
            let key = match (lhs, rhs) {
                (Operand::Lit(_), Operand::Var(_)) => {
                    format!("{rhs} {} {lhs}", op.flipped().symbol())
                }
                _ => format!("{lhs} {} {rhs}", op.symbol()),
            };
            atom(key, age)
        }
        Expr::Not(e) => PropFormula::Not(Box::new(unroll(e, age, table)?)),
        Expr::And(items) => PropFormula::And(
            items
                .iter()
                .map(|e| unroll(e, age, table))
                .collect::<Result<_, _>>()?,
        ),
        Expr::Or(items) => PropFormula::Or(
            items
                .iter()
                .map(|e| unroll(e, age, table))
                .collect::<Result<_, _>>()?,
        ),
        // Per-state validity view: both implication forms check the same
        // window-local implication; `always` unrolls to its body.
        Expr::Implies(a, b) | Expr::Entails(a, b) => PropFormula::Or(vec![
            PropFormula::Not(Box::new(unroll(a, age, table)?)),
            unroll(b, age, table)?,
        ]),
        Expr::Iff(a, b) => {
            let (fa, fb) = (unroll(a, age, table)?, unroll(b, age, table)?);
            PropFormula::Or(vec![
                PropFormula::And(vec![fa.clone(), fb.clone()]),
                PropFormula::And(vec![
                    PropFormula::Not(Box::new(fa)),
                    PropFormula::Not(Box::new(fb)),
                ]),
            ])
        }
        Expr::Always(e) => unroll(e, age, table)?,
        Expr::Prev(e) => unroll(e, age + 1, table)?,
        Expr::Became(e) => PropFormula::And(vec![
            unroll(e, age, table)?,
            PropFormula::Not(Box::new(unroll(e, age + 1, table)?)),
        ]),
        Expr::Once(_) => return Err(PropError::Unboundable { operator: "once" }),
        Expr::Historically(_) => {
            return Err(PropError::Unboundable {
                operator: "historically",
            })
        }
        Expr::HeldFor { .. } => {
            return Err(PropError::Unboundable {
                operator: "held_for",
            })
        }
        Expr::OnceWithin { .. } => {
            return Err(PropError::Unboundable {
                operator: "once_within",
            })
        }
        Expr::Initially(_) => {
            return Err(PropError::Unboundable {
                operator: "initially",
            })
        }
        Expr::Eventually(_) => {
            return Err(PropError::Unboundable {
                operator: "eventually",
            })
        }
        Expr::Next(_) => return Err(PropError::Unboundable { operator: "next" }),
    })
}

/// Convenience: does the conjunction of `premises` entail `conclusion`?
///
/// # Errors
///
/// See [`PropSet::build`].
///
/// ```
/// use esafe_logic::{parse, prop};
/// let p = parse("a -> b").unwrap();
/// let q = parse("b -> c").unwrap();
/// let r = parse("a -> c").unwrap();
/// assert!(prop::entails(&[&p, &q], &r).unwrap());
/// assert!(!prop::entails(&[&p], &r).unwrap());
/// ```
pub fn entails(premises: &[&Expr], conclusion: &Expr) -> Result<bool, PropError> {
    let mut exprs: Vec<&Expr> = premises.to_vec();
    exprs.push(conclusion);
    let set = PropSet::build(&exprs)?;
    let premise_idx: Vec<usize> = (0..premises.len()).collect();
    Ok(set.all_entail(&premise_idx, premises.len()))
}

/// Entailment treating each premise as an *invariant*: premises hold at
/// every state, so each is asserted at every past offset the window
/// reaches. This is the check ICPA elaborations need — subgoals are
/// always-goals, and a conclusion referencing `prev(prev(x))` may require a
/// premise instantiated one state back.
///
/// # Errors
///
/// See [`PropSet::build`].
///
/// ```
/// use esafe_logic::{parse, prop};
/// // danger two states ago ⇒ ¬effect, via an enable dropped one state ago.
/// let g = parse("prev(danger) -> !enable").unwrap();
/// let ctrl = parse("prev(!enable) -> !effect").unwrap();
/// let parent = parse("prev(prev(danger)) -> !effect").unwrap();
/// assert!(!prop::entails(&[&g, &ctrl], &parent).unwrap()); // one age only
/// assert!(prop::entails_invariant(&[&g, &ctrl], &parent).unwrap());
/// ```
pub fn entails_invariant(premises: &[&Expr], conclusion: &Expr) -> Result<bool, PropError> {
    // Formulas with wide bounded windows (`held_for`, `once_within`) are
    // not propositionally unrollable anyway; cap the shift depth so the
    // pre-check never builds pathologically deep `prev` chains before the
    // unroller rejects them.
    const MAX_SHIFT: u32 = 8;
    let depth = premises
        .iter()
        .map(|p| p.prev_depth())
        .chain(std::iter::once(conclusion.prev_depth()))
        .max()
        .unwrap_or(0)
        .min(MAX_SHIFT);
    let mut shifted: Vec<Expr> = Vec::new();
    for p in premises {
        for k in 0..=depth {
            let mut e = (*p).clone();
            for _ in 0..k {
                e = Expr::prev(e);
            }
            shifted.push(e);
        }
    }
    let refs: Vec<&Expr> = shifted.iter().collect();
    entails(&refs, conclusion)
}

/// Convenience: are `a` and `b` materially equivalent in all states?
///
/// # Errors
///
/// See [`PropSet::build`].
pub fn equivalent(a: &Expr, b: &Expr) -> Result<bool, PropError> {
    let set = PropSet::build(&[a, b])?;
    Ok(set.equivalent(0, 1))
}

/// Convenience: is `e` satisfiable?
///
/// # Errors
///
/// See [`PropSet::build`].
pub fn satisfiable(e: &Expr) -> Result<bool, PropError> {
    let set = PropSet::build(&[e])?;
    Ok(set.satisfiable(0))
}

/// Convenience: is `e` valid (true in every model)?
///
/// # Errors
///
/// See [`PropSet::build`].
pub fn valid(e: &Expr) -> Result<bool, PropError> {
    let set = PropSet::build(&[e])?;
    Ok(set.count_models_where(|t| !t[0]) == 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn p(s: &str) -> Expr {
        parse(s).unwrap()
    }

    #[test]
    fn modus_ponens_and_chaining() {
        assert!(entails(&[&p("a"), &p("a -> b")], &p("b")).unwrap());
        assert!(entails(&[&p("a -> b"), &p("b -> c")], &p("a -> c")).unwrap());
        assert!(!entails(&[&p("a -> b")], &p("b -> a")).unwrap());
    }

    #[test]
    fn de_morgan_laws() {
        assert!(equivalent(&p("!(a && b)"), &p("!a || !b")).unwrap());
        assert!(equivalent(&p("!(a || b)"), &p("!a && !b")).unwrap());
    }

    #[test]
    fn entails_operator_acts_like_implication_statewise() {
        assert!(equivalent(&p("a => b"), &p("!a || b")).unwrap());
        assert!(equivalent(&p("always(a -> b)"), &p("a => b")).unwrap());
    }

    #[test]
    fn prev_offsets_create_distinct_atoms() {
        assert!(!equivalent(&p("prev(a)"), &p("a")).unwrap());
        assert!(equivalent(&p("prev(a && b)"), &p("prev(a) && prev(b)")).unwrap());
        assert!(equivalent(&p("prev(prev(a))"), &p("prev(prev(a))")).unwrap());
    }

    #[test]
    fn became_unrolls_to_edge() {
        assert!(equivalent(&p("became(a)"), &p("a && !prev(a)")).unwrap());
    }

    #[test]
    fn comparisons_are_opaque_but_canonicalized() {
        // Same comparison written both ways shares an atom.
        assert!(equivalent(&p("x < 2"), &p("2 > x")).unwrap());
        // Different bounds are independent atoms (documented limitation).
        assert!(!entails(&[&p("x < 2")], &p("x < 3")).unwrap());
    }

    #[test]
    fn satisfiability_and_validity() {
        assert!(satisfiable(&p("a && !b")).unwrap());
        assert!(!satisfiable(&p("a && !a")).unwrap());
        assert!(valid(&p("a || !a")).unwrap());
        assert!(!valid(&p("a")).unwrap());
    }

    #[test]
    fn unboundable_operators_are_rejected() {
        for src in [
            "once(a)",
            "historically(a)",
            "held_for(a, 2ticks)",
            "once_within(a, 2ticks)",
            "eventually(a)",
            "next(a)",
            "initially(a)",
        ] {
            assert!(
                matches!(satisfiable(&p(src)), Err(PropError::Unboundable { .. })),
                "{src} should be unboundable"
            );
        }
    }

    #[test]
    fn count_models_where_counts_correctly() {
        let a = p("a");
        let b = p("b");
        let set = PropSet::build(&[&a, &b]).unwrap();
        // 4 models over {a, b}; a && !b holds in exactly one.
        assert_eq!(set.count_models_where(|t| t[0] && !t[1]), 1);
        assert_eq!(set.count_models_where(|_| true), 4);
    }

    #[test]
    fn atom_limit_is_enforced() {
        let big = Expr::and_all((0..25).map(|i| Expr::var(format!("v{i}"))));
        assert!(matches!(
            satisfiable(&big),
            Err(PropError::TooManyAtoms { .. })
        ));
    }

    #[test]
    fn atom_key_display() {
        assert_eq!(
            AtomKey {
                key: "p".into(),
                age: 0
            }
            .to_string(),
            "p"
        );
        assert_eq!(
            AtomKey {
                key: "p".into(),
                age: 2
            }
            .to_string(),
            "p@2"
        );
    }
}
