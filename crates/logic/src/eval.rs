//! Reference evaluation of expressions over complete recorded traces.
//!
//! This is the semantics of record: simple, direct recursion over the trace.
//! The incremental monitor in [`crate::incremental`] is property-tested
//! against it.

use crate::error::EvalError;
use crate::expr::{CmpOp, Expr, Operand};
use crate::state::{State, Trace};
use crate::value::Value;

/// Evaluates `expr` at every sample of `trace`, returning one truth value
/// per sample.
///
/// Future operators (`always`, `eventually`, `next`) are evaluated with
/// complete-trace semantics: `always(p)` at step `i` is true iff `p` holds
/// at every step `j ≥ i`, and so on. Past operators follow the conventions
/// documented on [`Expr`].
///
/// # Errors
///
/// Returns [`EvalError`] if a referenced variable is missing from a sample,
/// has the wrong type, or an ordering comparison is applied to symbols.
///
/// # Example
///
/// ```
/// use esafe_logic::{parse, State, Trace, eval::eval_trace};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut t = Trace::with_tick_millis(1);
/// for p in [false, true, true] {
///     t.push(State::new().with_bool("p", p));
/// }
/// assert_eq!(eval_trace(&parse("once(p)")?, &t)?, vec![false, false, true]);
/// assert_eq!(eval_trace(&parse("became(p)")?, &t)?, vec![false, true, false]);
/// # Ok(())
/// # }
/// ```
pub fn eval_trace(expr: &Expr, trace: &Trace) -> Result<Vec<bool>, EvalError> {
    let n = trace.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(eval_at(expr, trace, i)?);
    }
    Ok(out)
}

/// Evaluates `expr` at sample index `step` of `trace`.
///
/// # Errors
///
/// See [`eval_trace`].
pub fn eval_at(expr: &Expr, trace: &Trace, step: usize) -> Result<bool, EvalError> {
    debug_assert!(step < trace.len(), "step out of range");
    match expr {
        Expr::Const(b) => Ok(*b),
        Expr::Var(name) => bool_var(trace.state(step).expect("in range"), name, step),
        Expr::Cmp { lhs, op, rhs } => {
            let s = trace.state(step).expect("in range");
            compare(lhs, *op, rhs, s, step)
        }
        Expr::Not(e) => Ok(!eval_at(e, trace, step)?),
        Expr::And(items) => {
            for e in items {
                if !eval_at(e, trace, step)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Expr::Or(items) => {
            for e in items {
                if eval_at(e, trace, step)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Expr::Implies(a, b) => Ok(!eval_at(a, trace, step)? || eval_at(b, trace, step)?),
        // `p => q` is `always(p -> q)`; per-step truth over a complete trace
        // requires the implication from this step onward.
        Expr::Entails(a, b) => {
            for j in step..trace.len() {
                if eval_at(a, trace, j)? && !eval_at(b, trace, j)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Expr::Iff(a, b) => {
            for j in step..trace.len() {
                if eval_at(a, trace, j)? != eval_at(b, trace, j)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Expr::Prev(e) => {
            if step == 0 {
                Ok(false)
            } else {
                eval_at(e, trace, step - 1)
            }
        }
        Expr::Once(e) => {
            for j in 0..step {
                if eval_at(e, trace, j)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Expr::Historically(e) => {
            for j in 0..step {
                if !eval_at(e, trace, j)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Expr::HeldFor { expr, ticks } => {
            let t = usize::try_from(*ticks).unwrap_or(usize::MAX);
            if t == 0 {
                return Ok(true);
            }
            if step < t {
                return Ok(false);
            }
            for j in (step - t)..step {
                if !eval_at(expr, trace, j)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Expr::OnceWithin { expr, ticks } => {
            let t = usize::try_from(*ticks).unwrap_or(usize::MAX);
            let lo = step.saturating_sub(t);
            for j in lo..step {
                if eval_at(expr, trace, j)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Expr::Became(e) => {
            if step == 0 {
                // @p ≡ ●¬p ∧ p, and ●x is false initially, so @p is false at
                // the first state regardless of p.
                Ok(false)
            } else {
                Ok(eval_at(e, trace, step)? && !eval_at(e, trace, step - 1)?)
            }
        }
        Expr::Initially(e) => {
            if trace.is_empty() {
                Ok(true)
            } else {
                eval_at(e, trace, 0)
            }
        }
        Expr::Always(e) => {
            for j in step..trace.len() {
                if !eval_at(e, trace, j)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Expr::Eventually(e) => {
            for j in step..trace.len() {
                if eval_at(e, trace, j)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Expr::Next(e) => {
            if step + 1 < trace.len() {
                eval_at(e, trace, step + 1)
            } else {
                Ok(false)
            }
        }
    }
}

/// Evaluates an expression against a single state with no history.
///
/// Past operators see an empty history (`prev` is false, `historically` is
/// vacuously true); future operators are rejected.
///
/// # Errors
///
/// See [`eval_trace`]; additionally returns [`EvalError::FutureOperator`]
/// for `always`/`eventually`/`next`.
pub fn eval_state(expr: &Expr, state: &State) -> Result<bool, EvalError> {
    match expr {
        Expr::Always(_) => Err(EvalError::FutureOperator { operator: "always" }),
        Expr::Eventually(_) => Err(EvalError::FutureOperator {
            operator: "eventually",
        }),
        Expr::Next(_) => Err(EvalError::FutureOperator { operator: "next" }),
        _ => {
            let mut t = Trace::with_tick_millis(1);
            t.push(state.clone());
            eval_at(expr, &t, 0)
        }
    }
}

pub(crate) fn bool_var(state: &State, name: &str, step: usize) -> Result<bool, EvalError> {
    match state.get(name) {
        None => Err(EvalError::MissingVar {
            name: name.to_owned(),
            step,
        }),
        Some(Value::Bool(b)) => Ok(*b),
        Some(other) => Err(EvalError::NotBoolean {
            name: name.to_owned(),
            found: other.type_name(),
        }),
    }
}

pub(crate) fn operand_value<'s>(
    op: &'s Operand,
    state: &'s State,
    step: usize,
) -> Result<&'s Value, EvalError> {
    match op {
        Operand::Lit(v) => Ok(v),
        Operand::Var(name) => state.get(name).ok_or_else(|| EvalError::MissingVar {
            name: name.clone(),
            step,
        }),
    }
}

pub(crate) fn compare(
    lhs: &Operand,
    op: CmpOp,
    rhs: &Operand,
    state: &State,
    step: usize,
) -> Result<bool, EvalError> {
    let a = operand_value(lhs, state, step)?;
    let b = operand_value(rhs, state, step)?;
    compare_values(a, op, b)
}

/// The one comparison semantics shared by the reference evaluator and the
/// id-based incremental monitor: numeric coercion between ints and reals,
/// equality-only symbols.
pub(crate) fn compare_values(a: &Value, op: CmpOp, b: &Value) -> Result<bool, EvalError> {
    let ordering_err = || EvalError::IncomparableValues {
        lhs: a.to_string(),
        rhs: b.to_string(),
    };
    match op {
        CmpOp::Eq => Ok(a.num_eq(b)),
        CmpOp::Ne => Ok(!a.num_eq(b)),
        CmpOp::Lt => a.num_lt(b).ok_or_else(ordering_err),
        CmpOp::Le => a.num_le(b).ok_or_else(ordering_err),
        CmpOp::Gt => b.num_lt(a).ok_or_else(ordering_err),
        CmpOp::Ge => b.num_le(a).ok_or_else(ordering_err),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn trace_of(bits: &[(&str, Vec<bool>)]) -> Trace {
        let n = bits[0].1.len();
        let mut t = Trace::with_tick_millis(1);
        for i in 0..n {
            let mut s = State::new();
            for (name, vals) in bits {
                s.set(*name, vals[i]);
            }
            t.push(s);
        }
        t
    }

    fn run(src: &str, t: &Trace) -> Vec<bool> {
        eval_trace(&parse(src).unwrap(), t).unwrap()
    }

    #[test]
    fn prev_is_false_initially() {
        let t = trace_of(&[("p", vec![true, false, true])]);
        assert_eq!(run("prev(p)", &t), vec![false, true, false]);
    }

    #[test]
    fn once_and_historically_are_strict_past() {
        let t = trace_of(&[("p", vec![true, false, false])]);
        assert_eq!(run("once(p)", &t), vec![false, true, true]);
        let t2 = trace_of(&[("p", vec![false, true, true])]);
        assert_eq!(run("historically(p)", &t2), vec![true, false, false]);
    }

    #[test]
    fn held_for_requires_full_window() {
        let t = trace_of(&[("p", vec![true, true, false, true, true])]);
        // window of 2 previous states
        assert_eq!(
            run("held_for(p, 2ticks)", &t),
            vec![false, false, true, false, false]
        );
    }

    #[test]
    fn once_within_looks_back_bounded() {
        let t = trace_of(&[("p", vec![true, false, false, false])]);
        assert_eq!(
            run("once_within(p, 2ticks)", &t),
            vec![false, true, true, false]
        );
    }

    #[test]
    fn became_detects_rising_edge_only() {
        let t = trace_of(&[("p", vec![false, true, true, false, true])]);
        assert_eq!(run("became(p)", &t), vec![false, true, false, false, true]);
    }

    #[test]
    fn entails_is_always_implication() {
        let t = trace_of(&[("p", vec![true, true]), ("q", vec![true, false])]);
        // violated at step 1, so => is false from step 0 and step 1
        assert_eq!(run("p => q", &t), vec![false, false]);
        let t2 = trace_of(&[("p", vec![true, false]), ("q", vec![true, false])]);
        assert_eq!(run("p => q", &t2), vec![true, true]);
    }

    #[test]
    fn future_operators_over_complete_trace() {
        let t = trace_of(&[("p", vec![false, true, false])]);
        assert_eq!(run("eventually(p)", &t), vec![true, true, false]);
        assert_eq!(run("always(!p)", &t), vec![false, false, true]);
        assert_eq!(run("next(p)", &t), vec![true, false, false]);
    }

    #[test]
    fn initially_is_constant_over_trace() {
        let t = trace_of(&[("p", vec![true, false, false])]);
        assert_eq!(run("initially(p)", &t), vec![true, true, true]);
    }

    #[test]
    fn comparisons_between_variables_and_literals() {
        let mut t = Trace::with_tick_millis(1);
        t.push(
            State::new()
                .with_real("x", 1.5)
                .with_int("y", 2)
                .with_sym("cmd", "STOP"),
        );
        assert!(eval_at(&parse("x < y").unwrap(), &t, 0).unwrap());
        assert!(eval_at(&parse("cmd == 'STOP'").unwrap(), &t, 0).unwrap());
        assert!(!eval_at(&parse("cmd != 'STOP'").unwrap(), &t, 0).unwrap());
        assert!(matches!(
            eval_at(&parse("cmd < 'GO'").unwrap(), &t, 0),
            Err(EvalError::IncomparableValues { .. })
        ));
    }

    #[test]
    fn missing_and_mistyped_variables_error() {
        let mut t = Trace::with_tick_millis(1);
        t.push(State::new().with_int("n", 3));
        assert!(matches!(
            eval_at(&parse("missing").unwrap(), &t, 0),
            Err(EvalError::MissingVar { .. })
        ));
        assert!(matches!(
            eval_at(&parse("n").unwrap(), &t, 0),
            Err(EvalError::NotBoolean { .. })
        ));
    }

    #[test]
    fn eval_state_rejects_future() {
        let s = State::new().with_bool("p", true);
        assert!(eval_state(&parse("p").unwrap(), &s).unwrap());
        assert!(matches!(
            eval_state(&parse("eventually(p)").unwrap(), &s),
            Err(EvalError::FutureOperator { .. })
        ));
    }
}
