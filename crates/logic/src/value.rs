//! Typed values carried by system state variables.

use serde::{Content, DeError, Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// A process-wide interned symbol: the payload of [`Value::Sym`].
///
/// Symbolic values are drawn from tiny command alphabets (`'STOP'`,
/// `'GO'`, `'UP'`, …) yet the seed implementation stored each occurrence
/// as a fresh `String`, so every simulator tick re-allocated the same
/// handful of texts. `Sym` interns each distinct text once, process-wide:
/// the value itself is a `Copy` 4-byte id, equality is an integer compare,
/// and writing a symbol into a [`Frame`](crate::Frame) allocates nothing.
///
/// Interning is idempotent and thread-safe (parallel sweeps intern
/// concurrently); texts are leaked once and live for the process, which is
/// bounded by the fixed alphabets the substrates use.
///
/// # Example
///
/// ```
/// use esafe_logic::Sym;
///
/// let a = Sym::new("STOP");
/// let b = Sym::new("STOP");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "STOP");
/// assert_ne!(a, Sym::new("GO"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sym(u32);

struct Interner {
    by_text: HashMap<&'static str, u32>,
    texts: Vec<&'static str>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            by_text: HashMap::new(),
            texts: Vec::new(),
        })
    })
}

impl Sym {
    /// Interns `text`, returning the same id for the same text forever.
    pub fn new(text: &str) -> Sym {
        if let Some(&id) = interner()
            .read()
            .expect("interner poisoned")
            .by_text
            .get(text)
        {
            return Sym(id);
        }
        let mut w = interner().write().expect("interner poisoned");
        if let Some(&id) = w.by_text.get(text) {
            return Sym(id);
        }
        let leaked: &'static str = Box::leak(text.to_owned().into_boxed_str());
        let id = u32::try_from(w.texts.len()).expect("symbol alphabet overflow");
        w.texts.push(leaked);
        w.by_text.insert(leaked, id);
        Sym(id)
    }

    /// The interned text.
    pub fn as_str(self) -> &'static str {
        interner().read().expect("interner poisoned").texts[self.0 as usize]
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Self {
        Sym::new(s)
    }
}

impl Serialize for Sym {
    fn to_content(&self) -> Content {
        Content::Str(self.as_str().to_owned())
    }
}

impl Deserialize for Sym {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(Sym::new(s)),
            _ => Err(DeError::custom("expected symbol string")),
        }
    }
}

/// The value of a state variable at one instant.
///
/// Safety goals compare variables against literals or other variables, so
/// values must support equality and ordering where meaningful. Numeric
/// comparisons coerce between [`Value::Int`] and [`Value::Real`]; symbolic
/// values ([`Value::Sym`], used for command enumerations such as `'STOP'` /
/// `'GO'`) support equality only.
///
/// `Value` is `Copy`: symbols are interned ([`Sym`]), so moving values
/// through the per-tick [`Frame`](crate::Frame) double buffer costs a
/// memcpy and no heap traffic.
///
/// # Example
///
/// ```
/// use esafe_logic::Value;
///
/// assert!(Value::Int(2).num_eq(&Value::Real(2.0)));
/// assert!(Value::Real(1.5).num_lt(&Value::Int(2)).unwrap());
/// assert_eq!(Value::sym("STOP"), Value::sym("STOP"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// A boolean state variable (e.g. `DoorClosed`).
    Bool(bool),
    /// An integer-valued variable (e.g. a floor index).
    Int(i64),
    /// A real-valued variable (e.g. `VehicleAcceleration.value` in m/s²).
    Real(f64),
    /// A symbolic/enumeration value (e.g. `DriveCommand = 'STOP'`).
    Sym(Sym),
}

impl Value {
    /// Convenience constructor for symbolic values.
    ///
    /// ```
    /// use esafe_logic::{Sym, Value};
    /// assert_eq!(Value::sym("GO"), Value::Sym(Sym::new("GO")));
    /// ```
    pub fn sym(s: impl AsRef<str>) -> Self {
        Value::Sym(Sym::new(s.as_ref()))
    }

    /// Returns the boolean payload, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the value as a real number when it is numeric.
    pub fn as_real(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Real(r) => Some(*r),
            _ => None,
        }
    }

    /// Returns the symbol payload, if this is a [`Value::Sym`].
    pub fn as_sym(&self) -> Option<Sym> {
        match self {
            Value::Sym(s) => Some(*s),
            _ => None,
        }
    }

    /// Numeric-coercing equality; falls back to structural equality for
    /// non-numeric values.
    pub fn num_eq(&self, other: &Value) -> bool {
        match (self.as_real(), other.as_real()) {
            (Some(a), Some(b)) => a == b,
            _ => self == other,
        }
    }

    /// Numeric less-than. Returns `None` when either side is not numeric.
    pub fn num_lt(&self, other: &Value) -> Option<bool> {
        Some(self.as_real()? < other.as_real()?)
    }

    /// Numeric less-than-or-equal. Returns `None` when either side is not
    /// numeric.
    pub fn num_le(&self, other: &Value) -> Option<bool> {
        Some(self.as_real()? <= other.as_real()?)
    }

    /// A short name for the value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Real(_) => "real",
            Value::Sym(_) => "sym",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => {
                if r.fract() == 0.0 && r.is_finite() && r.abs() < 1e15 {
                    write!(f, "{r:.1}")
                } else {
                    write!(f, "{r}")
                }
            }
            Value::Sym(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(r: f64) -> Self {
        Value::Real(r)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::sym(s)
    }
}

impl From<Sym> for Value {
    fn from(s: Sym) -> Self {
        Value::Sym(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_round_trip() {
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(1).as_bool(), None);
    }

    #[test]
    fn numeric_coercion_equality() {
        assert!(Value::Int(3).num_eq(&Value::Real(3.0)));
        assert!(!Value::Int(3).num_eq(&Value::Real(3.5)));
    }

    #[test]
    fn symbolic_equality_only() {
        assert_eq!(Value::sym("STOP"), Value::sym("STOP"));
        assert_ne!(Value::sym("STOP"), Value::sym("GO"));
        assert_eq!(Value::sym("STOP").num_lt(&Value::sym("GO")), None);
    }

    #[test]
    fn interning_is_stable_and_copy() {
        let a = Sym::new("interning_test_token");
        let b = Sym::new("interning_test_token");
        assert_eq!(a, b);
        let copied = a;
        assert_eq!(copied.as_str(), "interning_test_token");
        assert_eq!(Value::from(a), Value::sym("interning_test_token"));
    }

    #[test]
    fn sym_serde_round_trips_as_text() {
        let v = Value::sym("OPEN");
        let c = v.to_content();
        assert_eq!(Value::from_content(&c).unwrap(), v);
    }

    #[test]
    fn ordering() {
        assert_eq!(Value::Int(1).num_lt(&Value::Int(2)), Some(true));
        assert_eq!(Value::Real(2.0).num_le(&Value::Int(2)), Some(true));
        assert_eq!(Value::Real(2.1).num_le(&Value::Int(2)), Some(false));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Bool(false).to_string(), "false");
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Real(2.0).to_string(), "2.0");
        assert_eq!(Value::sym("OPEN").to_string(), "'OPEN'");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(4i64), Value::Int(4));
        assert_eq!(Value::from(0.5), Value::Real(0.5));
        assert_eq!(Value::from("X"), Value::sym("X"));
    }
}
