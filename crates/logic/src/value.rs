//! Typed values carried by system state variables.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The value of a state variable at one instant.
///
/// Safety goals compare variables against literals or other variables, so
/// values must support equality and ordering where meaningful. Numeric
/// comparisons coerce between [`Value::Int`] and [`Value::Real`]; symbolic
/// values ([`Value::Sym`], used for command enumerations such as `'STOP'` /
/// `'GO'`) support equality only.
///
/// # Example
///
/// ```
/// use esafe_logic::Value;
///
/// assert!(Value::Int(2).num_eq(&Value::Real(2.0)));
/// assert!(Value::Real(1.5).num_lt(&Value::Int(2)).unwrap());
/// assert_eq!(Value::sym("STOP"), Value::sym("STOP"));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// A boolean state variable (e.g. `DoorClosed`).
    Bool(bool),
    /// An integer-valued variable (e.g. a floor index).
    Int(i64),
    /// A real-valued variable (e.g. `VehicleAcceleration.value` in m/s²).
    Real(f64),
    /// A symbolic/enumeration value (e.g. `DriveCommand = 'STOP'`).
    Sym(String),
}

impl Value {
    /// Convenience constructor for symbolic values.
    ///
    /// ```
    /// use esafe_logic::Value;
    /// assert_eq!(Value::sym("GO"), Value::Sym("GO".to_owned()));
    /// ```
    pub fn sym(s: impl Into<String>) -> Self {
        Value::Sym(s.into())
    }

    /// Returns the boolean payload, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the value as a real number when it is numeric.
    pub fn as_real(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Real(r) => Some(*r),
            _ => None,
        }
    }

    /// Numeric-coercing equality; falls back to structural equality for
    /// non-numeric values.
    pub fn num_eq(&self, other: &Value) -> bool {
        match (self.as_real(), other.as_real()) {
            (Some(a), Some(b)) => a == b,
            _ => self == other,
        }
    }

    /// Numeric less-than. Returns `None` when either side is not numeric.
    pub fn num_lt(&self, other: &Value) -> Option<bool> {
        Some(self.as_real()? < other.as_real()?)
    }

    /// Numeric less-than-or-equal. Returns `None` when either side is not
    /// numeric.
    pub fn num_le(&self, other: &Value) -> Option<bool> {
        Some(self.as_real()? <= other.as_real()?)
    }

    /// A short name for the value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Real(_) => "real",
            Value::Sym(_) => "sym",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => {
                if r.fract() == 0.0 && r.is_finite() && r.abs() < 1e15 {
                    write!(f, "{r:.1}")
                } else {
                    write!(f, "{r}")
                }
            }
            Value::Sym(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(r: f64) -> Self {
        Value::Real(r)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::sym(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_round_trip() {
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(1).as_bool(), None);
    }

    #[test]
    fn numeric_coercion_equality() {
        assert!(Value::Int(3).num_eq(&Value::Real(3.0)));
        assert!(!Value::Int(3).num_eq(&Value::Real(3.5)));
    }

    #[test]
    fn symbolic_equality_only() {
        assert_eq!(Value::sym("STOP"), Value::sym("STOP"));
        assert_ne!(Value::sym("STOP"), Value::sym("GO"));
        assert_eq!(Value::sym("STOP").num_lt(&Value::sym("GO")), None);
    }

    #[test]
    fn ordering() {
        assert_eq!(Value::Int(1).num_lt(&Value::Int(2)), Some(true));
        assert_eq!(Value::Real(2.0).num_le(&Value::Int(2)), Some(true));
        assert_eq!(Value::Real(2.1).num_le(&Value::Int(2)), Some(false));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Bool(false).to_string(), "false");
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Real(2.0).to_string(), "2.0");
        assert_eq!(Value::sym("OPEN").to_string(), "'OPEN'");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(4i64), Value::Int(4));
        assert_eq!(Value::from(0.5), Value::Real(0.5));
        assert_eq!(Value::from("X"), Value::sym("X"));
    }
}
