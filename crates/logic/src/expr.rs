//! The temporal-logic expression AST (thesis Figure 2.5 operator set).

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// One side of a comparison: a state variable or a literal value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Operand {
    /// A named state variable, e.g. `va.value`.
    Var(String),
    /// A literal, e.g. `2.0` or `'STOP'`.
    Lit(crate::value::Value),
}

impl Operand {
    /// Convenience constructor for a variable operand.
    pub fn var(name: impl Into<String>) -> Self {
        Operand::Var(name.into())
    }

    /// Convenience constructor for a literal operand.
    pub fn lit(v: impl Into<crate::value::Value>) -> Self {
        Operand::Lit(v.into())
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Var(v) => write!(f, "{v}"),
            Operand::Lit(v) => write!(f, "{v}"),
        }
    }
}

/// Comparison operators available in atoms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The textual form used by the parser and `Display`.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// The comparison with its operands swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The logical negation (`a < b` ⇔ `!(a >= b)`).
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

/// A temporal-logic expression over system state variables.
///
/// The operator set mirrors the thesis's Figure 2.5. Past-time operators use
/// the convention that there is no state before the first sample: `prev(p)`
/// is `false` at the initial state, `once(p)` (strictly-past ◆) is `false`
/// there, and `historically(p)` (strictly-past ■) is vacuously `true`.
///
/// `Always`/`Eventually`/`Next` refer to the future and are only meaningful
/// over complete traces; the incremental monitor accepts `Always` with
/// *violation semantics* (its per-tick truth is the current truth of the
/// body, so a goal `always(p)` reports a violation at exactly the states
/// where `p` is false) and rejects `Eventually`/`Next`, matching the
/// thesis's observation that goals containing ♦ are not finitely violable.
///
/// # Example
///
/// ```
/// use esafe_logic::Expr;
///
/// // ●(ew > wt) ⇒ IsStopped(es), written over derived signals:
/// let goal = Expr::entails(
///     Expr::prev(Expr::var("overweight")),
///     Expr::var("elevator_stopped"),
/// );
/// assert_eq!(goal.to_string(), "prev(overweight) => elevator_stopped");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A boolean constant.
    Const(bool),
    /// A boolean state variable.
    Var(String),
    /// A comparison atom, e.g. `va.value <= 2.0`.
    Cmp {
        /// Left-hand operand.
        lhs: Operand,
        /// Comparison operator.
        op: CmpOp,
        /// Right-hand operand.
        rhs: Operand,
    },
    /// Logical negation `!p`.
    Not(Box<Expr>),
    /// N-ary conjunction `p && q && …` (empty ≡ `true`).
    And(Vec<Expr>),
    /// N-ary disjunction `p || q || …` (empty ≡ `false`).
    Or(Vec<Expr>),
    /// Current-state implication `p -> q` (thesis `P → Q`).
    Implies(Box<Expr>, Box<Expr>),
    /// All-states implication `p => q` ≡ `always(p -> q)` (thesis `P ⇒ Q`).
    Entails(Box<Expr>, Box<Expr>),
    /// Bi-implication in all states `p <-> q` (thesis `P ⇔ Q`).
    Iff(Box<Expr>, Box<Expr>),
    /// `●p`: true iff `p` held in the previous state (`false` initially).
    Prev(Box<Expr>),
    /// `◆p` (strict past): `p` held in *some* previous state.
    Once(Box<Expr>),
    /// `■p` (strict past): `p` held in *all* previous states.
    Historically(Box<Expr>),
    /// `●ⁿ<T p`: `p` held in every one of the previous `ticks` states.
    /// False until `ticks` states of history exist.
    HeldFor {
        /// Body.
        expr: Box<Expr>,
        /// Window length in ticks (strictly before the current state).
        ticks: u64,
    },
    /// `◆<T p`: `p` held at least once in the previous `ticks` states.
    OnceWithin {
        /// Body.
        expr: Box<Expr>,
        /// Window length in ticks (strictly before the current state).
        ticks: u64,
    },
    /// `@p ≡ ●¬p ∧ p`: `p` just became true. False at the initial state.
    Became(Box<Expr>),
    /// `S0 ⊨ p`: `p` held at the initial state (constant over the trace).
    Initially(Box<Expr>),
    /// `□p` over the rest of the trace (future). See monitor note above.
    Always(Box<Expr>),
    /// `♦p` over the rest of the trace (future; not finitely violable).
    Eventually(Box<Expr>),
    /// `○p`: `p` holds at the next state (future).
    Next(Box<Expr>),
}

impl Expr {
    /// Boolean state variable atom.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Comparison atom.
    pub fn cmp(lhs: Operand, op: CmpOp, rhs: Operand) -> Expr {
        Expr::Cmp { lhs, op, rhs }
    }

    /// `var == literal` atom.
    pub fn var_eq(name: impl Into<String>, v: impl Into<crate::value::Value>) -> Expr {
        Expr::Cmp {
            lhs: Operand::var(name),
            op: CmpOp::Eq,
            rhs: Operand::lit(v),
        }
    }

    /// `var <= literal` atom.
    pub fn var_le(name: impl Into<String>, v: impl Into<crate::value::Value>) -> Expr {
        Expr::Cmp {
            lhs: Operand::var(name),
            op: CmpOp::Le,
            rhs: Operand::lit(v),
        }
    }

    /// `var >= literal` atom.
    pub fn var_ge(name: impl Into<String>, v: impl Into<crate::value::Value>) -> Expr {
        Expr::Cmp {
            lhs: Operand::var(name),
            op: CmpOp::Ge,
            rhs: Operand::lit(v),
        }
    }

    /// Logical negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(e: Expr) -> Expr {
        Expr::Not(Box::new(e))
    }

    /// Binary conjunction (flattens nested `And`s).
    pub fn and(a: Expr, b: Expr) -> Expr {
        Expr::and_all([a, b])
    }

    /// N-ary conjunction (flattens one level of nested `And`s).
    pub fn and_all(items: impl IntoIterator<Item = Expr>) -> Expr {
        let mut out = Vec::new();
        for e in items {
            match e {
                Expr::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Expr::Const(true),
            1 => out.into_iter().next().expect("len checked"),
            _ => Expr::And(out),
        }
    }

    /// Binary disjunction (flattens nested `Or`s).
    pub fn or(a: Expr, b: Expr) -> Expr {
        Expr::or_all([a, b])
    }

    /// N-ary disjunction (flattens one level of nested `Or`s).
    pub fn or_all(items: impl IntoIterator<Item = Expr>) -> Expr {
        let mut out = Vec::new();
        for e in items {
            match e {
                Expr::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Expr::Const(false),
            1 => out.into_iter().next().expect("len checked"),
            _ => Expr::Or(out),
        }
    }

    /// Current-state implication `a -> b`.
    pub fn implies(a: Expr, b: Expr) -> Expr {
        Expr::Implies(Box::new(a), Box::new(b))
    }

    /// All-states implication `a => b` (the thesis's goal-pattern `⇒`).
    pub fn entails(a: Expr, b: Expr) -> Expr {
        Expr::Entails(Box::new(a), Box::new(b))
    }

    /// All-states bi-implication `a <-> b`.
    pub fn iff(a: Expr, b: Expr) -> Expr {
        Expr::Iff(Box::new(a), Box::new(b))
    }

    /// `●e`.
    pub fn prev(e: Expr) -> Expr {
        Expr::Prev(Box::new(e))
    }

    /// Strict-past `◆e`.
    pub fn once(e: Expr) -> Expr {
        Expr::Once(Box::new(e))
    }

    /// Strict-past `■e`.
    pub fn historically(e: Expr) -> Expr {
        Expr::Historically(Box::new(e))
    }

    /// `●ⁿ<T e` over `ticks` previous states.
    pub fn held_for(e: Expr, ticks: u64) -> Expr {
        Expr::HeldFor {
            expr: Box::new(e),
            ticks,
        }
    }

    /// `◆<T e` within `ticks` previous states.
    pub fn once_within(e: Expr, ticks: u64) -> Expr {
        Expr::OnceWithin {
            expr: Box::new(e),
            ticks,
        }
    }

    /// `@e`.
    pub fn became(e: Expr) -> Expr {
        Expr::Became(Box::new(e))
    }

    /// `S0 ⊨ e`.
    pub fn initially(e: Expr) -> Expr {
        Expr::Initially(Box::new(e))
    }

    /// `□e`.
    pub fn always(e: Expr) -> Expr {
        Expr::Always(Box::new(e))
    }

    /// `♦e`.
    pub fn eventually(e: Expr) -> Expr {
        Expr::Eventually(Box::new(e))
    }

    /// `○e`.
    pub fn next(e: Expr) -> Expr {
        Expr::Next(Box::new(e))
    }

    /// Collects the names of all state variables referenced anywhere in the
    /// expression.
    ///
    /// ```
    /// use esafe_logic::parse;
    /// let e = parse("prev(a) && b.value <= 2.0").unwrap();
    /// let vars: Vec<_> = e.vars().into_iter().collect();
    /// assert_eq!(vars, vec!["a".to_owned(), "b.value".to_owned()]);
    /// ```
    pub fn vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.visit(&mut |e| {
            match e {
                Expr::Var(v) => {
                    out.insert(v.clone());
                }
                Expr::Cmp { lhs, rhs, .. } => {
                    if let Operand::Var(v) = lhs {
                        out.insert(v.clone());
                    }
                    if let Operand::Var(v) = rhs {
                        out.insert(v.clone());
                    }
                }
                _ => {}
            };
        });
        out
    }

    /// Whether the expression refers to future states (`Eventually`, `Next`,
    /// or `Always` used in a non-top-level position is still future-directed;
    /// this predicate is purely syntactic and flags any occurrence).
    pub fn uses_future(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, Expr::Eventually(_) | Expr::Next(_)) {
                found = true;
            }
        });
        found
    }

    /// Maximum nesting depth of `prev` (counting `became` as depth 1),
    /// used by the propositional unroller to size the window.
    pub fn prev_depth(&self) -> u32 {
        match self {
            Expr::Const(_) | Expr::Var(_) | Expr::Cmp { .. } => 0,
            Expr::Not(e)
            | Expr::Initially(e)
            | Expr::Always(e)
            | Expr::Eventually(e)
            | Expr::Next(e) => e.prev_depth(),
            Expr::And(items) | Expr::Or(items) => {
                items.iter().map(Expr::prev_depth).max().unwrap_or(0)
            }
            Expr::Implies(a, b) | Expr::Entails(a, b) | Expr::Iff(a, b) => {
                a.prev_depth().max(b.prev_depth())
            }
            Expr::Prev(e) | Expr::Became(e) => 1 + e.prev_depth(),
            Expr::Once(e) | Expr::Historically(e) => 1 + e.prev_depth(),
            Expr::HeldFor { expr, ticks } | Expr::OnceWithin { expr, ticks } => {
                u32::try_from(*ticks)
                    .unwrap_or(u32::MAX)
                    .saturating_add(expr.prev_depth())
            }
        }
    }

    /// Number of AST nodes — a proxy for monitoring cost.
    pub fn size(&self) -> usize {
        let mut n = 0usize;
        self.visit(&mut |_| n += 1);
        n
    }

    /// Calls `f` on every subexpression (pre-order).
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Const(_) | Expr::Var(_) | Expr::Cmp { .. } => {}
            Expr::Not(e)
            | Expr::Prev(e)
            | Expr::Once(e)
            | Expr::Historically(e)
            | Expr::Became(e)
            | Expr::Initially(e)
            | Expr::Always(e)
            | Expr::Eventually(e)
            | Expr::Next(e) => e.visit(f),
            Expr::HeldFor { expr, .. } | Expr::OnceWithin { expr, .. } => expr.visit(f),
            Expr::And(items) | Expr::Or(items) => {
                for e in items {
                    e.visit(f);
                }
            }
            Expr::Implies(a, b) | Expr::Entails(a, b) | Expr::Iff(a, b) => {
                a.visit(f);
                b.visit(f);
            }
        }
    }

    /// Rewrites every variable name through `f`, returning the new
    /// expression. Used when instancing generic goal patterns onto concrete
    /// subsystem signals.
    pub fn rename_vars(&self, f: &impl Fn(&str) -> String) -> Expr {
        let ren = |op: &Operand| match op {
            Operand::Var(v) => Operand::Var(f(v)),
            Operand::Lit(l) => Operand::Lit(*l),
        };
        match self {
            Expr::Const(b) => Expr::Const(*b),
            Expr::Var(v) => Expr::Var(f(v)),
            Expr::Cmp { lhs, op, rhs } => Expr::Cmp {
                lhs: ren(lhs),
                op: *op,
                rhs: ren(rhs),
            },
            Expr::Not(e) => Expr::not(e.rename_vars(f)),
            Expr::And(items) => Expr::And(items.iter().map(|e| e.rename_vars(f)).collect()),
            Expr::Or(items) => Expr::Or(items.iter().map(|e| e.rename_vars(f)).collect()),
            Expr::Implies(a, b) => Expr::implies(a.rename_vars(f), b.rename_vars(f)),
            Expr::Entails(a, b) => Expr::entails(a.rename_vars(f), b.rename_vars(f)),
            Expr::Iff(a, b) => Expr::iff(a.rename_vars(f), b.rename_vars(f)),
            Expr::Prev(e) => Expr::prev(e.rename_vars(f)),
            Expr::Once(e) => Expr::once(e.rename_vars(f)),
            Expr::Historically(e) => Expr::historically(e.rename_vars(f)),
            Expr::HeldFor { expr, ticks } => Expr::held_for(expr.rename_vars(f), *ticks),
            Expr::OnceWithin { expr, ticks } => Expr::once_within(expr.rename_vars(f), *ticks),
            Expr::Became(e) => Expr::became(e.rename_vars(f)),
            Expr::Initially(e) => Expr::initially(e.rename_vars(f)),
            Expr::Always(e) => Expr::always(e.rename_vars(f)),
            Expr::Eventually(e) => Expr::eventually(e.rename_vars(f)),
            Expr::Next(e) => Expr::next(e.rename_vars(f)),
        }
    }

    fn precedence(&self) -> u8 {
        match self {
            Expr::Iff(..) => 1,
            Expr::Entails(..) => 2,
            Expr::Implies(..) => 3,
            Expr::Or(..) => 4,
            Expr::And(..) => 5,
            Expr::Not(..) => 6,
            _ => 7,
        }
    }

    fn fmt_child(&self, child: &Expr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if child.precedence() <= self.precedence() && child.precedence() < 7 {
            write!(f, "({child})")
        } else {
            write!(f, "{child}")
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(b) => write!(f, "{b}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Cmp { lhs, op, rhs } => write!(f, "{lhs} {} {rhs}", op.symbol()),
            Expr::Not(e) => {
                if e.precedence() < 7 {
                    write!(f, "!({e})")
                } else {
                    write!(f, "!{e}")
                }
            }
            Expr::And(items) => {
                for (i, e) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " && ")?;
                    }
                    self.fmt_child(e, f)?;
                }
                Ok(())
            }
            Expr::Or(items) => {
                for (i, e) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " || ")?;
                    }
                    self.fmt_child(e, f)?;
                }
                Ok(())
            }
            Expr::Implies(a, b) => {
                self.fmt_child(a, f)?;
                write!(f, " -> ")?;
                self.fmt_child(b, f)
            }
            Expr::Entails(a, b) => {
                self.fmt_child(a, f)?;
                write!(f, " => ")?;
                self.fmt_child(b, f)
            }
            Expr::Iff(a, b) => {
                self.fmt_child(a, f)?;
                write!(f, " <-> ")?;
                self.fmt_child(b, f)
            }
            Expr::Prev(e) => write!(f, "prev({e})"),
            Expr::Once(e) => write!(f, "once({e})"),
            Expr::Historically(e) => write!(f, "historically({e})"),
            Expr::HeldFor { expr, ticks } => write!(f, "held_for({expr}, {ticks}ticks)"),
            Expr::OnceWithin { expr, ticks } => write!(f, "once_within({expr}, {ticks}ticks)"),
            Expr::Became(e) => write!(f, "became({e})"),
            Expr::Initially(e) => write!(f, "initially({e})"),
            Expr::Always(e) => write!(f, "always({e})"),
            Expr::Eventually(e) => write!(f, "eventually({e})"),
            Expr::Next(e) => write!(f, "next({e})"),
        }
    }
}

impl std::ops::BitAnd for Expr {
    type Output = Expr;
    fn bitand(self, rhs: Expr) -> Expr {
        Expr::and(self, rhs)
    }
}

impl std::ops::BitOr for Expr {
    type Output = Expr;
    fn bitor(self, rhs: Expr) -> Expr {
        Expr::or(self, rhs)
    }
}

impl std::ops::Not for Expr {
    type Output = Expr;
    fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_flattens_and_simplifies() {
        let e = Expr::and(Expr::and(Expr::var("a"), Expr::var("b")), Expr::var("c"));
        assert_eq!(
            e,
            Expr::And(vec![Expr::var("a"), Expr::var("b"), Expr::var("c")])
        );
        assert_eq!(Expr::and_all([]), Expr::Const(true));
        assert_eq!(Expr::and_all([Expr::var("x")]), Expr::var("x"));
        assert_eq!(Expr::or_all([]), Expr::Const(false));
    }

    #[test]
    fn vars_collects_from_atoms_and_comparisons() {
        let e = Expr::and(
            Expr::prev(Expr::var("a")),
            Expr::cmp(Operand::var("x"), CmpOp::Lt, Operand::var("y")),
        );
        let vars = e.vars();
        assert!(vars.contains("a") && vars.contains("x") && vars.contains("y"));
        assert_eq!(vars.len(), 3);
    }

    #[test]
    fn prev_depth_counts_nesting_and_windows() {
        assert_eq!(Expr::var("a").prev_depth(), 0);
        assert_eq!(Expr::prev(Expr::prev(Expr::var("a"))).prev_depth(), 2);
        assert_eq!(Expr::became(Expr::var("a")).prev_depth(), 1);
        assert_eq!(Expr::held_for(Expr::var("a"), 5).prev_depth(), 5);
    }

    #[test]
    fn uses_future_flags_eventually_and_next() {
        assert!(Expr::eventually(Expr::var("a")).uses_future());
        assert!(Expr::entails(Expr::var("p"), Expr::next(Expr::var("q"))).uses_future());
        assert!(!Expr::always(Expr::var("a")).uses_future());
    }

    #[test]
    fn display_parenthesizes_by_precedence() {
        let e = Expr::or(Expr::and(Expr::var("a"), Expr::var("b")), Expr::var("c"));
        assert_eq!(e.to_string(), "a && b || c");
        let e2 = Expr::and(Expr::or(Expr::var("a"), Expr::var("b")), Expr::var("c"));
        assert_eq!(e2.to_string(), "(a || b) && c");
        let e3 = Expr::not(Expr::and(Expr::var("a"), Expr::var("b")));
        assert_eq!(e3.to_string(), "!(a && b)");
    }

    #[test]
    fn rename_vars_rewrites_everywhere() {
        let e = Expr::entails(Expr::prev(Expr::var("a")), Expr::var_le("b.value", 2.0));
        let renamed = e.rename_vars(&|v| format!("ns.{v}"));
        let vars = renamed.vars();
        assert!(vars.contains("ns.a") && vars.contains("ns.b.value"));
    }

    #[test]
    fn operator_overloads_build_expected_shapes() {
        let e = (Expr::var("a") & Expr::var("b")) | !Expr::var("c");
        assert_eq!(e.to_string(), "a && b || !c");
    }

    #[test]
    fn cmp_op_transforms() {
        assert_eq!(CmpOp::Lt.flipped(), CmpOp::Gt);
        assert_eq!(CmpOp::Lt.negated(), CmpOp::Ge);
        assert_eq!(CmpOp::Eq.flipped(), CmpOp::Eq);
        assert_eq!(CmpOp::Ne.negated(), CmpOp::Eq);
    }
}
