//! Lane-major batched frames: `B` runs' signal samples in one slab.
//!
//! A [`FrameBatch`] stores one contiguous row per [`SignalId`] — slot
//! `sig.index() * lanes + lane` — which is exactly the layout
//! [`FusedSuiteBatch`](crate::FusedSuiteBatch) evaluates its node slab
//! in. A striped sweep keeps its whole batch of simulator states in two
//! such slabs (double-buffered) and both the batched simulator and the
//! batched monitor walk them signal-row by signal-row, so advancing `B`
//! runs costs straight-line lane loops instead of `B` scattered
//! `Frame`-sized pointer chases.
//!
//! Scalar code migrates via the access traits: [`SignalRead`] /
//! [`SignalWrite`] abstract "one run's sample" over both a plain
//! [`Frame`] and a single lane of a batch ([`LaneRef`] / [`LaneMut`]),
//! with identical semantics — a subsystem written against the traits
//! compiles to the same arithmetic in both worlds, which is what makes
//! batched simulation bit-identical to scalar simulation.

use crate::signal::{Frame, SignalId, SignalTable};
use crate::value::Value;
use std::sync::Arc;

/// Read access to one run's signal sample — implemented by [`Frame`] and
/// by one lane of a [`FrameBatch`]. Semantics match [`Frame`]'s inherent
/// accessors exactly.
pub trait SignalRead {
    /// The value of a signal, or `None` if unset.
    fn get(&self, id: SignalId) -> Option<Value>;

    /// The boolean value of a signal, or `default` when unset/mistyped.
    #[inline]
    fn bool_or(&self, id: SignalId, default: bool) -> bool {
        self.get(id).and_then(|v| v.as_bool()).unwrap_or(default)
    }

    /// The numeric value of a signal, or `default` when unset/mistyped.
    #[inline]
    fn real_or(&self, id: SignalId, default: f64) -> f64 {
        self.get(id).and_then(|v| v.as_real()).unwrap_or(default)
    }

    /// The symbol value of a signal, if set and symbolic.
    #[inline]
    fn sym(&self, id: SignalId) -> Option<crate::Sym> {
        self.get(id).and_then(|v| v.as_sym())
    }
}

/// Write access to one run's signal sample — implemented by [`Frame`]
/// and by one lane of a [`FrameBatch`].
pub trait SignalWrite {
    /// Sets a signal's value (same kind `debug_assert` as
    /// [`Frame::set`]).
    fn set<V: Into<Value>>(&mut self, id: SignalId, value: V);
}

impl SignalRead for Frame {
    #[inline]
    fn get(&self, id: SignalId) -> Option<Value> {
        Frame::get(self, id)
    }
}

impl SignalWrite for Frame {
    #[inline]
    fn set<V: Into<Value>>(&mut self, id: SignalId, value: V) {
        Frame::set(self, id, value);
    }
}

/// `lanes` runs' signal samples in one lane-major slab: the value of
/// signal `s` in lane `l` lives at slot `s.index() * lanes + l`, so one
/// signal's row across every run is contiguous. See the
/// [module docs](self).
#[derive(Clone)]
pub struct FrameBatch {
    /// Lane-major: `slots[sig.index() * lanes + lane]`. Crate-visible
    /// so the corpus decoder can stream archived samples straight into
    /// lanes (including `None` for recorded-absent slots, which the
    /// kind-checked public `set` cannot express).
    pub(crate) slots: Vec<Option<Value>>,
    table: Arc<SignalTable>,
    lanes: usize,
}

impl FrameBatch {
    /// An all-unset batch of `lanes` runs over `table`'s namespace.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(table: &Arc<SignalTable>, lanes: usize) -> Self {
        assert!(lanes > 0, "a frame batch needs at least one lane");
        FrameBatch {
            slots: vec![None; table.len() * lanes],
            table: Arc::clone(table),
            lanes,
        }
    }

    /// The namespace every lane is indexed by.
    pub fn table(&self) -> &Arc<SignalTable> {
        &self.table
    }

    /// Number of lanes (runs) in the batch.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The value of a signal in one lane, or `None` if unset.
    #[inline]
    pub fn get(&self, id: SignalId, lane: usize) -> Option<Value> {
        self.slots[id.index() * self.lanes + lane]
    }

    /// Sets a signal's value in one lane.
    ///
    /// `debug_assert`s that the value inhabits the signal's declared
    /// kind, exactly as [`Frame::set`] does.
    #[inline]
    pub fn set(&mut self, id: SignalId, lane: usize, value: impl Into<Value>) {
        let value = value.into();
        debug_assert!(
            self.table.kind(id).admits(&value),
            "signal `{}` declared {:?} but assigned {}",
            self.table.name(id),
            self.table.kind(id),
            value.type_name()
        );
        self.slots[id.index() * self.lanes + lane] = Some(value);
    }

    /// The contiguous lane-major row of one signal: `row(id)[lane]` is
    /// [`get(id, lane)`](FrameBatch::get) for every lane. This is the
    /// whole point of the layout — batched readers sweep a signal
    /// across all runs in one straight slice pass.
    #[inline]
    pub fn row(&self, id: SignalId) -> &[Option<Value>] {
        &self.slots[id.index() * self.lanes..][..self.lanes]
    }

    /// The boolean value of a signal in one lane, or `default` when
    /// unset/mistyped.
    #[inline]
    pub fn bool_or(&self, id: SignalId, lane: usize, default: bool) -> bool {
        self.get(id, lane)
            .and_then(|v| v.as_bool())
            .unwrap_or(default)
    }

    /// The numeric value of a signal in one lane, or `default` when
    /// unset/mistyped.
    #[inline]
    pub fn real_or(&self, id: SignalId, lane: usize, default: f64) -> f64 {
        self.get(id, lane)
            .and_then(|v| v.as_real())
            .unwrap_or(default)
    }

    /// A read-only view of one lane.
    #[inline]
    pub fn lane(&self, lane: usize) -> LaneRef<'_> {
        debug_assert!(lane < self.lanes);
        LaneRef { batch: self, lane }
    }

    /// A read-write view of one lane.
    #[inline]
    pub fn lane_mut(&mut self, lane: usize) -> LaneMut<'_> {
        debug_assert!(lane < self.lanes);
        LaneMut { batch: self, lane }
    }

    /// Overwrites every lane's slots with `other`'s — the per-tick
    /// double-buffer refresh, batched: one memcpy for all lanes, which
    /// is also what carries retired lanes' final states forward frozen.
    ///
    /// # Panics
    ///
    /// Panics if the batches index different tables or differ in width.
    #[inline]
    pub fn copy_from(&mut self, other: &FrameBatch) {
        assert!(
            Arc::ptr_eq(&self.table, &other.table),
            "frame batches must share one signal table"
        );
        assert_eq!(self.lanes, other.lanes, "frame batches must share a width");
        self.slots.copy_from_slice(&other.slots);
    }

    /// Unsets every slot in every lane (a `memset`, no allocation).
    pub fn clear(&mut self) {
        self.slots.fill(None);
    }

    /// Unsets every slot of one lane, leaving its neighbours untouched —
    /// the per-lane analogue of [`Frame::clear`].
    pub fn clear_lane(&mut self, lane: usize) {
        let lanes = self.lanes;
        for row in self.slots.chunks_exact_mut(lanes) {
            row[lane] = None;
        }
    }

    /// Copies one lane out into a scalar [`Frame`] — the bridge for
    /// per-lane fallback paths that still want a contiguous sample.
    ///
    /// # Panics
    ///
    /// Panics if `out` indexes a different table.
    pub fn read_lane_into(&self, lane: usize, out: &mut Frame) {
        assert!(
            Arc::ptr_eq(&self.table, out.table()),
            "frame batches and frames must share one signal table"
        );
        for (sig, slot) in out.slots.iter_mut().enumerate() {
            *slot = self.slots[sig * self.lanes + lane];
        }
    }

    /// Copies a scalar [`Frame`] into one lane — the inverse of
    /// [`read_lane_into`](FrameBatch::read_lane_into).
    ///
    /// # Panics
    ///
    /// Panics if `src` indexes a different table.
    pub fn write_lane_from(&mut self, lane: usize, src: &Frame) {
        assert!(
            Arc::ptr_eq(&self.table, src.table()),
            "frame batches and frames must share one signal table"
        );
        for (sig, slot) in src.slots.iter().enumerate() {
            self.slots[sig * self.lanes + lane] = *slot;
        }
    }
}

impl std::fmt::Debug for FrameBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameBatch")
            .field("lanes", &self.lanes)
            .field("signals", &self.table.len())
            .finish_non_exhaustive()
    }
}

/// A read-only view of one [`FrameBatch`] lane, usable anywhere a
/// previous-state [`Frame`] is read through [`SignalRead`].
#[derive(Clone, Copy, Debug)]
pub struct LaneRef<'a> {
    batch: &'a FrameBatch,
    lane: usize,
}

impl SignalRead for LaneRef<'_> {
    #[inline]
    fn get(&self, id: SignalId) -> Option<Value> {
        self.batch.get(id, self.lane)
    }
}

/// A read-write view of one [`FrameBatch`] lane, usable anywhere a
/// next-state [`Frame`] is written through [`SignalWrite`].
#[derive(Debug)]
pub struct LaneMut<'a> {
    batch: &'a mut FrameBatch,
    lane: usize,
}

impl SignalRead for LaneMut<'_> {
    #[inline]
    fn get(&self, id: SignalId) -> Option<Value> {
        self.batch.get(id, self.lane)
    }
}

impl SignalWrite for LaneMut<'_> {
    #[inline]
    fn set<V: Into<Value>>(&mut self, id: SignalId, value: V) {
        self.batch.set(id, self.lane, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::SignalTable;

    fn table() -> (Arc<SignalTable>, SignalId, SignalId) {
        let mut b = SignalTable::builder();
        let x = b.real("x");
        let ok = b.bool("ok");
        (b.finish(), x, ok)
    }

    #[test]
    fn lanes_are_independent() {
        let (table, x, ok) = table();
        let mut batch = FrameBatch::new(&table, 3);
        batch.set(x, 0, 1.0);
        batch.set(x, 2, 3.0);
        batch.set(ok, 1, true);
        assert_eq!(batch.real_or(x, 0, 0.0), 1.0);
        assert_eq!(batch.get(x, 1), None);
        assert_eq!(batch.real_or(x, 2, 0.0), 3.0);
        assert!(batch.bool_or(ok, 1, false));
        assert!(!batch.bool_or(ok, 0, false));
    }

    #[test]
    fn lane_views_match_frame_semantics() {
        let (table, x, ok) = table();
        let mut batch = FrameBatch::new(&table, 2);
        {
            let mut lane = batch.lane_mut(1);
            lane.set(x, 2.5);
            lane.set(ok, true);
            assert_eq!(SignalRead::real_or(&lane, x, 0.0), 2.5);
        }
        let lane = batch.lane(1);
        assert_eq!(lane.get(x), Some(Value::Real(2.5)));
        assert!(lane.bool_or(ok, false));
        assert_eq!(batch.lane(0).get(x), None);
    }

    #[test]
    fn lane_round_trips_through_frames() {
        let (table, x, ok) = table();
        let mut batch = FrameBatch::new(&table, 4);
        let mut frame = table.frame();
        frame.set(x, 7.0);
        frame.set(ok, false);
        batch.write_lane_from(2, &frame);
        let mut out = table.frame();
        batch.read_lane_into(2, &mut out);
        assert_eq!(out, frame);
        let mut empty = table.frame();
        batch.read_lane_into(3, &mut empty);
        assert_eq!(empty.get(x), None);
    }

    #[test]
    fn copy_from_carries_every_lane() {
        let (table, x, _) = table();
        let mut a = FrameBatch::new(&table, 2);
        let mut b = FrameBatch::new(&table, 2);
        a.set(x, 0, 1.0);
        a.set(x, 1, 2.0);
        b.copy_from(&a);
        assert_eq!(b.real_or(x, 0, 0.0), 1.0);
        assert_eq!(b.real_or(x, 1, 0.0), 2.0);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_panics() {
        let (table, _, _) = table();
        FrameBatch::new(&table, 0);
    }
}
