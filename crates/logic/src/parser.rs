//! Text syntax for goal expressions.
//!
//! The grammar (lowest to highest precedence):
//!
//! ```text
//! expr     := iff
//! iff      := entail ( "<->" entail )*
//! entail   := imply ( "=>" imply )*          (right associative)
//! imply    := or ( "->" or )*                (right associative)
//! or       := and ( "||" and )*
//! and      := unary ( "&&" unary )*
//! unary    := "!" unary | temporal | atom
//! temporal := NAME "(" expr [ "," duration ] ")"
//!             where NAME ∈ { prev, once, historically, held_for,
//!                            once_within, became, initially, always,
//!                            eventually, next }
//! atom     := "true" | "false" | "(" expr ")"
//!           | operand ( cmpop operand )?
//! operand  := IDENT | NUMBER | "'" SYMBOL "'"
//! duration := NUMBER ( "ms" | "s" | "ticks" )
//! IDENT    := [A-Za-z_][A-Za-z0-9_.]*
//! ```
//!
//! Durations in `ms`/`s` are converted to ticks using the parser's tick
//! period (default **1 ms**, matching the thesis's 1 ms simulation states).

use crate::error::ParseError;
use crate::expr::{CmpOp, Expr, Operand};
use crate::value::Value;

/// Parses an expression using the default 1 ms tick period.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input.
///
/// # Example
///
/// ```
/// use esafe_logic::parse;
/// let e = parse("held_for(drc == 'STOP', 200ms) -> drive_stopped")?;
/// assert_eq!(e.to_string(),
///            "held_for(drc == 'STOP', 200ticks) -> drive_stopped");
/// # Ok::<(), esafe_logic::ParseError>(())
/// ```
pub fn parse(input: &str) -> Result<Expr, ParseError> {
    parse_with_tick_millis(input, 1)
}

/// Parses an expression, converting `ms`/`s` durations to ticks of the given
/// period.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input, including durations that are
/// not whole multiples of the tick period.
pub fn parse_with_tick_millis(input: &str, tick_millis: u64) -> Result<Expr, ParseError> {
    assert!(tick_millis > 0, "tick period must be positive");
    let mut p = Parser {
        src: input.as_bytes(),
        pos: 0,
        tick_millis,
    };
    let e = p.expr()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(p.err("unexpected trailing input"));
    }
    Ok(e)
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
    tick_millis: u64,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn eat(&mut self, tok: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(tok.as_bytes()) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &str) -> Result<(), ParseError> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{tok}`")))
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.iff()
    }

    fn iff(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.entail()?;
        while self.eat("<->") {
            let rhs = self.entail()?;
            lhs = Expr::iff(lhs, rhs);
        }
        Ok(lhs)
    }

    fn entail(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.imply()?;
        if self.eat("=>") {
            let rhs = self.entail()?;
            Ok(Expr::entails(lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn imply(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.or()?;
        // Guard against consuming the `->` of `<->`: `<` can't precede here
        // because `or()` already consumed it as a comparison.
        if self.eat("->") {
            let rhs = self.imply()?;
            Ok(Expr::implies(lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn or(&mut self) -> Result<Expr, ParseError> {
        let mut items = vec![self.and()?];
        while self.eat("||") {
            items.push(self.and()?);
        }
        Ok(Expr::or_all(items))
    }

    fn and(&mut self) -> Result<Expr, ParseError> {
        let mut items = vec![self.unary()?];
        while self.eat("&&") {
            items.push(self.unary()?);
        }
        Ok(Expr::and_all(items))
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        self.skip_ws();
        if self.eat("!") {
            return Ok(Expr::not(self.unary()?));
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(")")?;
                Ok(e)
            }
            Some(b'\'') => {
                let lhs = Operand::Lit(self.symbol_literal()?);
                self.comparison_tail(lhs)
            }
            Some(c) if c.is_ascii_digit() || c == b'-' || c == b'+' => {
                let lhs = Operand::Lit(self.number_literal()?);
                self.comparison_tail(lhs)
            }
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                let ident = self.ident()?;
                match ident.as_str() {
                    "true" => return Ok(Expr::Const(true)),
                    "false" => return Ok(Expr::Const(false)),
                    _ => {}
                }
                self.skip_ws();
                if self.peek() == Some(b'(') {
                    return self.temporal_call(&ident, start);
                }
                self.comparison_tail(Operand::Var(ident))
            }
            _ => Err(self.err("expected expression")),
        }
    }

    fn temporal_call(&mut self, name: &str, name_start: usize) -> Result<Expr, ParseError> {
        self.expect("(")?;
        let inner = self.expr()?;
        let e = match name {
            "prev" => Expr::prev(inner),
            "once" => Expr::once(inner),
            "historically" => Expr::historically(inner),
            "became" => Expr::became(inner),
            "initially" => Expr::initially(inner),
            "always" => Expr::always(inner),
            "eventually" => Expr::eventually(inner),
            "next" => Expr::next(inner),
            "held_for" | "once_within" => {
                self.expect(",")?;
                let ticks = self.duration()?;
                if name == "held_for" {
                    Expr::held_for(inner, ticks)
                } else {
                    Expr::once_within(inner, ticks)
                }
            }
            other => {
                self.pos = name_start;
                return Err(self.err(format!("unknown operator `{other}`")));
            }
        };
        self.expect(")")?;
        Ok(e)
    }

    fn comparison_tail(&mut self, lhs: Operand) -> Result<Expr, ParseError> {
        self.skip_ws();
        let op = if self.eat("==") {
            Some(CmpOp::Eq)
        } else if self.eat("!=") {
            Some(CmpOp::Ne)
        } else if self.eat("<=") {
            Some(CmpOp::Le)
        } else if self.eat(">=") {
            Some(CmpOp::Ge)
        } else if self.src[self.pos..].starts_with(b"<->") {
            None // leave for the iff level
        } else if self.eat("<") {
            Some(CmpOp::Lt)
        } else if self.eat(">") {
            Some(CmpOp::Gt)
        } else {
            None
        };
        match op {
            Some(op) => {
                let rhs = self.operand()?;
                Ok(Expr::Cmp { lhs, op, rhs })
            }
            None => match lhs {
                Operand::Var(name) => Ok(Expr::Var(name)),
                Operand::Lit(v) => {
                    Err(self.err(format!("literal {v} must be part of a comparison")))
                }
            },
        }
    }

    fn operand(&mut self) -> Result<Operand, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'\'') => Ok(Operand::Lit(self.symbol_literal()?)),
            Some(c) if c.is_ascii_digit() || c == b'-' || c == b'+' => {
                Ok(Operand::Lit(self.number_literal()?))
            }
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                let ident = self.ident()?;
                match ident.as_str() {
                    "true" => Ok(Operand::Lit(Value::Bool(true))),
                    "false" => Ok(Operand::Lit(Value::Bool(false))),
                    _ => Ok(Operand::Var(ident)),
                }
            }
            _ => Err(self.err("expected operand")),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'.' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected identifier"));
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    fn symbol_literal(&mut self) -> Result<Value, ParseError> {
        self.expect("'")?;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == b'\'' {
                let s = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                self.pos += 1;
                return Ok(Value::sym(s));
            }
            self.pos += 1;
        }
        Err(self.err("unterminated symbol literal"))
    }

    fn number_literal(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        let start = self.pos;
        if matches!(self.peek(), Some(b'-') | Some(b'+')) {
            self.pos += 1;
        }
        let mut saw_digit = false;
        let mut saw_dot = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                saw_digit = true;
                self.pos += 1;
            } else if c == b'.' && !saw_dot {
                // Only treat as a decimal point when followed by a digit,
                // so identifiers like `va.value` are untouched.
                if self
                    .src
                    .get(self.pos + 1)
                    .is_some_and(|d| d.is_ascii_digit())
                {
                    saw_dot = true;
                    self.pos += 1;
                } else {
                    break;
                }
            } else {
                break;
            }
        }
        if !saw_digit {
            return Err(self.err("expected number"));
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii digits");
        if saw_dot {
            text.parse::<f64>()
                .map(Value::Real)
                .map_err(|e| self.err(format!("bad real literal: {e}")))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| self.err(format!("bad integer literal: {e}")))
        }
    }

    fn duration(&mut self) -> Result<u64, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected duration"));
        }
        let n: u64 = std::str::from_utf8(&self.src[start..self.pos])
            .expect("ascii digits")
            .parse()
            .map_err(|e| self.err(format!("bad duration: {e}")))?;
        if self.eat("ticks") {
            Ok(n)
        } else if self.eat("ms") {
            self.millis_to_ticks(n)
        } else if self.eat("s") {
            self.millis_to_ticks(n.saturating_mul(1000))
        } else {
            Err(self.err("expected duration unit `ms`, `s`, or `ticks`"))
        }
    }

    fn millis_to_ticks(&self, millis: u64) -> Result<u64, ParseError> {
        if !millis.is_multiple_of(self.tick_millis) {
            return Err(ParseError {
                offset: self.pos,
                message: format!(
                    "duration {millis}ms is not a multiple of the {}ms tick",
                    self.tick_millis
                ),
            });
        }
        Ok(millis / self.tick_millis)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(src: &str) {
        let e = parse(src).unwrap();
        let printed = e.to_string();
        let e2 = parse(&printed).unwrap();
        assert_eq!(e, e2, "round trip failed for `{src}` -> `{printed}`");
    }

    #[test]
    fn parses_boolean_structure() {
        let e = parse("a && b || !c").unwrap();
        assert_eq!(
            e,
            Expr::or(
                Expr::and(Expr::var("a"), Expr::var("b")),
                Expr::not(Expr::var("c"))
            )
        );
    }

    #[test]
    fn implication_chain_is_right_associative() {
        let e = parse("a -> b -> c").unwrap();
        assert_eq!(
            e,
            Expr::implies(
                Expr::var("a"),
                Expr::implies(Expr::var("b"), Expr::var("c"))
            )
        );
    }

    #[test]
    fn entails_binds_looser_than_implies() {
        let e = parse("a -> b => c").unwrap();
        assert_eq!(
            e,
            Expr::entails(
                Expr::implies(Expr::var("a"), Expr::var("b")),
                Expr::var("c")
            )
        );
    }

    #[test]
    fn parses_comparisons_with_dotted_names() {
        let e = parse("va.value <= 2.0").unwrap();
        assert_eq!(e, Expr::var_le("va.value", 2.0));
        let e2 = parse("va.source == 'CA'").unwrap();
        assert_eq!(e2, Expr::var_eq("va.source", "CA"));
    }

    #[test]
    fn parses_negative_literals() {
        let e = parse("vj >= -2.5").unwrap();
        assert_eq!(e, Expr::var_ge("vj", -2.5));
    }

    #[test]
    fn parses_temporal_operators() {
        assert_eq!(parse("prev(p)").unwrap(), Expr::prev(Expr::var("p")));
        assert_eq!(
            parse("held_for(p, 3ticks)").unwrap(),
            Expr::held_for(Expr::var("p"), 3)
        );
        assert_eq!(
            parse("once_within(p, 200ms)").unwrap(),
            Expr::once_within(Expr::var("p"), 200)
        );
        assert_eq!(
            parse_with_tick_millis("held_for(p, 1s)", 10).unwrap(),
            Expr::held_for(Expr::var("p"), 100)
        );
    }

    #[test]
    fn rejects_non_multiple_durations() {
        let err = parse_with_tick_millis("held_for(p, 25ms)", 10).unwrap_err();
        assert!(err.message.contains("not a multiple"));
    }

    #[test]
    fn rejects_unknown_operator_and_trailing_input() {
        assert!(parse("frobnicate(p)")
            .unwrap_err()
            .message
            .contains("unknown"));
        assert!(parse("p q").unwrap_err().message.contains("trailing"));
        assert!(parse("(p").unwrap_err().message.contains("expected `)`"));
    }

    #[test]
    fn rejects_bare_literal() {
        assert!(parse("3.5").is_err());
        assert!(parse("'STOP'").is_err());
    }

    #[test]
    fn iff_is_not_eaten_by_comparison() {
        let e = parse("a <-> b").unwrap();
        assert_eq!(e, Expr::iff(Expr::var("a"), Expr::var("b")));
    }

    #[test]
    fn literal_on_left_of_comparison() {
        let e = parse("2.0 >= va.value").unwrap();
        assert_eq!(
            e,
            Expr::cmp(Operand::lit(2.0), CmpOp::Ge, Operand::var("va.value"))
        );
    }

    #[test]
    fn round_trips() {
        for src in [
            "a && b || !c",
            "prev(a) => b",
            "held_for(drc == 'STOP', 200ticks) -> stopped",
            "once_within(p && q, 5ticks) || historically(r)",
            "initially(p) <-> became(q)",
            "always(dc || es.stopped)",
            "va.value <= 2.0 && va.source != 'DRIVER'",
            "!(a || b) && c",
            "a -> b -> c",
            "eventually(next(p))",
        ] {
            round_trip(src);
        }
    }

    #[test]
    fn whitespace_is_insignificant() {
        assert_eq!(parse("  a&&b  ").unwrap(), parse("a && b").unwrap());
    }
}
