//! Past-time temporal logic for safety-goal specification.
//!
//! This crate implements the temporal-logic substrate of Black's *System
//! Safety as an Emergent Property in Composite Systems* (CMU, 2009). Safety
//! goals in that work are written in the KAOS style over system state
//! variables using the operator set of the thesis's Figure 2.5: boolean
//! connectives, current-state and all-states implication, the past-time
//! operators ● (previous state), ◆ (once in the past), ■ (historically),
//! bounded variants `●ⁿ<T` (held for the previous duration `T`) and `◆<T`
//! (true at least once within the previous duration `T`), the edge operator
//! `@P ≡ ●¬P ∧ P`, and the initial-state assertion `S0 ⊨ P`.
//!
//! # State representations
//!
//! Two views of system state coexist, by design:
//!
//! * [`signal`] — the **production** representation: a shared, immutable
//!   [`SignalTable`] interns every variable name to a dense [`SignalId`]
//!   once, and a [`Frame`] is one sample of all signals as a flat,
//!   id-indexed slot array. [`Value`] is `Copy` (symbols are interned
//!   [`Sym`]s), so the per-tick hot loop — simulator step, monitor
//!   observe — allocates no strings and performs no map lookups.
//! * [`state`] — the **authoring** representation: the name-keyed
//!   [`State`] map and recorded [`Trace`]s, used by serde, tests, goal
//!   fixtures, and the reference evaluator. Conversions:
//!   [`SignalTable::frame_from_state`] and [`Frame::to_state`].
//! * [`frame_trace`] — recorded traces in the production representation:
//!   a [`FrameTrace`] stores one column per signal so recordings replay
//!   through compiled monitors at frame speed. Conversions:
//!   [`FrameTrace::from_trace`] and [`FrameTrace::to_trace`].
//!
//! # Views of the [`Expr`] AST
//!
//! * [`parser`] — a round-trippable text syntax
//!   (`always(dc || es.stopped)`, `held_for(drc == 'STOP', 200ms) -> ok`);
//! * [`eval`] — reference evaluation over complete recorded [`Trace`]s
//!   (the semantics of record the incremental monitor is property-tested
//!   against);
//! * [`incremental`] — an O(#subformulas)-per-tick monitor; variable
//!   references are resolved to [`SignalId`]s at compile time via
//!   [`CompiledMonitor::compile_in`], and whole goal suites fuse into
//!   one deduplicated DAG ([`FusedSuiteProgram`]) evaluating every
//!   shared subexpression once per tick;
//! * [`prop`] — bounded two-state unrolling into propositional formulas
//!   over a dense `(variable, age)` atom table with model enumeration,
//!   used by the composability and realizability analyses of `esafe-core`.
//!
//! # Example
//!
//! ```
//! use esafe_logic::{parse, CompiledMonitor, SignalTable};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = SignalTable::builder();
//! let door = b.bool("door_closed");
//! let stopped = b.bool("elevator_stopped");
//! let table = b.finish();
//!
//! let goal = parse("always(door_closed || elevator_stopped)")?;
//! let mut monitor = CompiledMonitor::compile_in(&goal, &table)?;
//!
//! let mut frame = table.frame();
//! frame.set(door, true);
//! frame.set(stopped, true);
//! let ok = monitor.observe(&frame)?;
//! frame.set(door, false);
//! frame.set(stopped, false);
//! let bad = monitor.observe(&frame)?;
//! assert!(ok);
//! assert!(!bad); // the safety goal is violated in the second state
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod corpus;
pub mod error;
pub mod eval;
pub mod expr;
pub mod frame_batch;
pub mod frame_trace;
pub mod incremental;
pub mod parser;
pub mod prop;
pub mod signal;
pub mod state;
pub mod value;

pub use corpus::{RunDecoder, RunMeta, SymDict};
pub use error::{EvalError, ParseError, PropError};
pub use expr::{CmpOp, Expr, Operand};
pub use frame_batch::{FrameBatch, LaneMut, LaneRef, SignalRead, SignalWrite};
pub use frame_trace::FrameTrace;
pub use incremental::{
    BatchError, CompiledMonitor, CompiledProgram, FusedError, FusedSuite, FusedSuiteBatch,
    FusedSuiteProgram,
};
pub use parser::parse;
pub use signal::{Frame, SignalId, SignalKind, SignalTable, SignalTableBuilder};
pub use state::{State, Trace};
pub use value::{Sym, Value};
