//! Past-time temporal logic for safety-goal specification.
//!
//! This crate implements the temporal-logic substrate of Black's *System
//! Safety as an Emergent Property in Composite Systems* (CMU, 2009). Safety
//! goals in that work are written in the KAOS style over system state
//! variables using the operator set of the thesis's Figure 2.5: boolean
//! connectives, current-state and all-states implication, the past-time
//! operators ● (previous state), ◆ (once in the past), ■ (historically),
//! bounded variants `●ⁿ<T` (held for the previous duration `T`) and `◆<T`
//! (true at least once within the previous duration `T`), the edge operator
//! `@P ≡ ●¬P ∧ P`, and the initial-state assertion `S0 ⊨ P`.
//!
//! Four views of the same [`Expr`] AST are provided:
//!
//! * [`parser`] — a round-trippable text syntax
//!   (`always(dc || es.stopped)`, `held_for(drc == 'STOP', 200ms) -> ok`);
//! * [`eval`] — reference evaluation over complete recorded [`Trace`]s;
//! * [`incremental`] — an O(#subformulas)-per-tick monitor used for
//!   run-time goal monitoring;
//! * [`prop`] — bounded two-state unrolling into propositional formulas with
//!   model enumeration, used by the composability and realizability analyses
//!   of `esafe-core`.
//!
//! # Example
//!
//! ```
//! use esafe_logic::{parse, State, CompiledMonitor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let goal = parse("always(door_closed || elevator_stopped)")?;
//! let mut monitor = CompiledMonitor::compile(&goal)?;
//! let ok = monitor.observe(&State::new().with_bool("door_closed", true)
//!                                       .with_bool("elevator_stopped", true))?;
//! let bad = monitor.observe(&State::new().with_bool("door_closed", false)
//!                                        .with_bool("elevator_stopped", false))?;
//! assert!(ok);
//! assert!(!bad); // the safety goal is violated in the second state
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod eval;
pub mod expr;
pub mod incremental;
pub mod parser;
pub mod prop;
pub mod state;
pub mod value;

pub use error::{EvalError, ParseError, PropError};
pub use expr::{CmpOp, Expr, Operand};
pub use incremental::CompiledMonitor;
pub use parser::parse;
pub use state::{State, Trace};
pub use value::Value;
