//! The columnar codec behind the on-disk trace corpus.
//!
//! A corpus archives whole monitored runs so a *new* goal suite can be
//! re-evaluated over them later with zero simulation cost (the
//! requirements-change workflow: re-verify against recorded evidence,
//! don't re-simulate). This module is the payload codec only — framing,
//! CRCs, manifests, and recovery live in the harness crate's corpus
//! store, mirroring how the sweep-journal splits record payloads from
//! file durability.
//!
//! Layout decisions, all in service of bit-identical replay:
//!
//! * **column-per-signal** — a run's samples are stored one contiguous
//!   region per signal (the [`FrameTrace`] layout serialized), so the
//!   streaming reader can drop each signal's next sample straight into
//!   the matching lane-major [`FrameBatch`] row.
//! * **dictionary-encoded symbols** — [`Sym`]s are process-local interned
//!   ids, so the corpus stores each distinct text once in a [`SymDict`]
//!   and columns reference dictionary ids; the reader re-interns on its
//!   side of the process boundary.
//! * **delta/varint tick samples** — per column, the encoder picks the
//!   cheapest of seven encodings (empty, constant, bool bitmaps,
//!   zigzag-delta ints, XOR-delta `f64` bit patterns, delta'd dictionary
//!   ids, or tagged mixed values). Reals travel as bit patterns, never
//!   as decimal text, so `NaN`s, `-0.0`, and every ULP round-trip
//!   exactly.
//!
//! Decoders return `Option`: `None` means the bytes are not a valid
//! encoding (truncated, over budget, or inconsistent). They never
//! panic on hostile input and never allocate more than the input could
//! legitimately describe — the property the corpus fuzz wall pins.

use crate::frame_batch::FrameBatch;
use crate::frame_trace::FrameTrace;
use crate::signal::{SignalKind, SignalTable};
use crate::value::{Sym, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Budget on a single run's tick count: decoders reject lengths above
/// this before allocating. Far above any real workload (the mega grid
/// runs 5 000 ticks, the thesis grid 20 000), low enough that a hostile
/// length can't provoke a multi-gigabyte allocation.
pub const MAX_RUN_TICKS: u64 = 1 << 24;

/// Budget on a table's signal count, same rationale as
/// [`MAX_RUN_TICKS`].
pub const MAX_TABLE_SIGNALS: u64 = 1 << 16;

// --- varints -----------------------------------------------------------

/// Appends `x` as an LEB128 varint (7 bits per byte, high bit =
/// continuation).
pub fn put_varint(out: &mut Vec<u8>, mut x: u64) {
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Zigzag-maps a signed value onto an unsigned one (small magnitudes of
/// either sign become small varints).
pub fn zigzag(x: i64) -> u64 {
    ((x << 1) ^ (x >> 63)) as u64
}

/// Inverts [`zigzag`].
pub fn unzigzag(x: u64) -> i64 {
    ((x >> 1) as i64) ^ -((x & 1) as i64)
}

/// A bounds-checked forward reader over a byte slice. Every read
/// returns `None` past the end instead of panicking.
#[derive(Debug, Clone)]
struct Cur<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cur<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cur { bytes, at: 0 }
    }

    #[inline]
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        let s = self.bytes.get(self.at..end)?;
        self.at = end;
        Some(s)
    }

    #[inline]
    fn u8(&mut self) -> Option<u8> {
        let b = *self.bytes.get(self.at)?;
        self.at += 1;
        Some(b)
    }

    #[inline]
    fn varint(&mut self) -> Option<u64> {
        let mut x: u64 = 0;
        for shift in 0..10 {
            let b = self.u8()?;
            // The tenth byte may only carry the final bit of a u64.
            if shift == 9 && b > 1 {
                return None;
            }
            x |= u64::from(b & 0x7f) << (shift * 7);
            if b & 0x80 == 0 {
                return Some(x);
            }
        }
        None
    }

    fn str_(&mut self) -> Option<&'a str> {
        let len = self.varint()?;
        let len = usize::try_from(len).ok()?;
        std::str::from_utf8(self.take(len)?).ok()
    }

    fn done(&self) -> bool {
        self.at == self.bytes.len()
    }
}

/// Appends a length-prefixed UTF-8 string.
fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

// --- symbol dictionary -------------------------------------------------

/// The corpus-global symbol dictionary: each distinct [`Sym`] text is
/// stored once and columns reference it by a dense id assigned in
/// first-appearance order. The writer grows it while encoding runs and
/// flushes new entries ahead of the run that introduced them; the
/// reader appends decoded blocks in file order, so by the time a run's
/// columns are decoded every id they reference is already present.
#[derive(Debug, Default, Clone)]
pub struct SymDict {
    texts: Vec<String>,
    syms: Vec<Sym>,
    ids: HashMap<String, u32>,
}

impl SymDict {
    /// An empty dictionary.
    pub fn new() -> Self {
        SymDict::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.texts.len()
    }

    /// Whether the dictionary holds no entries.
    pub fn is_empty(&self) -> bool {
        self.texts.is_empty()
    }

    /// The id of `text`, assigning the next id on first sight (writer
    /// side).
    pub fn intern(&mut self, text: &str) -> u32 {
        if let Some(&id) = self.ids.get(text) {
            return id;
        }
        let id = self.texts.len() as u32;
        self.ids.insert(text.to_owned(), id);
        self.texts.push(text.to_owned());
        self.syms.push(Sym::new(text));
        id
    }

    /// Appends a decoded dictionary entry (reader side), re-interning
    /// the text into this process's symbol table.
    pub fn push(&mut self, text: String) {
        let id = self.texts.len() as u32;
        self.syms.push(Sym::new(&text));
        self.ids.insert(text.clone(), id);
        self.texts.push(text);
    }

    /// The re-interned [`Sym`] for a dictionary id.
    pub fn sym(&self, id: u64) -> Option<Sym> {
        self.syms.get(usize::try_from(id).ok()?).copied()
    }

    /// The text for a dictionary id.
    pub fn text(&self, id: u64) -> Option<&str> {
        self.texts
            .get(usize::try_from(id).ok()?)
            .map(String::as_str)
    }

    /// The entries from index `start` on — what the writer flushes as a
    /// dictionary block before appending the run that introduced them.
    pub fn texts_from(&self, start: usize) -> &[String] {
        &self.texts[start.min(self.texts.len())..]
    }
}

/// Encodes a dictionary block: the texts appended since the writer's
/// last flush.
pub fn encode_sym_block(texts: &[String]) -> Vec<u8> {
    let mut out = Vec::new();
    put_varint(&mut out, texts.len() as u64);
    for t in texts {
        put_str(&mut out, t);
    }
    out
}

/// Decodes a dictionary block, or `None` if the bytes are not exactly
/// one well-formed block.
pub fn decode_sym_block(bytes: &[u8]) -> Option<Vec<String>> {
    let mut cur = Cur::new(bytes);
    let count = cur.varint()?;
    // Every entry costs at least one length byte.
    if count > bytes.len() as u64 {
        return None;
    }
    let mut texts = Vec::with_capacity(count as usize);
    for _ in 0..count {
        texts.push(cur.str_()?.to_owned());
    }
    cur.done().then_some(texts)
}

// --- signal tables -----------------------------------------------------

fn kind_code(kind: SignalKind) -> u8 {
    match kind {
        SignalKind::Bool => 0,
        SignalKind::Int => 1,
        SignalKind::Real => 2,
        SignalKind::Sym => 3,
    }
}

fn kind_from(code: u8) -> Option<SignalKind> {
    match code {
        0 => Some(SignalKind::Bool),
        1 => Some(SignalKind::Int),
        2 => Some(SignalKind::Real),
        3 => Some(SignalKind::Sym),
        _ => None,
    }
}

/// Encodes a signal table: the namespace archived runs are indexed by.
pub fn encode_table(table: &SignalTable) -> Vec<u8> {
    let mut out = Vec::new();
    put_varint(&mut out, table.len() as u64);
    for id in table.ids() {
        out.push(kind_code(table.kind(id)));
        put_str(&mut out, table.name(id));
    }
    out
}

/// Decodes a signal table block into a fresh (reader-side) table, or
/// `None` if the bytes are not exactly one well-formed table.
pub fn decode_table(bytes: &[u8]) -> Option<Arc<SignalTable>> {
    let mut cur = Cur::new(bytes);
    let count = cur.varint()?;
    if count > MAX_TABLE_SIGNALS {
        return None;
    }
    let mut b = SignalTable::builder();
    let mut seen = 0u64;
    while seen < count {
        let kind = kind_from(cur.u8()?)?;
        let name = cur.str_()?;
        b.signal(name, kind);
        seen += 1;
    }
    cur.done().then(|| b.finish())
}

// --- run metadata ------------------------------------------------------

/// The per-run metadata stored ahead of a run's columns — everything
/// the replay path needs to rebuild a run-report-shaped record without
/// the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    /// Which archived signal table the run's columns are indexed by
    /// (tables are numbered in file-appearance order).
    pub table_ref: u32,
    /// The substrate family name (e.g. `"vehicle"`), which selects the
    /// goal-suite builder at replay time.
    pub substrate: String,
    /// The run's human-readable label (e.g. `"scenario-1/thesis (all)"`).
    pub label: String,
    /// Tick period, milliseconds.
    pub dt_millis: u64,
    /// Number of recorded ticks.
    pub ticks: u64,
    /// Whether the live run terminated before its scheduled end.
    pub terminated_early: bool,
    /// The live run's terminal event, if any.
    pub terminal_event: Option<String>,
}

fn put_meta(out: &mut Vec<u8>, meta: &RunMeta) {
    put_varint(out, u64::from(meta.table_ref));
    put_str(out, &meta.substrate);
    put_str(out, &meta.label);
    put_varint(out, meta.dt_millis);
    put_varint(out, meta.ticks);
    out.push(u8::from(meta.terminated_early));
    match &meta.terminal_event {
        Some(ev) => {
            out.push(1);
            put_str(out, ev);
        }
        None => out.push(0),
    }
}

fn read_meta(cur: &mut Cur<'_>) -> Option<RunMeta> {
    let table_ref = u32::try_from(cur.varint()?).ok()?;
    let substrate = cur.str_()?.to_owned();
    let label = cur.str_()?.to_owned();
    let dt_millis = cur.varint()?;
    if dt_millis == 0 {
        return None;
    }
    let ticks = cur.varint()?;
    if ticks > MAX_RUN_TICKS {
        return None;
    }
    let terminated_early = match cur.u8()? {
        0 => false,
        1 => true,
        _ => return None,
    };
    let terminal_event = match cur.u8()? {
        0 => None,
        1 => Some(cur.str_()?.to_owned()),
        _ => return None,
    };
    Some(RunMeta {
        table_ref,
        substrate,
        label,
        dt_millis,
        ticks,
        terminated_early,
        terminal_event,
    })
}

/// Decodes just a run's metadata (cheap: no column work), or `None` if
/// the prefix is malformed.
pub fn decode_run_meta(bytes: &[u8]) -> Option<RunMeta> {
    read_meta(&mut Cur::new(bytes))
}

// --- column encodings --------------------------------------------------

const TAG_COL_EMPTY: u8 = 0;
const TAG_COL_CONST: u8 = 1;
const TAG_COL_BOOL: u8 = 2;
const TAG_COL_INT: u8 = 3;
const TAG_COL_REAL: u8 = 4;
const TAG_COL_SYM: u8 = 5;
const TAG_COL_MIXED: u8 = 6;

const VAL_BOOL: u8 = 0;
const VAL_INT: u8 = 1;
const VAL_REAL: u8 = 2;
const VAL_SYM: u8 = 3;

/// Bitwise value equality: `f64`s compare as bit patterns, so `NaN`
/// equals itself and `0.0` differs from `-0.0` — the equality the
/// round-trip goldens need.
fn bits_eq(a: Value, b: Value) -> bool {
    match (a, b) {
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Real(x), Value::Real(y)) => x.to_bits() == y.to_bits(),
        (Value::Sym(x), Value::Sym(y)) => x == y,
        _ => false,
    }
}

fn put_value(out: &mut Vec<u8>, v: Value, dict: &mut SymDict) {
    match v {
        Value::Bool(b) => {
            out.push(VAL_BOOL);
            out.push(u8::from(b));
        }
        Value::Int(i) => {
            out.push(VAL_INT);
            put_varint(out, zigzag(i));
        }
        Value::Real(r) => {
            out.push(VAL_REAL);
            out.extend_from_slice(&r.to_bits().to_le_bytes());
        }
        Value::Sym(s) => {
            out.push(VAL_SYM);
            put_varint(out, u64::from(dict.intern(s.as_str())));
        }
    }
}

#[inline]
fn read_value(cur: &mut Cur<'_>, dict: &SymDict) -> Option<Value> {
    match cur.u8()? {
        VAL_BOOL => match cur.u8()? {
            0 => Some(Value::Bool(false)),
            1 => Some(Value::Bool(true)),
            _ => None,
        },
        VAL_INT => Some(Value::Int(unzigzag(cur.varint()?))),
        VAL_REAL => {
            let bytes: [u8; 8] = cur.take(8)?.try_into().ok()?;
            Some(Value::Real(f64::from_bits(u64::from_le_bytes(bytes))))
        }
        VAL_SYM => Some(Value::Sym(dict.sym(cur.varint()?)?)),
        _ => None,
    }
}

fn push_presence_bitmap(out: &mut Vec<u8>, col: &[Option<Value>]) {
    let mut byte = 0u8;
    for (i, slot) in col.iter().enumerate() {
        if slot.is_some() {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            out.push(byte);
            byte = 0;
        }
    }
    if !col.len().is_multiple_of(8) {
        out.push(byte);
    }
}

#[inline]
fn bit(bitmap: &[u8], i: usize) -> bool {
    bitmap[i / 8] >> (i % 8) & 1 == 1
}

/// Encodes one signal column (`len` tick samples) with the cheapest
/// applicable encoding, interning any symbols into `dict`.
pub fn encode_column(col: &[Option<Value>], dict: &mut SymDict) -> Vec<u8> {
    let mut out = Vec::new();
    let n_present = col.iter().filter(|s| s.is_some()).count();
    if n_present == 0 {
        out.push(TAG_COL_EMPTY);
        return out;
    }
    if n_present == col.len() {
        let first = col[0].expect("all samples present");
        if col.iter().all(|s| bits_eq(s.expect("present"), first)) {
            out.push(TAG_COL_CONST);
            put_value(&mut out, first, dict);
            return out;
        }
    }
    let present = col.iter().filter_map(|s| *s);
    let (mut all_bool, mut all_int, mut all_real, mut all_sym) = (true, true, true, true);
    for v in present.clone() {
        match v {
            Value::Bool(_) => (all_int, all_real, all_sym) = (false, false, false),
            Value::Int(_) => (all_bool, all_real, all_sym) = (false, false, false),
            Value::Real(_) => (all_bool, all_int, all_sym) = (false, false, false),
            Value::Sym(_) => (all_bool, all_int, all_real) = (false, false, false),
        }
    }
    if all_bool {
        out.push(TAG_COL_BOOL);
        push_presence_bitmap(&mut out, col);
        let mut byte = 0u8;
        let mut n = 0usize;
        for v in present {
            if matches!(v, Value::Bool(true)) {
                byte |= 1 << (n % 8);
            }
            n += 1;
            if n.is_multiple_of(8) {
                out.push(byte);
                byte = 0;
            }
        }
        if !n.is_multiple_of(8) {
            out.push(byte);
        }
    } else if all_int {
        out.push(TAG_COL_INT);
        push_presence_bitmap(&mut out, col);
        let mut prev = 0i64;
        for v in present {
            if let Value::Int(i) = v {
                put_varint(&mut out, zigzag(i.wrapping_sub(prev)));
                prev = i;
            }
        }
    } else if all_real {
        out.push(TAG_COL_REAL);
        push_presence_bitmap(&mut out, col);
        let mut prev = 0u64;
        for v in present {
            if let Value::Real(r) = v {
                put_varint(&mut out, r.to_bits() ^ prev);
                prev = r.to_bits();
            }
        }
    } else if all_sym {
        out.push(TAG_COL_SYM);
        push_presence_bitmap(&mut out, col);
        let mut prev = 0i64;
        for v in present {
            if let Value::Sym(s) = v {
                let id = i64::from(dict.intern(s.as_str()));
                put_varint(&mut out, zigzag(id.wrapping_sub(prev)));
                prev = id;
            }
        }
    } else {
        out.push(TAG_COL_MIXED);
        push_presence_bitmap(&mut out, col);
        for v in present {
            put_value(&mut out, v, dict);
        }
    }
    out
}

enum ColMode<'a> {
    Empty,
    Const(Value),
    Bool {
        presence: &'a [u8],
        values: &'a [u8],
        seen: usize,
    },
    Int {
        presence: &'a [u8],
        data: Cur<'a>,
        prev: i64,
    },
    Real {
        presence: &'a [u8],
        data: Cur<'a>,
        prev: u64,
    },
    Sym {
        presence: &'a [u8],
        data: Cur<'a>,
        prev: i64,
    },
    Mixed {
        presence: &'a [u8],
        data: Cur<'a>,
    },
}

/// A streaming decoder over one encoded signal column: yields the next
/// tick's sample per call, holding only delta state — no materialized
/// `Vec` of the whole column.
pub struct ColumnCursor<'a> {
    mode: ColMode<'a>,
    tick: usize,
    len: usize,
}

impl<'a> ColumnCursor<'a> {
    /// Opens a column body (as produced by [`encode_column`]) holding
    /// `len` samples, or `None` if the prefix is malformed. The
    /// dictionary is needed up front because constant symbol columns
    /// decode their value eagerly.
    pub fn new(body: &'a [u8], len: usize, dict: &SymDict) -> Option<Self> {
        let mut cur = Cur::new(body);
        let tag = cur.u8()?;
        let presence_bytes = len.div_ceil(8);
        let mode = match tag {
            TAG_COL_EMPTY => {
                if !cur.done() {
                    return None;
                }
                ColMode::Empty
            }
            TAG_COL_CONST => {
                if len == 0 {
                    return None;
                }
                let v = read_value(&mut cur, dict)?;
                if !cur.done() {
                    return None;
                }
                ColMode::Const(v)
            }
            TAG_COL_BOOL => {
                let presence = cur.take(presence_bytes)?;
                let n_present: usize = presence.iter().map(|b| b.count_ones() as usize).sum();
                let values = cur.take(n_present.div_ceil(8))?;
                if !cur.done() {
                    return None;
                }
                ColMode::Bool {
                    presence,
                    values,
                    seen: 0,
                }
            }
            TAG_COL_INT => ColMode::Int {
                presence: cur.take(presence_bytes)?,
                data: cur,
                prev: 0,
            },
            TAG_COL_REAL => ColMode::Real {
                presence: cur.take(presence_bytes)?,
                data: cur,
                prev: 0,
            },
            TAG_COL_SYM => ColMode::Sym {
                presence: cur.take(presence_bytes)?,
                data: cur,
                prev: 0,
            },
            TAG_COL_MIXED => ColMode::Mixed {
                presence: cur.take(presence_bytes)?,
                data: cur,
            },
            _ => return None,
        };
        Some(ColumnCursor { mode, tick: 0, len })
    }

    /// Whether the column yields the same sample every tick (empty or
    /// constant encoding) — replay loops may write it once per lane
    /// instead of once per tick.
    pub fn is_static(&self) -> bool {
        matches!(self.mode, ColMode::Empty | ColMode::Const(_))
    }

    /// The next tick's sample (`Some(None)` = recorded-absent), or
    /// `None` when exhausted or the underlying bytes are malformed.
    #[inline]
    pub fn next_sample(&mut self, dict: &SymDict) -> Option<Option<Value>> {
        if self.tick >= self.len {
            return None;
        }
        let t = self.tick;
        self.tick += 1;
        match &mut self.mode {
            ColMode::Empty => Some(None),
            ColMode::Const(v) => Some(Some(*v)),
            ColMode::Bool {
                presence,
                values,
                seen,
            } => {
                if !bit(presence, t) {
                    return Some(None);
                }
                let b = bit(values, *seen);
                *seen += 1;
                Some(Some(Value::Bool(b)))
            }
            ColMode::Int {
                presence,
                data,
                prev,
            } => {
                if !bit(presence, t) {
                    return Some(None);
                }
                *prev = prev.wrapping_add(unzigzag(data.varint()?));
                Some(Some(Value::Int(*prev)))
            }
            ColMode::Real {
                presence,
                data,
                prev,
            } => {
                if !bit(presence, t) {
                    return Some(None);
                }
                *prev ^= data.varint()?;
                Some(Some(Value::Real(f64::from_bits(*prev))))
            }
            ColMode::Sym {
                presence,
                data,
                prev,
            } => {
                if !bit(presence, t) {
                    return Some(None);
                }
                *prev = prev.wrapping_add(unzigzag(data.varint()?));
                let id = u64::try_from(*prev).ok()?;
                Some(Some(Value::Sym(dict.sym(id)?)))
            }
            ColMode::Mixed { presence, data } => {
                if !bit(presence, t) {
                    return Some(None);
                }
                Some(Some(read_value(data, dict)?))
            }
        }
    }

    /// Whether every sample was yielded and every encoded byte was
    /// consumed — the strict full-decode check.
    pub fn fully_consumed(&self) -> bool {
        match &self.mode {
            // Static columns carry no per-tick bytes, so a replay loop
            // that wrote them once per lane has still consumed them.
            ColMode::Empty | ColMode::Const(_) => true,
            ColMode::Bool { .. } => self.tick == self.len,
            ColMode::Int { data, .. }
            | ColMode::Real { data, .. }
            | ColMode::Sym { data, .. }
            | ColMode::Mixed { data, .. } => self.tick == self.len && data.done(),
        }
    }
}

// --- whole runs --------------------------------------------------------

/// Encodes one recorded run: metadata, then each signal column in table
/// order, each prefixed by its byte length so readers can slice columns
/// without scanning them. New symbols are interned into `dict`; the
/// caller flushes `dict.texts_from(watermark)` as a dictionary block
/// *before* this run's record.
pub fn encode_run(trace: &FrameTrace, meta: &RunMeta, dict: &mut SymDict) -> Vec<u8> {
    debug_assert_eq!(meta.ticks, trace.len() as u64);
    debug_assert_eq!(meta.dt_millis, trace.tick_millis());
    let table = trace.table();
    let mut out = Vec::new();
    put_meta(&mut out, meta);
    put_varint(&mut out, table.len() as u64);
    for id in table.ids() {
        let body = encode_column(trace.column(id), dict);
        put_varint(&mut out, body.len() as u64);
        out.extend_from_slice(&body);
    }
    out
}

/// A streaming decoder over one encoded run: per tick, writes every
/// signal's sample directly into one lane of a lane-major
/// [`FrameBatch`] slab — the zero-materialization replay path. Holds
/// per-column cursors borrowing the corpus bytes; no column is ever
/// expanded into a `Vec`.
pub struct RunDecoder<'a> {
    cols: Vec<ColumnCursor<'a>>,
    /// Indices of the non-static columns — the only ones that need a
    /// slab write after the lane's first tick (static columns keep
    /// their tick-0 slot for the whole run).
    dynamic: Vec<u32>,
    len: usize,
    tick: usize,
}

impl<'a> RunDecoder<'a> {
    /// Opens a run payload (as produced by [`encode_run`]), checking
    /// the column count against `table`, or `None` if malformed.
    pub fn new(
        bytes: &'a [u8],
        table: &SignalTable,
        dict: &SymDict,
    ) -> Option<(RunMeta, RunDecoder<'a>)> {
        let mut cur = Cur::new(bytes);
        let meta = read_meta(&mut cur)?;
        let ncols = cur.varint()?;
        if ncols != table.len() as u64 {
            return None;
        }
        let len = usize::try_from(meta.ticks).ok()?;
        let mut cols = Vec::with_capacity(table.len());
        for _ in 0..table.len() {
            let body_len = usize::try_from(cur.varint()?).ok()?;
            cols.push(ColumnCursor::new(cur.take(body_len)?, len, dict)?);
        }
        if !cur.done() {
            return None;
        }
        let dynamic = cols
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_static())
            .map(|(i, _)| i as u32)
            .collect();
        Some((
            meta,
            RunDecoder {
                cols,
                dynamic,
                len,
                tick: 0,
            },
        ))
    }

    /// Number of ticks in the run.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the run holds no ticks.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Ticks already decoded.
    pub fn ticks_decoded(&self) -> usize {
        self.tick
    }

    /// Decodes the next tick into `lane` of `slab`, overwriting every
    /// signal's slot (recorded-absent samples unset the slot, so no
    /// stale neighbour data survives). The first tick writes every
    /// column; later ticks only rewrite the non-static ones — the
    /// lane's static slots already hold their run-constant samples.
    /// Returns `None` when the run is exhausted or the bytes are
    /// malformed.
    #[inline]
    pub fn write_tick(&mut self, slab: &mut FrameBatch, lane: usize, dict: &SymDict) -> Option<()> {
        if self.tick >= self.len {
            return None;
        }
        let lanes = slab.lanes();
        debug_assert!(lane < lanes, "lane out of range");
        debug_assert_eq!(slab.table().len(), self.cols.len());
        if self.tick == 0 {
            for (sig, col) in self.cols.iter_mut().enumerate() {
                slab.slots[sig * lanes + lane] = col.next_sample(dict)?;
            }
        } else {
            for &sig in &self.dynamic {
                let sig = sig as usize;
                slab.slots[sig * lanes + lane] = self.cols[sig].next_sample(dict)?;
            }
        }
        self.tick += 1;
        Some(())
    }

    /// Decodes the next tick into a full-column sink — used by the
    /// strict whole-trace decode below.
    fn write_tick_columns(
        &mut self,
        columns: &mut [Vec<Option<Value>>],
        dict: &SymDict,
    ) -> Option<()> {
        for (col, sink) in self.cols.iter_mut().zip(columns.iter_mut()) {
            sink.push(col.next_sample(dict)?);
        }
        self.tick += 1;
        Some(())
    }

    /// Whether every tick and every encoded byte was consumed.
    pub fn fully_consumed(&self) -> bool {
        self.tick == self.len && self.cols.iter().all(ColumnCursor::fully_consumed)
    }
}

/// Strictly decodes a whole run back into a [`FrameTrace`] over
/// `table` (the reader-side table for the run's `table_ref`), or
/// `None` if the bytes are not exactly one well-formed run. This is
/// the scalar-replay and test path; batched replay streams through
/// [`RunDecoder`] instead.
pub fn decode_run_trace(
    bytes: &[u8],
    table: &Arc<SignalTable>,
    dict: &SymDict,
) -> Option<(RunMeta, FrameTrace)> {
    let (meta, mut dec) = RunDecoder::new(bytes, table, dict)?;
    let len = dec.len();
    let mut columns: Vec<Vec<Option<Value>>> = vec![Vec::with_capacity(len); table.len()];
    for _ in 0..len {
        dec.write_tick_columns(&mut columns, dict)?;
    }
    if !dec.fully_consumed() {
        return None;
    }
    Some((
        meta.clone(),
        FrameTrace::from_columns(table, meta.dt_millis, len, columns),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Arc<SignalTable> {
        let mut b = SignalTable::builder();
        b.bool("p");
        b.int("n");
        b.real("x");
        b.sym("cmd");
        b.finish()
    }

    fn meta(ticks: u64) -> RunMeta {
        RunMeta {
            table_ref: 0,
            substrate: "vehicle".into(),
            label: "scenario-1/none".into(),
            dt_millis: 1,
            ticks,
            terminated_early: false,
            terminal_event: None,
        }
    }

    #[test]
    fn varints_round_trip() {
        for x in [0u64, 1, 127, 128, 300, u64::MAX, 1 << 35] {
            let mut out = Vec::new();
            put_varint(&mut out, x);
            assert_eq!(Cur::new(&out).varint(), Some(x));
        }
        for x in [0i64, -1, 1, i64::MIN, i64::MAX, -300] {
            assert_eq!(unzigzag(zigzag(x)), x);
        }
    }

    #[test]
    fn tables_round_trip() {
        let t = table();
        let back = decode_table(&encode_table(&t)).unwrap();
        assert!(t.same_names(&back));
        for id in t.ids() {
            assert_eq!(t.kind(id), back.kind(back.id(t.name(id)).unwrap()));
        }
    }

    #[test]
    fn runs_round_trip_bit_identically() {
        let t = table();
        let (p, n, x, cmd) = (
            t.id("p").unwrap(),
            t.id("n").unwrap(),
            t.id("x").unwrap(),
            t.id("cmd").unwrap(),
        );
        let mut trace = FrameTrace::new(&t, 1);
        let mut frame = t.frame();
        for i in 0..20i64 {
            frame.clear();
            frame.set(p, i % 3 == 0);
            if i % 4 != 1 {
                frame.set(n, i * 1000 - 7);
            }
            // Real column with an Int sample mixed in, plus a NaN.
            if i == 5 {
                frame.set(x, Value::Int(9));
            } else if i == 6 {
                frame.set(x, f64::from_bits(0x7ff8_dead_beef_0001));
            } else {
                frame.set(x, (i as f64) * 0.25 - 1.0);
            }
            frame.set(cmd, Value::sym(if i % 2 == 0 { "GO" } else { "HOLD" }));
            trace.push(&frame);
        }
        let mut dict = SymDict::new();
        let bytes = encode_run(&trace, &meta(20), &mut dict);
        assert_eq!(dict.len(), 2);
        let (m, back) = decode_run_trace(&bytes, &t, &dict).unwrap();
        assert_eq!(m, meta(20));
        assert_eq!(back.len(), trace.len());
        for id in t.ids() {
            let (a, b) = (trace.column(id), back.column(id));
            assert_eq!(a.len(), b.len());
            for (sa, sb) in a.iter().zip(b) {
                match (sa, sb) {
                    (None, None) => {}
                    (Some(va), Some(vb)) => assert!(bits_eq(*va, *vb), "{va} != {vb}"),
                    _ => panic!("presence diverged"),
                }
            }
        }
        // Re-encoding the decoded trace with a fresh dict reproduces
        // the bytes exactly.
        let mut dict2 = SymDict::new();
        assert_eq!(encode_run(&back, &meta(20), &mut dict2), bytes);
    }

    #[test]
    fn empty_and_constant_columns_stay_small() {
        let t = table();
        let p = t.id("p").unwrap();
        let mut trace = FrameTrace::new(&t, 1);
        let mut frame = t.frame();
        frame.set(p, true);
        for _ in 0..10_000 {
            trace.push(&frame);
        }
        let mut dict = SymDict::new();
        let bytes = encode_run(&trace, &meta(10_000), &mut dict);
        assert!(
            bytes.len() < 128,
            "constant/empty columns must not scale with ticks, got {} bytes",
            bytes.len()
        );
        let (_, back) = decode_run_trace(&bytes, &t, &dict).unwrap();
        assert_eq!(back.len(), 10_000);
        assert_eq!(back.get(9_999, p), Some(Value::Bool(true)));
    }

    #[test]
    fn truncation_never_decodes() {
        let t = table();
        let x = t.id("x").unwrap();
        let mut trace = FrameTrace::new(&t, 1);
        let mut frame = t.frame();
        for i in 0..8 {
            frame.set(x, i as f64);
            trace.push(&frame);
        }
        let mut dict = SymDict::new();
        let bytes = encode_run(&trace, &meta(8), &mut dict);
        for cut in 0..bytes.len() {
            assert!(
                decode_run_trace(&bytes[..cut], &t, &dict).is_none(),
                "a {cut}-byte prefix of a {}-byte run decoded",
                bytes.len()
            );
        }
    }

    #[test]
    fn hostile_tick_counts_are_rejected_before_allocation() {
        let mut out = Vec::new();
        put_meta(
            &mut out,
            &RunMeta {
                ticks: MAX_RUN_TICKS + 1,
                ..meta(0)
            },
        );
        assert!(decode_run_meta(&out).is_none());
    }
}
