//! Interned signal namespace and dense per-tick state frames.
//!
//! The seed implementation sampled system state as `BTreeMap<String,
//! Value>` snapshots rebuilt every tick, so the hottest loop in the
//! reproduction — sample all state variables each millisecond and feed
//! every goal monitor — was dominated by `String` allocation and
//! string-ordered map lookups. This module replaces that representation
//! with the two types the whole pipeline now shares:
//!
//! * [`SignalTable`] — an immutable name → [`SignalId`] interner with a
//!   [`SignalKind`] tag per signal. A substrate builds its table **once**;
//!   every run, sweep cell, monitor, and series sample shares it through
//!   an [`Arc`]. This is the "small, explicit relied-upon interface"
//!   between constituent systems that Kopetz's system-of-systems analysis
//!   calls for: the signal namespace is closed at build time.
//! * [`Frame`] — one sample of all signals: a flat `Vec<Option<Value>>`
//!   indexed by [`SignalId`]. Since [`Value`] is `Copy` (symbols are
//!   interned), copying a frame is a memcpy and per-tick reads/writes are
//!   array indexing — zero heap traffic on the hot path.
//!
//! The name-keyed [`State`] map remains the authoring,
//! serde, and test-fixture view; [`SignalTable::frame_from_state`] and
//! [`Frame::to_state`] convert between the two.
//!
//! # Example
//!
//! ```
//! use esafe_logic::{SignalTable, Value};
//!
//! let mut b = SignalTable::builder();
//! let speed = b.real("host.speed");
//! let stopped = b.bool("host.stopped");
//! let table = b.finish();
//!
//! let mut frame = table.frame();
//! frame.set(speed, 3.5);
//! frame.set(stopped, false);
//! assert_eq!(frame.get(speed), Some(Value::Real(3.5)));
//! assert_eq!(frame.real_or(speed, 0.0), 3.5);
//! assert_eq!(table.id("host.speed"), Some(speed));
//! ```

use crate::state::State;
use crate::value::Value;
use serde::{Content, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A dense index into a [`SignalTable`] (and into every [`Frame`] built
/// from it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignalId(u32);

impl SignalId {
    /// The raw dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The declared type of a signal.
///
/// Kinds are declarative metadata: they document the namespace, drive
/// tooling, and back the `debug_assert` in [`Frame::set`]. Run-time type
/// errors (a non-boolean used as an atom, ordering symbols) are still
/// reported by evaluation, exactly as with the name-keyed representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignalKind {
    /// Boolean signal.
    Bool,
    /// Integer signal.
    Int,
    /// Real-valued signal.
    Real,
    /// Symbolic/enumeration signal.
    Sym,
}

impl SignalKind {
    /// Whether `value` inhabits this kind (numeric kinds admit both
    /// [`Value::Int`] and [`Value::Real`]).
    pub fn admits(self, value: &Value) -> bool {
        matches!(
            (self, value),
            (SignalKind::Bool, Value::Bool(_))
                | (SignalKind::Int, Value::Int(_))
                | (SignalKind::Real, Value::Real(_) | Value::Int(_))
                | (SignalKind::Sym, Value::Sym(_))
        )
    }
}

/// Builds a [`SignalTable`]; signals are interned in declaration order.
#[derive(Debug, Default)]
pub struct SignalTableBuilder {
    names: Vec<String>,
    kinds: Vec<SignalKind>,
    by_name: HashMap<String, u32>,
}

impl SignalTableBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name` with the given kind, returning its id. Re-declaring
    /// a name with the same kind is idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `name` was already declared with a different kind — the
    /// namespace is the substrate's contract, and a kind conflict is a
    /// wiring bug.
    pub fn signal(&mut self, name: &str, kind: SignalKind) -> SignalId {
        if let Some(&id) = self.by_name.get(name) {
            assert!(
                self.kinds[id as usize] == kind,
                "signal `{name}` re-declared as {kind:?} (was {:?})",
                self.kinds[id as usize]
            );
            return SignalId(id);
        }
        let id = u32::try_from(self.names.len()).expect("signal namespace overflow");
        self.names.push(name.to_owned());
        self.kinds.push(kind);
        self.by_name.insert(name.to_owned(), id);
        SignalId(id)
    }

    /// Declares a boolean signal.
    pub fn bool(&mut self, name: &str) -> SignalId {
        self.signal(name, SignalKind::Bool)
    }

    /// Declares an integer signal.
    pub fn int(&mut self, name: &str) -> SignalId {
        self.signal(name, SignalKind::Int)
    }

    /// Declares a real-valued signal.
    pub fn real(&mut self, name: &str) -> SignalId {
        self.signal(name, SignalKind::Real)
    }

    /// Declares a symbolic signal.
    pub fn sym(&mut self, name: &str) -> SignalId {
        self.signal(name, SignalKind::Sym)
    }

    /// Freezes the namespace into a shared immutable table.
    pub fn finish(self) -> Arc<SignalTable> {
        Arc::new(SignalTable {
            names: self.names,
            kinds: self.kinds,
            by_name: self.by_name,
        })
    }
}

/// The immutable, shared signal namespace: name → [`SignalId`] with a
/// [`SignalKind`] per signal. See the [module docs](self).
#[derive(Debug)]
pub struct SignalTable {
    names: Vec<String>,
    kinds: Vec<SignalKind>,
    by_name: HashMap<String, u32>,
}

impl SignalTable {
    /// Starts building a table.
    pub fn builder() -> SignalTableBuilder {
        SignalTableBuilder::new()
    }

    /// Resolves a name to its id.
    pub fn id(&self, name: &str) -> Option<SignalId> {
        self.by_name.get(name).map(|&i| SignalId(i))
    }

    /// The name of a signal.
    pub fn name(&self, id: SignalId) -> &str {
        &self.names[id.index()]
    }

    /// The declared kind of a signal.
    pub fn kind(&self, id: SignalId) -> SignalKind {
        self.kinds[id.index()]
    }

    /// Whether two tables declare the same namespace (same names in the
    /// same order) — the structural fallback behind [`Frame`] and
    /// [`FrameTrace`](crate::FrameTrace) equality when the `Arc`s differ.
    pub(crate) fn same_names(&self, other: &SignalTable) -> bool {
        self.names == other.names
    }

    /// Number of signals in the namespace.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the namespace is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All ids, in declaration order.
    pub fn ids(&self) -> impl Iterator<Item = SignalId> + '_ {
        (0..self.names.len() as u32).map(SignalId)
    }

    /// An all-unset frame over this namespace.
    pub fn frame(self: &Arc<Self>) -> Frame {
        Frame {
            slots: vec![None; self.len()],
            table: Arc::clone(self),
        }
    }

    /// Builds a frame from a name-keyed [`State`], resolving every entry.
    ///
    /// Values are stored as-is regardless of declared kind (States come
    /// from fixtures and deserialization; run-time type errors are
    /// evaluation's job, per [`SignalKind`]).
    ///
    /// # Errors
    ///
    /// Returns the first state-variable name not present in the table —
    /// the conversion is strict so namespace typos surface immediately.
    pub fn frame_from_state(self: &Arc<Self>, state: &State) -> Result<Frame, String> {
        let mut frame = self.frame();
        for (name, value) in state.iter() {
            let id = self.id(name).ok_or_else(|| name.to_owned())?;
            frame.slots[id.index()] = Some(*value);
        }
        Ok(frame)
    }

    /// Resolves `names` to ids, panicking on the first unknown name —
    /// the fail-fast path substrates use for tracked-signal
    /// configuration, where a typo should die at configuration time.
    pub fn resolve_all(&self, names: impl IntoIterator<Item = impl AsRef<str>>) -> Vec<SignalId> {
        names
            .into_iter()
            .map(|name| {
                let name = name.as_ref();
                self.id(name)
                    .unwrap_or_else(|| panic!("unknown tracked signal `{name}`"))
            })
            .collect()
    }

    /// Builds a frame carrying the state's values for names the table
    /// knows, silently skipping the rest (the lenient conversion behind
    /// [`CompiledMonitor::observe_state`](crate::CompiledMonitor::observe_state)).
    pub fn frame_from_state_lossy(self: &Arc<Self>, state: &State) -> Frame {
        let mut frame = self.frame();
        for (name, value) in state.iter() {
            if let Some(id) = self.id(name) {
                // Bypass the kind debug-assert: arbitrary States may
                // mistype a signal, and evaluation is where that must
                // surface (as `NotBoolean` / `IncomparableValues`).
                frame.slots[id.index()] = Some(*value);
            }
        }
        frame
    }
}

/// One sample of every signal in a [`SignalTable`]: a flat slot array
/// indexed by [`SignalId`]. See the [module docs](self).
#[derive(Clone)]
pub struct Frame {
    pub(crate) slots: Vec<Option<Value>>,
    table: Arc<SignalTable>,
}

impl Frame {
    /// The namespace this frame is indexed by.
    pub fn table(&self) -> &Arc<SignalTable> {
        &self.table
    }

    /// The value of a signal, or `None` if unset.
    #[inline]
    pub fn get(&self, id: SignalId) -> Option<Value> {
        self.slots[id.index()]
    }

    /// Sets a signal's value.
    ///
    /// `debug_assert`s that the value inhabits the signal's declared kind;
    /// release builds trust the substrate's wiring.
    #[inline]
    pub fn set(&mut self, id: SignalId, value: impl Into<Value>) {
        let value = value.into();
        debug_assert!(
            self.table.kind(id).admits(&value),
            "signal `{}` declared {:?} but assigned {}",
            self.table.name(id),
            self.table.kind(id),
            value.type_name()
        );
        self.slots[id.index()] = Some(value);
    }

    /// The boolean value of a signal, or `default` when unset/mistyped.
    #[inline]
    pub fn bool_or(&self, id: SignalId, default: bool) -> bool {
        self.get(id).and_then(|v| v.as_bool()).unwrap_or(default)
    }

    /// The numeric value of a signal, or `default` when unset/mistyped.
    #[inline]
    pub fn real_or(&self, id: SignalId, default: f64) -> f64 {
        self.get(id).and_then(|v| v.as_real()).unwrap_or(default)
    }

    /// The symbol value of a signal, if set and symbolic.
    #[inline]
    pub fn sym(&self, id: SignalId) -> Option<crate::Sym> {
        self.get(id).and_then(|v| v.as_sym())
    }

    /// Overwrites this frame's slots with `other`'s — the per-tick double
    /// buffer refresh. A memcpy: no allocation, no per-slot branching.
    ///
    /// # Panics
    ///
    /// Panics if the frames index different tables.
    #[inline]
    pub fn copy_from(&mut self, other: &Frame) {
        assert!(
            Arc::ptr_eq(&self.table, &other.table),
            "frames must share one signal table"
        );
        self.slots.copy_from_slice(&other.slots);
    }

    /// Unsets every slot, returning the frame to the all-unset state a
    /// fresh [`SignalTable::frame`] starts in — a `memset`, no
    /// allocation. Run-context pooling uses this so a reused scratch
    /// frame is indistinguishable from a newly built one.
    pub fn clear(&mut self) {
        self.slots.fill(None);
    }

    /// Number of slots (== the table's signal count).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the frame has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Looks a signal up by name (test/tooling convenience — the hot path
    /// holds resolved [`SignalId`]s).
    pub fn get_named(&self, name: &str) -> Option<Value> {
        self.table.id(name).and_then(|id| self.get(id))
    }

    /// Sets a signal by name (test/tooling convenience).
    ///
    /// # Panics
    ///
    /// Panics if `name` is not in the table.
    pub fn set_named(&mut self, name: &str, value: impl Into<Value>) {
        let id = self
            .table
            .id(name)
            .unwrap_or_else(|| panic!("signal `{name}` not declared in the table"));
        self.set(id, value);
    }

    /// Converts to the name-keyed [`State`] view (unset slots omitted).
    pub fn to_state(&self) -> State {
        self.table
            .ids()
            .filter_map(|id| self.get(id).map(|v| (self.table.name(id).to_owned(), v)))
            .collect()
    }

    /// Iterates over `(id, value)` for every set slot, in id order.
    pub fn iter(&self) -> impl Iterator<Item = (SignalId, Value)> + '_ {
        self.table
            .ids()
            .filter_map(|id| self.get(id).map(|v| (id, v)))
    }
}

impl PartialEq for Frame {
    fn eq(&self, other: &Self) -> bool {
        (Arc::ptr_eq(&self.table, &other.table) || self.table.same_names(&other.table))
            && self.slots == other.slots
    }
}

impl fmt::Debug for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut m = f.debug_map();
        for (id, v) in self.iter() {
            m.entry(&self.table.name(id), &v.to_string());
        }
        m.finish()
    }
}

/// Frames serialize as the name-keyed map (the same shape as
/// [`State`]), so external tooling never sees raw ids. Deserialization
/// requires a table: parse a [`State`] and use
/// [`SignalTable::frame_from_state`].
impl Serialize for Frame {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(id, v)| (self.table.name(id).to_owned(), v.to_content()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Arc<SignalTable> {
        let mut b = SignalTable::builder();
        b.bool("flag");
        b.real("speed");
        b.sym("cmd");
        b.int("floor");
        b.finish()
    }

    #[test]
    fn builder_interns_and_is_idempotent() {
        let mut b = SignalTable::builder();
        let a = b.real("x");
        let again = b.real("x");
        let y = b.bool("y");
        assert_eq!(a, again);
        assert_ne!(a, y);
        let t = b.finish();
        assert_eq!(t.len(), 2);
        assert_eq!(t.id("x"), Some(a));
        assert_eq!(t.name(a), "x");
        assert_eq!(t.kind(a), SignalKind::Real);
        assert_eq!(t.id("missing"), None);
    }

    #[test]
    #[should_panic(expected = "re-declared")]
    fn kind_conflict_panics() {
        let mut b = SignalTable::builder();
        b.real("x");
        b.bool("x");
    }

    #[test]
    fn frame_set_get_and_defaults() {
        let t = table();
        let mut f = t.frame();
        let speed = t.id("speed").unwrap();
        let flag = t.id("flag").unwrap();
        assert_eq!(f.get(speed), None);
        assert_eq!(f.real_or(speed, 7.0), 7.0);
        f.set(speed, 2.5);
        f.set(flag, true);
        assert_eq!(f.get(speed), Some(Value::Real(2.5)));
        assert!(f.bool_or(flag, false));
        assert_eq!(f.get_named("speed"), Some(Value::Real(2.5)));
    }

    #[test]
    fn int_is_admitted_into_real_slots() {
        let t = table();
        let mut f = t.frame();
        f.set_named("speed", 3i64);
        assert_eq!(f.real_or(t.id("speed").unwrap(), 0.0), 3.0);
    }

    #[test]
    fn copy_from_is_exact() {
        let t = table();
        let mut a = t.frame();
        a.set_named("cmd", Value::sym("STOP"));
        a.set_named("floor", 3i64);
        let mut b = t.frame();
        b.copy_from(&a);
        assert_eq!(a, b);
        b.set_named("floor", 4i64);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "share one signal table")]
    fn copy_from_rejects_foreign_tables() {
        let a = table().frame();
        let mut b = table().frame();
        b.copy_from(&a);
    }

    #[test]
    fn state_round_trip() {
        let t = table();
        let mut f = t.frame();
        f.set_named("flag", true);
        f.set_named("speed", 1.25);
        f.set_named("cmd", Value::sym("GO"));
        let state = f.to_state();
        assert_eq!(state.len(), 3);
        let back = t.frame_from_state(&state).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn frame_from_state_is_strict_and_lossy_variant_skips() {
        let t = table();
        let state = State::new()
            .with_bool("flag", true)
            .with_real("unknown", 1.0);
        assert_eq!(t.frame_from_state(&state), Err("unknown".to_owned()));
        let lossy = t.frame_from_state_lossy(&state);
        assert!(lossy.bool_or(t.id("flag").unwrap(), false));
        assert_eq!(lossy.iter().count(), 1);
    }

    #[test]
    fn serializes_as_name_keyed_map() {
        let t = table();
        let mut f = t.frame();
        f.set_named("floor", 2i64);
        let content = f.to_content();
        let map = content.as_map().expect("map");
        assert_eq!(map.len(), 1);
        assert_eq!(map[0].0, "floor");
    }

    #[test]
    #[should_panic(expected = "not declared")]
    fn set_named_rejects_unknown() {
        let t = table();
        t.frame().set_named("nope", 1.0);
    }
}
