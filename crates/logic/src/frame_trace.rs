//! Recorded traces in the production (interned) representation.
//!
//! The name-keyed [`Trace`] is the authoring and serde view of a
//! recording: a `Vec` of `BTreeMap` states. Replaying one through a
//! monitor means a map walk and a string resolution per variable per
//! sample. A [`FrameTrace`] stores the same recording **column-per-
//! signal** over a shared [`SignalTable`]: one `Vec<Option<Value>>` lane
//! per [`SignalId`], so assembling the sample at index `i` into a
//! [`Frame`] is a handful of array reads and replay runs at the same
//! frame speed as the live experiment loop.
//!
//! Conversions to and from the name-keyed view are lossless for states
//! whose variables all belong to the table
//! ([`FrameTrace::from_trace`] / [`FrameTrace::to_trace`]).
//!
//! # Example
//!
//! ```
//! use esafe_logic::{parse, FrameTrace, SignalTable};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = SignalTable::builder();
//! let p = b.bool("p");
//! let table = b.finish();
//!
//! let mut trace = FrameTrace::new(&table, 1);
//! let mut frame = table.frame();
//! for v in [false, true, true] {
//!     frame.set(p, v);
//!     trace.push(&frame);
//! }
//! let verdicts = trace.replay_expr(&parse("once(p)")?)?;
//! assert_eq!(verdicts, vec![false, false, true]);
//! # Ok(())
//! # }
//! ```

use crate::error::EvalError;
use crate::expr::Expr;
use crate::incremental::CompiledMonitor;
use crate::signal::{Frame, SignalId, SignalTable};
use crate::state::Trace;
use crate::value::Value;
use std::sync::Arc;

/// A recorded sequence of frames over one [`SignalTable`], stored as one
/// column per signal. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct FrameTrace {
    table: Arc<SignalTable>,
    /// `columns[id][i]` is signal `id`'s value at sample `i`.
    columns: Vec<Vec<Option<Value>>>,
    len: usize,
    tick_millis: u64,
}

impl FrameTrace {
    /// Creates an empty trace over the table with the given sample
    /// period in milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `tick_millis` is zero.
    pub fn new(table: &Arc<SignalTable>, tick_millis: u64) -> Self {
        assert!(tick_millis > 0, "tick period must be positive");
        FrameTrace {
            columns: vec![Vec::new(); table.len()],
            table: Arc::clone(table),
            len: 0,
            tick_millis,
        }
    }

    /// Creates an empty trace with column capacity for `samples` frames.
    pub fn with_capacity(table: &Arc<SignalTable>, tick_millis: u64, samples: usize) -> Self {
        let mut t = Self::new(table, tick_millis);
        for col in &mut t.columns {
            col.reserve(samples);
        }
        t
    }

    /// Assembles a trace directly from raw columns — the corpus decode
    /// path, which already holds the data column-per-signal.
    pub(crate) fn from_columns(
        table: &Arc<SignalTable>,
        tick_millis: u64,
        len: usize,
        columns: Vec<Vec<Option<Value>>>,
    ) -> Self {
        assert!(tick_millis > 0, "tick period must be positive");
        assert_eq!(columns.len(), table.len(), "one column per signal");
        debug_assert!(columns.iter().all(|c| c.len() == len));
        FrameTrace {
            table: Arc::clone(table),
            columns,
            len,
            tick_millis,
        }
    }

    /// The namespace every sample is indexed by.
    pub fn table(&self) -> &Arc<SignalTable> {
        &self.table
    }

    /// The sample period in milliseconds.
    pub fn tick_millis(&self) -> u64 {
        self.tick_millis
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trace holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The recording time of sample `i` in seconds (`i × tick`).
    pub fn time_s(&self, i: usize) -> f64 {
        (i as u64 * self.tick_millis) as f64 / 1000.0
    }

    /// Appends one frame as the next sample.
    ///
    /// # Panics
    ///
    /// Panics if `frame` indexes a different table.
    pub fn push(&mut self, frame: &Frame) {
        assert!(
            Arc::ptr_eq(frame.table(), &self.table),
            "frame and trace must share one signal table"
        );
        for (col, slot) in self.columns.iter_mut().zip(&frame.slots) {
            col.push(*slot);
        }
        self.len += 1;
    }

    /// The value of signal `id` at sample `i`, or `None` if unset.
    #[inline]
    pub fn get(&self, i: usize, id: SignalId) -> Option<Value> {
        self.columns[id.index()][i]
    }

    /// Signal `id`'s full column, one slot per sample.
    pub fn column(&self, id: SignalId) -> &[Option<Value>] {
        &self.columns[id.index()]
    }

    /// Writes sample `i` into `frame`, overwriting every slot (unset
    /// column entries unset the slot).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `frame` indexes a different
    /// table.
    pub fn read_into(&self, i: usize, frame: &mut Frame) {
        assert!(i < self.len, "sample index out of range");
        assert!(
            Arc::ptr_eq(frame.table(), &self.table),
            "frame and trace must share one signal table"
        );
        for (slot, col) in frame.slots.iter_mut().zip(&self.columns) {
            *slot = col[i];
        }
    }

    /// Builds a column trace from a name-keyed [`Trace`], resolving
    /// every variable of every state.
    ///
    /// # Errors
    ///
    /// Returns the first state-variable name not present in the table —
    /// strict, like [`SignalTable::frame_from_state`], so namespace
    /// typos surface immediately.
    pub fn from_trace(table: &Arc<SignalTable>, trace: &Trace) -> Result<Self, String> {
        let mut out = Self::with_capacity(table, trace.tick_millis(), trace.len());
        let mut frame = table.frame();
        for state in trace.iter() {
            frame.clear();
            for (name, value) in state.iter() {
                let id = table.id(name).ok_or_else(|| name.to_owned())?;
                frame.slots[id.index()] = Some(*value);
            }
            out.push(&frame);
        }
        Ok(out)
    }

    /// Converts to the name-keyed [`Trace`] view (unset slots omitted,
    /// as in [`Frame::to_state`]).
    pub fn to_trace(&self) -> Trace {
        let mut trace = Trace::with_tick_millis(self.tick_millis);
        let mut frame = self.table.frame();
        for i in 0..self.len {
            self.read_into(i, &mut frame);
            trace.push(frame.to_state());
        }
        trace
    }

    /// Replays the trace through a monitor from a clean start
    /// ([`CompiledMonitor::reset`] is applied first), returning one
    /// verdict per sample — the frame-speed analogue of
    /// [`eval_trace`](crate::eval::eval_trace) under *monitor semantics*
    /// (see [`monitor_form`](crate::incremental::monitor_form): `always`
    /// flags per-state violations, future operators are rejected at
    /// compile time).
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] if a sample leaves a referenced signal
    /// unset or mistyped.
    ///
    /// # Panics
    ///
    /// Panics if the monitor was compiled against a different table.
    pub fn replay(&self, monitor: &mut CompiledMonitor) -> Result<Vec<bool>, EvalError> {
        monitor.reset();
        let mut frame = self.table.frame();
        let mut out = Vec::with_capacity(self.len);
        for i in 0..self.len {
            self.read_into(i, &mut frame);
            out.push(monitor.observe(&frame)?);
        }
        Ok(out)
    }

    /// Compiles `expr` against the trace's table and replays it — the
    /// one-shot form of [`FrameTrace::replay`].
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] on compile failure (future operator,
    /// unknown signal) or on a bad sample, as in [`FrameTrace::replay`].
    pub fn replay_expr(&self, expr: &Expr) -> Result<Vec<bool>, EvalError> {
        let mut monitor = CompiledMonitor::compile_in(expr, &self.table)?;
        self.replay(&mut monitor)
    }
}

/// Two traces are equal when they record the same samples over the same
/// namespace (table identity or same names in the same order) at the
/// same tick period — the equality `RunReport` comparisons rely on.
impl PartialEq for FrameTrace {
    fn eq(&self, other: &Self) -> bool {
        (Arc::ptr_eq(&self.table, &other.table) || self.table.same_names(&other.table))
            && self.tick_millis == other.tick_millis
            && self.len == other.len
            && self.columns == other.columns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use crate::state::State;

    fn table() -> Arc<SignalTable> {
        let mut b = SignalTable::builder();
        b.bool("p");
        b.real("x");
        b.sym("cmd");
        b.finish()
    }

    fn sample_trace() -> Trace {
        let mut t = Trace::with_tick_millis(10);
        t.push(State::new().with_bool("p", true).with_real("x", 1.0));
        t.push(State::new().with_bool("p", false).with_sym("cmd", "GO"));
        t.push(State::new().with_bool("p", true).with_real("x", 3.5));
        t
    }

    #[test]
    fn round_trips_name_keyed_traces() {
        let table = table();
        let trace = sample_trace();
        let ft = FrameTrace::from_trace(&table, &trace).unwrap();
        assert_eq!(ft.len(), 3);
        assert_eq!(ft.tick_millis(), 10);
        assert_eq!(ft.to_trace(), trace);
    }

    #[test]
    fn from_trace_is_strict_about_unknown_names() {
        let table = table();
        let mut trace = Trace::with_tick_millis(1);
        trace.push(State::new().with_bool("nope", true));
        assert_eq!(
            FrameTrace::from_trace(&table, &trace).map(|t| t.len()),
            Err("nope".into())
        );
    }

    #[test]
    fn columns_and_samples_agree() {
        let table = table();
        let ft = FrameTrace::from_trace(&table, &sample_trace()).unwrap();
        let x = table.id("x").unwrap();
        assert_eq!(
            ft.column(x),
            &[Some(Value::Real(1.0)), None, Some(Value::Real(3.5))]
        );
        assert_eq!(ft.get(2, x), Some(Value::Real(3.5)));
        assert_eq!(ft.get(1, x), None);
        assert!((ft.time_s(2) - 0.02).abs() < 1e-12);
    }

    #[test]
    fn replay_matches_observe_state_over_the_name_keyed_view() {
        let table = table();
        let trace = sample_trace();
        let ft = FrameTrace::from_trace(&table, &trace).unwrap();
        let expr = parse("p || prev(p)").unwrap();
        let mut reference = CompiledMonitor::compile_in(&expr, &table).unwrap();
        let expected: Vec<bool> = trace
            .iter()
            .map(|s| reference.observe_state(s).unwrap())
            .collect();
        assert_eq!(ft.replay_expr(&expr).unwrap(), expected);
    }

    #[test]
    fn replay_resets_the_monitor_first() {
        let table = table();
        let ft = FrameTrace::from_trace(&table, &sample_trace()).unwrap();
        let mut m = CompiledMonitor::compile_in(&parse("prev(p)").unwrap(), &table).unwrap();
        let first = ft.replay(&mut m).unwrap();
        let second = ft.replay(&mut m).unwrap();
        assert_eq!(first, second, "replay must start from clean history");
    }

    #[test]
    fn replay_surfaces_missing_signals() {
        let table = table();
        let mut ft = FrameTrace::new(&table, 1);
        ft.push(&table.frame());
        assert!(matches!(
            ft.replay_expr(&parse("p").unwrap()),
            Err(EvalError::MissingVar { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "share one signal table")]
    fn push_rejects_foreign_frames() {
        let mut ft = FrameTrace::new(&table(), 1);
        ft.push(&table().frame());
    }
}
