//! Error types for parsing, evaluation, and propositional analysis.

use std::error::Error;
use std::fmt;

/// An error produced while parsing a goal expression from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl Error for ParseError {}

/// An error produced while evaluating an expression over a trace or state.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// A referenced state variable was absent from the sampled state.
    MissingVar {
        /// The variable name.
        name: String,
        /// The sample index at which the lookup failed.
        step: usize,
    },
    /// A variable was used where a boolean was required but held another
    /// type.
    NotBoolean {
        /// The variable name.
        name: String,
        /// The type actually found.
        found: &'static str,
    },
    /// A comparison was applied to operands that do not support it (e.g.
    /// ordering two symbolic values).
    IncomparableValues {
        /// Rendered left operand.
        lhs: String,
        /// Rendered right operand.
        rhs: String,
    },
    /// A future-directed operator was used where only past-time and
    /// current-state operators are supported (run-time monitoring).
    FutureOperator {
        /// The offending operator's name.
        operator: &'static str,
    },
    /// A goal formula referenced a variable that is not in the
    /// [`SignalTable`](crate::SignalTable) it was compiled against — the
    /// namespace is closed at compile time, so unknown signals fail fast
    /// instead of erroring on the first observed tick.
    UnknownSignal {
        /// The unresolvable variable name.
        name: String,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::MissingVar { name, step } => {
                write!(f, "state variable `{name}` missing at step {step}")
            }
            EvalError::NotBoolean { name, found } => {
                write!(f, "variable `{name}` used as boolean but holds {found}")
            }
            EvalError::IncomparableValues { lhs, rhs } => {
                write!(f, "cannot order values {lhs} and {rhs}")
            }
            EvalError::FutureOperator { operator } => {
                write!(
                    f,
                    "operator `{operator}` refers to future states and is not finitely violable"
                )
            }
            EvalError::UnknownSignal { name } => {
                write!(f, "variable `{name}` is not declared in the signal table")
            }
        }
    }
}

impl Error for EvalError {}

/// An error produced by the propositional unroller / model enumerator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropError {
    /// The expression contains an operator that cannot be unrolled into a
    /// bounded propositional window (unbounded past or any future operator).
    Unboundable {
        /// The offending operator's name.
        operator: &'static str,
    },
    /// The formula references more distinct atoms than the enumeration
    /// limit allows.
    TooManyAtoms {
        /// Number of distinct `(variable, age)` atoms found.
        found: usize,
        /// Enumeration limit.
        limit: usize,
    },
}

impl fmt::Display for PropError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropError::Unboundable { operator } => {
                write!(
                    f,
                    "operator `{operator}` cannot be propositionally unrolled"
                )
            }
            PropError::TooManyAtoms { found, limit } => {
                write!(f, "{found} atoms exceed the enumeration limit of {limit}")
            }
        }
    }
}

impl Error for PropError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_nonempty_and_lowercase() {
        let errors: Vec<Box<dyn Error>> = vec![
            Box::new(ParseError {
                offset: 3,
                message: "expected `)`".into(),
            }),
            Box::new(EvalError::MissingVar {
                name: "x".into(),
                step: 9,
            }),
            Box::new(EvalError::FutureOperator {
                operator: "eventually",
            }),
            Box::new(PropError::TooManyAtoms {
                found: 30,
                limit: 20,
            }),
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.chars().next().unwrap().is_uppercase());
            assert!(!msg.ends_with('.'));
        }
    }
}
