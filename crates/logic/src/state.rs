//! System state snapshots and recorded traces.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A snapshot of all monitored state variables at one instant.
///
/// The thesis's run-time monitors sample the system's state variables at a
/// fixed period (1 ms in the CarSim evaluation); a `State` is one such
/// sample. Variables are identified by dotted names mirroring the KAOS
/// object model, e.g. `va.value`, `va.source`, `door_closed`.
///
/// # Example
///
/// ```
/// use esafe_logic::{State, Value};
///
/// let s = State::new()
///     .with_bool("door_closed", true)
///     .with_real("elevator_speed", 0.0)
///     .with_sym("drive_command", "STOP");
/// assert_eq!(s.get("drive_command"), Some(&Value::sym("STOP")));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct State {
    vars: BTreeMap<String, Value>,
}

impl State {
    /// Creates an empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a variable, replacing any previous value.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<Value>) {
        self.vars.insert(name.into(), value.into());
    }

    /// Builder-style boolean setter.
    pub fn with_bool(mut self, name: impl Into<String>, v: bool) -> Self {
        self.set(name, v);
        self
    }

    /// Builder-style integer setter.
    pub fn with_int(mut self, name: impl Into<String>, v: i64) -> Self {
        self.set(name, v);
        self
    }

    /// Builder-style real setter.
    pub fn with_real(mut self, name: impl Into<String>, v: f64) -> Self {
        self.set(name, v);
        self
    }

    /// Builder-style symbolic setter.
    pub fn with_sym(mut self, name: impl Into<String>, v: impl AsRef<str>) -> Self {
        self.set(name, Value::sym(v));
        self
    }

    /// Looks up a variable by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.vars.get(name)
    }

    /// Number of variables in the snapshot.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether the snapshot holds no variables.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.vars.iter().map(|(k, v)| (k.as_str(), v))
    }
}

impl<'a> IntoIterator for &'a State {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::collections::btree_map::Iter<'a, String, Value>;

    fn into_iter(self) -> Self::IntoIter {
        self.vars.iter()
    }
}

impl FromIterator<(String, Value)> for State {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        State {
            vars: iter.into_iter().collect(),
        }
    }
}

impl Extend<(String, Value)> for State {
    fn extend<T: IntoIterator<Item = (String, Value)>>(&mut self, iter: T) {
        self.vars.extend(iter);
    }
}

/// A recorded sequence of [`State`] samples at a fixed tick period.
///
/// The tick period links the discrete trace to the bounded temporal
/// operators: `held_for(p, 200ms)` spans `200 / tick_millis` samples.
///
/// # Example
///
/// ```
/// use esafe_logic::{State, Trace};
///
/// let mut t = Trace::with_tick_millis(10);
/// t.push(State::new().with_bool("p", true));
/// t.push(State::new().with_bool("p", false));
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.millis_to_ticks(25), 3); // rounds up: 25ms needs 3 samples
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    states: Vec<State>,
    tick_millis: u64,
}

impl Trace {
    /// Creates an empty trace with the given sample period in milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `tick_millis` is zero.
    pub fn with_tick_millis(tick_millis: u64) -> Self {
        assert!(tick_millis > 0, "tick period must be positive");
        Trace {
            states: Vec::new(),
            tick_millis,
        }
    }

    /// Appends a state sample.
    pub fn push(&mut self, state: State) {
        self.states.push(state);
    }

    /// The sample period in milliseconds.
    pub fn tick_millis(&self) -> u64 {
        self.tick_millis
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the trace holds no samples.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The state at sample index `i`.
    pub fn state(&self, i: usize) -> Option<&State> {
        self.states.get(i)
    }

    /// All states, in order.
    pub fn states(&self) -> &[State] {
        &self.states
    }

    /// Converts a duration in milliseconds to a whole number of ticks,
    /// rounding up so the duration is fully covered.
    pub fn millis_to_ticks(&self, millis: u64) -> u64 {
        millis.div_ceil(self.tick_millis)
    }

    /// Iterates over the states.
    pub fn iter(&self) -> std::slice::Iter<'_, State> {
        self.states.iter()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a State;
    type IntoIter = std::slice::Iter<'a, State>;

    fn into_iter(self) -> Self::IntoIter {
        self.states.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_set_get() {
        let mut s = State::new();
        s.set("x", 1i64);
        s.set("x", 2i64); // replaces
        assert_eq!(s.get("x"), Some(&Value::Int(2)));
        assert_eq!(s.get("missing"), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn state_collects_from_iterator() {
        let s: State = vec![
            ("a".to_owned(), Value::Bool(true)),
            ("b".to_owned(), Value::Int(2)),
        ]
        .into_iter()
        .collect();
        assert_eq!(s.len(), 2);
        assert_eq!(s.get("b"), Some(&Value::Int(2)));
    }

    #[test]
    fn trace_tick_conversion_rounds_up() {
        let t = Trace::with_tick_millis(10);
        assert_eq!(t.millis_to_ticks(10), 1);
        assert_eq!(t.millis_to_ticks(11), 2);
        assert_eq!(t.millis_to_ticks(0), 0);
    }

    #[test]
    #[should_panic(expected = "tick period must be positive")]
    fn trace_rejects_zero_tick() {
        let _ = Trace::with_tick_millis(0);
    }

    #[test]
    fn trace_push_and_index() {
        let mut t = Trace::with_tick_millis(1);
        assert!(t.is_empty());
        t.push(State::new().with_bool("p", true));
        assert_eq!(t.len(), 1);
        assert!(t.state(0).unwrap().get("p").unwrap().as_bool().unwrap());
        assert!(t.state(1).is_none());
    }
}
