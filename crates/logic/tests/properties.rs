//! Property-based tests for the temporal-logic engine.

use esafe_logic::eval::eval_trace;
use esafe_logic::incremental::{monitor_form, CompiledMonitor, FusedSuiteProgram};
use esafe_logic::{parse, prop, Expr, FrameTrace, SignalTable, State, Trace, Value};
use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

const VARS: [&str; 4] = ["p", "q", "r", "s"];

/// The table every random four-variable trace resolves against.
fn four_bool_table() -> Arc<SignalTable> {
    let mut b = SignalTable::builder();
    for name in VARS {
        b.bool(name);
    }
    b.finish()
}

/// Strategy producing past-time expressions over a small variable pool.
fn past_expr(depth: u32) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        Just(Expr::Const(true)),
        Just(Expr::Const(false)),
        (0..VARS.len()).prop_map(|i| Expr::var(VARS[i])),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(Expr::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::or(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::implies(a, b)),
            inner.clone().prop_map(Expr::prev),
            inner.clone().prop_map(Expr::once),
            inner.clone().prop_map(Expr::historically),
            inner.clone().prop_map(Expr::became),
            inner.clone().prop_map(Expr::initially),
            (inner.clone(), 1u64..4).prop_map(|(e, t)| Expr::held_for(e, t)),
            (inner, 1u64..4).prop_map(|(e, t)| Expr::once_within(e, t)),
        ]
    })
}

/// Strategy producing prop-unrollable expressions (boolean + prev/became).
fn unrollable_expr(depth: u32) -> impl Strategy<Value = Expr> {
    let leaf = (0..VARS.len()).prop_map(|i| Expr::var(VARS[i]));
    leaf.prop_recursive(depth, 16, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(Expr::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::or(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::implies(a, b)),
            inner.clone().prop_map(Expr::prev),
            inner.prop_map(Expr::became),
        ]
    })
}

/// Builds a goal suite whose monitors are random combinations of a
/// shared subexpression pool — the shape the fused engine exists for:
/// the same `pool` subtree appears in several monitors, so the fused
/// DAG must evaluate it once while per-monitor evaluation re-walks it.
fn suite_from(pool: &[Expr], spec: &[(usize, usize, u8)]) -> Vec<Expr> {
    spec.iter()
        .map(|&(i, j, op)| {
            let a = pool[i % pool.len()].clone();
            let b = pool[j % pool.len()].clone();
            match op % 7 {
                0 => Expr::and(a, b),
                1 => Expr::or(a, b),
                2 => Expr::implies(a, b),
                3 => Expr::and(Expr::once(a), b),
                4 => Expr::prev(Expr::or(a, b)),
                5 => Expr::not(Expr::and(a, Expr::historically(b))),
                _ => Expr::held_for(Expr::or(a, b), 2),
            }
        })
        .collect()
}

fn random_trace(rows: Vec<[bool; 4]>) -> Trace {
    let mut t = Trace::with_tick_millis(1);
    for row in rows {
        let mut s = State::new();
        for (i, name) in VARS.iter().enumerate() {
            s.set(*name, row[i]);
        }
        t.push(s);
    }
    t
}

/// A strategy over well-typed `(name, Value)` slot assignments for the
/// frame round-trip property.
fn slot_values() -> impl Strategy<Value = Vec<(&'static str, Value)>> {
    let b = any::<bool>().prop_map(Value::Bool);
    let i = (-1000i64..1000).prop_map(Value::Int);
    let rs = ((-1000i64..1000), (0usize..3)).prop_map(|(n, k)| {
        (
            Value::Real(n as f64 / 8.0),
            Value::sym(["STOP", "GO", "OPEN"][k]),
        )
    });
    (b, i, rs).prop_map(|(b, i, (r, s))| vec![("flag", b), ("floor", i), ("speed", r), ("cmd", s)])
}

proptest! {
    /// `Display` output parses back to the identical AST.
    #[test]
    fn parser_round_trips_generated_asts(e in past_expr(4)) {
        let printed = e.to_string();
        let reparsed = parse(&printed)
            .unwrap_or_else(|err| panic!("failed to reparse `{printed}`: {err}"));
        prop_assert_eq!(e, reparsed);
    }

    /// `render(parse(s)) == s` as a *string* fixpoint: one render/parse
    /// cycle reaches the canonical spelling, after which rendering is
    /// stable character for character (whitespace included).
    #[test]
    fn render_parse_is_a_string_fixpoint(e in past_expr(4)) {
        let canonical = e.to_string();
        let reparsed = parse(&canonical)
            .unwrap_or_else(|err| panic!("failed to reparse `{canonical}`: {err}"));
        prop_assert_eq!(reparsed.to_string(), canonical);
    }

    /// A frame serializes as the name-keyed map and survives the
    /// `Frame -> serde -> State -> Frame` round trip bit for bit.
    #[test]
    fn frame_round_trips_through_name_keyed_serde(slots in slot_values()) {
        let mut b = SignalTable::builder();
        for (name, value) in &slots {
            b.signal(name, match value {
                Value::Bool(_) => esafe_logic::SignalKind::Bool,
                Value::Int(_) => esafe_logic::SignalKind::Int,
                Value::Real(_) => esafe_logic::SignalKind::Real,
                Value::Sym(_) => esafe_logic::SignalKind::Sym,
            });
        }
        let table = b.finish();
        let mut frame = table.frame();
        for (name, value) in &slots {
            frame.set_named(name, *value);
        }
        // Frame -> Content (name-keyed map) -> State -> Frame.
        let content = frame.to_content();
        let named = std::collections::BTreeMap::<String, Value>::from_content(&content)
            .expect("name-keyed map decodes");
        let state: State = named.into_iter().collect();
        let back = table.frame_from_state(&state).expect("names resolve");
        prop_assert_eq!(back, frame);
    }

    /// The incremental monitor agrees with the reference trace evaluator on
    /// the monitorable rewrite of every formula.
    #[test]
    fn incremental_matches_reference(
        e in past_expr(4),
        rows in proptest::collection::vec(proptest::array::uniform4(any::<bool>()), 1..30),
    ) {
        let trace = random_trace(rows);
        let rewritten = monitor_form(&e).expect("past-only formula");
        let reference = eval_trace(&rewritten, &trace).expect("vars present");
        let mut m = CompiledMonitor::compile(&e).expect("compiles");
        let incremental: Vec<bool> =
            trace.iter().map(|s| m.observe_state(s).expect("vars present")).collect();
        prop_assert_eq!(incremental, reference);
    }

    /// A name-keyed trace survives the round trip through the
    /// column-per-signal production representation.
    #[test]
    fn frame_trace_round_trips_name_keyed_traces(
        rows in proptest::collection::vec(proptest::array::uniform4(any::<bool>()), 1..30),
    ) {
        let trace = random_trace(rows);
        let table = four_bool_table();
        let ft = FrameTrace::from_trace(&table, &trace).expect("names resolve");
        prop_assert_eq!(ft.len(), trace.len());
        prop_assert_eq!(ft.tick_millis(), trace.tick_millis());
        prop_assert_eq!(ft.to_trace(), trace);
    }

    /// Frame-speed replay over the column trace produces exactly the
    /// monitor verdicts of feeding the name-keyed states one by one —
    /// and therefore (by `incremental_matches_reference`) the reference
    /// trace semantics of the monitorable rewrite.
    #[test]
    fn frame_trace_replay_matches_state_replay(
        e in past_expr(4),
        rows in proptest::collection::vec(proptest::array::uniform4(any::<bool>()), 1..30),
    ) {
        let trace = random_trace(rows);
        let table = four_bool_table();
        let ft = FrameTrace::from_trace(&table, &trace).expect("names resolve");
        let mut by_state = CompiledMonitor::compile_in(&e, &table).expect("compiles");
        let expected: Vec<bool> =
            trace.iter().map(|s| by_state.observe_state(s).expect("vars present")).collect();
        prop_assert_eq!(ft.replay_expr(&e).expect("replays"), expected);
    }

    /// Propositional equivalence implies identical truth on concrete traces
    /// (soundness of the model enumerator w.r.t. trace semantics, away from
    /// the trace-initial corner).
    #[test]
    fn prop_equivalence_is_sound_on_traces(
        a in unrollable_expr(3),
        b in unrollable_expr(3),
        rows in proptest::collection::vec(proptest::array::uniform4(any::<bool>()), 4..20),
    ) {
        let trace = random_trace(rows);
        if prop::equivalent(&a, &b).expect("unrollable") {
            let ta = eval_trace(&a, &trace).expect("vars present");
            let tb = eval_trace(&b, &trace).expect("vars present");
            let depth = a.prev_depth().max(b.prev_depth()) as usize;
            // Skip the initial window where free-atom semantics and
            // trace semantics legitimately differ.
            prop_assert_eq!(&ta[depth..], &tb[depth..]);
        }
    }

    /// De Morgan duality holds pointwise on arbitrary traces.
    #[test]
    fn de_morgan_on_traces(
        a in past_expr(3),
        b in past_expr(3),
        rows in proptest::collection::vec(proptest::array::uniform4(any::<bool>()), 1..20),
    ) {
        let trace = random_trace(rows);
        let lhs = eval_trace(&Expr::not(Expr::and(a.clone(), b.clone())), &trace).unwrap();
        let rhs = eval_trace(&Expr::or(Expr::not(a), Expr::not(b)), &trace).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    /// `held_for(p, 1)` is exactly `prev(p)`.
    #[test]
    fn held_for_one_is_prev(
        rows in proptest::collection::vec(proptest::array::uniform4(any::<bool>()), 1..20),
    ) {
        let trace = random_trace(rows);
        let a = eval_trace(&Expr::held_for(Expr::var("p"), 1), &trace).unwrap();
        let b = eval_trace(&Expr::prev(Expr::var("p")), &trace).unwrap();
        prop_assert_eq!(a, b);
    }

    /// `once_within(p, n)` implies `once(p)` wherever it holds.
    #[test]
    fn once_within_implies_once(
        n in 1u64..6,
        rows in proptest::collection::vec(proptest::array::uniform4(any::<bool>()), 1..20),
    ) {
        let trace = random_trace(rows);
        let bounded = eval_trace(&Expr::once_within(Expr::var("p"), n), &trace).unwrap();
        let unbounded = eval_trace(&Expr::once(Expr::var("p")), &trace).unwrap();
        for (bw, uw) in bounded.iter().zip(&unbounded) {
            prop_assert!(!bw || *uw);
        }
    }

    /// Fused suite-level evaluation produces exactly the verdicts of
    /// independent per-monitor evaluation, on random traces and random
    /// suites built from shared subexpressions — the correctness
    /// contract of the cross-monitor CSE engine.
    #[test]
    fn fused_suite_matches_per_monitor_on_shared_suites(
        pool in proptest::collection::vec(past_expr(3), 2..5),
        spec in proptest::collection::vec(
            (0usize..16, 0usize..16, 0u8..32), 1..8),
        rows in proptest::collection::vec(proptest::array::uniform4(any::<bool>()), 1..25),
    ) {
        let exprs = suite_from(&pool, &spec);
        let table = four_bool_table();
        let trace = random_trace(rows);
        let mut monitors: Vec<CompiledMonitor> = exprs
            .iter()
            .map(|e| CompiledMonitor::compile_in(e, &table).expect("compiles"))
            .collect();
        let program = Arc::new(
            FusedSuiteProgram::compile(&exprs, &table).expect("compiles"));
        prop_assert!(program.unique_nodes() <= program.source_nodes());
        let mut fused = program.instantiate();
        for s in trace.iter() {
            let frame = table.frame_from_state_lossy(s);
            fused.observe(&frame).expect("vars present");
            for (i, m) in monitors.iter_mut().enumerate() {
                prop_assert_eq!(
                    fused.verdict(i),
                    m.observe(&frame).expect("vars present"),
                    "monitor {} diverged on `{}`", i, &exprs[i]
                );
            }
        }
    }

    /// The batched SoA evaluator produces exactly the verdicts of a
    /// scalar fused suite per lane — on random suites, random per-lane
    /// traces, and random mid-batch retirement schedules (a lane that
    /// stops early must freeze without perturbing its neighbours). This
    /// is the correctness contract of the striped sweep engine.
    #[test]
    fn batched_fused_matches_scalar_fused_per_lane(
        pool in proptest::collection::vec(past_expr(3), 2..5),
        spec in proptest::collection::vec(
            (0usize..16, 0usize..16, 0u8..32), 1..6),
        lane_rows in proptest::collection::vec(
            proptest::collection::vec(proptest::array::uniform4(any::<bool>()), 1..20),
            1..5),
        retire_seed in 0u64..u64::MAX,
    ) {
        use esafe_logic::FusedSuiteBatch;
        let exprs = suite_from(&pool, &spec);
        let table = four_bool_table();
        let traces: Vec<Trace> = lane_rows.into_iter().map(random_trace).collect();
        let lanes = traces.len();
        // Splitmix-style per-lane retirement step (possibly beyond the
        // lane's trace, i.e. never retired).
        let retire_at: Vec<usize> = (0..lanes)
            .map(|l| {
                let mut z = retire_seed.wrapping_add(l as u64).wrapping_mul(0x9e3779b97f4a7c15);
                z ^= z >> 31;
                (z % 24) as usize
            })
            .collect();
        let program = Arc::new(
            FusedSuiteProgram::compile(&exprs, &table).expect("compiles"));
        let mut batch: FusedSuiteBatch = program.instantiate_batch(lanes);
        let mut scalars: Vec<_> = (0..lanes).map(|_| program.instantiate()).collect();
        let mut frames: Vec<_> = (0..lanes).map(|_| table.frame()).collect();
        let max_len = traces.iter().map(|t| t.len()).max().unwrap();
        for step in 0..max_len {
            for l in 0..lanes {
                if step >= retire_at[l].min(traces[l].len()) {
                    batch.retire_lane(l);
                } else {
                    frames[l] = table.frame_from_state_lossy(traces[l].state(step).unwrap());
                }
            }
            if batch.active_lanes() == 0 {
                break;
            }
            batch.observe_batch(&frames).expect("vars present");
            for (l, scalar) in scalars.iter_mut().enumerate() {
                if !batch.is_active(l) {
                    continue;
                }
                scalar.observe(&frames[l]).expect("vars present");
                for (m, expr) in exprs.iter().enumerate() {
                    prop_assert_eq!(
                        batch.verdict(l, m),
                        scalar.verdict(m),
                        "lane {} monitor {} diverged at step {} on `{}`",
                        l, m, step, expr
                    );
                }
            }
        }
    }

    /// Fusing the same formula list twice adds no new nodes beyond the
    /// first copy: dedup is exact on structural duplicates.
    #[test]
    fn fused_duplicate_monitors_are_free(e in past_expr(3)) {
        let table = four_bool_table();
        let single = FusedSuiteProgram::compile(
            std::slice::from_ref(&e), &table).expect("compiles");
        let doubled = FusedSuiteProgram::compile(
            &[e.clone(), e.clone()], &table).expect("compiles");
        prop_assert_eq!(doubled.unique_nodes(), single.unique_nodes());
        prop_assert_eq!(doubled.state_cells(), single.state_cells());
        prop_assert_eq!(doubled.source_nodes(), 2 * single.source_nodes());
        prop_assert_eq!(doubled.roots(), 2);
    }

    /// Monitor `reset` makes re-observation identical to a fresh monitor.
    #[test]
    fn reset_equals_fresh(
        e in past_expr(3),
        rows in proptest::collection::vec(proptest::array::uniform4(any::<bool>()), 1..15),
    ) {
        let trace = random_trace(rows);
        let mut m = CompiledMonitor::compile(&e).expect("compiles");
        for s in trace.iter() {
            let _ = m.observe_state(s).unwrap();
        }
        m.reset();
        let replay: Vec<bool> = trace.iter().map(|s| m.observe_state(s).unwrap()).collect();
        let mut fresh = CompiledMonitor::compile(&e).expect("compiles");
        let fresh_run: Vec<bool> = trace.iter().map(|s| fresh.observe_state(s).unwrap()).collect();
        prop_assert_eq!(replay, fresh_run);
    }
}
