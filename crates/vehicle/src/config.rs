//! Vehicle parameters and the defect-injection switchboard.

use serde::{Deserialize, Serialize};

/// Physical and control constants of the simulated vehicle.
///
/// The thesis's CarSim vehicle data is proprietary; these constants are
/// tuned so the published anchors hold (scenario 1 terminating ≈12.6–12.7 s,
/// a 0.101 s control handoff in scenario 5, 1 ms control-grant latency in
/// scenario 6). See EXPERIMENTS.md for the calibration notes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VehicleParams {
    /// Acceleration actuation time constant, s.
    pub accel_tau_s: f64,
    /// Steering actuation time constant, s.
    pub steering_tau_s: f64,
    /// Maximum driver-demand acceleration at full throttle, m/s².
    pub max_throttle_accel: f64,
    /// Maximum braking deceleration at full brake, m/s² (positive number).
    pub max_brake_decel: f64,
    /// Hard-brake request used by collision avoidance, m/s² (negative).
    pub ca_brake_accel: f64,
    /// Collision-avoidance engagement margin added to the kinematic
    /// stopping distance, m.
    pub ca_margin_m: f64,
    /// ACC proportional speed-tracking gain, 1/s.
    pub acc_gain: f64,
    /// ACC acceleration request ceiling, m/s².
    pub acc_max_accel: f64,
    /// ACC deceleration request floor, m/s² (negative).
    pub acc_min_accel: f64,
    /// Bumper-to-bumper length subtracted from object gaps, m.
    pub car_length_m: f64,
    /// |speed| below which the vehicle counts as stopped, m/s.
    pub stopped_eps: f64,
    /// The autonomous-acceleration safety threshold of goal 1, m/s².
    pub accel_limit: f64,
    /// The autonomous-jerk safety threshold of goal 2, m/s³.
    pub jerk_limit: f64,
}

impl Default for VehicleParams {
    fn default() -> Self {
        VehicleParams {
            accel_tau_s: 0.12,
            steering_tau_s: 0.2,
            max_throttle_accel: 3.0,
            max_brake_decel: 8.0,
            ca_brake_accel: -8.0,
            ca_margin_m: 1.2,
            acc_gain: 0.8,
            acc_max_accel: 1.5,
            acc_min_accel: -3.0,
            car_length_m: 4.5,
            stopped_eps: 0.01,
            accel_limit: 2.0,
            jerk_limit: 2.5,
        }
    }
}

/// The defect switchboard: each flag re-injects one defect the thesis's
/// run-time monitors uncovered in the partially implemented research
/// vehicle (traceability table in DESIGN.md §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[allow(clippy::struct_excessive_bools)]
pub struct DefectSet {
    /// Scenario 1/2/3, Fig. 5.3: PA emits acceleration requests while
    /// disabled.
    pub pa_requests_while_disabled: bool,
    /// Scenario 2, Fig. 5.4: steering arbitration priority is reversed and
    /// its outcome gates which acceleration request is actually forwarded,
    /// while the acceleration-side `selected` flag is left standing.
    pub steering_arbitration_reversed: bool,
    /// Scenarios 1–3, Figs. 5.2/5.5: CA cancels its braking action
    /// intermittently instead of holding it to a stop.
    pub ca_intermittent_braking: bool,
    /// Scenario 3, Fig. 5.6: ACC controls toward a 0 m/s set speed while
    /// enabled but not engaged.
    pub acc_requests_while_disengaged: bool,
    /// Scenario 4, Fig. 5.8: ACC briefly takes acceleration control while
    /// the throttle pedal is applied, then loses it until release.
    pub acc_throttle_handoff_glitch: bool,
    /// Scenario 5, Fig. 5.9: ACC gains control only 101 ms after the
    /// driver releases the throttle pedal.
    pub acc_engage_handoff_delay: bool,
    /// Scenario 6, Fig. 5.10: LCA steering requests never reach the
    /// steering command.
    pub lca_steering_ignored: bool,
    /// Scenario 6, Fig. 5.11: no zero-speed clamp — autonomous
    /// deceleration integrates straight through zero and the forward
    /// features stay active and selected in reverse motion.
    pub no_reverse_inhibit: bool,
    /// Scenario 7, Fig. 5.12: RCA never engages.
    pub rca_never_engages: bool,
    /// Scenario 8, Fig. 5.13: ACC accepts engagement in reverse gear and
    /// gets selected.
    pub acc_engages_in_reverse: bool,
    /// Scenario 9, Fig. 5.14: the arbiter selects PA but forwards an
    /// acceleration command unequal to PA's request.
    pub pa_request_not_forwarded: bool,
    /// Scenario 10, Fig. 5.15: an engage attempt from a stop leaves ACC
    /// inactive yet leaks its request into the default arbitration path —
    /// the vehicle accelerates with no subsystem attributed.
    pub acc_ghost_accel_from_stop: bool,
}

impl DefectSet {
    /// The defect population of the thesis's partially implemented
    /// research vehicle: everything on.
    pub fn thesis() -> Self {
        DefectSet {
            pa_requests_while_disabled: true,
            steering_arbitration_reversed: true,
            ca_intermittent_braking: true,
            acc_requests_while_disengaged: true,
            acc_throttle_handoff_glitch: true,
            acc_engage_handoff_delay: true,
            lca_steering_ignored: true,
            no_reverse_inhibit: true,
            rca_never_engages: true,
            acc_engages_in_reverse: true,
            pa_request_not_forwarded: true,
            acc_ghost_accel_from_stop: true,
        }
    }

    /// The fixed system: everything off (the ablation baseline).
    pub fn none() -> Self {
        DefectSet::default()
    }

    /// Every single-defect configuration, named by its field: the cells
    /// of the defect-ablation axis.
    pub fn singles() -> Vec<(&'static str, DefectSet)> {
        let none = DefectSet::none();
        vec![
            (
                "pa_requests_while_disabled",
                DefectSet {
                    pa_requests_while_disabled: true,
                    ..none
                },
            ),
            (
                "steering_arbitration_reversed",
                DefectSet {
                    steering_arbitration_reversed: true,
                    ..none
                },
            ),
            (
                "ca_intermittent_braking",
                DefectSet {
                    ca_intermittent_braking: true,
                    ..none
                },
            ),
            (
                "acc_requests_while_disengaged",
                DefectSet {
                    acc_requests_while_disengaged: true,
                    ..none
                },
            ),
            (
                "acc_throttle_handoff_glitch",
                DefectSet {
                    acc_throttle_handoff_glitch: true,
                    ..none
                },
            ),
            (
                "acc_engage_handoff_delay",
                DefectSet {
                    acc_engage_handoff_delay: true,
                    ..none
                },
            ),
            (
                "lca_steering_ignored",
                DefectSet {
                    lca_steering_ignored: true,
                    ..none
                },
            ),
            (
                "no_reverse_inhibit",
                DefectSet {
                    no_reverse_inhibit: true,
                    ..none
                },
            ),
            (
                "rca_never_engages",
                DefectSet {
                    rca_never_engages: true,
                    ..none
                },
            ),
            (
                "acc_engages_in_reverse",
                DefectSet {
                    acc_engages_in_reverse: true,
                    ..none
                },
            ),
            (
                "pa_request_not_forwarded",
                DefectSet {
                    pa_request_not_forwarded: true,
                    ..none
                },
            ),
            (
                "acc_ghost_accel_from_stop",
                DefectSet {
                    acc_ghost_accel_from_stop: true,
                    ..none
                },
            ),
        ]
    }

    /// Number of enabled defects.
    pub fn count(&self) -> usize {
        [
            self.pa_requests_while_disabled,
            self.steering_arbitration_reversed,
            self.ca_intermittent_braking,
            self.acc_requests_while_disengaged,
            self.acc_throttle_handoff_glitch,
            self.acc_engage_handoff_delay,
            self.lca_steering_ignored,
            self.no_reverse_inhibit,
            self.rca_never_engages,
            self.acc_engages_in_reverse,
            self.pa_request_not_forwarded,
            self.acc_ghost_accel_from_stop,
        ]
        .iter()
        .filter(|b| **b)
        .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thesis_set_enables_all_twelve() {
        assert_eq!(DefectSet::thesis().count(), 12);
        assert_eq!(DefectSet::none().count(), 0);
    }

    #[test]
    fn singles_cover_every_defect_exactly_once() {
        let singles = DefectSet::singles();
        assert_eq!(singles.len(), 12, "one cell per defect field");
        for (name, set) in &singles {
            assert_eq!(set.count(), 1, "{name} must enable exactly one defect");
        }
        // Twelve pairwise-distinct one-defect sets over twelve fields can
        // only be the twelve distinct fields: together they span thesis().
        for (i, (name_a, a)) in singles.iter().enumerate() {
            for (name_b, b) in &singles[i + 1..] {
                assert_ne!(a, b, "{name_a} and {name_b} repeat a defect");
            }
        }
    }

    #[test]
    fn default_params_are_physically_sane() {
        let p = VehicleParams::default();
        assert!(p.ca_brake_accel < 0.0);
        assert!(p.max_brake_decel > 0.0);
        assert!(p.acc_min_accel < 0.0 && p.acc_max_accel > 0.0);
        assert!(p.accel_limit > 0.0 && p.jerk_limit > 0.0);
        assert!(p.stopped_eps > 0.0 && p.stopped_eps < 0.1);
    }
}
