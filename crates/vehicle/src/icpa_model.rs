//! The Figure 5.1 control architecture as a [`ControlGraph`], and the ICPA
//! runs that derive the subsystem subgoals (the Appendix C analyses).

use crate::config::VehicleParams;
use crate::goals;
use crate::signals as sig;
use esafe_core::icpa::{CoverageStrategy, GoalAssignment, GoalScope};
use esafe_core::tactics::TacticKind;
use esafe_core::{Agent, AgentKind, ControlGraph, IcpaBuilder, IcpaTable};
use esafe_logic::parse;

/// Builds the Figure 5.1 architecture: driver/HMI, the five features, the
/// arbiter, the powertrain/brake/steering actuation chain, and the sensed
/// vehicle state.
pub fn control_graph() -> ControlGraph {
    let mut g = ControlGraph::new();

    // Sensed plant state.
    g.add_sensed_var(sig::HOST_ACCEL, "vehicle acceleration (accelerometer)");
    g.add_sensed_var(sig::P_FORWARD, "derived forward-motion flag");
    g.add_sensed_var(sig::P_BACKWARD, "derived backward-motion flag");
    g.add_sensed_var(sig::P_STOPPED, "derived stopped flag");
    g.add_sensed_var(sig::HOST_JERK, "vehicle jerk (derived)");
    g.add_sensed_var(sig::HOST_SPEED, "vehicle speed (wheel sensors)");
    g.add_sensed_var(sig::HOST_STEERING, "road-wheel angle");
    g.add_var("powertrain.accel", "physical acceleration produced");
    g.add_var("chassis.steering", "physical steering produced");
    g.add_physical_link("powertrain.accel", sig::HOST_ACCEL, "plant response");
    g.add_physical_link(
        "powertrain.accel",
        sig::HOST_JERK,
        "derivative of plant response",
    );
    g.add_physical_link(
        "powertrain.accel",
        sig::HOST_SPEED,
        "integrated plant response",
    );
    g.add_physical_link(
        "powertrain.accel",
        sig::P_FORWARD,
        "motion direction derived",
    );
    g.add_physical_link(
        "powertrain.accel",
        sig::P_BACKWARD,
        "motion direction derived",
    );
    g.add_physical_link("powertrain.accel", sig::P_STOPPED, "stopped band derived");
    g.add_physical_link("chassis.steering", sig::HOST_STEERING, "plant response");

    // Arbitrated command path.
    g.add_var(sig::ACCEL_CMD, "arbitrated acceleration command");
    g.add_var(sig::STEERING_CMD, "arbitrated steering command");

    // Feature request paths.
    for f in sig::FEATURES {
        g.add_var(sig::accel_request(f), "feature acceleration request");
        g.add_var(sig::steering_request(f), "feature steering request");
    }
    g.add_var(sig::DRIVER_ACCEL_REQUEST, "driver pedal demand");
    g.add_var(sig::DRIVER_STEERING, "driver steering wheel");

    // Actuators.
    g.add_agent(
        Agent::new("EngineController", AgentKind::Actuator)
            .controls(["powertrain.accel"])
            .monitors([sig::ACCEL_CMD]),
    );
    g.add_agent(
        Agent::new("SteeringController", AgentKind::Actuator)
            .controls(["chassis.steering"])
            .monitors([sig::STEERING_CMD]),
    );

    // The arbiter reads every request and writes the commands.
    let mut arbiter = Agent::new("Arbiter", AgentKind::Software)
        .controls([sig::ACCEL_CMD, sig::STEERING_CMD])
        .monitors([sig::DRIVER_ACCEL_REQUEST, sig::DRIVER_STEERING]);
    for f in sig::FEATURES {
        arbiter = arbiter.monitors([sig::accel_request(f), sig::steering_request(f)]);
    }
    g.add_agent(arbiter);

    // Features read the sensed state and write their requests.
    for f in sig::FEATURES {
        g.add_agent(
            Agent::new(f, AgentKind::Software)
                .controls([sig::accel_request(f), sig::steering_request(f)])
                .monitors([
                    sig::HOST_SPEED.to_owned(),
                    sig::P_FORWARD.to_owned(),
                    sig::P_BACKWARD.to_owned(),
                    sig::P_STOPPED.to_owned(),
                ]),
        );
    }

    // The driver is an environmental agent.
    g.add_agent(
        Agent::new("Driver", AgentKind::Environment)
            .controls([sig::DRIVER_ACCEL_REQUEST, sig::DRIVER_STEERING]),
    );

    g
}

/// Runs the ICPA for goal 1, `Achieve[AutoAccelBelowThreshold]` — the
/// Appendix C.1–C.4 analysis. The same structure (redundant responsibility,
/// restrictive scope, actuation-goal then OR-reduction tactics) applies to
/// goals 2 and 4–9; goal 3 uses single responsibility.
pub fn icpa_goal_1(params: &VehicleParams) -> IcpaTable {
    let graph = control_graph();
    let spec = &goals::specs(params)[0];
    let limit = params.accel_limit;

    let mut builder = IcpaBuilder::new(spec.goal.clone())
        .trace_paths(&graph)
        .relationship(
            1,
            sig::HOST_ACCEL,
            ["EngineController"],
            parse(&format!(
                "arbiter.accel_cmd <= {limit} <-> host.accel <= {limit}"
            ))
            .expect("formula"),
            "worst-case powertrain actuation tracks the command envelope",
        )
        .relationship(
            2,
            sig::ACCEL_CMD,
            ["Arbiter"],
            parse("probe.auto_accel_source -> arbiter.accel_cmd_is_feature_request")
                .expect("formula"),
            "when a feature is the source, the command equals that feature's request",
        )
        .relationship(
            3,
            sig::ACCEL_CMD,
            sig::FEATURES,
            parse(&format!(
                "arbiter.accel_cmd_is_feature_request && feature_requests_below_limit \
                 -> arbiter.accel_cmd <= {limit}"
            ))
            .expect("formula"),
            "bounded requests give a bounded command",
        )
        .strategy(CoverageStrategy {
            assignment: GoalAssignment::RedundantResponsibility {
                primary: vec!["Arbiter".into()],
                secondary: sig::FEATURES.iter().map(|s| (*s).to_owned()).collect(),
            },
            scope: GoalScope::Restrictive {
                rationale: "features are always bounded (OR-reduction), not only \
                            when selected; worst-case actuation delays assumed"
                    .into(),
            },
        })
        .elaborate(
            parse(&format!(
                "probe.auto_accel_source -> arbiter.accel_cmd <= {limit}"
            ))
            .expect("formula"),
            TacticKind::IntroduceActuationGoal,
            [1],
            "shift the bound from sensed acceleration to the actuation command",
        )
        .elaborate(
            parse(&format!("always(feature.accel_request <= {limit})")).expect("formula"),
            TacticKind::OrReduction,
            [2, 3],
            "restrict every feature's request stream unconditionally",
        );

    if let Some(a) = &spec.arbiter_subgoal {
        builder = builder.subgoal(
            "Arbiter",
            a.clone(),
            vec![sig::ACCEL_CMD.to_owned()],
            vec!["feature requests".to_owned(), sig::ACCEL_SOURCE.to_owned()],
        );
    }
    for (feature, g) in &spec.feature_subgoals {
        builder = builder.subgoal(
            (*feature).to_owned(),
            g.clone(),
            vec![sig::accel_request(feature)],
            vec![sig::HOST_SPEED.to_owned()],
        );
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use esafe_core::realizability::check_realizable;

    #[test]
    fn indirect_control_path_of_host_accel_reaches_all_features() {
        let g = control_graph();
        let path = g.trace(sig::HOST_ACCEL);
        let agents = path.all_agents();
        assert!(agents.contains(&"EngineController".to_owned()));
        assert!(agents.contains(&"Arbiter".to_owned()));
        for f in sig::FEATURES {
            assert!(agents.contains(&f.to_owned()), "missing {f}");
        }
        assert!(agents.contains(&"Driver".to_owned()));
    }

    #[test]
    fn arbiter_is_level_two_on_the_accel_path() {
        let g = control_graph();
        let path = g.trace(sig::HOST_ACCEL);
        assert_eq!(path.agents_at_level(1), vec!["EngineController".to_owned()]);
        assert_eq!(path.agents_at_level(2), vec!["Arbiter".to_owned()]);
        let level3 = path.agents_at_level(3);
        assert!(level3.contains(&"CA".to_owned()) && level3.contains(&"Driver".to_owned()));
    }

    #[test]
    fn goal_1_icpa_is_well_formed() {
        let table = icpa_goal_1(&VehicleParams::default());
        assert_eq!(table.subgoals.len(), 6); // Arbiter + 5 features
        assert!(table.dangling_citations().is_empty());
        assert_eq!(table.subsystems().len(), 6);
        let text = esafe_core::render::icpa_table(&table);
        assert!(text.contains("Redundant Responsibility"));
        assert!(text.contains("OR-reduction"));
    }

    #[test]
    fn feature_subgoals_are_realizable_by_their_features() {
        let table = icpa_goal_1(&VehicleParams::default());
        let graph = control_graph();
        for sub in &table.subgoals {
            if sub.subsystem == "Arbiter" {
                continue; // references probe signals outside the graph model
            }
            let agent = graph.agent(&sub.subsystem).expect("agent exists");
            assert!(
                check_realizable(&sub.goal, agent).is_ok(),
                "{} cannot realize {}",
                sub.subsystem,
                sub.goal.name()
            );
        }
    }
}
