//! Monitor probe: derives the boolean signals the safety goals reference.
//!
//! The goal monitors sample the same tick as the plant signals they
//! constrain, so the derivation runs *after* each simulation step on the
//! produced state (no extra tick of delay), mirroring the thesis's
//! monitors that share inputs with the software being observed
//! (§2.5, Peters & Parnas discussion).

use crate::config::VehicleParams;
#[cfg(test)]
use crate::features::boolean;
use crate::features::{real, symbol};
use crate::signals as sig;
use esafe_logic::State;

/// Returns `state` augmented with the `probe.*` signals.
pub fn derive(state: &State, params: &VehicleParams) -> State {
    let mut out = state.clone();
    let speed = real(state, sig::HOST_SPEED, 0.0);
    let accel = real(state, sig::HOST_ACCEL, 0.0);
    let accel_source = symbol(state, sig::ACCEL_SOURCE, "NONE");
    let steering_source = symbol(state, sig::STEERING_SOURCE, "NONE");
    let throttle = real(state, sig::DRIVER_THROTTLE, 0.0) > 0.05;
    let brake = real(state, sig::DRIVER_BRAKE, 0.0) > 0.05;

    let auto_accel = sig::FEATURES.contains(&accel_source);
    let auto_steer = sig::FEATURES.contains(&steering_source);

    out.set(sig::P_AUTO_ACCEL, auto_accel);
    out.set(sig::P_AUTO_STEER, auto_steer);
    out.set(sig::P_STOPPED, speed.abs() <= params.stopped_eps);
    out.set(sig::P_FORWARD, speed > params.stopped_eps);
    out.set(sig::P_BACKWARD, speed < -params.stopped_eps);
    out.set(sig::P_THROTTLE, throttle);
    out.set(sig::P_BRAKE, brake);
    out.set(sig::P_PEDAL, throttle || brake);
    out.set(sig::P_ACCELERATING, accel.abs() > 0.1);
    // `hmi.go` may be absent before the driver model has run once.
    if state.get(sig::HMI_GO).is_none() {
        out.set(sig::HMI_GO, false);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_sources_and_motion() {
        let params = VehicleParams::default();
        let s = State::new()
            .with_real(sig::HOST_SPEED, 3.0)
            .with_real(sig::HOST_ACCEL, 0.0)
            .with_sym(sig::ACCEL_SOURCE, "CA")
            .with_sym(sig::STEERING_SOURCE, "DRIVER")
            .with_real(sig::DRIVER_THROTTLE, 0.3)
            .with_real(sig::DRIVER_BRAKE, 0.0);
        let d = derive(&s, &params);
        assert!(boolean(&d, sig::P_AUTO_ACCEL));
        assert!(!boolean(&d, sig::P_AUTO_STEER));
        assert!(boolean(&d, sig::P_FORWARD));
        assert!(!boolean(&d, sig::P_BACKWARD) && !boolean(&d, sig::P_STOPPED));
        assert!(boolean(&d, sig::P_THROTTLE) && boolean(&d, sig::P_PEDAL));
        assert!(!boolean(&d, sig::P_BRAKE));
    }

    #[test]
    fn stopped_band_is_symmetric() {
        let params = VehicleParams::default();
        for v in [0.0, 0.005, -0.005] {
            let d = derive(&State::new().with_real(sig::HOST_SPEED, v), &params);
            assert!(boolean(&d, sig::P_STOPPED), "{v} should be stopped");
        }
        let d = derive(&State::new().with_real(sig::HOST_SPEED, -0.5), &params);
        assert!(boolean(&d, sig::P_BACKWARD));
    }

    #[test]
    fn missing_go_signal_defaults_false() {
        let d = derive(&State::new(), &VehicleParams::default());
        assert_eq!(d.get(sig::HMI_GO).unwrap().as_bool(), Some(false));
    }
}
