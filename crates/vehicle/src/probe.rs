//! Monitor probe: derives the boolean signals the safety goals reference.
//!
//! The goal monitors sample the same tick as the plant signals they
//! constrain, so the derivation runs *after* each simulation step on the
//! produced frame (no extra tick of delay), mirroring the thesis's
//! monitors that share inputs with the software being observed
//! (§2.5, Peters & Parnas discussion).

use crate::config::VehicleParams;
use crate::signals::VehicleSigs;
use esafe_logic::{Frame, SignalRead, SignalWrite};

/// Writes the `probe.*` signals into any sample carrying the raw
/// frame's values — a scalar [`Frame`] ([`derive_into`]) or one lane of
/// a batched state slab, **in place**. In-place derivation is safe
/// because no subsystem reads a `probe.*` signal (every probe is
/// overwritten here each tick) and `hmi.go` is only defaulted when
/// unset. Pure id-indexed slot access — no allocation.
pub fn derive_lane<F: SignalRead + SignalWrite>(
    out: &mut F,
    sigs: &VehicleSigs,
    params: &VehicleParams,
) {
    let speed = out.real_or(sigs.host_speed, 0.0);
    let accel = out.real_or(sigs.host_accel, 0.0);
    let accel_source = out.get(sigs.accel_source);
    let steering_source = out.get(sigs.steering_source);
    let throttle = out.real_or(sigs.driver_throttle, 0.0) > 0.05;
    let brake = out.real_or(sigs.driver_brake, 0.0) > 0.05;

    let auto_accel = sigs.features.iter().any(|f| accel_source == Some(f.tag));
    let auto_steer = sigs.features.iter().any(|f| steering_source == Some(f.tag));

    out.set(sigs.p_auto_accel, auto_accel);
    out.set(sigs.p_auto_steer, auto_steer);
    out.set(sigs.p_stopped, speed.abs() <= params.stopped_eps);
    out.set(sigs.p_forward, speed > params.stopped_eps);
    out.set(sigs.p_backward, speed < -params.stopped_eps);
    out.set(sigs.p_throttle, throttle);
    out.set(sigs.p_brake, brake);
    out.set(sigs.p_pedal, throttle || brake);
    out.set(sigs.p_accelerating, accel.abs() > 0.1);
    // `hmi.go` may be absent before the driver model has run once.
    if out.get(sigs.hmi_go).is_none() {
        out.set(sigs.hmi_go, false);
    }
}

/// [`derive_lane`] over a scalar [`Frame`], which must already carry
/// the raw frame's values (the experiment loop memcpys `raw` into `out`
/// first).
pub fn derive_into(out: &mut Frame, sigs: &VehicleSigs, params: &VehicleParams) {
    derive_lane(out, sigs, params);
}

/// Returns a copy of `frame` augmented with the `probe.*` signals (the
/// allocation-tolerant convenience used by tests and benches; the
/// experiment loop uses [`derive_into`] with a reused scratch frame).
pub fn derive(frame: &Frame, sigs: &VehicleSigs, params: &VehicleParams) -> Frame {
    let mut out = frame.clone();
    derive_into(&mut out, sigs, params);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signals::vehicle_table;

    #[test]
    fn classifies_sources_and_motion() {
        let (table, sigs) = vehicle_table();
        let params = VehicleParams::default();
        let mut s = table.frame();
        s.set(sigs.host_speed, 3.0);
        s.set(sigs.host_accel, 0.0);
        s.set(sigs.accel_source, sigs.features[crate::signals::CA].tag);
        s.set(sigs.steering_source, sigs.sym_driver);
        s.set(sigs.driver_throttle, 0.3);
        s.set(sigs.driver_brake, 0.0);
        let d = derive(&s, &sigs, &params);
        assert!(d.bool_or(sigs.p_auto_accel, false));
        assert!(!d.bool_or(sigs.p_auto_steer, true));
        assert!(d.bool_or(sigs.p_forward, false));
        assert!(!d.bool_or(sigs.p_backward, true) && !d.bool_or(sigs.p_stopped, true));
        assert!(d.bool_or(sigs.p_throttle, false) && d.bool_or(sigs.p_pedal, false));
        assert!(!d.bool_or(sigs.p_brake, true));
    }

    #[test]
    fn stopped_band_is_symmetric() {
        let (table, sigs) = vehicle_table();
        let params = VehicleParams::default();
        for v in [0.0, 0.005, -0.005] {
            let mut s = table.frame();
            s.set(sigs.host_speed, v);
            let d = derive(&s, &sigs, &params);
            assert!(d.bool_or(sigs.p_stopped, false), "{v} should be stopped");
        }
        let mut s = table.frame();
        s.set(sigs.host_speed, -0.5);
        let d = derive(&s, &sigs, &params);
        assert!(d.bool_or(sigs.p_backward, false));
    }

    #[test]
    fn missing_go_signal_defaults_false() {
        let (table, sigs) = vehicle_table();
        let d = derive(&table.frame(), &sigs, &VehicleParams::default());
        assert_eq!(d.get(sigs.hmi_go).and_then(|v| v.as_bool()), Some(false));
    }
}
