//! Assembles the complete vehicle simulation.

use crate::arbiter::Arbiter;
use crate::config::{DefectSet, VehicleParams};
use crate::driver::{DriverAction, ScriptedDriver};
use crate::dynamics::{HostDynamics, Scene};
use crate::features::{
    AdaptiveCruiseControl, CollisionAvoidance, FeatureOutputs, LaneChangeAssist, ParkAssist,
    RearCollisionAvoidance,
};
use crate::signals as sig;
use esafe_sim::Simulator;

/// Builds a ready-to-run vehicle [`Simulator`] at 1 kHz: driver, the five
/// feature subsystems, the arbiter, and the plant, with a fully seeded
/// initial state.
///
/// # Example
///
/// ```
/// use esafe_vehicle::builder::build_vehicle;
/// use esafe_vehicle::config::{DefectSet, VehicleParams};
/// use esafe_vehicle::dynamics::Scene;
///
/// let mut sim = build_vehicle(
///     VehicleParams::default(),
///     DefectSet::none(),
///     Scene::default(),
///     vec![],
/// );
/// sim.step();
/// assert!(sim.state().get("arbiter.accel_cmd").is_some());
/// ```
pub fn build_vehicle(
    params: VehicleParams,
    defects: DefectSet,
    scene: Scene,
    driver_schedule: Vec<(f64, DriverAction)>,
) -> Simulator {
    let mut sim = Simulator::new(1);
    sim.add(ScriptedDriver::new(params, driver_schedule));
    sim.add(CollisionAvoidance::new(params, defects));
    sim.add(RearCollisionAvoidance::new(params, defects));
    sim.add(ParkAssist::new(params, defects));
    sim.add(LaneChangeAssist::new(params, defects));
    sim.add(AdaptiveCruiseControl::new(params, defects));
    sim.add(Arbiter::new(params, defects));
    sim.add(HostDynamics::new(params, defects, scene));

    let mut init = HostDynamics::initial_state(&scene);
    init.extend(
        ScriptedDriver::initial_state()
            .into_iter()
            .map(|(k, v)| (k.clone(), v.clone())),
    );
    init.extend(
        Arbiter::initial_state()
            .into_iter()
            .map(|(k, v)| (k.clone(), v.clone())),
    );
    for f in sig::FEATURES {
        init.extend(
            FeatureOutputs::initial_state(f)
                .into_iter()
                .map(|(k, v)| (k.clone(), v.clone())),
        );
    }
    sim.init(init);
    sim
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{boolean, real, symbol};

    #[test]
    fn healthy_vehicle_idles_at_rest() {
        let mut sim = build_vehicle(
            VehicleParams::default(),
            DefectSet::none(),
            Scene::default(),
            vec![],
        );
        for _ in 0..1000 {
            sim.step();
        }
        assert_eq!(real(sim.state(), sig::HOST_SPEED, 1.0), 0.0);
        assert_eq!(symbol(sim.state(), sig::ACCEL_SOURCE, "?"), "DRIVER");
    }

    #[test]
    fn driver_throttle_moves_the_vehicle() {
        let mut sim = build_vehicle(
            VehicleParams::default(),
            DefectSet::none(),
            Scene::default(),
            vec![(0.5, DriverAction::Throttle(0.3))],
        );
        for _ in 0..3000 {
            sim.step();
        }
        assert!(real(sim.state(), sig::HOST_SPEED, 0.0) > 1.0);
    }

    #[test]
    fn healthy_ca_stops_before_parked_vehicle() {
        let scene = Scene {
            lead: Some(crate::dynamics::SceneObject::constant(20.0, 0.0)),
            rear: None,
        };
        let mut sim = build_vehicle(
            VehicleParams::default(),
            DefectSet::none(),
            scene,
            vec![
                (0.5, DriverAction::Enable("CA".into(), true)),
                (1.0, DriverAction::Throttle(0.10)),
            ],
        );
        let mut collided = false;
        for _ in 0..20_000 {
            sim.step();
            if boolean(sim.state(), sig::COLLISION) {
                collided = true;
                break;
            }
        }
        assert!(!collided, "a healthy CA must prevent the collision");
        // The driver keeps the throttle applied, so the vehicle cycles
        // between CA stops and driver creep — but never makes contact.
        let gap = real(sim.state(), sig::LEAD_DISTANCE, 0.0);
        assert!(gap > 0.0 && gap < 21.0, "held short of the obstacle: {gap}");
    }

    #[test]
    fn defective_ca_strikes_the_parked_vehicle() {
        let scene = Scene {
            lead: Some(crate::dynamics::SceneObject::constant(20.0, 0.0)),
            rear: None,
        };
        let mut sim = build_vehicle(
            VehicleParams::default(),
            DefectSet::thesis(),
            scene,
            vec![
                (0.5, DriverAction::Enable("CA".into(), true)),
                (1.0, DriverAction::Throttle(0.10)),
            ],
        );
        let mut collided_at = None;
        for _ in 0..20_000 {
            sim.step();
            if boolean(sim.state(), sig::COLLISION) {
                collided_at = Some(sim.seconds());
                break;
            }
        }
        let t = collided_at.expect("the thesis vehicle strikes the object");
        // The thesis's scenario-1 run terminated at ≈12.7 s.
        assert!(t > 10.0 && t < 15.0, "collision at {t}");
    }
}
