//! Assembles the complete vehicle simulation.

use crate::arbiter::Arbiter;
use crate::config::{DefectSet, VehicleParams};
use crate::driver::{DriverAction, ScriptedDriver};
use crate::dynamics::{HostDynamics, Scene};
use crate::features::{
    AdaptiveCruiseControl, CollisionAvoidance, FeatureOutputs, LaneChangeAssist, ParkAssist,
    RearCollisionAvoidance,
};
use crate::signals::VehicleSigs;
use esafe_logic::SignalTable;
use esafe_sim::{LaneVec, Simulator, SimulatorBatch};
use std::sync::Arc;

/// Builds a ready-to-run vehicle [`Simulator`] at 1 kHz over the shared
/// signal table: driver, the five feature subsystems, the arbiter, and
/// the plant, with a fully seeded initial frame. Every subsystem carries
/// a copy of the resolved [`VehicleSigs`], so its per-tick reads and
/// writes are dense slot accesses.
///
/// # Example
///
/// ```
/// use esafe_vehicle::builder::build_vehicle;
/// use esafe_vehicle::config::{DefectSet, VehicleParams};
/// use esafe_vehicle::dynamics::Scene;
/// use esafe_vehicle::signals::vehicle_table;
///
/// let (table, sigs) = vehicle_table();
/// let mut sim = build_vehicle(
///     VehicleParams::default(),
///     DefectSet::none(),
///     Scene::default(),
///     vec![],
///     &table,
///     &sigs,
/// );
/// sim.step();
/// assert!(sim.state().get(sigs.accel_cmd).is_some());
/// ```
pub fn build_vehicle(
    params: VehicleParams,
    defects: DefectSet,
    scene: Scene,
    driver_schedule: Vec<(f64, DriverAction)>,
    table: &Arc<SignalTable>,
    sigs: &VehicleSigs,
) -> Simulator {
    let mut sim = Simulator::new(1, table);
    sim.add(ScriptedDriver::new(params, *sigs, driver_schedule));
    sim.add(CollisionAvoidance::new(params, defects, *sigs));
    sim.add(RearCollisionAvoidance::new(params, defects, *sigs));
    sim.add(ParkAssist::new(params, defects, *sigs));
    sim.add(LaneChangeAssist::new(params, defects, *sigs));
    sim.add(AdaptiveCruiseControl::new(params, defects, *sigs));
    sim.add(Arbiter::new(params, defects, *sigs));
    sim.add(HostDynamics::new(params, defects, scene, *sigs));

    sim.init_with(|frame| {
        HostDynamics::seed(frame, sigs, &scene);
        ScriptedDriver::seed(frame, sigs);
        Arbiter::seed(frame, sigs);
        for f in &sigs.features {
            FeatureOutputs::seed(frame, f);
        }
    });
    sim
}

/// One lane's configuration for [`build_vehicle_batch`]: the per-cell
/// inputs [`build_vehicle`] takes, minus the shared table/sigs.
#[derive(Debug, Clone)]
pub struct VehicleLaneConfig {
    /// Physical and control constants.
    pub params: VehicleParams,
    /// The injected defect configuration.
    pub defects: DefectSet,
    /// Scene objects around the host.
    pub scene: Scene,
    /// Scheduled driver/HMI actions.
    pub script: Vec<(f64, DriverAction)>,
}

/// Builds a batched vehicle simulator stepping every lane of `lanes`
/// together: the same eight subsystems in the same order as
/// [`build_vehicle`], each as a [`LaneVec`] over per-lane instances, and
/// each lane's initial frame seeded exactly as `build_vehicle` seeds its
/// scalar counterpart. Lane `l` is bit-identical to
/// `build_vehicle(lanes[l]…)` (pinned by this module's tests and the
/// workspace's batched-sweep golden tests) because every subsystem's
/// `step_lane` body is the one `build_vehicle`'s boxed subsystems
/// monomorphize.
///
/// # Panics
///
/// Panics if `lanes` is empty.
pub fn build_vehicle_batch(
    lanes: &[VehicleLaneConfig],
    table: &Arc<SignalTable>,
    sigs: &VehicleSigs,
) -> SimulatorBatch {
    assert!(!lanes.is_empty(), "a vehicle batch needs at least one lane");
    let mut sim = SimulatorBatch::new(1, table, lanes.len());
    let n = lanes.len();
    sim.add(LaneVec::from_fn(n, |l| {
        ScriptedDriver::new(lanes[l].params, *sigs, lanes[l].script.clone())
    }));
    sim.add(LaneVec::from_fn(n, |l| {
        CollisionAvoidance::new(lanes[l].params, lanes[l].defects, *sigs)
    }));
    sim.add(LaneVec::from_fn(n, |l| {
        RearCollisionAvoidance::new(lanes[l].params, lanes[l].defects, *sigs)
    }));
    sim.add(LaneVec::from_fn(n, |l| {
        ParkAssist::new(lanes[l].params, lanes[l].defects, *sigs)
    }));
    sim.add(LaneVec::from_fn(n, |l| {
        LaneChangeAssist::new(lanes[l].params, lanes[l].defects, *sigs)
    }));
    sim.add(LaneVec::from_fn(n, |l| {
        AdaptiveCruiseControl::new(lanes[l].params, lanes[l].defects, *sigs)
    }));
    sim.add(LaneVec::from_fn(n, |l| {
        Arbiter::new(lanes[l].params, lanes[l].defects, *sigs)
    }));
    sim.add(LaneVec::from_fn(n, |l| {
        HostDynamics::new(lanes[l].params, lanes[l].defects, lanes[l].scene, *sigs)
    }));

    for (l, cfg) in lanes.iter().enumerate() {
        sim.init_lane_with(l, |frame| {
            HostDynamics::seed(frame, sigs, &cfg.scene);
            ScriptedDriver::seed(frame, sigs);
            Arbiter::seed(frame, sigs);
            for f in &sigs.features {
                FeatureOutputs::seed(frame, f);
            }
        });
    }
    sim
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signals::vehicle_table;
    fn build(
        defects: DefectSet,
        scene: Scene,
        script: Vec<(f64, DriverAction)>,
    ) -> (Simulator, VehicleSigs) {
        let (table, sigs) = vehicle_table();
        (
            build_vehicle(
                VehicleParams::default(),
                defects,
                scene,
                script,
                &table,
                &sigs,
            ),
            sigs,
        )
    }

    #[test]
    fn batched_vehicle_matches_scalar_lanes_bit_for_bit() {
        let (table, sigs) = vehicle_table();
        let configs = vec![
            VehicleLaneConfig {
                params: VehicleParams::default(),
                defects: DefectSet::none(),
                scene: Scene::default(),
                script: vec![(0.5, DriverAction::Throttle(0.3))],
            },
            VehicleLaneConfig {
                params: VehicleParams::default(),
                defects: DefectSet::thesis(),
                scene: Scene {
                    lead: Some(crate::dynamics::SceneObject::constant(20.0, 0.0)),
                    rear: None,
                },
                script: vec![
                    (0.5, DriverAction::Enable("CA".into(), true)),
                    (1.0, DriverAction::Throttle(0.10)),
                ],
            },
        ];
        let mut batch = build_vehicle_batch(&configs, &table, &sigs);
        let mut scalars: Vec<Simulator> = configs
            .iter()
            .map(|c| {
                build_vehicle(
                    c.params,
                    c.defects,
                    c.scene,
                    c.script.clone(),
                    &table,
                    &sigs,
                )
            })
            .collect();
        let mut frame = table.frame();
        for tick in 0..2000u64 {
            batch.step();
            for (l, sim) in scalars.iter_mut().enumerate() {
                sim.step();
                batch.state().read_lane_into(l, &mut frame);
                assert_eq!(&frame, sim.state(), "lane {l} diverged at tick {tick}");
            }
        }
    }

    #[test]
    fn healthy_vehicle_idles_at_rest() {
        let (mut sim, sigs) = build(DefectSet::none(), Scene::default(), vec![]);
        for _ in 0..1000 {
            sim.step();
        }
        assert_eq!(sim.state().real_or(sigs.host_speed, 1.0), 0.0);
        assert_eq!(sim.state().get(sigs.accel_source), Some(sigs.sym_driver));
    }

    #[test]
    fn driver_throttle_moves_the_vehicle() {
        let (mut sim, sigs) = build(
            DefectSet::none(),
            Scene::default(),
            vec![(0.5, DriverAction::Throttle(0.3))],
        );
        for _ in 0..3000 {
            sim.step();
        }
        assert!(sim.state().real_or(sigs.host_speed, 0.0) > 1.0);
    }

    #[test]
    fn healthy_ca_stops_before_parked_vehicle() {
        let scene = Scene {
            lead: Some(crate::dynamics::SceneObject::constant(20.0, 0.0)),
            rear: None,
        };
        let (mut sim, sigs) = build(
            DefectSet::none(),
            scene,
            vec![
                (0.5, DriverAction::Enable("CA".into(), true)),
                (1.0, DriverAction::Throttle(0.10)),
            ],
        );
        let mut collided = false;
        for _ in 0..20_000 {
            sim.step();
            if sim.state().bool_or(sigs.collision, false) {
                collided = true;
                break;
            }
        }
        assert!(!collided, "a healthy CA must prevent the collision");
        // The driver keeps the throttle applied, so the vehicle cycles
        // between CA stops and driver creep — but never makes contact.
        let gap = sim.state().real_or(sigs.lead_distance, 0.0);
        assert!(gap > 0.0 && gap < 21.0, "held short of the obstacle: {gap}");
    }

    #[test]
    fn defective_ca_strikes_the_parked_vehicle() {
        let scene = Scene {
            lead: Some(crate::dynamics::SceneObject::constant(20.0, 0.0)),
            rear: None,
        };
        let (mut sim, sigs) = build(
            DefectSet::thesis(),
            scene,
            vec![
                (0.5, DriverAction::Enable("CA".into(), true)),
                (1.0, DriverAction::Throttle(0.10)),
            ],
        );
        let mut collided_at = None;
        for _ in 0..20_000 {
            sim.step();
            if sim.state().bool_or(sigs.collision, false) {
                collided_at = Some(sim.seconds());
                break;
            }
        }
        let t = collided_at.expect("the thesis vehicle strikes the object");
        // The thesis's scenario-1 run terminated at ≈12.7 s.
        assert!(t > 10.0 && t < 15.0, "collision at {t}");
    }
}
