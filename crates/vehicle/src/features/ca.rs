//! Collision Avoidance (CA): detects objects in the forward path and stops
//! the vehicle before a collision occurs (thesis §5.2.1).

use super::FeatureOutputs;
use crate::config::{DefectSet, VehicleParams};
use crate::signals::VehicleSigs;
use esafe_logic::{SignalRead, SignalWrite};
use esafe_sim::{LaneSubsystem, SimTime};

/// The CA feature subsystem.
///
/// Engages a hard braking action when the kinematic stopping distance
/// (plus margin) reaches the measured gap; holds the brake until the
/// vehicle is stopped.
///
/// With [`DefectSet::ca_intermittent_braking`] the braking action is
/// cancelled briefly on a cycle and released entirely at the stop — the
/// behavior of thesis Figures 5.2 and 5.5 that lets the host strike the
/// parked vehicle in scenarios 1–3.
#[derive(Debug)]
pub struct CollisionAvoidance {
    params: VehicleParams,
    defects: DefectSet,
    sigs: VehicleSigs,
    out: FeatureOutputs,
    engaged: bool,
    engaged_ticks: u64,
}

impl CollisionAvoidance {
    /// Creates the CA subsystem.
    pub fn new(params: VehicleParams, defects: DefectSet, sigs: VehicleSigs) -> Self {
        CollisionAvoidance {
            params,
            defects,
            sigs,
            out: FeatureOutputs::new(sigs.features[crate::signals::CA]),
            engaged: false,
            engaged_ticks: 0,
        }
    }

    fn last_request(&self) -> f64 {
        self.out.last_request()
    }

    fn should_engage(&self, speed: f64, gap: f64, lead_speed: f64) -> bool {
        if speed <= 0.1 {
            return false;
        }
        let closing = speed - lead_speed;
        if closing <= 0.0 {
            return false;
        }
        let stopping = closing * closing / (2.0 * self.params.ca_brake_accel.abs());
        // The defective implementation also engages late — at the raw
        // kinematic stopping distance with no safety margin — so any loss
        // of braking authority (the intermittent cancels, actuator lag)
        // ends in contact (thesis Fig. 5.5).
        let margin = if self.defects.ca_intermittent_braking {
            0.0
        } else {
            self.params.ca_margin_m
        };
        gap <= stopping + margin
    }
}

impl LaneSubsystem for CollisionAvoidance {
    fn name(&self) -> &str {
        "CA"
    }

    fn step_lane<R: SignalRead, W: SignalWrite>(&mut self, t: &SimTime, prev: &R, next: &mut W) {
        let s = &self.sigs;
        let enabled = prev.bool_or(self.out.sigs().hmi_enable, false);
        let speed = prev.real_or(s.host_speed, 0.0);
        let gap = prev.real_or(s.lead_distance, 1e9);
        let lead_speed = prev.real_or(s.lead_speed, 0.0);

        if !enabled {
            self.engaged = false;
            self.engaged_ticks = 0;
            self.out
                .publish(next, false, false, 0.0, 0.0, false, t.dt_seconds());
            return;
        }

        let throttle = prev.real_or(s.driver_throttle, 0.0) > 0.05;

        if !self.engaged && self.should_engage(speed, gap, lead_speed) {
            self.engaged = true;
            self.engaged_ticks = 0;
        }
        if self.engaged && speed <= self.params.stopped_eps {
            if self.defects.ca_intermittent_braking {
                // Defective release at the stop instead of holding the
                // vehicle until the driver re-initiates motion.
                self.engaged = false;
            } else if throttle {
                // Correct behaviour: hold the vehicle at rest until the
                // driver re-initiates motion with the throttle pedal, then
                // yield (goal 5's feature-level subgoal).
                self.engaged = false;
            }
        }

        let mut active = self.engaged;
        let mut request = if self.engaged {
            if speed <= self.params.stopped_eps {
                -1.0 // hold at rest
            } else {
                self.params.ca_brake_accel
            }
        } else if !self.defects.ca_intermittent_braking && self.last_request() < 0.0 {
            // Healthy release: ramp the request back to zero within the
            // jerk-request bound instead of stepping it (the thesis notes
            // a step release violates subgoal 2B for a single state —
            // §5.4.1's "too restrictive to be implemented practically").
            (self.last_request() + self.params.jerk_limit * 0.9 * t.dt_seconds()).min(0.0)
        } else {
            0.0
        };

        if self.engaged && self.defects.ca_intermittent_braking {
            // Cancel the braking action briefly on a cycle (Fig. 5.2):
            // ~56 ms braking, 4 ms released.
            let phase = self.engaged_ticks % 60;
            if phase >= 56 {
                active = false;
                request = 0.0;
            }
        }
        if self.engaged {
            self.engaged_ticks += 1;
        }

        self.out
            .publish(next, enabled, active, request, 0.0, false, t.dt_seconds());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signals::{self as sig, vehicle_table};
    use esafe_logic::{Frame, SignalTable, Value};
    use esafe_sim::Subsystem;
    use std::sync::Arc;

    fn ctx() -> (Arc<SignalTable>, VehicleSigs) {
        vehicle_table()
    }

    fn world(
        table: &Arc<SignalTable>,
        sigs: &VehicleSigs,
        speed: f64,
        gap: f64,
        enabled: bool,
    ) -> Frame {
        let mut f = table.frame();
        f.set(sigs.features[sig::CA].hmi_enable, enabled);
        f.set(sigs.host_speed, speed);
        f.set(sigs.lead_distance, gap);
        f.set(sigs.lead_speed, 0.0);
        f
    }

    fn tick(ca: &mut CollisionAvoidance, prev: &Frame) -> Frame {
        let mut next = prev.clone();
        let t = SimTime {
            tick: 1,
            dt_millis: 1,
        };
        ca.step(&t, prev, &mut next);
        next
    }

    #[test]
    fn engages_inside_stopping_envelope() {
        let (table, sigs) = ctx();
        let ca_sigs = sigs.features[sig::CA];
        let mut ca = CollisionAvoidance::new(VehicleParams::default(), DefectSet::none(), sigs);
        // v=4: stopping = 16/16 = 1 m; margin 1.2 → engages below 2.2 m.
        let s = tick(&mut ca, &world(&table, &sigs, 4.0, 5.0, true));
        assert!(!s.bool_or(ca_sigs.active, false));
        let s = tick(&mut ca, &world(&table, &sigs, 4.0, 2.0, true));
        assert!(s.bool_or(ca_sigs.active, false));
        assert_eq!(s.real_or(ca_sigs.accel_request, 0.0), -8.0);
    }

    #[test]
    fn disabled_ca_stays_quiet() {
        let (table, sigs) = ctx();
        let ca_sigs = sigs.features[sig::CA];
        let mut ca = CollisionAvoidance::new(VehicleParams::default(), DefectSet::none(), sigs);
        let s = tick(&mut ca, &world(&table, &sigs, 4.0, 0.5, false));
        assert!(!s.bool_or(ca_sigs.active, false));
        assert_eq!(s.real_or(ca_sigs.accel_request, 1.0), 0.0);
    }

    #[test]
    fn correct_ca_holds_at_stop() {
        let (table, sigs) = ctx();
        let ca_sigs = sigs.features[sig::CA];
        let mut ca = CollisionAvoidance::new(VehicleParams::default(), DefectSet::none(), sigs);
        let _ = tick(&mut ca, &world(&table, &sigs, 4.0, 1.5, true));
        let s = tick(&mut ca, &world(&table, &sigs, 0.0, 1.5, true));
        assert!(
            s.bool_or(ca_sigs.active, false),
            "must hold the vehicle at rest"
        );
        assert_eq!(s.real_or(ca_sigs.accel_request, 0.0), -1.0);
    }

    #[test]
    fn defective_ca_releases_at_stop() {
        let (table, sigs) = ctx();
        let ca_sigs = sigs.features[sig::CA];
        let defects = DefectSet {
            ca_intermittent_braking: true,
            ..DefectSet::none()
        };
        let mut ca = CollisionAvoidance::new(VehicleParams::default(), defects, sigs);
        let _ = tick(&mut ca, &world(&table, &sigs, 4.0, 1.5, true));
        let s = tick(&mut ca, &world(&table, &sigs, 0.0, 1.5, true));
        assert!(!s.bool_or(ca_sigs.active, false));
    }

    #[test]
    fn defective_ca_cancels_braking_on_cycle() {
        let (table, sigs) = ctx();
        let ca_sigs = sigs.features[sig::CA];
        let defects = DefectSet {
            ca_intermittent_braking: true,
            ..DefectSet::none()
        };
        let mut ca = CollisionAvoidance::new(VehicleParams::default(), defects, sigs);
        let mut dropped = 0;
        let mut braking = 0;
        // Defective engagement has no margin: engage inside v²/2a = 1 m.
        let w = world(&table, &sigs, 4.0, 0.9, true);
        for _ in 0..120 {
            let s = tick(&mut ca, &w);
            if s.bool_or(ca_sigs.active, false) {
                braking += 1;
            } else {
                dropped += 1;
            }
        }
        assert_eq!(dropped, 8, "two 4-tick drops per 120 ticks");
        assert_eq!(braking, 112);
    }

    #[test]
    fn no_engagement_when_opening_gap() {
        let (table, sigs) = ctx();
        let ca_sigs = sigs.features[sig::CA];
        let mut ca = CollisionAvoidance::new(VehicleParams::default(), DefectSet::none(), sigs);
        let mut w = world(&table, &sigs, 4.0, 1.0, true);
        w.set(sigs.lead_speed, Value::Real(6.0)); // lead pulling away
        let s = tick(&mut ca, &w);
        assert!(!s.bool_or(ca_sigs.active, false));
    }
}
