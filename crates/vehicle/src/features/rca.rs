//! Rear Collision Avoidance (RCA): stops the vehicle before striking an
//! object while reversing (thesis §5.2.1). In the thesis's partial
//! implementation RCA never engaged at all (scenario 7, Fig. 5.12).

use super::{boolean, real, symbol, FeatureOutputs};
use crate::config::{DefectSet, VehicleParams};
use crate::signals as sig;
use esafe_logic::State;
use esafe_sim::{SimTime, Subsystem};

/// The RCA feature subsystem.
#[derive(Debug)]
pub struct RearCollisionAvoidance {
    params: VehicleParams,
    defects: DefectSet,
    out: FeatureOutputs,
    engaged: bool,
}

impl RearCollisionAvoidance {
    /// Creates the RCA subsystem.
    pub fn new(params: VehicleParams, defects: DefectSet) -> Self {
        RearCollisionAvoidance {
            params,
            defects,
            out: FeatureOutputs::new("RCA"),
            engaged: false,
        }
    }
}

impl Subsystem for RearCollisionAvoidance {
    fn name(&self) -> &str {
        "RCA"
    }

    fn step(&mut self, t: &SimTime, prev: &State, next: &mut State) {
        let enabled = boolean(prev, &sig::hmi_enable("RCA"));
        let speed = real(prev, sig::HOST_SPEED, 0.0);
        let rear_gap = real(prev, sig::REAR_DISTANCE, 1e9);
        let gear = symbol(prev, sig::GEAR, "D");

        if !enabled || self.defects.rca_never_engages {
            // The thesis implementation never engages: publish the enable
            // state but take no action, ever (Fig. 5.12).
            self.engaged = false;
            self.out
                .publish(next, enabled, false, 0.0, 0.0, false, t.dt_seconds());
            return;
        }

        // Healthy behaviour: hard-stop when reversing into the envelope.
        let reversing = gear == "R" && speed < -0.1;
        if reversing {
            let closing = -speed;
            let stopping = closing * closing / (2.0 * self.params.ca_brake_accel.abs());
            if rear_gap <= stopping + self.params.ca_margin_m {
                self.engaged = true;
            }
        }
        if self.engaged && speed.abs() <= self.params.stopped_eps {
            // At rest: release; the plant's gear clamp holds the car, and
            // a fresh reverse attempt re-engages the envelope check.
            self.engaged = false;
        }
        let active = self.engaged;
        let request = if self.engaged {
            // Stop reverse motion (positive, world frame), tapering with
            // speed but never below the driver-override threshold: the
            // entire stop counts as a hard stop (goal 9's exemption).
            (-speed * 8.0).clamp(2.6, self.params.ca_brake_accel.abs())
        } else {
            0.0
        };
        self.out
            .publish(next, enabled, active, request, 0.0, false, t.dt_seconds());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esafe_logic::Value;

    fn reversing_world(gap: f64) -> State {
        State::new()
            .with_bool("hmi.rca.enable", true)
            .with_real(sig::HOST_SPEED, -2.0)
            .with_real(sig::REAR_DISTANCE, gap)
            .with_sym(sig::GEAR, "R")
    }

    fn tick(rca: &mut RearCollisionAvoidance, prev: &State) -> State {
        let mut next = prev.clone();
        rca.step(
            &SimTime {
                tick: 1,
                dt_millis: 1,
            },
            prev,
            &mut next,
        );
        next
    }

    #[test]
    fn thesis_defect_never_engages() {
        let defects = DefectSet {
            rca_never_engages: true,
            ..DefectSet::none()
        };
        let mut rca = RearCollisionAvoidance::new(VehicleParams::default(), defects);
        let s = tick(&mut rca, &reversing_world(0.2));
        assert!(!boolean(&s, "rca.active"));
        assert_eq!(real(&s, "rca.accel_request", 1.0), 0.0);
        assert!(
            boolean(&s, "rca.enabled"),
            "enable state is still published"
        );
    }

    #[test]
    fn healthy_rca_stops_reverse_motion() {
        let mut rca = RearCollisionAvoidance::new(VehicleParams::default(), DefectSet::none());
        // v = −2: stopping = 4/16 = 0.25 m; margin 1.2 → engage below ~1.45.
        let s = tick(&mut rca, &reversing_world(3.0));
        assert!(!boolean(&s, "rca.active"));
        let s = tick(&mut rca, &reversing_world(1.0));
        assert!(boolean(&s, "rca.active"));
        assert!(
            real(&s, "rca.accel_request", 0.0) > 0.0,
            "positive accel stops reverse"
        );
    }

    #[test]
    fn ignores_forward_motion() {
        let mut rca = RearCollisionAvoidance::new(VehicleParams::default(), DefectSet::none());
        let mut w = reversing_world(0.5);
        w.set(sig::HOST_SPEED, Value::Real(2.0));
        w.set(sig::GEAR, Value::sym("D"));
        let s = tick(&mut rca, &w);
        assert!(!boolean(&s, "rca.active"));
    }
}
