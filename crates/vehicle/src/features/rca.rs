//! Rear Collision Avoidance (RCA): stops the vehicle before striking an
//! object while reversing (thesis §5.2.1). In the thesis's partial
//! implementation RCA never engaged at all (scenario 7, Fig. 5.12).

use super::FeatureOutputs;
use crate::config::{DefectSet, VehicleParams};
use crate::signals::VehicleSigs;
use esafe_logic::{SignalRead, SignalWrite};
use esafe_sim::{LaneSubsystem, SimTime};

/// The RCA feature subsystem.
#[derive(Debug)]
pub struct RearCollisionAvoidance {
    params: VehicleParams,
    defects: DefectSet,
    sigs: VehicleSigs,
    out: FeatureOutputs,
    engaged: bool,
}

impl RearCollisionAvoidance {
    /// Creates the RCA subsystem.
    pub fn new(params: VehicleParams, defects: DefectSet, sigs: VehicleSigs) -> Self {
        RearCollisionAvoidance {
            params,
            defects,
            sigs,
            out: FeatureOutputs::new(sigs.features[crate::signals::RCA]),
            engaged: false,
        }
    }
}

impl LaneSubsystem for RearCollisionAvoidance {
    fn name(&self) -> &str {
        "RCA"
    }

    fn step_lane<R: SignalRead, W: SignalWrite>(&mut self, t: &SimTime, prev: &R, next: &mut W) {
        let s = &self.sigs;
        let enabled = prev.bool_or(self.out.sigs().hmi_enable, false);
        let speed = prev.real_or(s.host_speed, 0.0);
        let rear_gap = prev.real_or(s.rear_distance, 1e9);
        let in_reverse_gear = prev.get(s.gear) == Some(s.sym_r);

        if !enabled || self.defects.rca_never_engages {
            // The thesis implementation never engages: publish the enable
            // state but take no action, ever (Fig. 5.12).
            self.engaged = false;
            self.out
                .publish(next, enabled, false, 0.0, 0.0, false, t.dt_seconds());
            return;
        }

        // Healthy behaviour: hard-stop when reversing into the envelope.
        let reversing = in_reverse_gear && speed < -0.1;
        if reversing {
            let closing = -speed;
            let stopping = closing * closing / (2.0 * self.params.ca_brake_accel.abs());
            if rear_gap <= stopping + self.params.ca_margin_m {
                self.engaged = true;
            }
        }
        if self.engaged && speed.abs() <= self.params.stopped_eps {
            // At rest: release; the plant's gear clamp holds the car, and
            // a fresh reverse attempt re-engages the envelope check.
            self.engaged = false;
        }
        let active = self.engaged;
        let request = if self.engaged {
            // Stop reverse motion (positive, world frame), tapering with
            // speed but never below the driver-override threshold: the
            // entire stop counts as a hard stop (goal 9's exemption).
            (-speed * 8.0).clamp(2.6, self.params.ca_brake_accel.abs())
        } else {
            0.0
        };
        self.out
            .publish(next, enabled, active, request, 0.0, false, t.dt_seconds());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signals::{self as sig, vehicle_table};
    use esafe_logic::{Frame, SignalTable, Value};
    use esafe_sim::Subsystem;
    use std::sync::Arc;

    fn reversing_world(table: &Arc<SignalTable>, sigs: &VehicleSigs, gap: f64) -> Frame {
        let mut f = table.frame();
        f.set(sigs.features[sig::RCA].hmi_enable, true);
        f.set(sigs.host_speed, -2.0);
        f.set(sigs.rear_distance, gap);
        f.set(sigs.gear, sigs.sym_r);
        f
    }

    fn tick(rca: &mut RearCollisionAvoidance, prev: &Frame) -> Frame {
        let mut next = prev.clone();
        rca.step(
            &SimTime {
                tick: 1,
                dt_millis: 1,
            },
            prev,
            &mut next,
        );
        next
    }

    #[test]
    fn thesis_defect_never_engages() {
        let (table, sigs) = vehicle_table();
        let rca_sigs = sigs.features[sig::RCA];
        let defects = DefectSet {
            rca_never_engages: true,
            ..DefectSet::none()
        };
        let mut rca = RearCollisionAvoidance::new(VehicleParams::default(), defects, sigs);
        let s = tick(&mut rca, &reversing_world(&table, &sigs, 0.2));
        assert!(!s.bool_or(rca_sigs.active, false));
        assert_eq!(s.real_or(rca_sigs.accel_request, 1.0), 0.0);
        assert!(
            s.bool_or(rca_sigs.enabled, false),
            "enable state is still published"
        );
    }

    #[test]
    fn healthy_rca_stops_reverse_motion() {
        let (table, sigs) = vehicle_table();
        let rca_sigs = sigs.features[sig::RCA];
        let mut rca =
            RearCollisionAvoidance::new(VehicleParams::default(), DefectSet::none(), sigs);
        // v = −2: stopping = 4/16 = 0.25 m; margin 1.2 → engage below ~1.45.
        let s = tick(&mut rca, &reversing_world(&table, &sigs, 3.0));
        assert!(!s.bool_or(rca_sigs.active, false));
        let s = tick(&mut rca, &reversing_world(&table, &sigs, 1.0));
        assert!(s.bool_or(rca_sigs.active, false));
        assert!(
            s.real_or(rca_sigs.accel_request, 0.0) > 0.0,
            "positive accel stops reverse"
        );
    }

    #[test]
    fn ignores_forward_motion() {
        let (table, sigs) = vehicle_table();
        let rca_sigs = sigs.features[sig::RCA];
        let mut rca =
            RearCollisionAvoidance::new(VehicleParams::default(), DefectSet::none(), sigs);
        let mut w = reversing_world(&table, &sigs, 0.5);
        w.set(sigs.host_speed, Value::Real(2.0));
        w.set(sigs.gear, sigs.sym_d);
        let s = tick(&mut rca, &w);
        assert!(!s.bool_or(rca_sigs.active, false));
    }
}
