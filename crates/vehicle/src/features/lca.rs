//! Lane Change Assist (LCA): performs a driver-requested lane change,
//! working in conjunction with ACC for longitudinal control (thesis
//! §5.2.1, §5.3.2: "ACC performs the longitudinal control for LCA; thus
//! ACC and LCA share acceleration requests").

use super::{boolean, real, FeatureOutputs};
use crate::config::{DefectSet, VehicleParams};
use crate::signals as sig;
use esafe_logic::State;
use esafe_sim::{SimTime, Subsystem};

/// Ticks after engage before LCA requests control (thesis Fig. 5.10:
/// control gained at 5.001 s after a 5.0 s enable — one 1 ms state).
const ACTIVATION_DELAY_TICKS: u64 = 1;
/// Ticks after activation before the steering profile begins (Fig. 5.10:
/// first steering request at 5.051 s).
const STEER_START_TICKS: u64 = 50;
/// Length of each half of the lane-change steering profile, ticks.
const STEER_HALF_TICKS: u64 = 1500;

/// The LCA feature subsystem.
#[derive(Debug)]
pub struct LaneChangeAssist {
    #[allow(dead_code)]
    params: VehicleParams,
    defects: DefectSet,
    out: FeatureOutputs,
    engaged: bool,
    ticks_since_engage: u64,
}

impl LaneChangeAssist {
    /// Creates the LCA subsystem.
    pub fn new(params: VehicleParams, defects: DefectSet) -> Self {
        LaneChangeAssist {
            params,
            defects,
            out: FeatureOutputs::new("LCA"),
            engaged: false,
            ticks_since_engage: 0,
        }
    }

    fn steering_profile(&self, ticks: u64) -> f64 {
        if ticks < STEER_START_TICKS {
            return 0.0;
        }
        let t = ticks - STEER_START_TICKS;
        if t < STEER_HALF_TICKS {
            0.04
        } else if t < 2 * STEER_HALF_TICKS {
            -0.04
        } else {
            0.0
        }
    }
}

impl Subsystem for LaneChangeAssist {
    fn name(&self) -> &str {
        "LCA"
    }

    fn step(&mut self, t: &SimTime, prev: &State, next: &mut State) {
        let enabled = boolean(prev, &sig::hmi_enable("LCA"));
        let engage_req = boolean(prev, &sig::hmi_engage("LCA"));
        let acc_engaged_signal = boolean(prev, &sig::hmi_engage("ACC"));

        // LCA requires ACC to be engaged (it borrows ACC's longitudinal
        // control). The reverse-motion inhibit is the healthy behaviour
        // scenario 6 shows missing.
        let speed = real(prev, sig::HOST_SPEED, 0.0);
        let reverse_ok = self.defects.no_reverse_inhibit || speed >= 0.0;

        if enabled && engage_req && acc_engaged_signal && reverse_ok {
            if !self.engaged {
                self.engaged = true;
                self.ticks_since_engage = 0;
            }
        } else {
            self.engaged = false;
        }

        let mut active = false;
        let mut accel = 0.0;
        let mut steer = 0.0;
        if self.engaged {
            self.ticks_since_engage += 1;
            active = self.ticks_since_engage >= ACTIVATION_DELAY_TICKS;
            // Shared longitudinal channel: mirror ACC's request.
            accel = real(prev, &sig::accel_request("ACC"), 0.0);
            steer = self.steering_profile(self.ticks_since_engage);
        }

        self.out
            .publish(next, enabled, active, accel, steer, true, t.dt_seconds());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world(acc_request: f64) -> State {
        State::new()
            .with_bool("hmi.lca.enable", true)
            .with_bool("hmi.lca.engage", true)
            .with_bool("hmi.acc.engage", true)
            .with_real(sig::HOST_SPEED, 10.0)
            .with_real(sig::accel_request("ACC"), acc_request)
    }

    fn run(lca: &mut LaneChangeAssist, prev: &State, n: u64) -> State {
        let mut s = prev.clone();
        let t = SimTime {
            tick: 1,
            dt_millis: 1,
        };
        for _ in 0..n {
            let snapshot = s.clone();
            lca.step(&t, &snapshot, &mut s);
        }
        s
    }

    #[test]
    fn activates_one_tick_after_engage() {
        let mut lca = LaneChangeAssist::new(VehicleParams::default(), DefectSet::none());
        let s = run(&mut lca, &world(0.5), 2);
        assert!(boolean(&s, "lca.active"));
        assert!(boolean(&s, "lca.requests_steering"));
    }

    #[test]
    fn mirrors_acc_longitudinal_request() {
        let mut lca = LaneChangeAssist::new(VehicleParams::default(), DefectSet::none());
        let s = run(&mut lca, &world(0.7), 5);
        assert_eq!(real(&s, "lca.accel_request", 0.0), 0.7);
    }

    #[test]
    fn steering_profile_starts_at_50_ms() {
        let mut lca = LaneChangeAssist::new(VehicleParams::default(), DefectSet::none());
        let s = run(&mut lca, &world(0.0), 45);
        assert_eq!(real(&s, "lca.steering_request", 1.0), 0.0);
        let s = run(&mut lca, &world(0.0), 10);
        assert!(real(&s, "lca.steering_request", 0.0) > 0.0);
    }

    #[test]
    fn requires_acc_engaged() {
        let mut lca = LaneChangeAssist::new(VehicleParams::default(), DefectSet::none());
        let mut w = world(0.0);
        w.set("hmi.acc.engage", false);
        let s = run(&mut lca, &w, 10);
        assert!(!boolean(&s, "lca.active"));
    }

    #[test]
    fn healthy_lca_disengages_in_reverse_motion() {
        let mut lca = LaneChangeAssist::new(VehicleParams::default(), DefectSet::none());
        let mut w = world(0.0);
        w.set(sig::HOST_SPEED, -0.5);
        let s = run(&mut lca, &w, 10);
        assert!(!boolean(&s, "lca.active"));

        let defects = DefectSet {
            no_reverse_inhibit: true,
            ..DefectSet::none()
        };
        let mut lca2 = LaneChangeAssist::new(VehicleParams::default(), defects);
        let s = run(&mut lca2, &w, 10);
        assert!(
            boolean(&s, "lca.active"),
            "defect keeps LCA active in reverse"
        );
    }
}
