//! Lane Change Assist (LCA): performs a driver-requested lane change,
//! working in conjunction with ACC for longitudinal control (thesis
//! §5.2.1, §5.3.2: "ACC performs the longitudinal control for LCA; thus
//! ACC and LCA share acceleration requests").

use super::FeatureOutputs;
use crate::config::{DefectSet, VehicleParams};
use crate::signals::VehicleSigs;
use esafe_logic::{SignalRead, SignalWrite};
use esafe_sim::{LaneSubsystem, SimTime};

/// Ticks after engage before LCA requests control (thesis Fig. 5.10:
/// control gained at 5.001 s after a 5.0 s enable — one 1 ms state).
const ACTIVATION_DELAY_TICKS: u64 = 1;
/// Ticks after activation before the steering profile begins (Fig. 5.10:
/// first steering request at 5.051 s).
const STEER_START_TICKS: u64 = 50;
/// Length of each half of the lane-change steering profile, ticks.
const STEER_HALF_TICKS: u64 = 1500;

/// The LCA feature subsystem.
#[derive(Debug)]
pub struct LaneChangeAssist {
    #[allow(dead_code)]
    params: VehicleParams,
    defects: DefectSet,
    sigs: VehicleSigs,
    out: FeatureOutputs,
    engaged: bool,
    ticks_since_engage: u64,
}

impl LaneChangeAssist {
    /// Creates the LCA subsystem.
    pub fn new(params: VehicleParams, defects: DefectSet, sigs: VehicleSigs) -> Self {
        LaneChangeAssist {
            params,
            defects,
            sigs,
            out: FeatureOutputs::new(sigs.features[crate::signals::LCA]),
            engaged: false,
            ticks_since_engage: 0,
        }
    }

    fn steering_profile(&self, ticks: u64) -> f64 {
        if ticks < STEER_START_TICKS {
            return 0.0;
        }
        let t = ticks - STEER_START_TICKS;
        if t < STEER_HALF_TICKS {
            0.04
        } else if t < 2 * STEER_HALF_TICKS {
            -0.04
        } else {
            0.0
        }
    }
}

impl LaneSubsystem for LaneChangeAssist {
    fn name(&self) -> &str {
        "LCA"
    }

    fn step_lane<R: SignalRead, W: SignalWrite>(&mut self, t: &SimTime, prev: &R, next: &mut W) {
        let s = &self.sigs;
        let enabled = prev.bool_or(self.out.sigs().hmi_enable, false);
        let engage_req = prev.bool_or(self.out.sigs().hmi_engage, false);
        let acc_engaged_signal = prev.bool_or(s.features[crate::signals::ACC].hmi_engage, false);

        // LCA requires ACC to be engaged (it borrows ACC's longitudinal
        // control). The reverse-motion inhibit is the healthy behaviour
        // scenario 6 shows missing.
        let speed = prev.real_or(s.host_speed, 0.0);
        let reverse_ok = self.defects.no_reverse_inhibit || speed >= 0.0;

        if enabled && engage_req && acc_engaged_signal && reverse_ok {
            if !self.engaged {
                self.engaged = true;
                self.ticks_since_engage = 0;
            }
        } else {
            self.engaged = false;
        }

        let mut active = false;
        let mut accel = 0.0;
        let mut steer = 0.0;
        if self.engaged {
            self.ticks_since_engage += 1;
            active = self.ticks_since_engage >= ACTIVATION_DELAY_TICKS;
            // Shared longitudinal channel: mirror ACC's request.
            accel = prev.real_or(s.features[crate::signals::ACC].accel_request, 0.0);
            steer = self.steering_profile(self.ticks_since_engage);
        }

        self.out
            .publish(next, enabled, active, accel, steer, true, t.dt_seconds());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signals::{self as sig, vehicle_table};
    use esafe_logic::{Frame, SignalTable, Value};
    use esafe_sim::Subsystem;
    use std::sync::Arc;

    fn world(table: &Arc<SignalTable>, sigs: &VehicleSigs, acc_request: f64) -> Frame {
        let mut f = table.frame();
        f.set(sigs.features[sig::LCA].hmi_enable, true);
        f.set(sigs.features[sig::LCA].hmi_engage, true);
        f.set(sigs.features[sig::ACC].hmi_engage, true);
        f.set(sigs.host_speed, 10.0);
        f.set(sigs.features[sig::ACC].accel_request, acc_request);
        f
    }

    fn run(lca: &mut LaneChangeAssist, prev: &Frame, n: u64) -> Frame {
        let mut s = prev.clone();
        let t = SimTime {
            tick: 1,
            dt_millis: 1,
        };
        for _ in 0..n {
            let snapshot = s.clone();
            lca.step(&t, &snapshot, &mut s);
        }
        s
    }

    #[test]
    fn activates_one_tick_after_engage() {
        let (table, sigs) = vehicle_table();
        let lca_sigs = sigs.features[sig::LCA];
        let mut lca = LaneChangeAssist::new(VehicleParams::default(), DefectSet::none(), sigs);
        let s = run(&mut lca, &world(&table, &sigs, 0.5), 2);
        assert!(s.bool_or(lca_sigs.active, false));
        assert!(s.bool_or(lca_sigs.requests_steering, false));
    }

    #[test]
    fn mirrors_acc_longitudinal_request() {
        let (table, sigs) = vehicle_table();
        let lca_sigs = sigs.features[sig::LCA];
        let mut lca = LaneChangeAssist::new(VehicleParams::default(), DefectSet::none(), sigs);
        let s = run(&mut lca, &world(&table, &sigs, 0.7), 5);
        assert_eq!(s.real_or(lca_sigs.accel_request, 0.0), 0.7);
    }

    #[test]
    fn steering_profile_starts_at_50_ms() {
        let (table, sigs) = vehicle_table();
        let lca_sigs = sigs.features[sig::LCA];
        let mut lca = LaneChangeAssist::new(VehicleParams::default(), DefectSet::none(), sigs);
        let s = run(&mut lca, &world(&table, &sigs, 0.0), 45);
        assert_eq!(s.real_or(lca_sigs.steering_request, 1.0), 0.0);
        let s = run(&mut lca, &world(&table, &sigs, 0.0), 10);
        assert!(s.real_or(lca_sigs.steering_request, 0.0) > 0.0);
    }

    #[test]
    fn requires_acc_engaged() {
        let (table, sigs) = vehicle_table();
        let lca_sigs = sigs.features[sig::LCA];
        let mut lca = LaneChangeAssist::new(VehicleParams::default(), DefectSet::none(), sigs);
        let mut w = world(&table, &sigs, 0.0);
        w.set(sigs.features[sig::ACC].hmi_engage, false);
        let s = run(&mut lca, &w, 10);
        assert!(!s.bool_or(lca_sigs.active, false));
    }

    #[test]
    fn healthy_lca_disengages_in_reverse_motion() {
        let (table, sigs) = vehicle_table();
        let lca_sigs = sigs.features[sig::LCA];
        let mut lca = LaneChangeAssist::new(VehicleParams::default(), DefectSet::none(), sigs);
        let mut w = world(&table, &sigs, 0.0);
        w.set(sigs.host_speed, Value::Real(-0.5));
        let s = run(&mut lca, &w, 10);
        assert!(!s.bool_or(lca_sigs.active, false));

        let defects = DefectSet {
            no_reverse_inhibit: true,
            ..DefectSet::none()
        };
        let mut lca2 = LaneChangeAssist::new(VehicleParams::default(), defects, sigs);
        let s = run(&mut lca2, &w, 10);
        assert!(
            s.bool_or(lca_sigs.active, false),
            "defect keeps LCA active in reverse"
        );
    }
}
