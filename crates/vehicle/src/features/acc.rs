//! Adaptive Cruise Control (ACC): tracks a driver-set speed, or a safe
//! following speed behind a slower lead vehicle (thesis §5.2.1).

use super::FeatureOutputs;
use crate::config::{DefectSet, VehicleParams};
use crate::signals::VehicleSigs;
use esafe_logic::{SignalRead, SignalWrite};
use esafe_sim::{LaneSubsystem, SimTime};

/// Ticks after an engage before a healthy ACC starts requesting control.
const ACTIVATION_DELAY_TICKS: u64 = 50;
/// The defective post-throttle-release handoff delay (thesis Fig. 5.9:
/// control gained 0.101 s after the pedal is released).
const DEFECT_HANDOFF_TICKS: u64 = 101;
/// How long the defective ACC clings to control under an applied throttle
/// before losing it (thesis Fig. 5.8).
const DEFECT_GLITCH_TICKS: u64 = 50;

/// The ACC feature subsystem, carrying four of the thesis's defects (see
/// [`DefectSet`]).
#[derive(Debug)]
pub struct AdaptiveCruiseControl {
    params: VehicleParams,
    defects: DefectSet,
    sigs: VehicleSigs,
    out: FeatureOutputs,
    engaged: bool,
    engage_refused: bool,
    go_authorized: bool,
    was_active: bool,
    limiter: esafe_sim::RateLimiter,
    ticks_since_engage: u64,
    ticks_since_throttle_release: u64,
}

impl AdaptiveCruiseControl {
    /// Creates the ACC subsystem.
    pub fn new(params: VehicleParams, defects: DefectSet, sigs: VehicleSigs) -> Self {
        AdaptiveCruiseControl {
            params,
            defects,
            sigs,
            out: FeatureOutputs::new(sigs.features[crate::signals::ACC]),
            engaged: false,
            engage_refused: false,
            go_authorized: false,
            was_active: false,
            limiter: esafe_sim::RateLimiter::new(params.jerk_limit * 0.9, 0.0),
            ticks_since_engage: u64::MAX,
            ticks_since_throttle_release: u64::MAX,
        }
    }

    /// Whether any of the ACC-related defect switches is active (the
    /// thesis implementation stepped its request stream; a healthy ACC
    /// ramps it inside the jerk bound and blends in at takeover).
    fn defective(&self) -> bool {
        self.defects.acc_requests_while_disengaged
            || self.defects.acc_throttle_handoff_glitch
            || self.defects.acc_engage_handoff_delay
            || self.defects.acc_ghost_accel_from_stop
            || self.defects.acc_engages_in_reverse
    }

    /// Speed-tracking control law: proportional control toward the target,
    /// reduced toward the lead vehicle's speed inside the desired headway.
    fn control(&self, speed: f64, set_speed: f64, gap: f64, lead_speed: f64) -> f64 {
        let desired_gap = 2.0 * speed.abs().max(2.0); // ~2 s headway, min 4 m
        let target = if gap < desired_gap * 2.0 {
            let follow = lead_speed + 0.3 * (gap - desired_gap);
            follow.min(set_speed)
        } else {
            set_speed
        };
        (self.params.acc_gain * (target - speed))
            .clamp(self.params.acc_min_accel, self.params.acc_max_accel)
    }
}

impl LaneSubsystem for AdaptiveCruiseControl {
    fn name(&self) -> &str {
        "ACC"
    }

    fn step_lane<R: SignalRead, W: SignalWrite>(&mut self, t: &SimTime, prev: &R, next: &mut W) {
        let s = &self.sigs;
        let enabled = prev.bool_or(self.out.sigs().hmi_enable, false);
        let engage_req = prev.bool_or(self.out.sigs().hmi_engage, false);
        let set_speed = prev.real_or(s.acc_set_speed, 0.0);
        let speed = prev.real_or(s.host_speed, 0.0);
        let gap = prev.real_or(s.lead_distance, 1e9);
        let lead_speed = prev.real_or(s.lead_speed, 0.0);
        let in_reverse_gear = prev.get(s.gear) == Some(s.sym_r);
        let throttle = prev.real_or(s.driver_throttle, 0.0) > 0.05;
        let stopped = speed.abs() <= self.params.stopped_eps;

        // Engagement state machine. A refused engage latches until the
        // driver releases the engage request: the thesis's scenario 10
        // shows ACC *never* becoming active after the failed attempt.
        if !enabled || !engage_req {
            self.engaged = false;
            self.engage_refused = false;
            self.go_authorized = false;
            self.ticks_since_engage = u64::MAX;
        } else if !self.engaged && !self.engage_refused {
            let reverse_block = in_reverse_gear && !self.defects.acc_engages_in_reverse;
            let ghost_block = stopped && self.defects.acc_ghost_accel_from_stop;
            if ghost_block {
                self.engage_refused = true;
            } else if !reverse_block {
                self.engaged = true;
                // Engaging at speed is implicitly authorized; from a
                // standstill the driver must confirm (goal 4).
                self.go_authorized = !stopped;
                self.ticks_since_engage = 0;
            }
        }
        if self.engaged && (prev.bool_or(s.hmi_go, false) || throttle || !stopped) {
            self.go_authorized = true;
        }
        if self.engaged && self.ticks_since_engage < u64::MAX {
            self.ticks_since_engage = self.ticks_since_engage.saturating_add(1);
        }
        if throttle {
            self.ticks_since_throttle_release = 0;
        } else {
            self.ticks_since_throttle_release = self.ticks_since_throttle_release.saturating_add(1);
        }

        let mut active = false;
        let mut request = 0.0;

        if self.engaged {
            request = self.control(speed, set_speed, gap, lead_speed);
            if !self.go_authorized {
                // Hold at rest until the driver re-authorizes motion.
                request = request.min(0.0);
            }
            active = self.ticks_since_engage >= ACTIVATION_DELAY_TICKS;
            if throttle {
                active = if self.defects.acc_throttle_handoff_glitch {
                    // Clings to control briefly after engage, then loses it
                    // until the pedal is released (Fig. 5.8).
                    self.ticks_since_engage <= DEFECT_GLITCH_TICKS
                } else {
                    false // correct: the driver's pedal overrides
                };
            } else if self.defects.acc_engage_handoff_delay
                && self.ticks_since_throttle_release < DEFECT_HANDOFF_TICKS
            {
                active = false; // 101 ms handoff lag (Fig. 5.9)
            }
        } else if enabled && engage_req && self.engage_refused && stopped {
            // Refused the engagement, yet leaks a creep request into the
            // arbitration default path (Fig. 5.15). Checked before the
            // disengaged-request defect: a refused engage is the more
            // specific state.
            request = 0.8;
        } else if enabled && self.defects.acc_requests_while_disengaged {
            // Controls toward a phantom 0 m/s set speed while merely
            // enabled (Fig. 5.6).
            request = (self.params.acc_gain * (0.0 - speed))
                .clamp(self.params.acc_min_accel, self.params.acc_max_accel);
        }

        if self.defective() {
            self.limiter.value = request;
        } else {
            if active && !self.was_active {
                // Smooth takeover: start the ramp from the vehicle's
                // current acceleration.
                self.limiter.value = prev.real_or(s.host_accel, 0.0);
            }
            request = self.limiter.step(request, t.dt_seconds());
        }
        self.was_active = active;

        self.out
            .publish(next, enabled, active, request, 0.0, false, t.dt_seconds());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signals::{self as sig, vehicle_table};
    use esafe_logic::{Frame, SignalTable, Value};
    use esafe_sim::Subsystem;
    use std::sync::Arc;

    fn world(table: &Arc<SignalTable>, sigs: &VehicleSigs, speed: f64, set: f64) -> Frame {
        let mut f = table.frame();
        f.set(sigs.features[sig::ACC].hmi_enable, true);
        f.set(sigs.features[sig::ACC].hmi_engage, true);
        f.set(sigs.acc_set_speed, set);
        f.set(sigs.host_speed, speed);
        f.set(sigs.lead_distance, 1e9);
        f.set(sigs.lead_speed, 0.0);
        f.set(sigs.driver_throttle, 0.0);
        f.set(sigs.gear, sigs.sym_d);
        f
    }

    fn tick(acc: &mut AdaptiveCruiseControl, prev: &Frame) -> Frame {
        let mut next = prev.clone();
        acc.step(
            &SimTime {
                tick: 1,
                dt_millis: 1,
            },
            prev,
            &mut next,
        );
        next
    }

    /// Runs n ticks keeping the world inputs of `prev` pinned.
    fn run(acc: &mut AdaptiveCruiseControl, prev: &Frame, n: u64) -> Frame {
        let mut s = prev.clone();
        for _ in 0..n {
            let mut out = tick(acc, &s);
            // keep the world inputs pinned: copy everything the ACC does
            // not publish back from the template.
            let acc_sigs = acc.out.sigs();
            let published = [
                acc_sigs.enabled,
                acc_sigs.active,
                acc_sigs.accel_request,
                acc_sigs.accel_request_rate,
                acc_sigs.requests_accel,
                acc_sigs.steering_request,
                acc_sigs.requests_steering,
            ];
            for (id, v) in prev.iter() {
                if !published.contains(&id) {
                    out.set(id, v);
                }
            }
            s = out;
        }
        s
    }

    #[test]
    fn engages_and_tracks_set_speed() {
        let (table, sigs) = vehicle_table();
        let acc_sigs = sigs.features[sig::ACC];
        let mut acc = AdaptiveCruiseControl::new(VehicleParams::default(), DefectSet::none(), sigs);
        let s = run(&mut acc, &world(&table, &sigs, 10.0, 15.0), 60);
        assert!(s.bool_or(acc_sigs.active, false));
        let req = s.real_or(acc_sigs.accel_request, 0.0);
        assert!(req > 0.0 && req <= 1.5, "req {req}");
    }

    #[test]
    fn follows_slower_lead_with_deceleration() {
        let (table, sigs) = vehicle_table();
        let acc_sigs = sigs.features[sig::ACC];
        let mut acc = AdaptiveCruiseControl::new(VehicleParams::default(), DefectSet::none(), sigs);
        let mut w = world(&table, &sigs, 15.0, 20.0);
        w.set(sigs.lead_distance, Value::Real(10.0));
        w.set(sigs.lead_speed, Value::Real(5.0));
        let s = run(&mut acc, &w, 60);
        assert!(s.real_or(acc_sigs.accel_request, 0.0) < 0.0);
    }

    #[test]
    fn healthy_acc_defers_to_throttle() {
        let (table, sigs) = vehicle_table();
        let acc_sigs = sigs.features[sig::ACC];
        let mut acc = AdaptiveCruiseControl::new(VehicleParams::default(), DefectSet::none(), sigs);
        let mut w = world(&table, &sigs, 10.0, 15.0);
        w.set(sigs.driver_throttle, Value::Real(0.5));
        let s = run(&mut acc, &w, 120);
        assert!(!s.bool_or(acc_sigs.active, false));
    }

    #[test]
    fn glitch_defect_clings_then_drops_under_throttle() {
        let (table, sigs) = vehicle_table();
        let acc_sigs = sigs.features[sig::ACC];
        let defects = DefectSet {
            acc_throttle_handoff_glitch: true,
            ..DefectSet::none()
        };
        let mut acc = AdaptiveCruiseControl::new(VehicleParams::default(), defects, sigs);
        let mut w = world(&table, &sigs, 10.0, 15.0);
        w.set(sigs.driver_throttle, Value::Real(0.5));
        let s = run(&mut acc, &w, 30);
        assert!(
            s.bool_or(acc_sigs.active, false),
            "clings for the first 50 ms"
        );
        let s = run(&mut acc, &w, 60);
        assert!(!s.bool_or(acc_sigs.active, false), "then loses control");
    }

    #[test]
    fn handoff_delay_defect_waits_101_ms() {
        let (table, sigs) = vehicle_table();
        let acc_sigs = sigs.features[sig::ACC];
        let defects = DefectSet {
            acc_engage_handoff_delay: true,
            ..DefectSet::none()
        };
        let mut acc = AdaptiveCruiseControl::new(VehicleParams::default(), defects, sigs);
        // Engage under throttle, then release.
        let mut w = world(&table, &sigs, 10.0, 15.0);
        w.set(sigs.driver_throttle, Value::Real(0.5));
        let _ = run(&mut acc, &w, 200);
        w.set(sigs.driver_throttle, Value::Real(0.0));
        let s = run(&mut acc, &w, 100);
        assert!(
            !s.bool_or(acc_sigs.active, false),
            "still waiting at 100 ms"
        );
        let s = run(&mut acc, &w, 2);
        assert!(
            s.bool_or(acc_sigs.active, false),
            "control gained at ~101 ms"
        );
    }

    #[test]
    fn reverse_engage_blocked_without_defect() {
        let (table, sigs) = vehicle_table();
        let acc_sigs = sigs.features[sig::ACC];
        let mut acc = AdaptiveCruiseControl::new(VehicleParams::default(), DefectSet::none(), sigs);
        let mut w = world(&table, &sigs, -2.0, 15.0);
        w.set(sigs.gear, sigs.sym_r);
        let s = run(&mut acc, &w, 100);
        assert!(!s.bool_or(acc_sigs.active, false));
        let defects = DefectSet {
            acc_engages_in_reverse: true,
            ..DefectSet::none()
        };
        let mut acc2 = AdaptiveCruiseControl::new(VehicleParams::default(), defects, sigs);
        let s = run(&mut acc2, &w, 100);
        assert!(
            s.bool_or(acc_sigs.active, false),
            "defect engages in reverse"
        );
    }

    #[test]
    fn disengaged_request_defect_controls_to_zero() {
        let (table, sigs) = vehicle_table();
        let acc_sigs = sigs.features[sig::ACC];
        let defects = DefectSet {
            acc_requests_while_disengaged: true,
            ..DefectSet::none()
        };
        let mut acc = AdaptiveCruiseControl::new(VehicleParams::default(), defects, sigs);
        let mut w = world(&table, &sigs, 10.0, 15.0);
        w.set(acc_sigs.hmi_engage, false);
        let s = run(&mut acc, &w, 10);
        assert!(!s.bool_or(acc_sigs.active, false));
        assert!(
            s.real_or(acc_sigs.accel_request, 0.0) < -1.0,
            "brakes toward 0 m/s"
        );
    }

    #[test]
    fn ghost_defect_leaks_request_from_stop() {
        let (table, sigs) = vehicle_table();
        let acc_sigs = sigs.features[sig::ACC];
        let defects = DefectSet {
            acc_ghost_accel_from_stop: true,
            ..DefectSet::none()
        };
        let mut acc = AdaptiveCruiseControl::new(VehicleParams::default(), defects, sigs);
        let s = run(&mut acc, &world(&table, &sigs, 0.0, 15.0), 100);
        assert!(!s.bool_or(acc_sigs.active, false), "never becomes active");
        assert_eq!(
            s.real_or(acc_sigs.accel_request, 0.0),
            0.8,
            "yet leaks a request"
        );
    }
}
