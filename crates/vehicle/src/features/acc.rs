//! Adaptive Cruise Control (ACC): tracks a driver-set speed, or a safe
//! following speed behind a slower lead vehicle (thesis §5.2.1).

use super::{boolean, real, symbol, FeatureOutputs};
use crate::config::{DefectSet, VehicleParams};
use crate::signals as sig;
use esafe_logic::State;
use esafe_sim::{SimTime, Subsystem};

/// Ticks after an engage before a healthy ACC starts requesting control.
const ACTIVATION_DELAY_TICKS: u64 = 50;
/// The defective post-throttle-release handoff delay (thesis Fig. 5.9:
/// control gained 0.101 s after the pedal is released).
const DEFECT_HANDOFF_TICKS: u64 = 101;
/// How long the defective ACC clings to control under an applied throttle
/// before losing it (thesis Fig. 5.8).
const DEFECT_GLITCH_TICKS: u64 = 50;

/// The ACC feature subsystem, carrying four of the thesis's defects (see
/// [`DefectSet`]).
#[derive(Debug)]
pub struct AdaptiveCruiseControl {
    params: VehicleParams,
    defects: DefectSet,
    out: FeatureOutputs,
    engaged: bool,
    engage_refused: bool,
    go_authorized: bool,
    was_active: bool,
    limiter: esafe_sim::RateLimiter,
    ticks_since_engage: u64,
    ticks_since_throttle_release: u64,
}

impl AdaptiveCruiseControl {
    /// Creates the ACC subsystem.
    pub fn new(params: VehicleParams, defects: DefectSet) -> Self {
        AdaptiveCruiseControl {
            params,
            defects,
            out: FeatureOutputs::new("ACC"),
            engaged: false,
            engage_refused: false,
            go_authorized: false,
            was_active: false,
            limiter: esafe_sim::RateLimiter::new(params.jerk_limit * 0.9, 0.0),
            ticks_since_engage: u64::MAX,
            ticks_since_throttle_release: u64::MAX,
        }
    }

    /// Whether any of the ACC-related defect switches is active (the
    /// thesis implementation stepped its request stream; a healthy ACC
    /// ramps it inside the jerk bound and blends in at takeover).
    fn defective(&self) -> bool {
        self.defects.acc_requests_while_disengaged
            || self.defects.acc_throttle_handoff_glitch
            || self.defects.acc_engage_handoff_delay
            || self.defects.acc_ghost_accel_from_stop
            || self.defects.acc_engages_in_reverse
    }

    /// Speed-tracking control law: proportional control toward the target,
    /// reduced toward the lead vehicle's speed inside the desired headway.
    fn control(&self, speed: f64, set_speed: f64, gap: f64, lead_speed: f64) -> f64 {
        let desired_gap = 2.0 * speed.abs().max(2.0); // ~2 s headway, min 4 m
        let target = if gap < desired_gap * 2.0 {
            let follow = lead_speed + 0.3 * (gap - desired_gap);
            follow.min(set_speed)
        } else {
            set_speed
        };
        (self.params.acc_gain * (target - speed))
            .clamp(self.params.acc_min_accel, self.params.acc_max_accel)
    }
}

impl Subsystem for AdaptiveCruiseControl {
    fn name(&self) -> &str {
        "ACC"
    }

    fn step(&mut self, t: &SimTime, prev: &State, next: &mut State) {
        let enabled = boolean(prev, &sig::hmi_enable("ACC"));
        let engage_req = boolean(prev, &sig::hmi_engage("ACC"));
        let set_speed = real(prev, sig::ACC_SET_SPEED, 0.0);
        let speed = real(prev, sig::HOST_SPEED, 0.0);
        let gap = real(prev, sig::LEAD_DISTANCE, 1e9);
        let lead_speed = real(prev, sig::LEAD_SPEED, 0.0);
        let gear = symbol(prev, sig::GEAR, "D");
        let throttle = real(prev, sig::DRIVER_THROTTLE, 0.0) > 0.05;
        let stopped = speed.abs() <= self.params.stopped_eps;

        // Engagement state machine. A refused engage latches until the
        // driver releases the engage request: the thesis's scenario 10
        // shows ACC *never* becoming active after the failed attempt.
        if !enabled || !engage_req {
            self.engaged = false;
            self.engage_refused = false;
            self.go_authorized = false;
            self.ticks_since_engage = u64::MAX;
        } else if !self.engaged && !self.engage_refused {
            let reverse_block = gear == "R" && !self.defects.acc_engages_in_reverse;
            let ghost_block = stopped && self.defects.acc_ghost_accel_from_stop;
            if ghost_block {
                self.engage_refused = true;
            } else if !reverse_block {
                self.engaged = true;
                // Engaging at speed is implicitly authorized; from a
                // standstill the driver must confirm (goal 4).
                self.go_authorized = !stopped;
                self.ticks_since_engage = 0;
            }
        }
        if self.engaged && (boolean(prev, sig::HMI_GO) || throttle || !stopped) {
            self.go_authorized = true;
        }
        if self.engaged && self.ticks_since_engage < u64::MAX {
            self.ticks_since_engage = self.ticks_since_engage.saturating_add(1);
        }
        if throttle {
            self.ticks_since_throttle_release = 0;
        } else {
            self.ticks_since_throttle_release = self.ticks_since_throttle_release.saturating_add(1);
        }

        let mut active = false;
        let mut request = 0.0;

        if self.engaged {
            request = self.control(speed, set_speed, gap, lead_speed);
            if !self.go_authorized {
                // Hold at rest until the driver re-authorizes motion.
                request = request.min(0.0);
            }
            active = self.ticks_since_engage >= ACTIVATION_DELAY_TICKS;
            if throttle {
                active = if self.defects.acc_throttle_handoff_glitch {
                    // Clings to control briefly after engage, then loses it
                    // until the pedal is released (Fig. 5.8).
                    self.ticks_since_engage <= DEFECT_GLITCH_TICKS
                } else {
                    false // correct: the driver's pedal overrides
                };
            } else if self.defects.acc_engage_handoff_delay
                && self.ticks_since_throttle_release < DEFECT_HANDOFF_TICKS
            {
                active = false; // 101 ms handoff lag (Fig. 5.9)
            }
        } else if enabled && engage_req && self.engage_refused && stopped {
            // Refused the engagement, yet leaks a creep request into the
            // arbitration default path (Fig. 5.15). Checked before the
            // disengaged-request defect: a refused engage is the more
            // specific state.
            request = 0.8;
        } else if enabled && self.defects.acc_requests_while_disengaged {
            // Controls toward a phantom 0 m/s set speed while merely
            // enabled (Fig. 5.6).
            request = (self.params.acc_gain * (0.0 - speed))
                .clamp(self.params.acc_min_accel, self.params.acc_max_accel);
        }

        if self.defective() {
            self.limiter.value = request;
        } else {
            if active && !self.was_active {
                // Smooth takeover: start the ramp from the vehicle's
                // current acceleration.
                self.limiter.value = real(prev, sig::HOST_ACCEL, 0.0);
            }
            request = self.limiter.step(request, t.dt_seconds());
        }
        self.was_active = active;

        self.out
            .publish(next, enabled, active, request, 0.0, false, t.dt_seconds());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world(speed: f64, set: f64) -> State {
        State::new()
            .with_bool("hmi.acc.enable", true)
            .with_bool("hmi.acc.engage", true)
            .with_real(sig::ACC_SET_SPEED, set)
            .with_real(sig::HOST_SPEED, speed)
            .with_real(sig::LEAD_DISTANCE, 1e9)
            .with_real(sig::LEAD_SPEED, 0.0)
            .with_real(sig::DRIVER_THROTTLE, 0.0)
            .with_sym(sig::GEAR, "D")
    }

    fn tick(acc: &mut AdaptiveCruiseControl, prev: &State) -> State {
        let mut next = prev.clone();
        acc.step(
            &SimTime {
                tick: 1,
                dt_millis: 1,
            },
            prev,
            &mut next,
        );
        next
    }

    fn run(acc: &mut AdaptiveCruiseControl, prev: &State, n: u64) -> State {
        let mut s = prev.clone();
        for _ in 0..n {
            s = tick(acc, &s);
            // keep the world inputs pinned
            for (k, v) in prev.iter() {
                if k.starts_with("hmi")
                    || k.starts_with("host")
                    || k.starts_with("world")
                    || k.starts_with("driver")
                {
                    s.set(k, v.clone());
                }
            }
        }
        s
    }

    #[test]
    fn engages_and_tracks_set_speed() {
        let mut acc = AdaptiveCruiseControl::new(VehicleParams::default(), DefectSet::none());
        let s = run(&mut acc, &world(10.0, 15.0), 60);
        assert!(boolean(&s, "acc.active"));
        let req = real(&s, "acc.accel_request", 0.0);
        assert!(req > 0.0 && req <= 1.5, "req {req}");
    }

    #[test]
    fn follows_slower_lead_with_deceleration() {
        let mut acc = AdaptiveCruiseControl::new(VehicleParams::default(), DefectSet::none());
        let mut w = world(15.0, 20.0);
        w.set(sig::LEAD_DISTANCE, 10.0);
        w.set(sig::LEAD_SPEED, 5.0);
        let s = run(&mut acc, &w, 60);
        assert!(real(&s, "acc.accel_request", 0.0) < 0.0);
    }

    #[test]
    fn healthy_acc_defers_to_throttle() {
        let mut acc = AdaptiveCruiseControl::new(VehicleParams::default(), DefectSet::none());
        let mut w = world(10.0, 15.0);
        w.set(sig::DRIVER_THROTTLE, 0.5);
        let s = run(&mut acc, &w, 120);
        assert!(!boolean(&s, "acc.active"));
    }

    #[test]
    fn glitch_defect_clings_then_drops_under_throttle() {
        let defects = DefectSet {
            acc_throttle_handoff_glitch: true,
            ..DefectSet::none()
        };
        let mut acc = AdaptiveCruiseControl::new(VehicleParams::default(), defects);
        let mut w = world(10.0, 15.0);
        w.set(sig::DRIVER_THROTTLE, 0.5);
        let s = run(&mut acc, &w, 30);
        assert!(boolean(&s, "acc.active"), "clings for the first 50 ms");
        let s = run(&mut acc, &w, 60);
        assert!(!boolean(&s, "acc.active"), "then loses control");
    }

    #[test]
    fn handoff_delay_defect_waits_101_ms() {
        let defects = DefectSet {
            acc_engage_handoff_delay: true,
            ..DefectSet::none()
        };
        let mut acc = AdaptiveCruiseControl::new(VehicleParams::default(), defects);
        // Engage under throttle, then release.
        let mut w = world(10.0, 15.0);
        w.set(sig::DRIVER_THROTTLE, 0.5);
        let _ = run(&mut acc, &w, 200);
        w.set(sig::DRIVER_THROTTLE, 0.0);
        let s = run(&mut acc, &w, 100);
        assert!(!boolean(&s, "acc.active"), "still waiting at 100 ms");
        let s = run(&mut acc, &w, 2);
        assert!(boolean(&s, "acc.active"), "control gained at ~101 ms");
    }

    #[test]
    fn reverse_engage_blocked_without_defect() {
        let mut acc = AdaptiveCruiseControl::new(VehicleParams::default(), DefectSet::none());
        let mut w = world(-2.0, 15.0);
        w.set(sig::GEAR, esafe_logic::Value::sym("R"));
        let s = run(&mut acc, &w, 100);
        assert!(!boolean(&s, "acc.active"));
        let defects = DefectSet {
            acc_engages_in_reverse: true,
            ..DefectSet::none()
        };
        let mut acc2 = AdaptiveCruiseControl::new(VehicleParams::default(), defects);
        let s = run(&mut acc2, &w, 100);
        assert!(boolean(&s, "acc.active"), "defect engages in reverse");
    }

    #[test]
    fn disengaged_request_defect_controls_to_zero() {
        let defects = DefectSet {
            acc_requests_while_disengaged: true,
            ..DefectSet::none()
        };
        let mut acc = AdaptiveCruiseControl::new(VehicleParams::default(), defects);
        let mut w = world(10.0, 15.0);
        w.set(sig::hmi_engage("ACC"), esafe_logic::Value::Bool(false));
        let s = run(&mut acc, &w, 10);
        assert!(!boolean(&s, "acc.active"));
        assert!(
            real(&s, "acc.accel_request", 0.0) < -1.0,
            "brakes toward 0 m/s"
        );
    }

    #[test]
    fn ghost_defect_leaks_request_from_stop() {
        let defects = DefectSet {
            acc_ghost_accel_from_stop: true,
            ..DefectSet::none()
        };
        let mut acc = AdaptiveCruiseControl::new(VehicleParams::default(), defects);
        let s = run(&mut acc, &world(0.0, 15.0), 100);
        assert!(!boolean(&s, "acc.active"), "never becomes active");
        assert_eq!(
            real(&s, "acc.accel_request", 0.0),
            0.8,
            "yet leaks a request"
        );
    }
}
