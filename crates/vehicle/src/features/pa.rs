//! Park Assist (PA): finds a space and parks the vehicle on driver request
//! (thesis §5.2.1). Carries the scenario-1 defect of emitting acceleration
//! requests while disabled (Fig. 5.3).

use super::FeatureOutputs;
use crate::config::{DefectSet, VehicleParams};
use crate::signals::VehicleSigs;
use esafe_logic::{SignalRead, SignalWrite};
use esafe_sim::{LaneSubsystem, SimTime};

/// The creep acceleration PA uses while maneuvering, m/s².
const PA_CREEP_ACCEL: f64 = 0.5;

/// The PA feature subsystem.
#[derive(Debug)]
pub struct ParkAssist {
    params: VehicleParams,
    defects: DefectSet,
    sigs: VehicleSigs,
    out: FeatureOutputs,
    engaged: bool,
    authorized: bool,
    limiter: esafe_sim::RateLimiter,
}

impl ParkAssist {
    /// Creates the PA subsystem.
    pub fn new(params: VehicleParams, defects: DefectSet, sigs: VehicleSigs) -> Self {
        ParkAssist {
            params,
            defects,
            sigs,
            out: FeatureOutputs::new(sigs.features[crate::signals::PA]),
            engaged: false,
            authorized: false,
            // A healthy request stream stays inside the jerk bound.
            limiter: esafe_sim::RateLimiter::new(params.jerk_limit * 0.9, 0.0),
        }
    }

    /// The thesis's Fig. 5.3 rogue request profile, reconstructed from the
    /// text: +2 m/s² from the start until 2.186 s, 0 until 9.33 s,
    /// −2 m/s² until 9.624 s, then 0.
    fn rogue_request(time_s: f64) -> f64 {
        if time_s < 2.186 {
            2.0
        } else if (9.33..9.624).contains(&time_s) {
            -2.0
        } else {
            0.0
        }
    }
}

impl LaneSubsystem for ParkAssist {
    fn name(&self) -> &str {
        "PA"
    }

    fn step_lane<R: SignalRead, W: SignalWrite>(&mut self, t: &SimTime, prev: &R, next: &mut W) {
        let s = &self.sigs;
        let enabled = prev.bool_or(self.out.sigs().hmi_enable, false);
        let engage_req = prev.bool_or(self.out.sigs().hmi_engage, false);
        let speed = prev.real_or(s.host_speed, 0.0);
        let pedal =
            prev.real_or(s.driver_throttle, 0.0) > 0.05 || prev.real_or(s.driver_brake, 0.0) > 0.05;

        self.engaged = enabled && engage_req;
        if !self.engaged {
            self.authorized = false;
        } else if prev.bool_or(s.hmi_go, false) {
            // A healthy PA moves from a stop only after an explicit HMI
            // go (goal 4). The thesis implementation skipped the
            // authorization — the same missing logic that let PA request
            // while disabled.
            self.authorized = true;
        }

        let mut active = false;
        #[allow(unused_assignments)]
        let mut accel = 0.0;
        let mut steer = 0.0;
        if self.engaged {
            // A healthy PA yields control while the driver works the
            // pedals (goal 5's feature subgoal); the thesis vehicle's
            // incomplete driver-override path kept features active
            // (Fig. 5.8), shared with the ACC/arbiter defect switch.
            active = !pedal || self.defects.acc_throttle_handoff_glitch;
            let may_creep = self.authorized || self.defects.pa_requests_while_disabled;
            // Parking maneuver: creep when (near) stopped, hold otherwise.
            if speed.abs() <= self.params.stopped_eps * 50.0 {
                accel = if may_creep { PA_CREEP_ACCEL } else { 0.0 };
                steer = if may_creep { 0.1 } else { 0.0 };
            } else if speed.abs() > 2.0 {
                // Too fast to park: request nothing (the scenario-2 state
                // where an engaged PA's request of 0 m/s² displaces CA's
                // braking through the arbitration defect).
                accel = 0.0;
            } else {
                accel = -0.5; // slow to creep speed
            }
            // Healthy request streams ramp inside the jerk bound; the
            // defective implementation steps its requests.
            if !self.defects.pa_requests_while_disabled {
                accel = self.limiter.step(accel, t.dt_seconds());
            } else {
                self.limiter.value = accel;
            }
        } else if self.defects.pa_requests_while_disabled {
            accel = Self::rogue_request(t.seconds());
            self.limiter.value = accel;
        } else {
            accel = self.limiter.step(0.0, t.dt_seconds());
        }

        self.out
            .publish(next, enabled, active, accel, steer, true, t.dt_seconds());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signals::{self as sig, vehicle_table};
    use esafe_logic::Frame;
    use esafe_sim::Subsystem;

    fn tick_at(pa: &mut ParkAssist, prev: &Frame, tick: u64) -> Frame {
        let mut next = prev.clone();
        pa.step(&SimTime { tick, dt_millis: 1 }, prev, &mut next);
        next
    }

    #[test]
    fn healthy_disabled_pa_is_silent() {
        let (table, sigs) = vehicle_table();
        let pa_sigs = sigs.features[sig::PA];
        let mut pa = ParkAssist::new(VehicleParams::default(), DefectSet::none(), sigs);
        let s = tick_at(&mut pa, &table.frame(), 100);
        assert!(!s.bool_or(pa_sigs.active, false));
        assert_eq!(s.real_or(pa_sigs.accel_request, 1.0), 0.0);
    }

    #[test]
    fn rogue_profile_matches_figure_5_3() {
        let (table, sigs) = vehicle_table();
        let pa_sigs = sigs.features[sig::PA];
        let defects = DefectSet {
            pa_requests_while_disabled: true,
            ..DefectSet::none()
        };
        let mut pa = ParkAssist::new(VehicleParams::default(), defects, sigs);
        let w = table.frame();
        // t = 1.0 s → +2; t = 5 s → 0; t = 9.5 s → −2; t = 10 s → 0.
        assert_eq!(
            tick_at(&mut pa, &w, 1000).real_or(pa_sigs.accel_request, 0.0),
            2.0
        );
        assert_eq!(
            tick_at(&mut pa, &w, 5000).real_or(pa_sigs.accel_request, 1.0),
            0.0
        );
        assert_eq!(
            tick_at(&mut pa, &w, 9500).real_or(pa_sigs.accel_request, 0.0),
            -2.0
        );
        assert_eq!(
            tick_at(&mut pa, &w, 10000).real_or(pa_sigs.accel_request, 1.0),
            0.0
        );
        // Never active while disabled.
        assert!(!tick_at(&mut pa, &w, 1000).bool_or(pa_sigs.active, false));
    }

    #[test]
    fn engaged_pa_creeps_from_stop_after_authorization() {
        let (table, sigs) = vehicle_table();
        let pa_sigs = sigs.features[sig::PA];
        let mut pa = ParkAssist::new(VehicleParams::default(), DefectSet::none(), sigs);
        let mut w = table.frame();
        w.set(pa_sigs.hmi_enable, true);
        w.set(pa_sigs.hmi_engage, true);
        w.set(sigs.host_speed, 0.0);
        // Without an HMI go, a healthy PA holds at rest (goal 4).
        let s = tick_at(&mut pa, &w, 10);
        assert!(s.bool_or(pa_sigs.active, false));
        assert_eq!(s.real_or(pa_sigs.accel_request, 1.0), 0.0);
        // After the go, it creeps — ramped inside the jerk bound.
        let mut authorized = w.clone();
        authorized.set(sigs.hmi_go, true);
        let mut s = tick_at(&mut pa, &authorized, 11);
        for tick in 12..500 {
            s = tick_at(&mut pa, &authorized, tick);
        }
        assert_eq!(s.real_or(pa_sigs.accel_request, 0.0), PA_CREEP_ACCEL);
        assert!(s.bool_or(pa_sigs.requests_steering, false));
    }

    #[test]
    fn engaged_pa_at_speed_requests_zero() {
        let (table, sigs) = vehicle_table();
        let pa_sigs = sigs.features[sig::PA];
        let mut pa = ParkAssist::new(VehicleParams::default(), DefectSet::none(), sigs);
        let mut w = table.frame();
        w.set(pa_sigs.hmi_enable, true);
        w.set(pa_sigs.hmi_engage, true);
        w.set(sigs.host_speed, 3.0);
        let s = tick_at(&mut pa, &w, 10);
        assert!(s.bool_or(pa_sigs.active, false));
        assert_eq!(s.real_or(pa_sigs.accel_request, 1.0), 0.0);
    }
}
