//! Park Assist (PA): finds a space and parks the vehicle on driver request
//! (thesis §5.2.1). Carries the scenario-1 defect of emitting acceleration
//! requests while disabled (Fig. 5.3).

use super::{boolean, real, FeatureOutputs};
use crate::config::{DefectSet, VehicleParams};
use crate::signals as sig;
use esafe_logic::State;
use esafe_sim::{SimTime, Subsystem};

/// The creep acceleration PA uses while maneuvering, m/s².
const PA_CREEP_ACCEL: f64 = 0.5;

/// The PA feature subsystem.
#[derive(Debug)]
pub struct ParkAssist {
    params: VehicleParams,
    defects: DefectSet,
    out: FeatureOutputs,
    engaged: bool,
    authorized: bool,
    limiter: esafe_sim::RateLimiter,
}

impl ParkAssist {
    /// Creates the PA subsystem.
    pub fn new(params: VehicleParams, defects: DefectSet) -> Self {
        ParkAssist {
            params,
            defects,
            out: FeatureOutputs::new("PA"),
            engaged: false,
            authorized: false,
            // A healthy request stream stays inside the jerk bound.
            limiter: esafe_sim::RateLimiter::new(params.jerk_limit * 0.9, 0.0),
        }
    }

    /// The thesis's Fig. 5.3 rogue request profile, reconstructed from the
    /// text: +2 m/s² from the start until 2.186 s, 0 until 9.33 s,
    /// −2 m/s² until 9.624 s, then 0.
    fn rogue_request(time_s: f64) -> f64 {
        if time_s < 2.186 {
            2.0
        } else if (9.33..9.624).contains(&time_s) {
            -2.0
        } else {
            0.0
        }
    }
}

impl Subsystem for ParkAssist {
    fn name(&self) -> &str {
        "PA"
    }

    fn step(&mut self, t: &SimTime, prev: &State, next: &mut State) {
        let enabled = boolean(prev, &sig::hmi_enable("PA"));
        let engage_req = boolean(prev, &sig::hmi_engage("PA"));
        let speed = real(prev, sig::HOST_SPEED, 0.0);
        let pedal = real(prev, sig::DRIVER_THROTTLE, 0.0) > 0.05
            || real(prev, sig::DRIVER_BRAKE, 0.0) > 0.05;

        self.engaged = enabled && engage_req;
        if !self.engaged {
            self.authorized = false;
        } else if boolean(prev, sig::HMI_GO) {
            // A healthy PA moves from a stop only after an explicit HMI
            // go (goal 4). The thesis implementation skipped the
            // authorization — the same missing logic that let PA request
            // while disabled.
            self.authorized = true;
        }

        let mut active = false;
        #[allow(unused_assignments)]
        let mut accel = 0.0;
        let mut steer = 0.0;
        if self.engaged {
            // A healthy PA yields control while the driver works the
            // pedals (goal 5's feature subgoal); the thesis vehicle's
            // incomplete driver-override path kept features active
            // (Fig. 5.8), shared with the ACC/arbiter defect switch.
            active = !pedal || self.defects.acc_throttle_handoff_glitch;
            let may_creep = self.authorized || self.defects.pa_requests_while_disabled;
            // Parking maneuver: creep when (near) stopped, hold otherwise.
            if speed.abs() <= self.params.stopped_eps * 50.0 {
                accel = if may_creep { PA_CREEP_ACCEL } else { 0.0 };
                steer = if may_creep { 0.1 } else { 0.0 };
            } else if speed.abs() > 2.0 {
                // Too fast to park: request nothing (the scenario-2 state
                // where an engaged PA's request of 0 m/s² displaces CA's
                // braking through the arbitration defect).
                accel = 0.0;
            } else {
                accel = -0.5; // slow to creep speed
            }
            // Healthy request streams ramp inside the jerk bound; the
            // defective implementation steps its requests.
            if !self.defects.pa_requests_while_disabled {
                accel = self.limiter.step(accel, t.dt_seconds());
            } else {
                self.limiter.value = accel;
            }
        } else if self.defects.pa_requests_while_disabled {
            accel = Self::rogue_request(t.seconds());
            self.limiter.value = accel;
        } else {
            accel = self.limiter.step(0.0, t.dt_seconds());
        }

        self.out
            .publish(next, enabled, active, accel, steer, true, t.dt_seconds());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick_at(pa: &mut ParkAssist, prev: &State, tick: u64) -> State {
        let mut next = prev.clone();
        pa.step(&SimTime { tick, dt_millis: 1 }, prev, &mut next);
        next
    }

    #[test]
    fn healthy_disabled_pa_is_silent() {
        let mut pa = ParkAssist::new(VehicleParams::default(), DefectSet::none());
        let s = tick_at(&mut pa, &State::new(), 100);
        assert!(!boolean(&s, "pa.active"));
        assert_eq!(real(&s, "pa.accel_request", 1.0), 0.0);
    }

    #[test]
    fn rogue_profile_matches_figure_5_3() {
        let defects = DefectSet {
            pa_requests_while_disabled: true,
            ..DefectSet::none()
        };
        let mut pa = ParkAssist::new(VehicleParams::default(), defects);
        let w = State::new();
        // t = 1.0 s → +2; t = 5 s → 0; t = 9.5 s → −2; t = 10 s → 0.
        assert_eq!(
            real(&tick_at(&mut pa, &w, 1000), "pa.accel_request", 0.0),
            2.0
        );
        assert_eq!(
            real(&tick_at(&mut pa, &w, 5000), "pa.accel_request", 1.0),
            0.0
        );
        assert_eq!(
            real(&tick_at(&mut pa, &w, 9500), "pa.accel_request", 0.0),
            -2.0
        );
        assert_eq!(
            real(&tick_at(&mut pa, &w, 10000), "pa.accel_request", 1.0),
            0.0
        );
        // Never active while disabled.
        assert!(!boolean(&tick_at(&mut pa, &w, 1000), "pa.active"));
    }

    #[test]
    fn engaged_pa_creeps_from_stop_after_authorization() {
        let mut pa = ParkAssist::new(VehicleParams::default(), DefectSet::none());
        let w = State::new()
            .with_bool("hmi.pa.enable", true)
            .with_bool("hmi.pa.engage", true)
            .with_real(sig::HOST_SPEED, 0.0);
        // Without an HMI go, a healthy PA holds at rest (goal 4).
        let s = tick_at(&mut pa, &w, 10);
        assert!(boolean(&s, "pa.active"));
        assert_eq!(real(&s, "pa.accel_request", 1.0), 0.0);
        // After the go, it creeps — ramped inside the jerk bound.
        let authorized = w.clone().with_bool(sig::HMI_GO, true);
        let mut s = tick_at(&mut pa, &authorized, 11);
        for tick in 12..500 {
            s = tick_at(&mut pa, &authorized, tick);
        }
        assert_eq!(real(&s, "pa.accel_request", 0.0), PA_CREEP_ACCEL);
        assert!(boolean(&s, "pa.requests_steering"));
    }

    #[test]
    fn engaged_pa_at_speed_requests_zero() {
        let mut pa = ParkAssist::new(VehicleParams::default(), DefectSet::none());
        let w = State::new()
            .with_bool("hmi.pa.enable", true)
            .with_bool("hmi.pa.engage", true)
            .with_real(sig::HOST_SPEED, 3.0);
        let s = tick_at(&mut pa, &w, 10);
        assert!(boolean(&s, "pa.active"));
        assert_eq!(real(&s, "pa.accel_request", 1.0), 0.0);
    }
}
