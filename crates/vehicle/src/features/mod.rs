//! The five semi-autonomous feature subsystems (thesis Figure 5.1):
//! Collision Avoidance, Rear Collision Avoidance, Adaptive Cruise Control,
//! Lane Change Assist, and Park Assist.

pub mod acc;
pub mod ca;
pub mod lca;
pub mod pa;
pub mod rca;

pub use acc::AdaptiveCruiseControl;
pub use ca::CollisionAvoidance;
pub use lca::LaneChangeAssist;
pub use pa::ParkAssist;
pub use rca::RearCollisionAvoidance;

use crate::signals::FeatureSigs;
use esafe_logic::SignalWrite;

/// Shared output plumbing for a feature: publishes the standard signal set
/// and tracks the request rate (the "jerk" of the request stream that
/// subgoal 2B monitors). Holds the feature's resolved [`FeatureSigs`], so
/// every per-tick write is a dense slot store.
#[derive(Debug, Clone)]
pub struct FeatureOutputs {
    sigs: FeatureSigs,
    last_request: f64,
}

impl FeatureOutputs {
    /// Creates the plumbing for a feature's resolved signal ids.
    pub fn new(sigs: FeatureSigs) -> Self {
        FeatureOutputs {
            sigs,
            last_request: 0.0,
        }
    }

    /// The feature's resolved ids.
    pub fn sigs(&self) -> &FeatureSigs {
        &self.sigs
    }

    /// The request value published at the previous tick.
    pub fn last_request(&self) -> f64 {
        self.last_request
    }

    /// Publishes the per-tick output set and updates the request rate.
    #[allow(clippy::too_many_arguments)]
    pub fn publish<W: SignalWrite>(
        &mut self,
        next: &mut W,
        enabled: bool,
        active: bool,
        accel_request: f64,
        steering_request: f64,
        wants_steering: bool,
        dt_s: f64,
    ) {
        let rate = (accel_request - self.last_request) / dt_s;
        self.last_request = accel_request;
        let s = &self.sigs;
        next.set(s.enabled, enabled);
        next.set(s.active, active);
        next.set(s.accel_request, accel_request);
        next.set(s.accel_request_rate, rate);
        next.set(s.requests_accel, active);
        next.set(s.steering_request, steering_request);
        next.set(s.requests_steering, active && wants_steering);
    }

    /// Seeds the blackboard with a feature's quiescent outputs.
    pub fn seed<W: SignalWrite>(frame: &mut W, sigs: &FeatureSigs) {
        frame.set(sigs.enabled, false);
        frame.set(sigs.active, false);
        frame.set(sigs.accel_request, 0.0);
        frame.set(sigs.accel_request_rate, 0.0);
        frame.set(sigs.requests_accel, false);
        frame.set(sigs.steering_request, 0.0);
        frame.set(sigs.requests_steering, false);
        frame.set(sigs.selected, false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signals::{self as sig, vehicle_table};

    #[test]
    fn publish_computes_request_rate() {
        let (table, sigs) = vehicle_table();
        let mut out = FeatureOutputs::new(sigs.features[sig::CA]);
        let mut f = table.frame();
        out.publish(&mut f, true, true, -8.0, 0.0, false, 0.001);
        assert_eq!(
            f.real_or(sigs.features[sig::CA].accel_request_rate, 0.0),
            -8000.0
        );
        out.publish(&mut f, true, true, -8.0, 0.0, false, 0.001);
        assert_eq!(
            f.real_or(sigs.features[sig::CA].accel_request_rate, 1.0),
            0.0
        );
    }

    #[test]
    fn requests_steering_needs_active_and_capability() {
        let (table, sigs) = vehicle_table();
        let pa = sigs.features[sig::PA];
        let mut out = FeatureOutputs::new(pa);
        let mut f = table.frame();
        out.publish(&mut f, true, false, 0.0, 0.1, true, 0.001);
        assert!(!f.bool_or(pa.requests_steering, true));
        out.publish(&mut f, true, true, 0.0, 0.1, true, 0.001);
        assert!(f.bool_or(pa.requests_steering, false));
    }

    #[test]
    fn seed_covers_signal_set() {
        let (table, sigs) = vehicle_table();
        let mut f = table.frame();
        FeatureOutputs::seed(&mut f, &sigs.features[sig::ACC]);
        assert_eq!(f.iter().count(), 8);
        assert_eq!(f.get_named("acc.selected"), Some(false.into()));
    }
}
