//! The five semi-autonomous feature subsystems (thesis Figure 5.1):
//! Collision Avoidance, Rear Collision Avoidance, Adaptive Cruise Control,
//! Lane Change Assist, and Park Assist.

pub mod acc;
pub mod ca;
pub mod lca;
pub mod pa;
pub mod rca;

pub use acc::AdaptiveCruiseControl;
pub use ca::CollisionAvoidance;
pub use lca::LaneChangeAssist;
pub use pa::ParkAssist;
pub use rca::RearCollisionAvoidance;

use crate::signals as sig;
use esafe_logic::{State, Value};

/// Shared output plumbing for a feature: publishes the standard signal set
/// and tracks the request rate (the "jerk" of the request stream that
/// subgoal 2B monitors).
#[derive(Debug, Clone)]
pub struct FeatureOutputs {
    name: &'static str,
    last_request: f64,
}

impl FeatureOutputs {
    /// Creates the plumbing for the named feature (`"CA"`, `"ACC"`, …).
    pub fn new(name: &'static str) -> Self {
        FeatureOutputs {
            name,
            last_request: 0.0,
        }
    }

    /// The feature's name.
    pub fn feature(&self) -> &'static str {
        self.name
    }

    /// The request value published at the previous tick.
    pub fn last_request(&self) -> f64 {
        self.last_request
    }

    /// Publishes the per-tick output set and updates the request rate.
    #[allow(clippy::too_many_arguments)]
    pub fn publish(
        &mut self,
        next: &mut State,
        enabled: bool,
        active: bool,
        accel_request: f64,
        steering_request: f64,
        wants_steering: bool,
        dt_s: f64,
    ) {
        let rate = (accel_request - self.last_request) / dt_s;
        self.last_request = accel_request;
        next.set(sig::enabled(self.name), enabled);
        next.set(sig::active(self.name), active);
        next.set(sig::accel_request(self.name), accel_request);
        next.set(sig::accel_request_rate(self.name), rate);
        next.set(sig::requests_accel(self.name), active);
        next.set(sig::steering_request(self.name), steering_request);
        next.set(sig::requests_steering(self.name), active && wants_steering);
    }

    /// Seeds the blackboard with a feature's quiescent outputs.
    pub fn initial_state(name: &str) -> State {
        let mut s = State::new();
        s.set(sig::enabled(name), Value::Bool(false));
        s.set(sig::active(name), Value::Bool(false));
        s.set(sig::accel_request(name), Value::Real(0.0));
        s.set(sig::accel_request_rate(name), Value::Real(0.0));
        s.set(sig::requests_accel(name), Value::Bool(false));
        s.set(sig::steering_request(name), Value::Real(0.0));
        s.set(sig::requests_steering(name), Value::Bool(false));
        s.set(sig::selected(name), Value::Bool(false));
        s
    }
}

pub(crate) fn real(state: &State, name: &str, default: f64) -> f64 {
    state.get(name).and_then(Value::as_real).unwrap_or(default)
}

pub(crate) fn boolean(state: &State, name: &str) -> bool {
    state.get(name).and_then(Value::as_bool).unwrap_or(false)
}

pub(crate) fn symbol<'a>(state: &'a State, name: &str, default: &'a str) -> &'a str {
    match state.get(name) {
        Some(Value::Sym(s)) => s.as_str(),
        _ => default,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_computes_request_rate() {
        let mut out = FeatureOutputs::new("CA");
        let mut s = State::new();
        out.publish(&mut s, true, true, -8.0, 0.0, false, 0.001);
        assert_eq!(real(&s, "ca.accel_request_rate", 0.0), -8000.0);
        out.publish(&mut s, true, true, -8.0, 0.0, false, 0.001);
        assert_eq!(real(&s, "ca.accel_request_rate", 1.0), 0.0);
    }

    #[test]
    fn requests_steering_needs_active_and_capability() {
        let mut out = FeatureOutputs::new("PA");
        let mut s = State::new();
        out.publish(&mut s, true, false, 0.0, 0.1, true, 0.001);
        assert!(!boolean(&s, "pa.requests_steering"));
        out.publish(&mut s, true, true, 0.0, 0.1, true, 0.001);
        assert!(boolean(&s, "pa.requests_steering"));
    }

    #[test]
    fn initial_state_covers_signal_set() {
        let s = FeatureOutputs::initial_state("ACC");
        assert_eq!(s.len(), 8);
        assert!(s.get("acc.selected").is_some());
    }
}
