//! The scripted driver and HMI (thesis §5.2.1: the driver enables,
//! engages, and overrides features through pedals, wheel, and HMI).

use crate::config::VehicleParams;
use crate::signals::{feature_index, VehicleSigs};
use esafe_logic::{SignalRead, SignalWrite, Value};
use esafe_sim::{LaneSubsystem, SimTime};
use serde::{Deserialize, Serialize};

/// One scripted driver/HMI action.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DriverAction {
    /// Set throttle pedal position (0..1).
    Throttle(f64),
    /// Set brake pedal position (0..1).
    Brake(f64),
    /// Start/stop actively steering.
    SteeringActive(bool),
    /// Set the steering-wheel input, rad.
    Steering(f64),
    /// Select a gear (`"D"` or `"R"`).
    Gear(String),
    /// Press the HMI "go" button (momentary, one tick).
    Go,
    /// Toggle a feature's HMI enable switch.
    Enable(String, bool),
    /// Toggle a feature's HMI engage request.
    Engage(String, bool),
    /// Set the ACC set speed, m/s.
    SetSpeed(f64),
}

/// The scripted driver: replays a schedule of [`DriverAction`]s and
/// publishes the pedal-demand acceleration. Feature names and gear texts
/// in the schedule are resolved to ids / interned symbols up front, so
/// replay is allocation-free.
#[derive(Debug, Clone)]
pub struct ScriptedDriver {
    params: VehicleParams,
    sigs: VehicleSigs,
    schedule: Vec<(f64, DriverAction)>,
    next_idx: usize,
    throttle: f64,
    brake: f64,
    steering_active: bool,
    steering: f64,
    /// Interned gear symbol (`'D'` / `'R'`).
    gear: Value,
    go_pending: bool,
}

impl ScriptedDriver {
    /// Creates a driver from a `(time_s, action)` schedule. Actions are
    /// applied in schedule order once simulation time passes their
    /// timestamp.
    pub fn new(
        params: VehicleParams,
        sigs: VehicleSigs,
        mut schedule: Vec<(f64, DriverAction)>,
    ) -> Self {
        schedule.sort_by(|a, b| a.0.total_cmp(&b.0));
        ScriptedDriver {
            params,
            sigs,
            schedule,
            next_idx: 0,
            throttle: 0.0,
            brake: 0.0,
            steering_active: false,
            steering: 0.0,
            gear: sigs.sym_d,
            go_pending: false,
        }
    }

    /// Seeds the blackboard with the driver's initial outputs.
    pub fn seed<W: SignalWrite>(frame: &mut W, sigs: &VehicleSigs) {
        frame.set(sigs.driver_throttle, 0.0);
        frame.set(sigs.driver_brake, 0.0);
        frame.set(sigs.driver_steering_active, false);
        frame.set(sigs.driver_steering, 0.0);
        frame.set(sigs.driver_accel_request, 0.0);
        frame.set(sigs.gear, sigs.sym_d);
        frame.set(sigs.hmi_go, false);
        frame.set(sigs.acc_set_speed, 0.0);
        for f in &sigs.features {
            frame.set(f.hmi_enable, false);
            frame.set(f.hmi_engage, false);
        }
    }

    fn pedal_accel(&self) -> f64 {
        let raw = self.throttle * self.params.max_throttle_accel
            - self.brake * self.params.max_brake_decel;
        if self.gear == self.sigs.sym_r {
            -raw
        } else {
            raw
        }
    }
}

impl LaneSubsystem for ScriptedDriver {
    fn name(&self) -> &str {
        "Driver"
    }

    fn step_lane<R: SignalRead, W: SignalWrite>(&mut self, t: &SimTime, _prev: &R, next: &mut W) {
        let s = self.sigs;
        let now = t.seconds();
        // Momentary signals reset each tick unless re-pressed.
        next.set(s.hmi_go, false);
        while self.next_idx < self.schedule.len() && self.schedule[self.next_idx].0 <= now {
            let (_, action) = &self.schedule[self.next_idx];
            match action {
                DriverAction::Throttle(v) => self.throttle = v.clamp(0.0, 1.0),
                DriverAction::Brake(v) => self.brake = v.clamp(0.0, 1.0),
                DriverAction::SteeringActive(b) => self.steering_active = *b,
                DriverAction::Steering(v) => self.steering = *v,
                DriverAction::Gear(g) => self.gear = Value::sym(g),
                DriverAction::Go => self.go_pending = true,
                DriverAction::Enable(f, b) => {
                    next.set(s.features[feature_index(f)].hmi_enable, *b);
                }
                DriverAction::Engage(f, b) => {
                    next.set(s.features[feature_index(f)].hmi_engage, *b);
                }
                DriverAction::SetSpeed(v) => next.set(s.acc_set_speed, *v),
            }
            self.next_idx += 1;
        }
        if self.go_pending {
            next.set(s.hmi_go, true);
            self.go_pending = false;
        }
        next.set(s.driver_throttle, self.throttle);
        next.set(s.driver_brake, self.brake);
        next.set(s.driver_steering_active, self.steering_active);
        next.set(s.driver_steering, self.steering);
        next.set(s.gear, self.gear);
        next.set(s.driver_accel_request, self.pedal_accel());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signals::{self as sig, vehicle_table};
    use esafe_logic::Frame;
    use esafe_sim::Simulator;

    fn run_driver(schedule: Vec<(f64, DriverAction)>, ticks: u64) -> (Frame, VehicleSigs) {
        let (table, sigs) = vehicle_table();
        let mut sim = Simulator::new(1, &table);
        sim.add(ScriptedDriver::new(
            VehicleParams::default(),
            sigs,
            schedule,
        ));
        sim.init_with(|f| ScriptedDriver::seed(f, &sigs));
        for _ in 0..ticks {
            sim.step();
        }
        (sim.state().clone(), sigs)
    }

    #[test]
    fn actions_apply_at_their_time() {
        let (s, sigs) = run_driver(vec![(0.05, DriverAction::Throttle(0.5))], 40);
        assert_eq!(s.real_or(sigs.driver_throttle, -1.0), 0.0);
        let (s, sigs) = run_driver(vec![(0.05, DriverAction::Throttle(0.5))], 60);
        assert_eq!(s.real_or(sigs.driver_throttle, -1.0), 0.5);
    }

    #[test]
    fn pedal_accel_combines_and_respects_gear() {
        let (s, sigs) = run_driver(
            vec![
                (0.0, DriverAction::Throttle(1.0)),
                (0.0, DriverAction::Brake(0.5)),
            ],
            5,
        );
        // 1.0·3.0 − 0.5·8.0 = −1.0
        assert_eq!(s.real_or(sigs.driver_accel_request, 0.0), -1.0);
        let (s, sigs) = run_driver(
            vec![
                (0.0, DriverAction::Gear("R".into())),
                (0.0, DriverAction::Throttle(1.0)),
            ],
            5,
        );
        assert_eq!(s.real_or(sigs.driver_accel_request, 0.0), -3.0);
        assert_eq!(s.get(sigs.gear), Some(sigs.sym_r));
    }

    #[test]
    fn go_is_momentary() {
        let (table, sigs) = vehicle_table();
        let mut sim = Simulator::new(1, &table);
        sim.add(ScriptedDriver::new(
            VehicleParams::default(),
            sigs,
            vec![(0.002, DriverAction::Go)],
        ));
        sim.init_with(|f| ScriptedDriver::seed(f, &sigs));
        sim.step(); // t = 1 ms: not yet
        assert_eq!(sim.state().get(sigs.hmi_go), Some(Value::Bool(false)));
        sim.step(); // t = 2 ms: pressed
        assert_eq!(sim.state().get(sigs.hmi_go), Some(Value::Bool(true)));
        sim.step(); // released
        assert_eq!(sim.state().get(sigs.hmi_go), Some(Value::Bool(false)));
    }

    #[test]
    fn enable_and_engage_write_hmi_signals() {
        let (s, sigs) = run_driver(
            vec![
                (0.0, DriverAction::Enable("ACC".into(), true)),
                (0.001, DriverAction::Engage("ACC".into(), true)),
                (0.001, DriverAction::SetSpeed(20.0)),
            ],
            5,
        );
        assert_eq!(
            s.get(sigs.features[sig::ACC].hmi_enable),
            Some(Value::Bool(true))
        );
        assert_eq!(
            s.get(sigs.features[sig::ACC].hmi_engage),
            Some(Value::Bool(true))
        );
        assert_eq!(s.real_or(sigs.acc_set_speed, 0.0), 20.0);
    }

    #[test]
    fn schedule_is_sorted_on_construction() {
        let (s, sigs) = run_driver(
            vec![
                (0.010, DriverAction::Throttle(0.9)),
                (0.005, DriverAction::Throttle(0.2)),
            ],
            20,
        );
        // Later action wins.
        assert_eq!(s.real_or(sigs.driver_throttle, 0.0), 0.9);
    }
}
