//! The scripted driver and HMI (thesis §5.2.1: the driver enables,
//! engages, and overrides features through pedals, wheel, and HMI).

use crate::config::VehicleParams;
use crate::signals as sig;
use esafe_logic::{State, Value};
use esafe_sim::{SimTime, Subsystem};
use serde::{Deserialize, Serialize};

/// One scripted driver/HMI action.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DriverAction {
    /// Set throttle pedal position (0..1).
    Throttle(f64),
    /// Set brake pedal position (0..1).
    Brake(f64),
    /// Start/stop actively steering.
    SteeringActive(bool),
    /// Set the steering-wheel input, rad.
    Steering(f64),
    /// Select a gear (`"D"` or `"R"`).
    Gear(String),
    /// Press the HMI "go" button (momentary, one tick).
    Go,
    /// Toggle a feature's HMI enable switch.
    Enable(String, bool),
    /// Toggle a feature's HMI engage request.
    Engage(String, bool),
    /// Set the ACC set speed, m/s.
    SetSpeed(f64),
}

/// The scripted driver: replays a schedule of [`DriverAction`]s and
/// publishes the pedal-demand acceleration.
#[derive(Debug, Clone)]
pub struct ScriptedDriver {
    params: VehicleParams,
    schedule: Vec<(f64, DriverAction)>,
    next_idx: usize,
    throttle: f64,
    brake: f64,
    steering_active: bool,
    steering: f64,
    gear: String,
    go_pending: bool,
}

impl ScriptedDriver {
    /// Creates a driver from a `(time_s, action)` schedule. Actions are
    /// applied in schedule order once simulation time passes their
    /// timestamp.
    pub fn new(params: VehicleParams, mut schedule: Vec<(f64, DriverAction)>) -> Self {
        schedule.sort_by(|a, b| a.0.total_cmp(&b.0));
        ScriptedDriver {
            params,
            schedule,
            next_idx: 0,
            throttle: 0.0,
            brake: 0.0,
            steering_active: false,
            steering: 0.0,
            gear: "D".to_owned(),
            go_pending: false,
        }
    }

    /// Seeds the blackboard with the driver's initial outputs.
    pub fn initial_state() -> State {
        let mut s = State::new()
            .with_real(sig::DRIVER_THROTTLE, 0.0)
            .with_real(sig::DRIVER_BRAKE, 0.0)
            .with_bool(sig::DRIVER_STEERING_ACTIVE, false)
            .with_real(sig::DRIVER_STEERING, 0.0)
            .with_real(sig::DRIVER_ACCEL_REQUEST, 0.0)
            .with_sym(sig::GEAR, "D")
            .with_bool(sig::HMI_GO, false)
            .with_real(sig::ACC_SET_SPEED, 0.0);
        for f in sig::FEATURES {
            s.set(sig::hmi_enable(f), Value::Bool(false));
            s.set(sig::hmi_engage(f), Value::Bool(false));
        }
        s
    }

    fn pedal_accel(&self) -> f64 {
        let raw = self.throttle * self.params.max_throttle_accel
            - self.brake * self.params.max_brake_decel;
        if self.gear == "R" {
            -raw
        } else {
            raw
        }
    }
}

impl Subsystem for ScriptedDriver {
    fn name(&self) -> &str {
        "Driver"
    }

    fn step(&mut self, t: &SimTime, _prev: &State, next: &mut State) {
        let now = t.seconds();
        // Momentary signals reset each tick unless re-pressed.
        next.set(sig::HMI_GO, false);
        while self.next_idx < self.schedule.len() && self.schedule[self.next_idx].0 <= now {
            let (_, action) = &self.schedule[self.next_idx];
            match action {
                DriverAction::Throttle(v) => self.throttle = v.clamp(0.0, 1.0),
                DriverAction::Brake(v) => self.brake = v.clamp(0.0, 1.0),
                DriverAction::SteeringActive(b) => self.steering_active = *b,
                DriverAction::Steering(v) => self.steering = *v,
                DriverAction::Gear(g) => self.gear = g.clone(),
                DriverAction::Go => self.go_pending = true,
                DriverAction::Enable(f, b) => next.set(sig::hmi_enable(f), Value::Bool(*b)),
                DriverAction::Engage(f, b) => next.set(sig::hmi_engage(f), Value::Bool(*b)),
                DriverAction::SetSpeed(v) => next.set(sig::ACC_SET_SPEED, *v),
            }
            self.next_idx += 1;
        }
        if self.go_pending {
            next.set(sig::HMI_GO, true);
            self.go_pending = false;
        }
        next.set(sig::DRIVER_THROTTLE, self.throttle);
        next.set(sig::DRIVER_BRAKE, self.brake);
        next.set(sig::DRIVER_STEERING_ACTIVE, self.steering_active);
        next.set(sig::DRIVER_STEERING, self.steering);
        next.set(sig::GEAR, Value::sym(self.gear.clone()));
        next.set(sig::DRIVER_ACCEL_REQUEST, self.pedal_accel());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esafe_sim::Simulator;

    fn run_driver(schedule: Vec<(f64, DriverAction)>, ticks: u64) -> State {
        let mut sim = Simulator::new(1);
        sim.add(ScriptedDriver::new(VehicleParams::default(), schedule));
        sim.init(ScriptedDriver::initial_state());
        for _ in 0..ticks {
            sim.step();
        }
        sim.state().clone()
    }

    #[test]
    fn actions_apply_at_their_time() {
        let s = run_driver(vec![(0.05, DriverAction::Throttle(0.5))], 40);
        assert_eq!(s.get(sig::DRIVER_THROTTLE).unwrap().as_real(), Some(0.0));
        let s = run_driver(vec![(0.05, DriverAction::Throttle(0.5))], 60);
        assert_eq!(s.get(sig::DRIVER_THROTTLE).unwrap().as_real(), Some(0.5));
    }

    #[test]
    fn pedal_accel_combines_and_respects_gear() {
        let s = run_driver(
            vec![
                (0.0, DriverAction::Throttle(1.0)),
                (0.0, DriverAction::Brake(0.5)),
            ],
            5,
        );
        // 1.0·3.0 − 0.5·8.0 = −1.0
        assert_eq!(
            s.get(sig::DRIVER_ACCEL_REQUEST).unwrap().as_real(),
            Some(-1.0)
        );
        let s = run_driver(
            vec![
                (0.0, DriverAction::Gear("R".into())),
                (0.0, DriverAction::Throttle(1.0)),
            ],
            5,
        );
        assert_eq!(
            s.get(sig::DRIVER_ACCEL_REQUEST).unwrap().as_real(),
            Some(-3.0)
        );
        assert_eq!(s.get(sig::GEAR), Some(&Value::sym("R")));
    }

    #[test]
    fn go_is_momentary() {
        let mut sim = Simulator::new(1);
        sim.add(ScriptedDriver::new(
            VehicleParams::default(),
            vec![(0.002, DriverAction::Go)],
        ));
        sim.init(ScriptedDriver::initial_state());
        sim.step(); // t = 1 ms: not yet
        assert_eq!(sim.state().get(sig::HMI_GO), Some(&Value::Bool(false)));
        sim.step(); // t = 2 ms: pressed
        assert_eq!(sim.state().get(sig::HMI_GO), Some(&Value::Bool(true)));
        sim.step(); // released
        assert_eq!(sim.state().get(sig::HMI_GO), Some(&Value::Bool(false)));
    }

    #[test]
    fn enable_and_engage_write_hmi_signals() {
        let s = run_driver(
            vec![
                (0.0, DriverAction::Enable("ACC".into(), true)),
                (0.001, DriverAction::Engage("ACC".into(), true)),
                (0.001, DriverAction::SetSpeed(20.0)),
            ],
            5,
        );
        assert_eq!(s.get("hmi.acc.enable"), Some(&Value::Bool(true)));
        assert_eq!(s.get("hmi.acc.engage"), Some(&Value::Bool(true)));
        assert_eq!(s.get(sig::ACC_SET_SPEED).unwrap().as_real(), Some(20.0));
    }

    #[test]
    fn schedule_is_sorted_on_construction() {
        let s = run_driver(
            vec![
                (0.010, DriverAction::Throttle(0.9)),
                (0.005, DriverAction::Throttle(0.2)),
            ],
            20,
        );
        // Later action wins.
        assert_eq!(s.get(sig::DRIVER_THROTTLE).unwrap().as_real(), Some(0.9));
    }
}
