//! Canonical signal names on the vehicle blackboard, and the interned
//! [`VehicleSigs`] id set.
//!
//! The *names* remain the specification surface: the goal definitions in
//! [`crate::goals`] reference them textually and the monitor compiler
//! resolves them against the shared [`SignalTable`] once. The *ids*
//! ([`VehicleSigs`], built by [`vehicle_table`]) are what every subsystem
//! holds at run time — each `step` reads and writes dense
//! [`SignalId`]-indexed [`Frame`](esafe_logic::Frame) slots, with the
//! source-tag symbols (`'CA'`, `'DRIVER'`, …) pre-interned as `Copy`
//! [`Value`]s. Centralizing both keeps the specification and the
//! implementation in lockstep.

use esafe_logic::{SignalId, SignalTable, SignalTableBuilder, Value};
use std::sync::Arc;

/// Host vehicle longitudinal speed, m/s (positive = forward).
pub const HOST_SPEED: &str = "host.speed";
/// Host vehicle longitudinal acceleration, m/s².
pub const HOST_ACCEL: &str = "host.accel";
/// Host vehicle jerk, m/s³.
pub const HOST_JERK: &str = "host.jerk";
/// Host vehicle position along the lane, m.
pub const HOST_POSITION: &str = "host.position";
/// Host steering angle, rad.
pub const HOST_STEERING: &str = "host.steering";
/// Host lateral lane offset, m.
pub const HOST_LANE_OFFSET: &str = "host.lane_offset";

/// Distance to the object/vehicle ahead, m (large when none).
pub const LEAD_DISTANCE: &str = "world.lead_distance";
/// Speed of the object ahead, m/s.
pub const LEAD_SPEED: &str = "world.lead_speed";
/// Distance to the object behind, m (large when none).
pub const REAR_DISTANCE: &str = "world.rear_distance";
/// Whether a forward collision has occurred.
pub const COLLISION: &str = "world.collision";
/// Whether a rear collision has occurred.
pub const REAR_COLLISION: &str = "world.rear_collision";

/// Driver throttle pedal position, 0..1.
pub const DRIVER_THROTTLE: &str = "driver.throttle";
/// Driver brake pedal position, 0..1.
pub const DRIVER_BRAKE: &str = "driver.brake";
/// Whether the driver is actively turning the steering wheel.
pub const DRIVER_STEERING_ACTIVE: &str = "driver.steering_active";
/// Driver steering input, rad.
pub const DRIVER_STEERING: &str = "driver.steering";
/// Acceleration the driver's pedals demand, m/s².
pub const DRIVER_ACCEL_REQUEST: &str = "driver.accel_request";

/// Transmission gear: `'D'` or `'R'`.
pub const GEAR: &str = "hmi.gear";
/// HMI "go" signal re-authorizing motion from a stop.
pub const HMI_GO: &str = "hmi.go";
/// ACC set speed chosen by the driver, m/s.
pub const ACC_SET_SPEED: &str = "hmi.acc.set_speed";

/// HMI enable switch for a feature (builder for `"hmi.<x>.enable"`).
pub fn hmi_enable(feature: &str) -> String {
    format!("hmi.{}.enable", feature.to_lowercase())
}

/// HMI engage request for a feature.
pub fn hmi_engage(feature: &str) -> String {
    format!("hmi.{}.engage", feature.to_lowercase())
}

/// Final arbitrated acceleration command, m/s².
pub const ACCEL_CMD: &str = "arbiter.accel_cmd";
/// Rate of change of the acceleration command, m/s³.
pub const ACCEL_CMD_RATE: &str = "arbiter.accel_cmd_rate";
/// Source tag of the acceleration command (`'CA'`, `'ACC'`, …,
/// `'DRIVER'`, `'NONE'`).
pub const ACCEL_SOURCE: &str = "arbiter.accel_source";
/// Final arbitrated steering command, rad.
pub const STEERING_CMD: &str = "arbiter.steering_cmd";
/// Source tag of the steering command.
pub const STEERING_SOURCE: &str = "arbiter.steering_source";

/// The five feature subsystems, in acceleration-arbitration priority
/// order (highest first).
pub const FEATURES: [&str; 5] = ["CA", "RCA", "PA", "LCA", "ACC"];

/// Whether the named feature is enabled (builder for `"<x>.enabled"`).
pub fn enabled(feature: &str) -> String {
    format!("{}.enabled", feature.to_lowercase())
}

/// Whether the named feature is actively requesting vehicle control.
pub fn active(feature: &str) -> String {
    format!("{}.active", feature.to_lowercase())
}

/// The feature's acceleration request, m/s².
pub fn accel_request(feature: &str) -> String {
    format!("{}.accel_request", feature.to_lowercase())
}

/// Rate of change of the feature's acceleration request, m/s³.
pub fn accel_request_rate(feature: &str) -> String {
    format!("{}.accel_request_rate", feature.to_lowercase())
}

/// Whether the feature requests acceleration control.
pub fn requests_accel(feature: &str) -> String {
    format!("{}.requests_accel", feature.to_lowercase())
}

/// The feature's steering request, rad.
pub fn steering_request(feature: &str) -> String {
    format!("{}.steering_request", feature.to_lowercase())
}

/// Whether the feature requests steering control.
pub fn requests_steering(feature: &str) -> String {
    format!("{}.requests_steering", feature.to_lowercase())
}

/// Whether the arbiter's `selected` flag is set for the feature (the
/// thesis's dual-flag attribution hazard).
pub fn selected(feature: &str) -> String {
    format!("{}.selected", feature.to_lowercase())
}

/// Whether the arbiter attributed the acceleration command to the driver.
pub const DRIVER_SELECTED: &str = "arbiter.driver_selected";

// Derived monitor-probe signals (computed by `crate::probe::derive`).

/// The acceleration command source is a feature subsystem.
pub const P_AUTO_ACCEL: &str = "probe.auto_accel_source";
/// The steering command source is a feature subsystem.
pub const P_AUTO_STEER: &str = "probe.auto_steering_source";
/// |speed| below the stopped threshold.
pub const P_STOPPED: &str = "probe.stopped";
/// Speed above the forward threshold.
pub const P_FORWARD: &str = "probe.forward";
/// Speed below the backward threshold.
pub const P_BACKWARD: &str = "probe.backward";
/// Throttle pedal meaningfully applied.
pub const P_THROTTLE: &str = "probe.throttle_applied";
/// Brake pedal meaningfully applied.
pub const P_BRAKE: &str = "probe.brake_applied";
/// Either pedal applied.
pub const P_PEDAL: &str = "probe.pedal_applied";
/// Host acceleration above the "vehicle is accelerating" threshold.
pub const P_ACCELERATING: &str = "probe.accelerating";

/// Feature indices into [`FEATURES`] and [`VehicleSigs::features`], in
/// acceleration-arbitration priority order.
pub const CA: usize = 0;
/// See [`CA`].
pub const RCA: usize = 1;
/// See [`CA`].
pub const PA: usize = 2;
/// See [`CA`].
pub const LCA: usize = 3;
/// See [`CA`].
pub const ACC: usize = 4;

/// The index of a feature tag (`"CA"`, `"acc"`, …) in [`FEATURES`].
///
/// # Panics
///
/// Panics on an unknown feature name — scripts and goal tables may only
/// reference the five features of Figure 5.1.
pub fn feature_index(name: &str) -> usize {
    FEATURES
        .iter()
        .position(|f| f.eq_ignore_ascii_case(name))
        .unwrap_or_else(|| panic!("unknown feature `{name}`"))
}

/// The resolved per-feature signal ids (one instance per entry of
/// [`FEATURES`]).
#[derive(Debug, Clone, Copy)]
pub struct FeatureSigs {
    /// `hmi.<x>.enable`
    pub hmi_enable: SignalId,
    /// `hmi.<x>.engage`
    pub hmi_engage: SignalId,
    /// `<x>.enabled`
    pub enabled: SignalId,
    /// `<x>.active`
    pub active: SignalId,
    /// `<x>.accel_request`
    pub accel_request: SignalId,
    /// `<x>.accel_request_rate`
    pub accel_request_rate: SignalId,
    /// `<x>.requests_accel`
    pub requests_accel: SignalId,
    /// `<x>.steering_request`
    pub steering_request: SignalId,
    /// `<x>.requests_steering`
    pub requests_steering: SignalId,
    /// `<x>.selected`
    pub selected: SignalId,
    /// The interned source tag, e.g. `'CA'`.
    pub tag: Value,
}

/// Every vehicle signal id plus the pre-interned source-tag symbols —
/// resolved once against the substrate's [`SignalTable`] and copied into
/// each subsystem (`Copy`: a few hundred bytes of plain ids).
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)]
pub struct VehicleSigs {
    pub host_speed: SignalId,
    pub host_accel: SignalId,
    pub host_jerk: SignalId,
    pub host_position: SignalId,
    pub host_steering: SignalId,
    pub host_lane_offset: SignalId,
    pub lead_distance: SignalId,
    pub lead_speed: SignalId,
    pub rear_distance: SignalId,
    pub collision: SignalId,
    pub rear_collision: SignalId,
    pub driver_throttle: SignalId,
    pub driver_brake: SignalId,
    pub driver_steering_active: SignalId,
    pub driver_steering: SignalId,
    pub driver_accel_request: SignalId,
    pub gear: SignalId,
    pub hmi_go: SignalId,
    pub acc_set_speed: SignalId,
    pub accel_cmd: SignalId,
    pub accel_cmd_rate: SignalId,
    pub accel_source: SignalId,
    pub steering_cmd: SignalId,
    pub steering_source: SignalId,
    pub driver_selected: SignalId,
    pub p_auto_accel: SignalId,
    pub p_auto_steer: SignalId,
    pub p_stopped: SignalId,
    pub p_forward: SignalId,
    pub p_backward: SignalId,
    pub p_throttle: SignalId,
    pub p_brake: SignalId,
    pub p_pedal: SignalId,
    pub p_accelerating: SignalId,
    /// Per-feature ids, indexed by [`CA`]..[`ACC`].
    pub features: [FeatureSigs; 5],
    /// `'DRIVER'`
    pub sym_driver: Value,
    /// `'NONE'`
    pub sym_none: Value,
    /// `'D'`
    pub sym_d: Value,
    /// `'R'`
    pub sym_r: Value,
}

impl VehicleSigs {
    /// Declares the complete vehicle namespace into `b` and resolves the
    /// id set. Idempotent on an already-populated builder.
    pub fn declare(b: &mut SignalTableBuilder) -> Self {
        let feature = |b: &mut SignalTableBuilder, f: &str| FeatureSigs {
            hmi_enable: b.bool(&hmi_enable(f)),
            hmi_engage: b.bool(&hmi_engage(f)),
            enabled: b.bool(&enabled(f)),
            active: b.bool(&active(f)),
            accel_request: b.real(&accel_request(f)),
            accel_request_rate: b.real(&accel_request_rate(f)),
            requests_accel: b.bool(&requests_accel(f)),
            steering_request: b.real(&steering_request(f)),
            requests_steering: b.bool(&requests_steering(f)),
            selected: b.bool(&selected(f)),
            tag: Value::sym(f),
        };
        VehicleSigs {
            host_speed: b.real(HOST_SPEED),
            host_accel: b.real(HOST_ACCEL),
            host_jerk: b.real(HOST_JERK),
            host_position: b.real(HOST_POSITION),
            host_steering: b.real(HOST_STEERING),
            host_lane_offset: b.real(HOST_LANE_OFFSET),
            lead_distance: b.real(LEAD_DISTANCE),
            lead_speed: b.real(LEAD_SPEED),
            rear_distance: b.real(REAR_DISTANCE),
            collision: b.bool(COLLISION),
            rear_collision: b.bool(REAR_COLLISION),
            driver_throttle: b.real(DRIVER_THROTTLE),
            driver_brake: b.real(DRIVER_BRAKE),
            driver_steering_active: b.bool(DRIVER_STEERING_ACTIVE),
            driver_steering: b.real(DRIVER_STEERING),
            driver_accel_request: b.real(DRIVER_ACCEL_REQUEST),
            gear: b.sym(GEAR),
            hmi_go: b.bool(HMI_GO),
            acc_set_speed: b.real(ACC_SET_SPEED),
            accel_cmd: b.real(ACCEL_CMD),
            accel_cmd_rate: b.real(ACCEL_CMD_RATE),
            accel_source: b.sym(ACCEL_SOURCE),
            steering_cmd: b.real(STEERING_CMD),
            steering_source: b.sym(STEERING_SOURCE),
            driver_selected: b.bool(DRIVER_SELECTED),
            p_auto_accel: b.bool(P_AUTO_ACCEL),
            p_auto_steer: b.bool(P_AUTO_STEER),
            p_stopped: b.bool(P_STOPPED),
            p_forward: b.bool(P_FORWARD),
            p_backward: b.bool(P_BACKWARD),
            p_throttle: b.bool(P_THROTTLE),
            p_brake: b.bool(P_BRAKE),
            p_pedal: b.bool(P_PEDAL),
            p_accelerating: b.bool(P_ACCELERATING),
            features: [
                feature(b, FEATURES[CA]),
                feature(b, FEATURES[RCA]),
                feature(b, FEATURES[PA]),
                feature(b, FEATURES[LCA]),
                feature(b, FEATURES[ACC]),
            ],
            sym_driver: Value::sym("DRIVER"),
            sym_none: Value::sym("NONE"),
            sym_d: Value::sym("D"),
            sym_r: Value::sym("R"),
        }
    }
}

/// Builds the vehicle's shared signal table and id set — the one
/// namespace every simulator, monitor suite, sweep cell, and series
/// sample of a [`VehicleSubstrate`](crate::substrate::VehicleSubstrate)
/// indexes into.
pub fn vehicle_table() -> (Arc<SignalTable>, VehicleSigs) {
    let mut b = SignalTable::builder();
    let sigs = VehicleSigs::declare(&mut b);
    (b.finish(), sigs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_signal_names_are_lowercased() {
        assert_eq!(active("CA"), "ca.active");
        assert_eq!(accel_request("ACC"), "acc.accel_request");
        assert_eq!(selected("LCA"), "lca.selected");
        assert_eq!(requests_steering("PA"), "pa.requests_steering");
    }

    #[test]
    fn features_are_priority_ordered() {
        assert_eq!(FEATURES[0], "CA");
        assert_eq!(FEATURES[4], "ACC");
        assert_eq!(feature_index("CA"), CA);
        assert_eq!(feature_index("acc"), ACC);
    }

    #[test]
    #[should_panic(expected = "unknown feature")]
    fn unknown_feature_panics() {
        feature_index("XYZ");
    }

    #[test]
    fn table_covers_names_and_ids_agree() {
        let (table, sigs) = vehicle_table();
        assert_eq!(table.id(HOST_SPEED), Some(sigs.host_speed));
        assert_eq!(table.id(ACCEL_SOURCE), Some(sigs.accel_source));
        for (i, f) in FEATURES.iter().enumerate() {
            assert_eq!(table.id(&active(f)), Some(sigs.features[i].active));
            assert_eq!(table.id(&hmi_engage(f)), Some(sigs.features[i].hmi_engage));
            assert_eq!(sigs.features[i].tag, Value::sym(*f));
        }
        // 25 scalar + 9 probe + 5×10 feature signals.
        assert_eq!(table.len(), 25 + 9 + 50);
    }
}
