//! Canonical signal names on the vehicle blackboard.
//!
//! Every subsystem reads and writes these names; the goal definitions in
//! [`crate::goals`] reference them. Centralizing the strings keeps the
//! specification and the implementation in lockstep.

/// Host vehicle longitudinal speed, m/s (positive = forward).
pub const HOST_SPEED: &str = "host.speed";
/// Host vehicle longitudinal acceleration, m/s².
pub const HOST_ACCEL: &str = "host.accel";
/// Host vehicle jerk, m/s³.
pub const HOST_JERK: &str = "host.jerk";
/// Host vehicle position along the lane, m.
pub const HOST_POSITION: &str = "host.position";
/// Host steering angle, rad.
pub const HOST_STEERING: &str = "host.steering";
/// Host lateral lane offset, m.
pub const HOST_LANE_OFFSET: &str = "host.lane_offset";

/// Distance to the object/vehicle ahead, m (large when none).
pub const LEAD_DISTANCE: &str = "world.lead_distance";
/// Speed of the object ahead, m/s.
pub const LEAD_SPEED: &str = "world.lead_speed";
/// Distance to the object behind, m (large when none).
pub const REAR_DISTANCE: &str = "world.rear_distance";
/// Whether a forward collision has occurred.
pub const COLLISION: &str = "world.collision";
/// Whether a rear collision has occurred.
pub const REAR_COLLISION: &str = "world.rear_collision";

/// Driver throttle pedal position, 0..1.
pub const DRIVER_THROTTLE: &str = "driver.throttle";
/// Driver brake pedal position, 0..1.
pub const DRIVER_BRAKE: &str = "driver.brake";
/// Whether the driver is actively turning the steering wheel.
pub const DRIVER_STEERING_ACTIVE: &str = "driver.steering_active";
/// Driver steering input, rad.
pub const DRIVER_STEERING: &str = "driver.steering";
/// Acceleration the driver's pedals demand, m/s².
pub const DRIVER_ACCEL_REQUEST: &str = "driver.accel_request";

/// Transmission gear: `'D'` or `'R'`.
pub const GEAR: &str = "hmi.gear";
/// HMI "go" signal re-authorizing motion from a stop.
pub const HMI_GO: &str = "hmi.go";
/// ACC set speed chosen by the driver, m/s.
pub const ACC_SET_SPEED: &str = "hmi.acc.set_speed";

/// HMI enable switch for a feature (builder for `"hmi.<x>.enable"`).
pub fn hmi_enable(feature: &str) -> String {
    format!("hmi.{}.enable", feature.to_lowercase())
}

/// HMI engage request for a feature.
pub fn hmi_engage(feature: &str) -> String {
    format!("hmi.{}.engage", feature.to_lowercase())
}

/// Final arbitrated acceleration command, m/s².
pub const ACCEL_CMD: &str = "arbiter.accel_cmd";
/// Rate of change of the acceleration command, m/s³.
pub const ACCEL_CMD_RATE: &str = "arbiter.accel_cmd_rate";
/// Source tag of the acceleration command (`'CA'`, `'ACC'`, …,
/// `'DRIVER'`, `'NONE'`).
pub const ACCEL_SOURCE: &str = "arbiter.accel_source";
/// Final arbitrated steering command, rad.
pub const STEERING_CMD: &str = "arbiter.steering_cmd";
/// Source tag of the steering command.
pub const STEERING_SOURCE: &str = "arbiter.steering_source";

/// The five feature subsystems, in acceleration-arbitration priority
/// order (highest first).
pub const FEATURES: [&str; 5] = ["CA", "RCA", "PA", "LCA", "ACC"];

/// Whether the named feature is enabled (builder for `"<x>.enabled"`).
pub fn enabled(feature: &str) -> String {
    format!("{}.enabled", feature.to_lowercase())
}

/// Whether the named feature is actively requesting vehicle control.
pub fn active(feature: &str) -> String {
    format!("{}.active", feature.to_lowercase())
}

/// The feature's acceleration request, m/s².
pub fn accel_request(feature: &str) -> String {
    format!("{}.accel_request", feature.to_lowercase())
}

/// Rate of change of the feature's acceleration request, m/s³.
pub fn accel_request_rate(feature: &str) -> String {
    format!("{}.accel_request_rate", feature.to_lowercase())
}

/// Whether the feature requests acceleration control.
pub fn requests_accel(feature: &str) -> String {
    format!("{}.requests_accel", feature.to_lowercase())
}

/// The feature's steering request, rad.
pub fn steering_request(feature: &str) -> String {
    format!("{}.steering_request", feature.to_lowercase())
}

/// Whether the feature requests steering control.
pub fn requests_steering(feature: &str) -> String {
    format!("{}.requests_steering", feature.to_lowercase())
}

/// Whether the arbiter's `selected` flag is set for the feature (the
/// thesis's dual-flag attribution hazard).
pub fn selected(feature: &str) -> String {
    format!("{}.selected", feature.to_lowercase())
}

// Derived monitor-probe signals (computed by `crate::probe::derive`).

/// The acceleration command source is a feature subsystem.
pub const P_AUTO_ACCEL: &str = "probe.auto_accel_source";
/// The steering command source is a feature subsystem.
pub const P_AUTO_STEER: &str = "probe.auto_steering_source";
/// |speed| below the stopped threshold.
pub const P_STOPPED: &str = "probe.stopped";
/// Speed above the forward threshold.
pub const P_FORWARD: &str = "probe.forward";
/// Speed below the backward threshold.
pub const P_BACKWARD: &str = "probe.backward";
/// Throttle pedal meaningfully applied.
pub const P_THROTTLE: &str = "probe.throttle_applied";
/// Brake pedal meaningfully applied.
pub const P_BRAKE: &str = "probe.brake_applied";
/// Either pedal applied.
pub const P_PEDAL: &str = "probe.pedal_applied";
/// Host acceleration above the "vehicle is accelerating" threshold.
pub const P_ACCELERATING: &str = "probe.accelerating";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_signal_names_are_lowercased() {
        assert_eq!(active("CA"), "ca.active");
        assert_eq!(accel_request("ACC"), "acc.accel_request");
        assert_eq!(selected("LCA"), "lca.selected");
        assert_eq!(requests_steering("PA"), "pa.requests_steering");
    }

    #[test]
    fn features_are_priority_ordered() {
        assert_eq!(FEATURES[0], "CA");
        assert_eq!(FEATURES[4], "ACC");
    }
}
