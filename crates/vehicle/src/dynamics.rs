//! Host vehicle dynamics and scene objects — the CarSim substitute.
//!
//! A point-mass longitudinal model with first-order actuation lag, jerk
//! tracking, a kinematic lateral model, and forward/rear scene objects
//! with collision detection. The thesis uses CarSim only as a plant that
//! turns acceleration/steering commands into the sampled state variables
//! the goal monitors consume; this model reproduces those signal shapes
//! (command steps filtered through actuator lag, integrated speed and
//! position, differentiated jerk).

use crate::config::{DefectSet, VehicleParams};
use crate::signals::VehicleSigs;
use esafe_logic::{SignalRead, SignalWrite};
use esafe_sim::{FirstOrderLag, LaneSubsystem, SimTime};
use serde::{Deserialize, Serialize};

/// A scene object ahead of or behind the host.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SceneObject {
    /// Gap from the host at t=0, m (positive, bumper to bumper).
    pub initial_gap_m: f64,
    /// The object's initial speed, m/s (signed, world frame).
    pub speed: f64,
    /// If set, the object starts braking at 1 m/s² toward a stop at this
    /// time (the "lead vehicle slows to a halt" situations of §5.4).
    pub stops_at_s: Option<f64>,
}

impl SceneObject {
    /// A constant-speed (or parked) object.
    pub fn constant(initial_gap_m: f64, speed: f64) -> Self {
        SceneObject {
            initial_gap_m,
            speed,
            stops_at_s: None,
        }
    }

    /// An object that brakes to a stop starting at `stops_at_s`.
    pub fn stopping(initial_gap_m: f64, speed: f64, stops_at_s: f64) -> Self {
        SceneObject {
            initial_gap_m,
            speed,
            stops_at_s: Some(stops_at_s),
        }
    }
}

/// Scene configuration for one scenario run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Scene {
    /// Object ahead of the host, if any.
    pub lead: Option<SceneObject>,
    /// Object behind the host, if any.
    pub rear: Option<SceneObject>,
}

/// The plant: integrates commands into motion, tracks scene gaps, and
/// latches collisions.
#[derive(Debug)]
pub struct HostDynamics {
    #[allow(dead_code)]
    params: VehicleParams,
    defects: DefectSet,
    sigs: VehicleSigs,
    scene: Scene,
    accel_lag: FirstOrderLag,
    steering_lag: FirstOrderLag,
    lead_position: f64,
    lead_speed: f64,
    rear_position: f64,
    impact_tick: Option<u64>,
}

/// Post-impact contact transient: a decaying oscillation of the measured
/// acceleration as the vehicle strikes the object (the crash dynamics a
/// full vehicle simulator produces in the ~100 ms before the run aborts).
/// This plant-level behaviour is exactly the emergence the command-level
/// subgoals cannot see: it drives the thesis's scenario 1 vehicle-level
/// acceleration/jerk violations that arrive with *no* subgoal violations.
fn impact_accel(ms_since_impact: f64) -> f64 {
    let envelope = (-ms_since_impact / 35.0).exp();
    let phase = (2.0 * std::f64::consts::PI * ms_since_impact / 25.0).cos();
    -32.0 * envelope * phase
}

impl HostDynamics {
    /// Creates the plant for a scene.
    pub fn new(params: VehicleParams, defects: DefectSet, scene: Scene, sigs: VehicleSigs) -> Self {
        HostDynamics {
            params,
            defects,
            sigs,
            scene,
            accel_lag: FirstOrderLag::new(params.accel_tau_s, 0.0),
            steering_lag: FirstOrderLag::new(params.steering_tau_s, 0.0),
            lead_position: scene.lead.map(|o| o.initial_gap_m).unwrap_or(f64::INFINITY),
            lead_speed: scene.lead.map(|o| o.speed).unwrap_or(0.0),
            rear_position: scene
                .rear
                .map(|o| -o.initial_gap_m)
                .unwrap_or(f64::NEG_INFINITY),
            impact_tick: None,
        }
    }

    /// Seeds the blackboard with the plant's initial outputs.
    pub fn seed<W: SignalWrite>(frame: &mut W, sigs: &VehicleSigs, scene: &Scene) {
        frame.set(sigs.host_speed, 0.0);
        frame.set(sigs.host_accel, 0.0);
        frame.set(sigs.host_jerk, 0.0);
        frame.set(sigs.host_position, 0.0);
        frame.set(sigs.host_steering, 0.0);
        frame.set(sigs.host_lane_offset, 0.0);
        frame.set(
            sigs.lead_distance,
            scene.lead.map(|o| o.initial_gap_m).unwrap_or(1e9),
        );
        frame.set(sigs.lead_speed, scene.lead.map(|o| o.speed).unwrap_or(0.0));
        frame.set(
            sigs.rear_distance,
            scene.rear.map(|o| o.initial_gap_m).unwrap_or(1e9),
        );
        frame.set(sigs.collision, false);
        frame.set(sigs.rear_collision, false);
    }
}

impl LaneSubsystem for HostDynamics {
    fn name(&self) -> &str {
        "HostDynamics"
    }

    fn step_lane<R: SignalRead, W: SignalWrite>(&mut self, t: &SimTime, prev: &R, next: &mut W) {
        let s = &self.sigs;
        let dt = t.dt_seconds();
        let cmd = prev.real_or(s.accel_cmd, 0.0);
        let steering_cmd = prev.real_or(s.steering_cmd, 0.0);
        let speed_prev = prev.real_or(s.host_speed, 0.0);
        let accel_prev = prev.real_or(s.host_accel, 0.0);
        let pos_prev = prev.real_or(s.host_position, 0.0);
        let offset_prev = prev.real_or(s.host_lane_offset, 0.0);

        let mut accel = self.accel_lag.step(cmd, dt);

        // Contact transient while striking the object (see `impact_accel`).
        if let Some(it) = self.impact_tick {
            let ms = (t.tick.saturating_sub(it) * t.dt_millis) as f64;
            if ms <= 120.0 {
                accel = impact_accel(ms);
                self.accel_lag.value = accel;
            }
        }

        let mut speed = speed_prev + accel * dt;

        // Physical zero-speed behaviour: brakes hold the vehicle at rest
        // instead of reversing it (reverse motion requires reverse gear,
        // and vice versa). The thesis vehicle lacked this clamp — scenario
        // 6 shows speed going negative under autonomous control — so the
        // defect switch removes it.
        if !self.defects.no_reverse_inhibit && self.impact_tick.is_none() {
            // An unset gear counts as 'D'; any other symbol pins nothing
            // (exact seed semantics — only 'D' and 'R' clamp).
            let gear = prev.get(s.gear).unwrap_or(s.sym_d);
            let crossing = (gear == s.sym_d && speed < 0.0) || (gear == s.sym_r && speed > 0.0);
            if crossing {
                // Pin the speed only: the measured acceleration keeps
                // following the actuator lag so the jerk signal stays
                // physical (no artificial step at the stop).
                speed = 0.0;
            }
        }

        let jerk = (accel - accel_prev) / dt;
        let position = pos_prev + speed * dt;

        let steering = self.steering_lag.step(steering_cmd, dt);
        let lane_offset = offset_prev + speed * steering * dt;

        next.set(s.host_accel, accel);
        next.set(s.host_jerk, jerk);
        next.set(s.host_speed, speed);
        next.set(s.host_position, position);
        next.set(s.host_steering, steering);
        next.set(s.host_lane_offset, lane_offset);

        if let Some(lead) = self.scene.lead {
            if lead.stops_at_s.is_some_and(|ts| t.seconds() >= ts) {
                self.lead_speed = if self.lead_speed > 0.0 {
                    (self.lead_speed - 1.0 * dt).max(0.0)
                } else {
                    (self.lead_speed + 1.0 * dt).min(0.0)
                };
            }
            self.lead_position += self.lead_speed * dt;
            let gap = self.lead_position - position;
            next.set(s.lead_distance, gap.max(0.0));
            next.set(s.lead_speed, self.lead_speed);
            if gap <= 0.0 || prev.bool_or(s.collision, false) {
                next.set(s.collision, true);
                if self.impact_tick.is_none() {
                    self.impact_tick = Some(t.tick);
                }
            }
        }
        if let Some(rear) = self.scene.rear {
            self.rear_position += rear.speed * dt;
            let gap = position - self.rear_position;
            next.set(s.rear_distance, gap.max(0.0));
            if gap <= 0.0 || prev.bool_or(s.rear_collision, false) {
                next.set(s.rear_collision, true);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signals::vehicle_table;
    use esafe_logic::{Frame, SignalId, SignalTable, Value};
    use esafe_sim::{Simulator, Subsystem};
    use std::sync::Arc;

    /// Injects a constant acceleration command each tick.
    struct ConstCmd(SignalId, f64);
    impl Subsystem for ConstCmd {
        fn name(&self) -> &str {
            "ConstCmd"
        }
        fn step(&mut self, _t: &SimTime, _prev: &Frame, next: &mut Frame) {
            next.set(self.0, self.1);
        }
    }

    fn plant_sim(
        defects: DefectSet,
        scene: Scene,
        cmd: f64,
    ) -> (Simulator, Arc<SignalTable>, VehicleSigs) {
        let (table, sigs) = vehicle_table();
        let mut sim = Simulator::new(1, &table);
        sim.add(ConstCmd(sigs.accel_cmd, cmd));
        sim.add(HostDynamics::new(
            VehicleParams::default(),
            defects,
            scene,
            sigs,
        ));
        sim.init_with(|f| HostDynamics::seed(f, &sigs, &scene));
        (sim, table, sigs)
    }

    #[test]
    fn acceleration_command_integrates_into_speed() {
        let (mut sim, _table, sigs) = plant_sim(DefectSet::none(), Scene::default(), 1.0);
        for _ in 0..2000 {
            sim.step();
        }
        let speed = sim.state().real_or(sigs.host_speed, 0.0);
        // ~2 s at ~1 m/s² (minus lag spin-up) ≈ 1.9 m/s.
        assert!(speed > 1.7 && speed < 2.0, "speed {speed}");
        let accel = sim.state().real_or(sigs.host_accel, 0.0);
        assert!((accel - 1.0).abs() < 0.01);
    }

    #[test]
    fn braking_clamps_at_zero_without_defect() {
        let (mut sim, _table, sigs) = plant_sim(DefectSet::none(), Scene::default(), -2.0);
        let mut init = sim.state().clone();
        init.set(sigs.host_speed, Value::Real(1.0));
        sim.init(init);
        for _ in 0..3000 {
            sim.step();
        }
        assert_eq!(sim.state().real_or(sigs.host_speed, -1.0), 0.0);
    }

    #[test]
    fn braking_goes_negative_with_defect() {
        let defects = DefectSet {
            no_reverse_inhibit: true,
            ..DefectSet::none()
        };
        let (mut sim, _table, sigs) = plant_sim(defects, Scene::default(), -2.0);
        let mut init = sim.state().clone();
        init.set(sigs.host_speed, Value::Real(1.0));
        sim.init(init);
        for _ in 0..3000 {
            sim.step();
        }
        assert!(sim.state().real_or(sigs.host_speed, 0.0) < -0.5);
    }

    #[test]
    fn collision_latches_when_gap_closes() {
        let scene = Scene {
            lead: Some(SceneObject::constant(2.0, 0.0)),
            rear: None,
        };
        let (mut sim, _table, sigs) = plant_sim(DefectSet::none(), scene, 2.0);
        let mut collided_at = None;
        for _ in 0..5000 {
            sim.step();
            if sim.state().bool_or(sigs.collision, false) {
                collided_at = Some(sim.seconds());
                break;
            }
        }
        let t = collided_at.expect("must collide with the stopped object");
        // 2 m at 1 m/s² effective: t ≈ sqrt(2·2/2) + lag ≈ 1.4–1.8 s.
        assert!(t > 1.0 && t < 2.5, "collision at {t}");
        // Latched thereafter.
        sim.step();
        assert!(sim.state().bool_or(sigs.collision, false));
    }

    #[test]
    fn jerk_spikes_on_command_step() {
        let (mut sim, _table, sigs) = plant_sim(DefectSet::none(), Scene::default(), -8.0);
        let mut init = sim.state().clone();
        init.set(sigs.host_speed, Value::Real(10.0));
        sim.init(init);
        sim.step();
        sim.step();
        let jerk = sim.state().real_or(sigs.host_jerk, 0.0);
        assert!(jerk < -20.0, "hard-brake step must spike jerk, got {jerk}");
    }
}
