//! Host vehicle dynamics and scene objects — the CarSim substitute.
//!
//! A point-mass longitudinal model with first-order actuation lag, jerk
//! tracking, a kinematic lateral model, and forward/rear scene objects
//! with collision detection. The thesis uses CarSim only as a plant that
//! turns acceleration/steering commands into the sampled state variables
//! the goal monitors consume; this model reproduces those signal shapes
//! (command steps filtered through actuator lag, integrated speed and
//! position, differentiated jerk).

use crate::config::{DefectSet, VehicleParams};
use crate::signals as sig;
use esafe_logic::{State, Value};
use esafe_sim::{FirstOrderLag, SimTime, Subsystem};
use serde::{Deserialize, Serialize};

/// A scene object ahead of or behind the host.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SceneObject {
    /// Gap from the host at t=0, m (positive, bumper to bumper).
    pub initial_gap_m: f64,
    /// The object's initial speed, m/s (signed, world frame).
    pub speed: f64,
    /// If set, the object starts braking at 1 m/s² toward a stop at this
    /// time (the "lead vehicle slows to a halt" situations of §5.4).
    pub stops_at_s: Option<f64>,
}

impl SceneObject {
    /// A constant-speed (or parked) object.
    pub fn constant(initial_gap_m: f64, speed: f64) -> Self {
        SceneObject {
            initial_gap_m,
            speed,
            stops_at_s: None,
        }
    }

    /// An object that brakes to a stop starting at `stops_at_s`.
    pub fn stopping(initial_gap_m: f64, speed: f64, stops_at_s: f64) -> Self {
        SceneObject {
            initial_gap_m,
            speed,
            stops_at_s: Some(stops_at_s),
        }
    }
}

/// Scene configuration for one scenario run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Scene {
    /// Object ahead of the host, if any.
    pub lead: Option<SceneObject>,
    /// Object behind the host, if any.
    pub rear: Option<SceneObject>,
}

/// The plant: integrates commands into motion, tracks scene gaps, and
/// latches collisions.
#[derive(Debug)]
pub struct HostDynamics {
    #[allow(dead_code)]
    params: VehicleParams,
    defects: DefectSet,
    scene: Scene,
    accel_lag: FirstOrderLag,
    steering_lag: FirstOrderLag,
    lead_position: f64,
    lead_speed: f64,
    rear_position: f64,
    impact_tick: Option<u64>,
}

/// Post-impact contact transient: a decaying oscillation of the measured
/// acceleration as the vehicle strikes the object (the crash dynamics a
/// full vehicle simulator produces in the ~100 ms before the run aborts).
/// This plant-level behaviour is exactly the emergence the command-level
/// subgoals cannot see: it drives the thesis's scenario 1 vehicle-level
/// acceleration/jerk violations that arrive with *no* subgoal violations.
fn impact_accel(ms_since_impact: f64) -> f64 {
    let envelope = (-ms_since_impact / 35.0).exp();
    let phase = (2.0 * std::f64::consts::PI * ms_since_impact / 25.0).cos();
    -32.0 * envelope * phase
}

impl HostDynamics {
    /// Creates the plant for a scene.
    pub fn new(params: VehicleParams, defects: DefectSet, scene: Scene) -> Self {
        HostDynamics {
            params,
            defects,
            scene,
            accel_lag: FirstOrderLag::new(params.accel_tau_s, 0.0),
            steering_lag: FirstOrderLag::new(params.steering_tau_s, 0.0),
            lead_position: scene.lead.map(|o| o.initial_gap_m).unwrap_or(f64::INFINITY),
            lead_speed: scene.lead.map(|o| o.speed).unwrap_or(0.0),
            rear_position: scene
                .rear
                .map(|o| -o.initial_gap_m)
                .unwrap_or(f64::NEG_INFINITY),
            impact_tick: None,
        }
    }

    /// Seeds the blackboard with the plant's initial outputs.
    pub fn initial_state(scene: &Scene) -> State {
        State::new()
            .with_real(sig::HOST_SPEED, 0.0)
            .with_real(sig::HOST_ACCEL, 0.0)
            .with_real(sig::HOST_JERK, 0.0)
            .with_real(sig::HOST_POSITION, 0.0)
            .with_real(sig::HOST_STEERING, 0.0)
            .with_real(sig::HOST_LANE_OFFSET, 0.0)
            .with_real(
                sig::LEAD_DISTANCE,
                scene.lead.map(|o| o.initial_gap_m).unwrap_or(1e9),
            )
            .with_real(sig::LEAD_SPEED, scene.lead.map(|o| o.speed).unwrap_or(0.0))
            .with_real(
                sig::REAR_DISTANCE,
                scene.rear.map(|o| o.initial_gap_m).unwrap_or(1e9),
            )
            .with_bool(sig::COLLISION, false)
            .with_bool(sig::REAR_COLLISION, false)
    }
}

fn real(state: &State, name: &str, default: f64) -> f64 {
    state.get(name).and_then(Value::as_real).unwrap_or(default)
}

fn boolean(state: &State, name: &str) -> bool {
    state.get(name).and_then(Value::as_bool).unwrap_or(false)
}

impl Subsystem for HostDynamics {
    fn name(&self) -> &str {
        "HostDynamics"
    }

    fn step(&mut self, t: &SimTime, prev: &State, next: &mut State) {
        let dt = t.dt_seconds();
        let cmd = real(prev, sig::ACCEL_CMD, 0.0);
        let steering_cmd = real(prev, sig::STEERING_CMD, 0.0);
        let speed_prev = real(prev, sig::HOST_SPEED, 0.0);
        let accel_prev = real(prev, sig::HOST_ACCEL, 0.0);
        let pos_prev = real(prev, sig::HOST_POSITION, 0.0);
        let offset_prev = real(prev, sig::HOST_LANE_OFFSET, 0.0);

        let mut accel = self.accel_lag.step(cmd, dt);

        // Contact transient while striking the object (see `impact_accel`).
        if let Some(it) = self.impact_tick {
            let ms = (t.tick.saturating_sub(it) * t.dt_millis) as f64;
            if ms <= 120.0 {
                accel = impact_accel(ms);
                self.accel_lag.value = accel;
            }
        }

        let mut speed = speed_prev + accel * dt;

        // Physical zero-speed behaviour: brakes hold the vehicle at rest
        // instead of reversing it (reverse motion requires reverse gear,
        // and vice versa). The thesis vehicle lacked this clamp — scenario
        // 6 shows speed going negative under autonomous control — so the
        // defect switch removes it.
        if !self.defects.no_reverse_inhibit && self.impact_tick.is_none() {
            let gear = match prev.get(sig::GEAR) {
                Some(Value::Sym(g)) => g.as_str(),
                _ => "D",
            };
            let crossing = (gear == "D" && speed < 0.0) || (gear == "R" && speed > 0.0);
            if crossing {
                // Pin the speed only: the measured acceleration keeps
                // following the actuator lag so the jerk signal stays
                // physical (no artificial step at the stop).
                speed = 0.0;
            }
        }

        let jerk = (accel - accel_prev) / dt;
        let position = pos_prev + speed * dt;

        let steering = self.steering_lag.step(steering_cmd, dt);
        let lane_offset = offset_prev + speed * steering * dt;

        next.set(sig::HOST_ACCEL, accel);
        next.set(sig::HOST_JERK, jerk);
        next.set(sig::HOST_SPEED, speed);
        next.set(sig::HOST_POSITION, position);
        next.set(sig::HOST_STEERING, steering);
        next.set(sig::HOST_LANE_OFFSET, lane_offset);

        if let Some(lead) = self.scene.lead {
            if lead.stops_at_s.is_some_and(|ts| t.seconds() >= ts) {
                self.lead_speed = if self.lead_speed > 0.0 {
                    (self.lead_speed - 1.0 * dt).max(0.0)
                } else {
                    (self.lead_speed + 1.0 * dt).min(0.0)
                };
            }
            self.lead_position += self.lead_speed * dt;
            let gap = self.lead_position - position;
            next.set(sig::LEAD_DISTANCE, gap.max(0.0));
            next.set(sig::LEAD_SPEED, self.lead_speed);
            if gap <= 0.0 || boolean(prev, sig::COLLISION) {
                next.set(sig::COLLISION, true);
                if self.impact_tick.is_none() {
                    self.impact_tick = Some(t.tick);
                }
            }
        }
        if let Some(rear) = self.scene.rear {
            self.rear_position += rear.speed * dt;
            let gap = position - self.rear_position;
            next.set(sig::REAR_DISTANCE, gap.max(0.0));
            if gap <= 0.0 || boolean(prev, sig::REAR_COLLISION) {
                next.set(sig::REAR_COLLISION, true);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esafe_sim::Simulator;

    /// Injects a constant acceleration command each tick.
    struct ConstCmd(f64);
    impl Subsystem for ConstCmd {
        fn name(&self) -> &str {
            "ConstCmd"
        }
        fn step(&mut self, _t: &SimTime, _prev: &State, next: &mut State) {
            next.set(sig::ACCEL_CMD, self.0);
        }
    }

    #[test]
    fn acceleration_command_integrates_into_speed() {
        let params = VehicleParams::default();
        let mut sim = Simulator::new(1);
        sim.add(ConstCmd(1.0));
        sim.add(HostDynamics::new(
            params,
            DefectSet::none(),
            Scene::default(),
        ));
        sim.init(HostDynamics::initial_state(&Scene::default()));
        for _ in 0..2000 {
            sim.step();
        }
        let speed = real(sim.state(), sig::HOST_SPEED, 0.0);
        // ~2 s at ~1 m/s² (minus lag spin-up) ≈ 1.9 m/s.
        assert!(speed > 1.7 && speed < 2.0, "speed {speed}");
        let accel = real(sim.state(), sig::HOST_ACCEL, 0.0);
        assert!((accel - 1.0).abs() < 0.01);
    }

    #[test]
    fn braking_clamps_at_zero_without_defect() {
        let params = VehicleParams::default();
        let mut sim = Simulator::new(1);
        sim.add(ConstCmd(-2.0));
        sim.add(HostDynamics::new(
            params,
            DefectSet::none(),
            Scene::default(),
        ));
        let mut init = HostDynamics::initial_state(&Scene::default());
        init.set(sig::HOST_SPEED, 1.0);
        sim.init(init);
        for _ in 0..3000 {
            sim.step();
        }
        assert_eq!(real(sim.state(), sig::HOST_SPEED, -1.0), 0.0);
    }

    #[test]
    fn braking_goes_negative_with_defect() {
        let params = VehicleParams::default();
        let mut sim = Simulator::new(1);
        sim.add(ConstCmd(-2.0));
        let defects = DefectSet {
            no_reverse_inhibit: true,
            ..DefectSet::none()
        };
        sim.add(HostDynamics::new(params, defects, Scene::default()));
        let mut init = HostDynamics::initial_state(&Scene::default());
        init.set(sig::HOST_SPEED, 1.0);
        sim.init(init);
        for _ in 0..3000 {
            sim.step();
        }
        assert!(real(sim.state(), sig::HOST_SPEED, 0.0) < -0.5);
    }

    #[test]
    fn collision_latches_when_gap_closes() {
        let scene = Scene {
            lead: Some(SceneObject::constant(2.0, 0.0)),
            rear: None,
        };
        let params = VehicleParams::default();
        let mut sim = Simulator::new(1);
        sim.add(ConstCmd(2.0));
        sim.add(HostDynamics::new(params, DefectSet::none(), scene));
        sim.init(HostDynamics::initial_state(&scene));
        let mut collided_at = None;
        for _ in 0..5000 {
            sim.step();
            if boolean(sim.state(), sig::COLLISION) {
                collided_at = Some(sim.seconds());
                break;
            }
        }
        let t = collided_at.expect("must collide with the stopped object");
        // 2 m at 1 m/s² effective: t ≈ sqrt(2·2/2) + lag ≈ 1.4–1.8 s.
        assert!(t > 1.0 && t < 2.5, "collision at {t}");
        // Latched thereafter.
        sim.step();
        assert!(boolean(sim.state(), sig::COLLISION));
    }

    #[test]
    fn jerk_spikes_on_command_step() {
        let params = VehicleParams::default();
        let mut sim = Simulator::new(1);
        sim.add(ConstCmd(-8.0));
        sim.add(HostDynamics::new(
            params,
            DefectSet::none(),
            Scene::default(),
        ));
        let mut init = HostDynamics::initial_state(&Scene::default());
        init.set(sig::HOST_SPEED, 10.0);
        sim.init(init);
        sim.step();
        sim.step();
        let jerk = real(sim.state(), sig::HOST_JERK, 0.0);
        assert!(jerk < -20.0, "hard-brake step must spike jerk, got {jerk}");
    }
}
