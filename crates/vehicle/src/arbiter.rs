//! The Arbiter: selects which source's acceleration and steering requests
//! become the vehicle commands (thesis §5.2.1, §5.3.2).
//!
//! The thesis's ICPA pass surfaced four design hazards in this component,
//! all re-injected here behind [`DefectSet`] switches:
//!
//! * arbitration is split between a longitudinal stage and a steering
//!   stage, complicating coordinated actions;
//! * the steering stage's priority order is the *reverse* of the
//!   acceleration stage's — and the steering stage actually gates which
//!   requests are forwarded, while the acceleration stage only sets the
//!   `selected` flags (scenario 2, Fig. 5.4);
//! * separate `selected` flags allow control to be attributed to multiple
//!   sources at once (scenario 6, Fig. 5.11: LCA *and* ACC selected);
//! * the driver-override path is incomplete: active features win over the
//!   pedals (scenario 4, Fig. 5.8).

use crate::config::{DefectSet, VehicleParams};
use crate::features::{boolean, real};
use crate::signals as sig;
use esafe_logic::{State, Value};
use esafe_sim::{SimTime, Subsystem};

/// Steering-capable features in correct priority order.
const STEERING_PRIORITY: [&str; 2] = ["PA", "LCA"];

/// The arbitration subsystem.
#[derive(Debug)]
pub struct Arbiter {
    params: VehicleParams,
    defects: DefectSet,
    last_cmd: f64,
    last_steering_cmd: f64,
}

impl Arbiter {
    /// Creates the arbiter.
    pub fn new(params: VehicleParams, defects: DefectSet) -> Self {
        Arbiter {
            params,
            defects,
            last_cmd: 0.0,
            last_steering_cmd: 0.0,
        }
    }

    /// Seeds the blackboard with the arbiter's initial outputs.
    pub fn initial_state() -> State {
        State::new()
            .with_real(sig::ACCEL_CMD, 0.0)
            .with_real(sig::ACCEL_CMD_RATE, 0.0)
            .with_sym(sig::ACCEL_SOURCE, "DRIVER")
            .with_real(sig::STEERING_CMD, 0.0)
            .with_sym(sig::STEERING_SOURCE, "NONE")
            .with_bool("arbiter.driver_selected", true)
    }
}

impl Subsystem for Arbiter {
    fn name(&self) -> &str {
        "Arbiter"
    }

    fn step(&mut self, t: &SimTime, prev: &State, next: &mut State) {
        let speed = real(prev, sig::HOST_SPEED, 0.0);
        let driver_request = real(prev, sig::DRIVER_ACCEL_REQUEST, 0.0);
        let throttle = real(prev, sig::DRIVER_THROTTLE, 0.0) > 0.05;
        let brake = real(prev, sig::DRIVER_BRAKE, 0.0) > 0.05;
        let pedal = throttle || brake;
        let steering_active = boolean(prev, sig::DRIVER_STEERING_ACTIVE);

        // ---- Stage 1: acceleration arbitration (CA > RCA > PA > LCA > ACC).
        let mut winner: Option<&str> = None;
        for f in sig::FEATURES {
            if boolean(prev, &sig::active(f)) {
                winner = Some(f);
                break;
            }
        }

        // Scenario-10 defect: an engage request from a stop mis-selects ACC
        // even though ACC never reported itself active (Fig. 5.15).
        if winner.is_none()
            && self.defects.acc_ghost_accel_from_stop
            && boolean(prev, &sig::hmi_engage("ACC"))
            && real(prev, &sig::accel_request("ACC"), 0.0) > 0.0
            && speed.abs() < 0.05
        {
            winner = Some("ACC");
        }

        // Driver override: pedals displace a feature whose request is not a
        // hard stop (goals 5/9). The thesis implementation lacked this path
        // — features won over the pedals (Fig. 5.8) — so the defect switch
        // removes it.
        if let Some(f) = winner {
            if pedal && !self.defects.acc_throttle_handoff_glitch {
                let req = real(prev, &sig::accel_request(f), 0.0);
                let overridable = if speed >= 0.0 {
                    req >= -2.0
                } else {
                    req <= 2.0
                };
                if overridable {
                    winner = None;
                }
            }
        }

        let (mut cmd, src) = match winner {
            Some(f) => (real(prev, &sig::accel_request(f), 0.0), f),
            None => (driver_request, "DRIVER"),
        };

        // ---- Stage 2: steering arbitration.
        let steer_order: [&str; 2] = if self.defects.steering_arbitration_reversed {
            ["LCA", "PA"]
        } else {
            STEERING_PRIORITY
        };
        let mut steer_winner: Option<&str> = None;
        if !steering_active {
            for f in steer_order {
                if boolean(prev, &sig::requests_steering(f)) {
                    steer_winner = Some(f);
                    break;
                }
            }
        }
        let (steering_cmd, steering_src) = if steering_active {
            (real(prev, sig::DRIVER_STEERING, 0.0), "DRIVER")
        } else {
            match steer_winner {
                Some("LCA") if self.defects.lca_steering_ignored => {
                    // Attributed to LCA, but the command never changes
                    // (Fig. 5.10).
                    (self.last_steering_cmd, "LCA")
                }
                Some(f) => (real(prev, &sig::steering_request(f), 0.0), f),
                None => (0.0, "NONE"),
            }
        };

        // Scenario-2 defect: the steering stage's winner captures the
        // forwarded *acceleration* value while the stage-1 `selected`
        // flags and source tag stand (Fig. 5.4).
        if self.defects.steering_arbitration_reversed {
            if let Some(f) = steer_winner {
                if f != src {
                    cmd = real(prev, &sig::accel_request(f), 0.0);
                }
            }
        }

        // Scenario-9 defect: PA is selected but its request is not what
        // gets forwarded (Fig. 5.14).
        if src == "PA" && self.defects.pa_request_not_forwarded {
            cmd = 0.0;
        }

        // A correctly built arbiter shapes the command's positive rate at
        // handoffs so autonomous takeovers stay inside the jerk bound
        // (negative steps — braking — are always allowed). The thesis
        // implementation forwarded raw request values, part of the same
        // incomplete-handoff finding as the override defect (Fig. 5.7).
        let raw_forwarding =
            self.defects.acc_throttle_handoff_glitch || self.defects.acc_ghost_accel_from_stop;
        if src != "DRIVER" && !raw_forwarding {
            let max_step = 0.95 * self.params.jerk_limit * t.dt_seconds();
            if speed >= 0.0 {
                // Forward: positive steps are comfort-bounded, braking
                // steps pass unshaped.
                if cmd > self.last_cmd + max_step {
                    cmd = self.last_cmd + max_step;
                }
            } else if cmd < self.last_cmd - max_step {
                // Reverse: the mirror image.
                cmd = self.last_cmd - max_step;
            }
        }

        // ---- Outputs.
        let rate = (cmd - self.last_cmd) / t.dt_seconds();
        self.last_cmd = cmd;
        self.last_steering_cmd = steering_cmd;

        next.set(sig::ACCEL_CMD, cmd);
        next.set(sig::ACCEL_CMD_RATE, rate);
        next.set(sig::ACCEL_SOURCE, Value::sym(src));
        next.set(sig::STEERING_CMD, steering_cmd);
        next.set(sig::STEERING_SOURCE, Value::sym(steering_src));
        next.set("arbiter.driver_selected", src == "DRIVER");
        for f in sig::FEATURES {
            let mut selected = src == f;
            // Dual-flag hazard: LCA's longitudinal channel is executed by
            // ACC, and the implementation marks both selected (Fig. 5.11).
            if f == "ACC" && src == "LCA" {
                selected = true;
            }
            next.set(sig::selected(f), selected);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_state() -> State {
        let mut s = Arbiter::initial_state()
            .with_real(sig::HOST_SPEED, 5.0)
            .with_real(sig::DRIVER_ACCEL_REQUEST, 0.0)
            .with_real(sig::DRIVER_THROTTLE, 0.0)
            .with_real(sig::DRIVER_BRAKE, 0.0)
            .with_bool(sig::DRIVER_STEERING_ACTIVE, false)
            .with_real(sig::DRIVER_STEERING, 0.0);
        for f in sig::FEATURES {
            s.extend(
                crate::features::FeatureOutputs::initial_state(f)
                    .into_iter()
                    .map(|(k, v)| (k.clone(), v.clone())),
            );
            s.set(sig::hmi_engage(f), false);
        }
        s
    }

    fn tick(arb: &mut Arbiter, prev: &State) -> State {
        let mut next = prev.clone();
        arb.step(
            &SimTime {
                tick: 1,
                dt_millis: 1,
            },
            prev,
            &mut next,
        );
        next
    }

    fn activate(s: &mut State, feature: &str, request: f64, steering: bool) {
        s.set(sig::active(feature), true);
        s.set(sig::requests_accel(feature), true);
        s.set(sig::accel_request(feature), request);
        s.set(sig::requests_steering(feature), steering);
    }

    #[test]
    fn priority_order_prefers_ca() {
        let mut arb = Arbiter::new(VehicleParams::default(), DefectSet::none());
        let mut s = base_state();
        activate(&mut s, "ACC", 1.0, false);
        activate(&mut s, "CA", -8.0, false);
        let out = tick(&mut arb, &s);
        assert_eq!(out.get(sig::ACCEL_SOURCE), Some(&Value::sym("CA")));
        assert_eq!(real(&out, sig::ACCEL_CMD, 0.0), -8.0);
        assert!(boolean(&out, "ca.selected"));
        assert!(!boolean(&out, "acc.selected"));
    }

    #[test]
    fn driver_is_default_source() {
        let mut arb = Arbiter::new(VehicleParams::default(), DefectSet::none());
        let mut s = base_state();
        s.set(sig::DRIVER_ACCEL_REQUEST, 0.9);
        let out = tick(&mut arb, &s);
        assert_eq!(out.get(sig::ACCEL_SOURCE), Some(&Value::sym("DRIVER")));
        assert_eq!(real(&out, sig::ACCEL_CMD, 0.0), 0.9);
        assert!(boolean(&out, "arbiter.driver_selected"));
    }

    #[test]
    fn healthy_pedal_overrides_soft_requests_but_not_hard_braking() {
        let mut arb = Arbiter::new(VehicleParams::default(), DefectSet::none());
        let mut s = base_state();
        s.set(sig::DRIVER_THROTTLE, 0.5);
        s.set(sig::DRIVER_ACCEL_REQUEST, 1.5);
        activate(&mut s, "ACC", 1.0, false);
        let out = tick(&mut arb, &s);
        assert_eq!(out.get(sig::ACCEL_SOURCE), Some(&Value::sym("DRIVER")));

        // CA's −8 m/s² hard stop is not overridable.
        activate(&mut s, "CA", -8.0, false);
        let out = tick(&mut arb, &s);
        assert_eq!(out.get(sig::ACCEL_SOURCE), Some(&Value::sym("CA")));
    }

    #[test]
    fn defective_override_lets_features_win_over_pedals() {
        let defects = DefectSet {
            acc_throttle_handoff_glitch: true,
            ..DefectSet::none()
        };
        let mut arb = Arbiter::new(VehicleParams::default(), defects);
        let mut s = base_state();
        s.set(sig::DRIVER_THROTTLE, 0.5);
        activate(&mut s, "ACC", 1.0, false);
        let out = tick(&mut arb, &s);
        assert_eq!(out.get(sig::ACCEL_SOURCE), Some(&Value::sym("ACC")));
    }

    #[test]
    fn steering_hijack_defect_reproduces_scenario_2() {
        let defects = DefectSet {
            steering_arbitration_reversed: true,
            ..DefectSet::none()
        };
        let mut arb = Arbiter::new(VehicleParams::default(), defects);
        let mut s = base_state();
        activate(&mut s, "CA", -8.0, false);
        activate(&mut s, "PA", 0.0, true);
        let out = tick(&mut arb, &s);
        // CA stays selected and tagged as the source…
        assert_eq!(out.get(sig::ACCEL_SOURCE), Some(&Value::sym("CA")));
        assert!(boolean(&out, "ca.selected"));
        // …but the forwarded command is PA's request.
        assert_eq!(real(&out, sig::ACCEL_CMD, -8.0), 0.0);
        // And the steering stage attributes steering to PA.
        assert_eq!(out.get(sig::STEERING_SOURCE), Some(&Value::sym("PA")));
    }

    #[test]
    fn lca_steering_ignored_holds_the_command() {
        let defects = DefectSet {
            lca_steering_ignored: true,
            ..DefectSet::none()
        };
        let mut arb = Arbiter::new(VehicleParams::default(), defects);
        let mut s = base_state();
        activate(&mut s, "LCA", 0.3, true);
        s.set(sig::steering_request("LCA"), 0.04);
        let out = tick(&mut arb, &s);
        assert_eq!(out.get(sig::STEERING_SOURCE), Some(&Value::sym("LCA")));
        assert_eq!(real(&out, sig::STEERING_CMD, 1.0), 0.0, "command unchanged");
        // Dual-flag hazard: ACC is marked selected alongside LCA.
        assert!(boolean(&out, "lca.selected"));
        assert!(boolean(&out, "acc.selected"));
    }

    #[test]
    fn healthy_lca_steering_flows_through() {
        let mut arb = Arbiter::new(VehicleParams::default(), DefectSet::none());
        let mut s = base_state();
        activate(&mut s, "LCA", 0.3, true);
        s.set(sig::steering_request("LCA"), 0.04);
        let out = tick(&mut arb, &s);
        assert_eq!(real(&out, sig::STEERING_CMD, 0.0), 0.04);
    }

    #[test]
    fn driver_steering_overrides_features() {
        let mut arb = Arbiter::new(VehicleParams::default(), DefectSet::none());
        let mut s = base_state();
        activate(&mut s, "PA", 0.5, true);
        s.set(sig::DRIVER_STEERING_ACTIVE, true);
        s.set(sig::DRIVER_STEERING, 0.2);
        let out = tick(&mut arb, &s);
        assert_eq!(out.get(sig::STEERING_SOURCE), Some(&Value::sym("DRIVER")));
        assert_eq!(real(&out, sig::STEERING_CMD, 0.0), 0.2);
    }

    #[test]
    fn pa_forwarding_defect_decouples_command_from_request() {
        let defects = DefectSet {
            pa_request_not_forwarded: true,
            ..DefectSet::none()
        };
        let mut arb = Arbiter::new(VehicleParams::default(), defects);
        let mut s = base_state();
        s.set(sig::HOST_SPEED, 0.0);
        activate(&mut s, "PA", 0.5, true);
        let out = tick(&mut arb, &s);
        assert!(boolean(&out, "pa.selected"));
        assert_eq!(out.get(sig::ACCEL_SOURCE), Some(&Value::sym("PA")));
        assert_eq!(
            real(&out, sig::ACCEL_CMD, 1.0),
            0.0,
            "request 0.5 not forwarded"
        );
    }

    #[test]
    fn ghost_defect_mis_selects_acc_from_stop() {
        let defects = DefectSet {
            acc_ghost_accel_from_stop: true,
            ..DefectSet::none()
        };
        let mut arb = Arbiter::new(VehicleParams::default(), defects);
        let mut s = base_state();
        s.set(sig::HOST_SPEED, 0.0);
        s.set(sig::hmi_engage("ACC"), true);
        s.set(sig::accel_request("ACC"), 0.8);
        // ACC is NOT active, yet gets selected and its request forwarded.
        let out = tick(&mut arb, &s);
        assert_eq!(out.get(sig::ACCEL_SOURCE), Some(&Value::sym("ACC")));
        assert_eq!(real(&out, sig::ACCEL_CMD, 0.0), 0.8);
        assert_eq!(out.get(sig::STEERING_SOURCE), Some(&Value::sym("NONE")));
    }

    #[test]
    fn command_rate_tracks_steps() {
        let mut arb = Arbiter::new(VehicleParams::default(), DefectSet::none());
        let mut s = base_state();
        activate(&mut s, "CA", -8.0, false);
        let out = tick(&mut arb, &s);
        assert_eq!(real(&out, sig::ACCEL_CMD_RATE, 0.0), -8000.0);
        let out2 = tick(&mut arb, &out);
        assert_eq!(real(&out2, sig::ACCEL_CMD_RATE, 1.0), 0.0);
    }
}
