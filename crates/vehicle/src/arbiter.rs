//! The Arbiter: selects which source's acceleration and steering requests
//! become the vehicle commands (thesis §5.2.1, §5.3.2).
//!
//! The thesis's ICPA pass surfaced four design hazards in this component,
//! all re-injected here behind [`DefectSet`] switches:
//!
//! * arbitration is split between a longitudinal stage and a steering
//!   stage, complicating coordinated actions;
//! * the steering stage's priority order is the *reverse* of the
//!   acceleration stage's — and the steering stage actually gates which
//!   requests are forwarded, while the acceleration stage only sets the
//!   `selected` flags (scenario 2, Fig. 5.4);
//! * separate `selected` flags allow control to be attributed to multiple
//!   sources at once (scenario 6, Fig. 5.11: LCA *and* ACC selected);
//! * the driver-override path is incomplete: active features win over the
//!   pedals (scenario 4, Fig. 5.8).

use crate::config::{DefectSet, VehicleParams};
use crate::signals::{self as sig, VehicleSigs};
use esafe_logic::{SignalRead, SignalWrite};
use esafe_sim::{LaneSubsystem, SimTime};

/// Steering-capable features in correct priority order (indices into
/// [`sig::FEATURES`]).
const STEERING_PRIORITY: [usize; 2] = [sig::PA, sig::LCA];

/// The arbitration subsystem.
#[derive(Debug)]
pub struct Arbiter {
    params: VehicleParams,
    defects: DefectSet,
    sigs: VehicleSigs,
    last_cmd: f64,
    last_steering_cmd: f64,
}

impl Arbiter {
    /// Creates the arbiter.
    pub fn new(params: VehicleParams, defects: DefectSet, sigs: VehicleSigs) -> Self {
        Arbiter {
            params,
            defects,
            sigs,
            last_cmd: 0.0,
            last_steering_cmd: 0.0,
        }
    }

    /// Seeds the blackboard with the arbiter's initial outputs.
    pub fn seed<W: SignalWrite>(frame: &mut W, sigs: &VehicleSigs) {
        frame.set(sigs.accel_cmd, 0.0);
        frame.set(sigs.accel_cmd_rate, 0.0);
        frame.set(sigs.accel_source, sigs.sym_driver);
        frame.set(sigs.steering_cmd, 0.0);
        frame.set(sigs.steering_source, sigs.sym_none);
        frame.set(sigs.driver_selected, true);
    }
}

impl LaneSubsystem for Arbiter {
    fn name(&self) -> &str {
        "Arbiter"
    }

    fn step_lane<R: SignalRead, W: SignalWrite>(&mut self, t: &SimTime, prev: &R, next: &mut W) {
        let s = &self.sigs;
        let speed = prev.real_or(s.host_speed, 0.0);
        let driver_request = prev.real_or(s.driver_accel_request, 0.0);
        let throttle = prev.real_or(s.driver_throttle, 0.0) > 0.05;
        let brake = prev.real_or(s.driver_brake, 0.0) > 0.05;
        let pedal = throttle || brake;
        let steering_active = prev.bool_or(s.driver_steering_active, false);

        // ---- Stage 1: acceleration arbitration (CA > RCA > PA > LCA > ACC).
        let mut winner: Option<usize> = None;
        for (i, f) in s.features.iter().enumerate() {
            if prev.bool_or(f.active, false) {
                winner = Some(i);
                break;
            }
        }

        // Scenario-10 defect: an engage request from a stop mis-selects ACC
        // even though ACC never reported itself active (Fig. 5.15).
        if winner.is_none()
            && self.defects.acc_ghost_accel_from_stop
            && prev.bool_or(s.features[sig::ACC].hmi_engage, false)
            && prev.real_or(s.features[sig::ACC].accel_request, 0.0) > 0.0
            && speed.abs() < 0.05
        {
            winner = Some(sig::ACC);
        }

        // Driver override: pedals displace a feature whose request is not a
        // hard stop (goals 5/9). The thesis implementation lacked this path
        // — features won over the pedals (Fig. 5.8) — so the defect switch
        // removes it.
        if let Some(f) = winner {
            if pedal && !self.defects.acc_throttle_handoff_glitch {
                let req = prev.real_or(s.features[f].accel_request, 0.0);
                let overridable = if speed >= 0.0 {
                    req >= -2.0
                } else {
                    req <= 2.0
                };
                if overridable {
                    winner = None;
                }
            }
        }

        let mut cmd = match winner {
            Some(f) => prev.real_or(s.features[f].accel_request, 0.0),
            None => driver_request,
        };

        // ---- Stage 2: steering arbitration.
        let steer_order: [usize; 2] = if self.defects.steering_arbitration_reversed {
            [sig::LCA, sig::PA]
        } else {
            STEERING_PRIORITY
        };
        let mut steer_winner: Option<usize> = None;
        if !steering_active {
            for f in steer_order {
                if prev.bool_or(s.features[f].requests_steering, false) {
                    steer_winner = Some(f);
                    break;
                }
            }
        }
        let (steering_cmd, steering_src) = if steering_active {
            (prev.real_or(s.driver_steering, 0.0), s.sym_driver)
        } else {
            match steer_winner {
                Some(sig::LCA) if self.defects.lca_steering_ignored => {
                    // Attributed to LCA, but the command never changes
                    // (Fig. 5.10).
                    (self.last_steering_cmd, s.features[sig::LCA].tag)
                }
                Some(f) => (
                    prev.real_or(s.features[f].steering_request, 0.0),
                    s.features[f].tag,
                ),
                None => (0.0, s.sym_none),
            }
        };

        // Scenario-2 defect: the steering stage's winner captures the
        // forwarded *acceleration* value while the stage-1 `selected`
        // flags and source tag stand (Fig. 5.4).
        if self.defects.steering_arbitration_reversed {
            if let Some(f) = steer_winner {
                if Some(f) != winner {
                    cmd = prev.real_or(s.features[f].accel_request, 0.0);
                }
            }
        }

        // Scenario-9 defect: PA is selected but its request is not what
        // gets forwarded (Fig. 5.14).
        if winner == Some(sig::PA) && self.defects.pa_request_not_forwarded {
            cmd = 0.0;
        }

        // A correctly built arbiter shapes the command's positive rate at
        // handoffs so autonomous takeovers stay inside the jerk bound
        // (negative steps — braking — are always allowed). The thesis
        // implementation forwarded raw request values, part of the same
        // incomplete-handoff finding as the override defect (Fig. 5.7).
        let raw_forwarding =
            self.defects.acc_throttle_handoff_glitch || self.defects.acc_ghost_accel_from_stop;
        if winner.is_some() && !raw_forwarding {
            let max_step = 0.95 * self.params.jerk_limit * t.dt_seconds();
            if speed >= 0.0 {
                // Forward: positive steps are comfort-bounded, braking
                // steps pass unshaped.
                if cmd > self.last_cmd + max_step {
                    cmd = self.last_cmd + max_step;
                }
            } else if cmd < self.last_cmd - max_step {
                // Reverse: the mirror image.
                cmd = self.last_cmd - max_step;
            }
        }

        // ---- Outputs.
        let rate = (cmd - self.last_cmd) / t.dt_seconds();
        self.last_cmd = cmd;
        self.last_steering_cmd = steering_cmd;

        next.set(s.accel_cmd, cmd);
        next.set(s.accel_cmd_rate, rate);
        next.set(
            s.accel_source,
            match winner {
                Some(f) => s.features[f].tag,
                None => s.sym_driver,
            },
        );
        next.set(s.steering_cmd, steering_cmd);
        next.set(s.steering_source, steering_src);
        next.set(s.driver_selected, winner.is_none());
        for (i, f) in s.features.iter().enumerate() {
            let mut selected = winner == Some(i);
            // Dual-flag hazard: LCA's longitudinal channel is executed by
            // ACC, and the implementation marks both selected (Fig. 5.11).
            if i == sig::ACC && winner == Some(sig::LCA) {
                selected = true;
            }
            next.set(f.selected, selected);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureOutputs;
    use crate::signals::vehicle_table;
    use esafe_logic::{Frame, SignalTable, Value};
    use esafe_sim::Subsystem;
    use std::sync::Arc;

    fn base_state(table: &Arc<SignalTable>, sigs: &VehicleSigs) -> Frame {
        let mut f = table.frame();
        Arbiter::seed(&mut f, sigs);
        f.set(sigs.host_speed, 5.0);
        f.set(sigs.driver_accel_request, 0.0);
        f.set(sigs.driver_throttle, 0.0);
        f.set(sigs.driver_brake, 0.0);
        f.set(sigs.driver_steering_active, false);
        f.set(sigs.driver_steering, 0.0);
        for fs in &sigs.features {
            FeatureOutputs::seed(&mut f, fs);
            f.set(fs.hmi_engage, false);
        }
        f
    }

    fn tick(arb: &mut Arbiter, prev: &Frame) -> Frame {
        let mut next = prev.clone();
        arb.step(
            &SimTime {
                tick: 1,
                dt_millis: 1,
            },
            prev,
            &mut next,
        );
        next
    }

    fn activate(f: &mut Frame, sigs: &VehicleSigs, feature: usize, request: f64, steering: bool) {
        let fs = &sigs.features[feature];
        f.set(fs.active, true);
        f.set(fs.requests_accel, true);
        f.set(fs.accel_request, request);
        f.set(fs.requests_steering, steering);
    }

    #[test]
    fn priority_order_prefers_ca() {
        let (table, sigs) = vehicle_table();
        let mut arb = Arbiter::new(VehicleParams::default(), DefectSet::none(), sigs);
        let mut s = base_state(&table, &sigs);
        activate(&mut s, &sigs, sig::ACC, 1.0, false);
        activate(&mut s, &sigs, sig::CA, -8.0, false);
        let out = tick(&mut arb, &s);
        assert_eq!(out.get(sigs.accel_source), Some(Value::sym("CA")));
        assert_eq!(out.real_or(sigs.accel_cmd, 0.0), -8.0);
        assert!(out.bool_or(sigs.features[sig::CA].selected, false));
        assert!(!out.bool_or(sigs.features[sig::ACC].selected, true));
    }

    #[test]
    fn driver_is_default_source() {
        let (table, sigs) = vehicle_table();
        let mut arb = Arbiter::new(VehicleParams::default(), DefectSet::none(), sigs);
        let mut s = base_state(&table, &sigs);
        s.set(sigs.driver_accel_request, Value::Real(0.9));
        let out = tick(&mut arb, &s);
        assert_eq!(out.get(sigs.accel_source), Some(sigs.sym_driver));
        assert_eq!(out.real_or(sigs.accel_cmd, 0.0), 0.9);
        assert!(out.bool_or(sigs.driver_selected, false));
    }

    #[test]
    fn healthy_pedal_overrides_soft_requests_but_not_hard_braking() {
        let (table, sigs) = vehicle_table();
        let mut arb = Arbiter::new(VehicleParams::default(), DefectSet::none(), sigs);
        let mut s = base_state(&table, &sigs);
        s.set(sigs.driver_throttle, Value::Real(0.5));
        s.set(sigs.driver_accel_request, Value::Real(1.5));
        activate(&mut s, &sigs, sig::ACC, 1.0, false);
        let out = tick(&mut arb, &s);
        assert_eq!(out.get(sigs.accel_source), Some(sigs.sym_driver));

        // CA's −8 m/s² hard stop is not overridable.
        activate(&mut s, &sigs, sig::CA, -8.0, false);
        let out = tick(&mut arb, &s);
        assert_eq!(out.get(sigs.accel_source), Some(Value::sym("CA")));
    }

    #[test]
    fn defective_override_lets_features_win_over_pedals() {
        let (table, sigs) = vehicle_table();
        let defects = DefectSet {
            acc_throttle_handoff_glitch: true,
            ..DefectSet::none()
        };
        let mut arb = Arbiter::new(VehicleParams::default(), defects, sigs);
        let mut s = base_state(&table, &sigs);
        s.set(sigs.driver_throttle, Value::Real(0.5));
        activate(&mut s, &sigs, sig::ACC, 1.0, false);
        let out = tick(&mut arb, &s);
        assert_eq!(out.get(sigs.accel_source), Some(Value::sym("ACC")));
    }

    #[test]
    fn steering_hijack_defect_reproduces_scenario_2() {
        let (table, sigs) = vehicle_table();
        let defects = DefectSet {
            steering_arbitration_reversed: true,
            ..DefectSet::none()
        };
        let mut arb = Arbiter::new(VehicleParams::default(), defects, sigs);
        let mut s = base_state(&table, &sigs);
        activate(&mut s, &sigs, sig::CA, -8.0, false);
        activate(&mut s, &sigs, sig::PA, 0.0, true);
        let out = tick(&mut arb, &s);
        // CA stays selected and tagged as the source…
        assert_eq!(out.get(sigs.accel_source), Some(Value::sym("CA")));
        assert!(out.bool_or(sigs.features[sig::CA].selected, false));
        // …but the forwarded command is PA's request.
        assert_eq!(out.real_or(sigs.accel_cmd, -8.0), 0.0);
        // And the steering stage attributes steering to PA.
        assert_eq!(out.get(sigs.steering_source), Some(Value::sym("PA")));
    }

    #[test]
    fn lca_steering_ignored_holds_the_command() {
        let (table, sigs) = vehicle_table();
        let defects = DefectSet {
            lca_steering_ignored: true,
            ..DefectSet::none()
        };
        let mut arb = Arbiter::new(VehicleParams::default(), defects, sigs);
        let mut s = base_state(&table, &sigs);
        activate(&mut s, &sigs, sig::LCA, 0.3, true);
        s.set(sigs.features[sig::LCA].steering_request, Value::Real(0.04));
        let out = tick(&mut arb, &s);
        assert_eq!(out.get(sigs.steering_source), Some(Value::sym("LCA")));
        assert_eq!(
            out.real_or(sigs.steering_cmd, 1.0),
            0.0,
            "command unchanged"
        );
        // Dual-flag hazard: ACC is marked selected alongside LCA.
        assert!(out.bool_or(sigs.features[sig::LCA].selected, false));
        assert!(out.bool_or(sigs.features[sig::ACC].selected, false));
    }

    #[test]
    fn healthy_lca_steering_flows_through() {
        let (table, sigs) = vehicle_table();
        let mut arb = Arbiter::new(VehicleParams::default(), DefectSet::none(), sigs);
        let mut s = base_state(&table, &sigs);
        activate(&mut s, &sigs, sig::LCA, 0.3, true);
        s.set(sigs.features[sig::LCA].steering_request, Value::Real(0.04));
        let out = tick(&mut arb, &s);
        assert_eq!(out.real_or(sigs.steering_cmd, 0.0), 0.04);
    }

    #[test]
    fn driver_steering_overrides_features() {
        let (table, sigs) = vehicle_table();
        let mut arb = Arbiter::new(VehicleParams::default(), DefectSet::none(), sigs);
        let mut s = base_state(&table, &sigs);
        activate(&mut s, &sigs, sig::PA, 0.5, true);
        s.set(sigs.driver_steering_active, true);
        s.set(sigs.driver_steering, Value::Real(0.2));
        let out = tick(&mut arb, &s);
        assert_eq!(out.get(sigs.steering_source), Some(sigs.sym_driver));
        assert_eq!(out.real_or(sigs.steering_cmd, 0.0), 0.2);
    }

    #[test]
    fn pa_forwarding_defect_decouples_command_from_request() {
        let (table, sigs) = vehicle_table();
        let defects = DefectSet {
            pa_request_not_forwarded: true,
            ..DefectSet::none()
        };
        let mut arb = Arbiter::new(VehicleParams::default(), defects, sigs);
        let mut s = base_state(&table, &sigs);
        s.set(sigs.host_speed, Value::Real(0.0));
        activate(&mut s, &sigs, sig::PA, 0.5, true);
        let out = tick(&mut arb, &s);
        assert!(out.bool_or(sigs.features[sig::PA].selected, false));
        assert_eq!(out.get(sigs.accel_source), Some(Value::sym("PA")));
        assert_eq!(
            out.real_or(sigs.accel_cmd, 1.0),
            0.0,
            "request 0.5 not forwarded"
        );
    }

    #[test]
    fn ghost_defect_mis_selects_acc_from_stop() {
        let (table, sigs) = vehicle_table();
        let defects = DefectSet {
            acc_ghost_accel_from_stop: true,
            ..DefectSet::none()
        };
        let mut arb = Arbiter::new(VehicleParams::default(), defects, sigs);
        let mut s = base_state(&table, &sigs);
        s.set(sigs.host_speed, Value::Real(0.0));
        s.set(sigs.features[sig::ACC].hmi_engage, true);
        s.set(sigs.features[sig::ACC].accel_request, Value::Real(0.8));
        // ACC is NOT active, yet gets selected and its request forwarded.
        let out = tick(&mut arb, &s);
        assert_eq!(out.get(sigs.accel_source), Some(Value::sym("ACC")));
        assert_eq!(out.real_or(sigs.accel_cmd, 0.0), 0.8);
        assert_eq!(out.get(sigs.steering_source), Some(sigs.sym_none));
    }

    #[test]
    fn command_rate_tracks_steps() {
        let (table, sigs) = vehicle_table();
        let mut arb = Arbiter::new(VehicleParams::default(), DefectSet::none(), sigs);
        let mut s = base_state(&table, &sigs);
        activate(&mut s, &sigs, sig::CA, -8.0, false);
        let out = tick(&mut arb, &s);
        assert_eq!(out.real_or(sigs.accel_cmd_rate, 0.0), -8000.0);
        let out2 = tick(&mut arb, &out);
        assert_eq!(out2.real_or(sigs.accel_cmd_rate, 1.0), 0.0);
    }
}
