//! The semi-autonomous automotive substrate of the thesis's Chapter 5
//! evaluation: a deterministic 1 kHz vehicle simulation with five
//! driver-assistance features (CA, RCA, ACC, LCA, PA), a two-stage
//! arbiter, a scripted driver/HMI, and a point-mass plant — plus the nine
//! vehicle-level safety goals (Tables 5.1–5.2), the Table 5.3 monitoring
//! hierarchy, and a [`config::DefectSet`] that re-injects every defect the
//! thesis's monitors uncovered in the research lab's partial
//! implementation.
//!
//! # Example — catching the rogue-PA defect through the harness
//!
//! ```
//! use esafe_harness::Experiment;
//! use esafe_vehicle::config::DefectSet;
//! use esafe_vehicle::driver::DriverAction;
//! use esafe_vehicle::dynamics::{Scene, SceneObject};
//! use esafe_vehicle::substrate::VehicleSubstrate;
//!
//! let substrate = VehicleSubstrate::new(
//!     DefectSet::thesis(),
//!     Scene { lead: Some(SceneObject::constant(20.0, 0.0)),
//!             rear: None },
//!     vec![(0.5, DriverAction::Enable("CA".into(), true)),
//!          (1.0, DriverAction::Throttle(0.10))],
//! )
//! .with_duration_s(0.5);
//! let report = Experiment::new(&substrate).run().unwrap();
//! // The rogue PA requests violate subgoal 4B at PA within the first
//! // half-second (the thesis's scenario-1 false positive).
//! assert!(!report.violations_for("4B:PA").is_empty());
//! ```

pub mod arbiter;
pub mod builder;
pub mod config;
pub mod driver;
pub mod dynamics;
pub mod features;
pub mod goals;
pub mod icpa_model;
pub mod probe;
pub mod signals;
pub mod substrate;

pub use builder::build_vehicle;
pub use config::{DefectSet, VehicleParams};
pub use substrate::{VehicleFamily, VehicleSubstrate};
