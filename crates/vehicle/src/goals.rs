//! The nine vehicle-level safety goals (thesis Tables 5.1–5.2), their
//! ICPA-derived subgoals, and the monitoring-location matrix (Table 5.3).
//!
//! Goal numbering follows Table 5.3:
//!
//! 1. `Achieve[AutoAccelBelowThreshold]`
//! 2. `Achieve[AutoJerkBelowThreshold]`
//! 3. `Achieve[SubsystemAccelSteeringAgreement]` (single responsibility —
//!    Arbiter only)
//! 4. `Achieve[NoAutoAccelFromStop]`
//! 5. `Achieve[DriverForwardAccelOverride]`
//! 6. `Achieve[DriverSteeringOverride]`
//! 7. `Achieve[ForwardBlockAccelSteering]`
//! 8. `Achieve[BackwardBlockAccelSteering]`
//! 9. `Achieve[DriverBackwardAccelOverride]`
//!
//! All `A` subgoals monitor the Arbiter's command stream; the `B` subgoals
//! monitor individual feature subsystems' request streams (OR-reduced
//! restrictive forms per §5.3: "it is simpler to always prohibit the
//! subsystems from requesting excessive vehicle acceleration or jerk").

use crate::config::VehicleParams;
use crate::signals as sig;
use esafe_core::{Goal, GoalClass};
use esafe_logic::{parse, EvalError, Expr, SignalTable};
use esafe_monitor::{Location, MonitorSuite};
use std::sync::Arc;

/// The window used for goal 4's `StoppedTime` / `GoTime` (ms). The thesis
/// does not publish the constant; 300 ms is within the plausible band.
pub const STOP_WINDOW_MS: u64 = 300;

/// One vehicle safety goal plus its monitored subgoals.
#[derive(Debug, Clone)]
pub struct GoalSpec {
    /// Goal number as in Table 5.3 (`"1"` … `"9"`).
    pub id: &'static str,
    /// The system-level goal (monitored at the `Vehicle` location).
    pub goal: Goal,
    /// The Arbiter-level subgoal (`<id>A`), if any.
    pub arbiter_subgoal: Option<Goal>,
    /// Feature-level subgoals (`<id>B`) as `(feature, goal)` pairs.
    pub feature_subgoals: Vec<(&'static str, Goal)>,
}

fn p(src: &str) -> Expr {
    parse(src).unwrap_or_else(|e| panic!("bad goal formula `{src}`: {e}"))
}

fn goal(name: &str, class: GoalClass, informal: &str, formal: Expr) -> Goal {
    Goal::new(name, class, informal, formal)
}

/// Conjunction over features of a per-feature formula template, with `{X}`
/// replaced by the feature tag and `{x}` by its lowercase form.
fn for_each_feature(features: &[&str], template: &str) -> Expr {
    Expr::and_all(
        features
            .iter()
            .map(|f| p(&template.replace("{X}", f).replace("{x}", &f.to_lowercase()))),
    )
}

/// Builds the nine goal specifications.
pub fn specs(params: &VehicleParams) -> Vec<GoalSpec> {
    let accel = params.accel_limit;
    let jerk = params.jerk_limit;
    let w = STOP_WINDOW_MS;
    let all = sig::FEATURES;
    let steering_features = ["PA", "LCA"];
    let forward_features = ["CA", "ACC", "LCA"];

    let from_stop_ante = format!(
        "held_for(probe.stopped, {w}ms) && !once_within(probe.throttle_applied, {w}ms) \
         && !once_within(hmi.go, {w}ms)"
    );

    vec![
        GoalSpec {
            id: "1",
            goal: goal(
                "Achieve[AutoAccelBelowThreshold]",
                GoalClass::Achieve,
                "Vehicle acceleration caused by autonomous vehicle control \
                 shall not exceed 2 m/s². Deceleration is exempt (forward \
                 braking is negative, reverse braking positive), so the \
                 bound is monitored in forward motion.",
                p(&format!(
                    "(probe.auto_accel_source && probe.forward) -> host.accel <= {accel}"
                )),
            ),
            arbiter_subgoal: Some(goal(
                "Achieve[AutoAccelCommandBelowThreshold]",
                GoalClass::Achieve,
                "The arbitrated acceleration command from an autonomous \
                 source shall not exceed the threshold.",
                p(&format!(
                    "(probe.auto_accel_source && probe.forward) -> arbiter.accel_cmd <= {accel}"
                )),
            )),
            feature_subgoals: all
                .iter()
                .map(|f| {
                    (
                        *f,
                        goal(
                            "Maintain[AutoAccelRequestBelowThreshold]",
                            GoalClass::Maintain,
                            "The feature shall never request acceleration \
                             above the threshold (OR-reduced restrictive \
                             form).",
                            p(&if *f == "RCA" {
                                format!(
                                    "always(prev(probe.forward) -> {}.accel_request <= {accel})",
                                    f.to_lowercase()
                                )
                            } else {
                                format!(
                                    "always({}.accel_request <= {accel})",
                                    f.to_lowercase()
                                )
                            }),
                        ),
                    )
                })
                .collect(),
        },
        GoalSpec {
            id: "2",
            goal: goal(
                "Achieve[AutoJerkBelowThreshold]",
                GoalClass::Achieve,
                "Vehicle jerk caused by autonomous vehicle control shall \
                 not exceed 2.5 m/s³ (sudden deceleration is permitted for \
                 emergency stops; the bound is on positive jerk).",
                p(&format!(
                    "(probe.auto_accel_source && probe.forward) -> host.jerk <= {jerk}"
                )),
            ),
            arbiter_subgoal: Some(goal(
                "Achieve[AutoJerkCommandBelowThreshold]",
                GoalClass::Achieve,
                "The arbitrated command's rate of change from an autonomous \
                 source shall not exceed the jerk threshold.",
                p(&format!(
                    "(probe.auto_accel_source && probe.forward) -> arbiter.accel_cmd_rate <= {jerk}"
                )),
            )),
            feature_subgoals: all
                .iter()
                .map(|f| {
                    (
                        *f,
                        goal(
                            "Maintain[AutoJerkRequestBelowThreshold]",
                            GoalClass::Maintain,
                            "The feature's request stream shall never rise \
                             faster than the jerk threshold.",
                            p(&if *f == "RCA" {
                                format!(
                                    "always(prev(probe.forward) -> {}.accel_request_rate <= {jerk})",
                                    f.to_lowercase()
                                )
                            } else {
                                format!(
                                    "always({}.accel_request_rate <= {jerk})",
                                    f.to_lowercase()
                                )
                            }),
                        ),
                    )
                })
                .collect(),
        },
        GoalSpec {
            id: "3",
            goal: goal(
                "Achieve[SubsystemAccelSteeringAgreement]",
                GoalClass::Achieve,
                "If a subsystem requests control of acceleration and \
                 steering and is granted either, it shall control both.",
                for_each_feature(
                    &all,
                    "({x}.requests_accel && {x}.requests_steering && \
                     (arbiter.accel_source == '{X}' || arbiter.steering_source == '{X}')) \
                     -> (arbiter.accel_source == '{X}' && arbiter.steering_source == '{X}')",
                ),
            ),
            arbiter_subgoal: Some(goal(
                "Achieve[SubsystemAccelSteeringCommandAgreement]",
                GoalClass::Achieve,
                "Single responsibility: only the Arbiter can satisfy this \
                 goal (maintaining arbitration logic in every feature is \
                 impractical — §5.3).",
                for_each_feature(
                    &all,
                    "({x}.requests_accel && {x}.requests_steering && \
                     (arbiter.accel_source == '{X}' || arbiter.steering_source == '{X}')) \
                     -> (arbiter.accel_source == '{X}' && arbiter.steering_source == '{X}')",
                ),
            )),
            feature_subgoals: vec![],
        },
        GoalSpec {
            id: "4",
            goal: goal(
                "Achieve[NoAutoAccelFromStop]",
                GoalClass::Achieve,
                "A vehicle stopped for StoppedTime with no throttle and no \
                 HMI go signal shall not accelerate under autonomous \
                 control.",
                p(&format!(
                    "({from_stop_ante} && probe.auto_accel_source) -> !probe.accelerating"
                )),
            ),
            arbiter_subgoal: Some(goal(
                "Achieve[NoAutoAccelCommandFromStop]",
                GoalClass::Achieve,
                "The arbitrated command shall not be positive from an \
                 unauthorized stop.",
                p(&format!(
                    "({from_stop_ante} && probe.auto_accel_source) -> arbiter.accel_cmd <= 0.0"
                )),
            )),
            feature_subgoals: all
                .iter()
                .map(|f| {
                    (
                        *f,
                        goal(
                            "Achieve[NoAutoAccelRequestFromStop]",
                            GoalClass::Achieve,
                            "The feature shall not request positive \
                             acceleration from an unauthorized stop.",
                            p(&format!(
                                "({from_stop_ante}) -> {}.accel_request <= 0.0",
                                f.to_lowercase()
                            )),
                        ),
                    )
                })
                .collect(),
        },
        GoalSpec {
            id: "5",
            goal: goal(
                "Achieve[DriverForwardAccelOverride]",
                GoalClass::Achieve,
                "In forward motion with a pedal applied, a subsystem not \
                 requesting a hard stop (≥ −2 m/s²) shall not control \
                 acceleration.",
                for_each_feature(
                    &all,
                    "(probe.forward && probe.pedal_applied && {x}.requests_accel \
                     && {x}.accel_request >= -2.0) -> arbiter.accel_source != '{X}'",
                ),
            ),
            arbiter_subgoal: Some(goal(
                "Achieve[DriverForwardAccelOverrideAccelCommand]",
                GoalClass::Achieve,
                "The Arbiter shall not select an overridable feature while \
                 a pedal is applied in forward motion.",
                for_each_feature(
                    &all,
                    "(probe.forward && probe.pedal_applied && {x}.requests_accel \
                     && {x}.accel_request >= -2.0) -> arbiter.accel_source != '{X}'",
                ),
            )),
            feature_subgoals: all
                .iter()
                .map(|f| {
                    (
                        *f,
                        goal(
                            "Achieve[DriverForwardAccelOverrideAccelRequest]",
                            GoalClass::Achieve,
                            "The feature shall cease requesting control \
                             under a driver pedal in forward motion.",
                            p(&format!(
                                "(probe.forward && probe.pedal_applied && \
                                 {x}.accel_request >= -2.0) -> !{x}.active",
                                x = f.to_lowercase()
                            )),
                        ),
                    )
                })
                .collect(),
        },
        GoalSpec {
            id: "6",
            goal: goal(
                "Achieve[DriverSteeringOverride]",
                GoalClass::Achieve,
                "If the driver is turning the steering wheel, no subsystem \
                 shall control vehicle steering.",
                p("driver.steering_active -> !probe.auto_steering_source"),
            ),
            arbiter_subgoal: Some(goal(
                "Achieve[DriverSteeringOverrideSteeringCommand]",
                GoalClass::Achieve,
                "The Arbiter shall attribute steering to the driver while \
                 the wheel is active.",
                p("driver.steering_active -> !probe.auto_steering_source"),
            )),
            feature_subgoals: steering_features
                .iter()
                .map(|f| {
                    (
                        *f,
                        goal(
                            "Achieve[DriverSteeringOverrideSteeringRequest]",
                            GoalClass::Achieve,
                            "The feature shall drop steering requests while \
                             the driver steers.",
                            p(&format!(
                                "driver.steering_active -> !{}.requests_steering",
                                f.to_lowercase()
                            )),
                        ),
                    )
                })
                .collect(),
        },
        GoalSpec {
            id: "7",
            goal: goal(
                "Achieve[ForwardBlockAccelSteering]",
                GoalClass::Achieve,
                "In forward motion, RCA shall not control vehicle \
                 acceleration or steering.",
                p("probe.forward -> (arbiter.accel_source != 'RCA' && \
                   arbiter.steering_source != 'RCA')"),
            ),
            arbiter_subgoal: Some(goal(
                "Achieve[ForwardBlockAccelSteeringCommand]",
                GoalClass::Achieve,
                "The Arbiter shall never select RCA in forward motion.",
                p("probe.forward -> (arbiter.accel_source != 'RCA' && \
                   arbiter.steering_source != 'RCA')"),
            )),
            feature_subgoals: vec![(
                "RCA",
                goal(
                    "Achieve[ForwardBlockAccelSteeringRequest]",
                    GoalClass::Achieve,
                    "RCA shall not request control in forward motion.",
                    p("probe.forward -> !rca.active"),
                ),
            )],
        },
        GoalSpec {
            id: "8",
            goal: goal(
                "Achieve[BackwardBlockAccelSteering]",
                GoalClass::Achieve,
                "In backward motion, CA, ACC, and LCA shall not control \
                 vehicle acceleration or steering.",
                for_each_feature(
                    &forward_features,
                    "probe.backward -> (arbiter.accel_source != '{X}' && \
                     arbiter.steering_source != '{X}')",
                ),
            ),
            arbiter_subgoal: Some(goal(
                "Achieve[BackwardBlockAccelSteeringCommand]",
                GoalClass::Achieve,
                "The Arbiter shall never select the forward features in \
                 backward motion.",
                for_each_feature(
                    &forward_features,
                    "probe.backward -> (arbiter.accel_source != '{X}' && \
                     arbiter.steering_source != '{X}')",
                ),
            )),
            feature_subgoals: forward_features
                .iter()
                .map(|f| {
                    (
                        *f,
                        goal(
                            "Achieve[BackwardBlockAccelSteeringRequest]",
                            GoalClass::Achieve,
                            "The feature shall not request control in \
                             backward motion.",
                            p(&format!(
                                "probe.backward -> !{}.active",
                                f.to_lowercase()
                            )),
                        ),
                    )
                })
                .collect(),
        },
        GoalSpec {
            id: "9",
            goal: goal(
                "Achieve[DriverBackwardAccelOverride]",
                GoalClass::Achieve,
                "In backward motion with a pedal applied, a subsystem not \
                 requesting a hard stop (≤ 2 m/s²) shall not control \
                 acceleration.",
                for_each_feature(
                    &all,
                    "(probe.backward && probe.pedal_applied && {x}.requests_accel \
                     && {x}.accel_request <= 2.0) -> arbiter.accel_source != '{X}'",
                ),
            ),
            arbiter_subgoal: Some(goal(
                "Achieve[DriverBackwardAccelOverrideAccelCommand]",
                GoalClass::Achieve,
                "The Arbiter shall not select an overridable feature while \
                 a pedal is applied in backward motion.",
                for_each_feature(
                    &all,
                    "(probe.backward && probe.pedal_applied && {x}.requests_accel \
                     && {x}.accel_request <= 2.0) -> arbiter.accel_source != '{X}'",
                ),
            )),
            feature_subgoals: all
                .iter()
                .map(|f| {
                    (
                        *f,
                        goal(
                            "Achieve[DriverBackwardAccelOverrideAccelRequest]",
                            GoalClass::Achieve,
                            "The feature shall cease requesting control \
                             under a driver pedal in backward motion.",
                            p(&format!(
                                "(probe.backward && probe.pedal_applied && \
                                 {x}.accel_request <= 2.0) -> !{x}.active",
                                x = f.to_lowercase()
                            )),
                        ),
                    )
                })
                .collect(),
        },
    ]
}

/// Assembles the hierarchical monitor suite of Table 5.3 against the
/// substrate's shared signal table: every goal at the `Vehicle` location,
/// every `A` subgoal at `Arbiter`, every `B` subgoal at its feature. All
/// formula variable references resolve to signal ids at compile time.
///
/// Subgoal ids follow `"<n>A"` and `"<n>B:<FEATURE>"`.
///
/// # Errors
///
/// Propagates [`EvalError`] if any formula fails to compile or references
/// a signal outside the table (a programming error in the goal tables;
/// exercised in tests).
pub fn build_suite(
    table: &Arc<SignalTable>,
    params: &VehicleParams,
) -> Result<MonitorSuite, EvalError> {
    let mut suite = MonitorSuite::new(table.clone());
    for spec in specs(params) {
        suite.add_goal(
            spec.id,
            Location::new("Vehicle"),
            spec.goal.formal().clone(),
        )?;
        if let Some(a) = &spec.arbiter_subgoal {
            suite.add_subgoal(
                format!("{}A", spec.id),
                spec.id,
                Location::new("Arbiter"),
                a.formal().clone(),
            )?;
        }
        for (feature, g) in &spec.feature_subgoals {
            suite.add_subgoal(
                format!("{}B:{}", spec.id, feature),
                spec.id,
                Location::new(*feature),
                g.formal().clone(),
            )?;
        }
    }
    Ok(suite)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_goals_with_expected_subgoal_counts() {
        let specs = specs(&VehicleParams::default());
        assert_eq!(specs.len(), 9);
        let by_id: Vec<(usize, usize)> = specs
            .iter()
            .map(|s| {
                (
                    usize::from(s.arbiter_subgoal.is_some()),
                    s.feature_subgoals.len(),
                )
            })
            .collect();
        // goals 1,2,4,5,9: A + 5 feature subgoals; 3: A only;
        // 6: A + 2; 7: A + 1; 8: A + 3.
        assert_eq!(
            by_id,
            vec![
                (1, 5),
                (1, 5),
                (1, 0),
                (1, 5),
                (1, 5),
                (1, 2),
                (1, 1),
                (1, 3),
                (1, 5)
            ]
        );
    }

    #[test]
    fn suite_builds_and_matches_matrix_shape() {
        let (table, _sigs) = sig::vehicle_table();
        let suite = build_suite(&table, &VehicleParams::default()).unwrap();
        assert_eq!(suite.goal_ids().len(), 9);
        // 9 goals + 9 A-subgoals + (5+5+0+5+5+2+1+3+5)=31 B-subgoals = 49.
        assert_eq!(suite.location_matrix().len(), 49);
        assert_eq!(suite.subgoal_ids("1").len(), 6);
        assert_eq!(suite.subgoal_ids("3"), vec!["3A"]);
        assert_eq!(suite.subgoal_ids("7"), vec!["7A", "7B:RCA"]);
    }

    #[test]
    fn goal_one_formula_references_probe_and_plant() {
        let specs = specs(&VehicleParams::default());
        let vars = specs[0].goal.vars();
        assert!(vars.contains("probe.auto_accel_source"));
        assert!(vars.contains("host.accel"));
    }

    #[test]
    fn goal_three_covers_all_features() {
        let specs = specs(&VehicleParams::default());
        let text = specs[2].goal.formal().to_string();
        for f in sig::FEATURES {
            assert!(text.contains(&format!("'{f}'")), "missing {f}");
        }
    }

    #[test]
    fn goal_cards_render_in_kaos_format() {
        let specs = specs(&VehicleParams::default());
        let card = esafe_core::render::goal_card(&specs[3].goal);
        assert!(card.contains("Achieve[NoAutoAccelFromStop]"));
        assert!(card.contains("held_for"));
    }
}
