//! The vehicle's [`Substrate`] implementation: one scenario × defect
//! configuration, runnable under the generic experiment harness.

use crate::builder::{build_vehicle, build_vehicle_batch, VehicleLaneConfig};
use crate::config::{DefectSet, VehicleParams};
use crate::driver::DriverAction;
use crate::dynamics::Scene;
use crate::signals::{vehicle_table, VehicleSigs};
use crate::{goals, probe};
use esafe_harness::Substrate;
use esafe_logic::{EvalError, Frame, FrameBatch, SignalId, SignalTable};
use esafe_monitor::{MonitorSuite, SuiteTemplate};
use esafe_sim::{Simulator, SimulatorBatch};
use std::sync::Arc;

/// The compile-once artifacts of the vehicle substrate *family*: the
/// shared [`SignalTable`], its resolved [`VehicleSigs`], and the
/// [`SuiteTemplate`] holding every Table 5.3 goal/subgoal formula
/// compiled against that table.
///
/// A sweep builds one family up front and derives each cell's substrate
/// from it with [`VehicleFamily::substrate`]: every cell then shares one
/// namespace and one compiled goal suite, so per-cell setup is
/// O(monitors) instead of re-parsing ~49 formulas. Standalone
/// [`VehicleSubstrate::new`] still self-compiles — the reference path
/// the template-backed sweep is golden-tested against.
#[derive(Debug, Clone)]
pub struct VehicleFamily {
    params: VehicleParams,
    table: Arc<SignalTable>,
    sigs: VehicleSigs,
    template: Arc<SuiteTemplate>,
}

impl VehicleFamily {
    /// Builds the family for the given parameters: constructs the signal
    /// table and compiles the full monitor suite once.
    ///
    /// # Panics
    ///
    /// Panics if a goal formula fails to compile — the goal tables are
    /// static, so this is a programming error caught by any test.
    pub fn new(params: VehicleParams) -> Self {
        let (table, sigs) = vehicle_table();
        let template = Arc::new(
            goals::build_suite(&table, &params)
                .expect("vehicle goal tables compile against the vehicle signal table")
                .template(),
        );
        VehicleFamily {
            params,
            table,
            sigs,
            template,
        }
    }

    /// The family's parameters.
    pub fn params(&self) -> &VehicleParams {
        &self.params
    }

    /// The family's shared signal namespace.
    pub fn table(&self) -> &Arc<SignalTable> {
        &self.table
    }

    /// The compile-once goal/subgoal suite template.
    pub fn template(&self) -> &Arc<SuiteTemplate> {
        &self.template
    }

    /// Derives one cell's substrate: shares the family's table, signal
    /// ids, parameters, and suite template (`Arc` clones — no namespace
    /// or formula work).
    pub fn substrate(
        &self,
        defects: DefectSet,
        scene: Scene,
        script: Vec<(f64, DriverAction)>,
    ) -> VehicleSubstrate {
        VehicleSubstrate {
            params: self.params,
            defects,
            scene,
            script,
            duration_s: DEFAULT_DURATION_S,
            label: DEFAULT_LABEL.to_owned(),
            table: self.table.clone(),
            sigs: self.sigs,
            tracked: Vec::new(),
            template: Some(Arc::clone(&self.template)),
        }
    }
}

/// The default schedule: every thesis scenario runs 20 s.
const DEFAULT_DURATION_S: f64 = 20.0;

/// The default report label before [`VehicleSubstrate::with_label`].
const DEFAULT_LABEL: &str = "vehicle";

impl Default for VehicleFamily {
    fn default() -> Self {
        Self::new(VehicleParams::default())
    }
}

/// One monitored vehicle run: the Chapter 5 substrate under a scene, a
/// scripted driver, and a [`DefectSet`].
///
/// The substrate builds the vehicle [`SignalTable`] once at construction;
/// every simulator it assembles, every monitor suite it compiles, and
/// every sweep cell cloned from it shares that table (cloning a substrate
/// clones an `Arc`, not the namespace).
///
/// # Example
///
/// ```
/// use esafe_harness::Experiment;
/// use esafe_vehicle::config::DefectSet;
/// use esafe_vehicle::driver::DriverAction;
/// use esafe_vehicle::dynamics::{Scene, SceneObject};
/// use esafe_vehicle::substrate::VehicleSubstrate;
///
/// let scene = Scene {
///     lead: Some(SceneObject::constant(20.0, 0.0)),
///     rear: None,
/// };
/// let script = vec![
///     (0.5, DriverAction::Enable("CA".into(), true)),
///     (1.0, DriverAction::Throttle(0.10)),
/// ];
/// let substrate = VehicleSubstrate::new(DefectSet::thesis(), scene, script)
///     .with_label("defective-ca")
///     .with_duration_s(20.0);
/// let report = Experiment::new(&substrate).run().unwrap();
/// // The thesis vehicle strikes the parked object and terminates early.
/// assert_eq!(report.terminal_event.as_deref(), Some("collision"));
/// assert!(report.terminated_early);
/// ```
#[derive(Debug, Clone)]
pub struct VehicleSubstrate {
    /// Physical and control constants.
    pub params: VehicleParams,
    /// The injected defect configuration.
    pub defects: DefectSet,
    /// Scene objects around the host.
    pub scene: Scene,
    /// Scheduled driver/HMI actions.
    pub script: Vec<(f64, DriverAction)>,
    /// Scheduled run length, s.
    pub duration_s: f64,
    /// Configuration label used in reports.
    pub label: String,
    table: Arc<SignalTable>,
    sigs: VehicleSigs,
    tracked: Vec<SignalId>,
    /// The family's compile-once suite template, when this substrate was
    /// derived from a [`VehicleFamily`]; `None` self-compiles per run.
    template: Option<Arc<SuiteTemplate>>,
}

impl VehicleSubstrate {
    /// Creates a substrate with default parameters, a 20 s schedule (every
    /// thesis scenario's length), and no tracked signals. The signal table
    /// is constructed here, once.
    pub fn new(defects: DefectSet, scene: Scene, script: Vec<(f64, DriverAction)>) -> Self {
        let (table, sigs) = vehicle_table();
        VehicleSubstrate {
            params: VehicleParams::default(),
            defects,
            scene,
            script,
            duration_s: DEFAULT_DURATION_S,
            label: DEFAULT_LABEL.to_owned(),
            table,
            sigs,
            tracked: Vec::new(),
            template: None,
        }
    }

    /// The substrate's resolved signal ids.
    pub fn sigs(&self) -> &VehicleSigs {
        &self.sigs
    }

    /// Replaces the vehicle parameters. Goal thresholds derive from the
    /// parameters, so any family suite template no longer applies and is
    /// dropped — the substrate self-compiles its monitors again.
    pub fn with_params(mut self, params: VehicleParams) -> Self {
        self.params = params;
        self.template = None;
        self
    }

    /// Sets the scheduled run length in seconds.
    pub fn with_duration_s(mut self, duration_s: f64) -> Self {
        self.duration_s = duration_s;
        self
    }

    /// Sets the signals to record each tick, by name (resolved to ids
    /// immediately).
    ///
    /// # Panics
    ///
    /// Panics on a name outside the vehicle signal table — tracked-signal
    /// typos should fail at configuration time, not mid-run.
    pub fn with_tracked(mut self, tracked: impl IntoIterator<Item = impl AsRef<str>>) -> Self {
        self.tracked = self.table.resolve_all(tracked);
        self
    }

    /// Sets the configuration label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

impl Substrate for VehicleSubstrate {
    fn name(&self) -> &str {
        "vehicle"
    }

    fn label(&self) -> String {
        self.label.clone()
    }

    fn duration_ms(&self) -> u64 {
        (self.duration_s * 1000.0).round() as u64
    }

    fn signal_table(&self) -> &Arc<SignalTable> {
        &self.table
    }

    fn build_simulator(&self) -> Simulator {
        build_vehicle(
            self.params,
            self.defects,
            self.scene,
            self.script.clone(),
            &self.table,
            &self.sigs,
        )
    }

    /// The native batched builder: one [`SimulatorBatch`] whose lane `l`
    /// is `group[l]`'s configuration, stepping the whole stripe in
    /// lane-major loops instead of per-lane boxed-subsystem dispatch.
    fn build_simulator_batch(group: &[&Self]) -> Option<SimulatorBatch> {
        let first = group.first()?;
        let lanes: Vec<VehicleLaneConfig> = group
            .iter()
            .map(|s| VehicleLaneConfig {
                params: s.params,
                defects: s.defects,
                scene: s.scene,
                script: s.script.clone(),
            })
            .collect();
        Some(build_vehicle_batch(&lanes, &first.table, &first.sigs))
    }

    fn build_monitors(&self) -> Result<MonitorSuite, EvalError> {
        goals::build_suite(&self.table, &self.params)
    }

    fn suite_template(&self) -> Option<&Arc<SuiteTemplate>> {
        self.template.as_ref()
    }

    /// The monitors and figures read the probe-derived signals, not the
    /// raw blackboard: copy the raw frame and write the `probe.*` slots.
    fn observe(&self, raw: &Frame, observed: &mut Frame) {
        observed.copy_from(raw);
        probe::derive_into(observed, &self.sigs, &self.params);
    }

    /// Batched observation runs the probe derivation **in place** on the
    /// lane: probes are observation-only (no subsystem reads `probe.*`,
    /// and `hmi.go` is only defaulted when unset), so writing them into
    /// the live state slab is safe and skips both per-lane frame copies.
    fn observe_lane(
        &self,
        slab: &mut FrameBatch,
        lane: usize,
        _raw: &mut Frame,
        _observed: &mut Frame,
    ) {
        probe::derive_lane(&mut slab.lane_mut(lane), &self.sigs, &self.params);
    }

    /// A forward or rear collision aborts the run after the grace window
    /// (the thesis's CarSim early termination).
    fn terminal_event(&self, observed: &Frame) -> Option<&'static str> {
        if observed.bool_or(self.sigs.collision, false) {
            Some("collision")
        } else if observed.bool_or(self.sigs.rear_collision, false) {
            Some("rear_collision")
        } else {
            None
        }
    }

    /// Two direct slab reads — no per-lane frame copy.
    fn terminal_event_lane(
        &self,
        slab: &FrameBatch,
        lane: usize,
        _scratch: &mut Frame,
    ) -> Option<&'static str> {
        if slab.bool_or(self.sigs.collision, lane, false) {
            Some("collision")
        } else if slab.bool_or(self.sigs.rear_collision, lane, false) {
            Some("rear_collision")
        } else {
            None
        }
    }

    fn tracked_signals(&self) -> &[SignalId] {
        &self.tracked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::SceneObject;
    use esafe_harness::Experiment;

    fn parked_ahead() -> Scene {
        Scene {
            lead: Some(SceneObject::constant(20.0, 0.0)),
            rear: None,
        }
    }

    fn creep_script() -> Vec<(f64, DriverAction)> {
        vec![
            (0.5, DriverAction::Enable("CA".into(), true)),
            (1.0, DriverAction::Throttle(0.10)),
        ]
    }

    #[test]
    fn healthy_vehicle_never_terminates_early() {
        let substrate = VehicleSubstrate::new(DefectSet::none(), parked_ahead(), creep_script());
        let report = Experiment::new(&substrate).run().unwrap();
        assert!(report.terminal_event.is_none());
        assert!(!report.terminated_early);
        assert_eq!(report.ticks, 20_000, "1 kHz × 20 s");
        assert!(!report.any_violations());
    }

    #[test]
    fn thesis_defects_collide_and_are_localized() {
        let substrate = VehicleSubstrate::new(DefectSet::thesis(), parked_ahead(), creep_script())
            .with_tracked(["host.speed"]);
        let report = Experiment::new(&substrate).run().unwrap();
        assert_eq!(report.terminal_event.as_deref(), Some("collision"));
        assert!(report.terminated_early);
        assert!(!report.violations_for("4B:PA").is_empty());
        assert!(!report.series.downsample("host.speed", 16).is_empty());
    }

    #[test]
    fn family_substrates_match_standalone_substrates() {
        let family = VehicleFamily::default();
        let standalone = VehicleSubstrate::new(DefectSet::thesis(), parked_ahead(), creep_script())
            .with_tracked(["host.speed"]);
        let derived = family
            .substrate(DefectSet::thesis(), parked_ahead(), creep_script())
            .with_tracked(["host.speed"]);
        assert!(derived.suite_template().is_some());
        assert!(standalone.suite_template().is_none());
        let a = Experiment::new(&standalone).run().unwrap();
        let b = Experiment::new(&derived).run().unwrap();
        assert_eq!(a, b, "template-backed run must match self-compiled run");
    }

    #[test]
    fn with_params_drops_the_family_template() {
        let family = VehicleFamily::default();
        let tweaked = family
            .substrate(DefectSet::none(), parked_ahead(), vec![])
            .with_params(crate::config::VehicleParams {
                accel_limit: 1.0,
                ..crate::config::VehicleParams::default()
            });
        assert!(
            tweaked.suite_template().is_none(),
            "parameter overrides invalidate the family's compiled goals"
        );
    }

    #[test]
    #[should_panic(expected = "unknown tracked signal")]
    fn tracked_signal_typos_fail_fast() {
        let _ = VehicleSubstrate::new(DefectSet::none(), parked_ahead(), vec![])
            .with_tracked(["host.sped"]);
    }
}
