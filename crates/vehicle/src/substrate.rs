//! The vehicle's [`Substrate`] implementation: one scenario × defect
//! configuration, runnable under the generic experiment harness.

use crate::builder::build_vehicle;
use crate::config::{DefectSet, VehicleParams};
use crate::driver::DriverAction;
use crate::dynamics::Scene;
use crate::signals::{vehicle_table, VehicleSigs};
use crate::{goals, probe};
use esafe_harness::Substrate;
use esafe_logic::{EvalError, Frame, SignalId, SignalTable};
use esafe_monitor::MonitorSuite;
use esafe_sim::Simulator;
use std::sync::Arc;

/// One monitored vehicle run: the Chapter 5 substrate under a scene, a
/// scripted driver, and a [`DefectSet`].
///
/// The substrate builds the vehicle [`SignalTable`] once at construction;
/// every simulator it assembles, every monitor suite it compiles, and
/// every sweep cell cloned from it shares that table (cloning a substrate
/// clones an `Arc`, not the namespace).
///
/// # Example
///
/// ```
/// use esafe_harness::Experiment;
/// use esafe_vehicle::config::DefectSet;
/// use esafe_vehicle::driver::DriverAction;
/// use esafe_vehicle::dynamics::{Scene, SceneObject};
/// use esafe_vehicle::substrate::VehicleSubstrate;
///
/// let scene = Scene {
///     lead: Some(SceneObject::constant(20.0, 0.0)),
///     rear: None,
/// };
/// let script = vec![
///     (0.5, DriverAction::Enable("CA".into(), true)),
///     (1.0, DriverAction::Throttle(0.10)),
/// ];
/// let substrate = VehicleSubstrate::new(DefectSet::thesis(), scene, script)
///     .with_label("defective-ca")
///     .with_duration_s(20.0);
/// let report = Experiment::new(&substrate).run().unwrap();
/// // The thesis vehicle strikes the parked object and terminates early.
/// assert_eq!(report.terminal_event.as_deref(), Some("collision"));
/// assert!(report.terminated_early);
/// ```
#[derive(Debug, Clone)]
pub struct VehicleSubstrate {
    /// Physical and control constants.
    pub params: VehicleParams,
    /// The injected defect configuration.
    pub defects: DefectSet,
    /// Scene objects around the host.
    pub scene: Scene,
    /// Scheduled driver/HMI actions.
    pub script: Vec<(f64, DriverAction)>,
    /// Scheduled run length, s.
    pub duration_s: f64,
    /// Configuration label used in reports.
    pub label: String,
    table: Arc<SignalTable>,
    sigs: VehicleSigs,
    tracked: Vec<SignalId>,
}

impl VehicleSubstrate {
    /// Creates a substrate with default parameters, a 20 s schedule (every
    /// thesis scenario's length), and no tracked signals. The signal table
    /// is constructed here, once.
    pub fn new(defects: DefectSet, scene: Scene, script: Vec<(f64, DriverAction)>) -> Self {
        let (table, sigs) = vehicle_table();
        VehicleSubstrate {
            params: VehicleParams::default(),
            defects,
            scene,
            script,
            duration_s: 20.0,
            label: "vehicle".to_owned(),
            table,
            sigs,
            tracked: Vec::new(),
        }
    }

    /// The substrate's resolved signal ids.
    pub fn sigs(&self) -> &VehicleSigs {
        &self.sigs
    }

    /// Replaces the vehicle parameters.
    pub fn with_params(mut self, params: VehicleParams) -> Self {
        self.params = params;
        self
    }

    /// Sets the scheduled run length in seconds.
    pub fn with_duration_s(mut self, duration_s: f64) -> Self {
        self.duration_s = duration_s;
        self
    }

    /// Sets the signals to record each tick, by name (resolved to ids
    /// immediately).
    ///
    /// # Panics
    ///
    /// Panics on a name outside the vehicle signal table — tracked-signal
    /// typos should fail at configuration time, not mid-run.
    pub fn with_tracked(mut self, tracked: impl IntoIterator<Item = impl AsRef<str>>) -> Self {
        self.tracked = self.table.resolve_all(tracked);
        self
    }

    /// Sets the configuration label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

impl Substrate for VehicleSubstrate {
    fn name(&self) -> &str {
        "vehicle"
    }

    fn label(&self) -> String {
        self.label.clone()
    }

    fn duration_ms(&self) -> u64 {
        (self.duration_s * 1000.0).round() as u64
    }

    fn signal_table(&self) -> &Arc<SignalTable> {
        &self.table
    }

    fn build_simulator(&self) -> Simulator {
        build_vehicle(
            self.params,
            self.defects,
            self.scene,
            self.script.clone(),
            &self.table,
            &self.sigs,
        )
    }

    fn build_monitors(&self) -> Result<MonitorSuite, EvalError> {
        goals::build_suite(&self.table, &self.params)
    }

    /// The monitors and figures read the probe-derived signals, not the
    /// raw blackboard: copy the raw frame and write the `probe.*` slots.
    fn observe(&self, raw: &Frame, observed: &mut Frame) {
        observed.copy_from(raw);
        probe::derive_into(observed, &self.sigs, &self.params);
    }

    /// A forward or rear collision aborts the run after the grace window
    /// (the thesis's CarSim early termination).
    fn terminal_event(&self, observed: &Frame) -> Option<&'static str> {
        if observed.bool_or(self.sigs.collision, false) {
            Some("collision")
        } else if observed.bool_or(self.sigs.rear_collision, false) {
            Some("rear_collision")
        } else {
            None
        }
    }

    fn tracked_signals(&self) -> &[SignalId] {
        &self.tracked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::SceneObject;
    use esafe_harness::Experiment;

    fn parked_ahead() -> Scene {
        Scene {
            lead: Some(SceneObject::constant(20.0, 0.0)),
            rear: None,
        }
    }

    fn creep_script() -> Vec<(f64, DriverAction)> {
        vec![
            (0.5, DriverAction::Enable("CA".into(), true)),
            (1.0, DriverAction::Throttle(0.10)),
        ]
    }

    #[test]
    fn healthy_vehicle_never_terminates_early() {
        let substrate = VehicleSubstrate::new(DefectSet::none(), parked_ahead(), creep_script());
        let report = Experiment::new(&substrate).run().unwrap();
        assert!(report.terminal_event.is_none());
        assert!(!report.terminated_early);
        assert_eq!(report.ticks, 20_000, "1 kHz × 20 s");
        assert!(!report.any_violations());
    }

    #[test]
    fn thesis_defects_collide_and_are_localized() {
        let substrate = VehicleSubstrate::new(DefectSet::thesis(), parked_ahead(), creep_script())
            .with_tracked(["host.speed"]);
        let report = Experiment::new(&substrate).run().unwrap();
        assert_eq!(report.terminal_event.as_deref(), Some("collision"));
        assert!(report.terminated_early);
        assert!(!report.violations_for("4B:PA").is_empty());
        assert!(!report.series.downsample("host.speed", 16).is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown tracked signal")]
    fn tracked_signal_typos_fail_fast() {
        let _ = VehicleSubstrate::new(DefectSet::none(), parked_ahead(), vec![])
            .with_tracked(["host.sped"]);
    }
}
