//! The vehicle's [`Substrate`] implementation: one scenario × defect
//! configuration, runnable under the generic experiment harness.

use crate::builder::build_vehicle;
use crate::config::{DefectSet, VehicleParams};
use crate::driver::DriverAction;
use crate::dynamics::Scene;
use crate::signals as sig;
use crate::{goals, probe};
use esafe_harness::Substrate;
use esafe_logic::{EvalError, State};
use esafe_monitor::MonitorSuite;
use esafe_sim::Simulator;
use std::borrow::Cow;

/// One monitored vehicle run: the Chapter 5 substrate under a scene, a
/// scripted driver, and a [`DefectSet`].
///
/// # Example
///
/// ```
/// use esafe_harness::Experiment;
/// use esafe_vehicle::config::DefectSet;
/// use esafe_vehicle::driver::DriverAction;
/// use esafe_vehicle::dynamics::{Scene, SceneObject};
/// use esafe_vehicle::substrate::VehicleSubstrate;
///
/// let scene = Scene {
///     lead: Some(SceneObject::constant(20.0, 0.0)),
///     rear: None,
/// };
/// let script = vec![
///     (0.5, DriverAction::Enable("CA".into(), true)),
///     (1.0, DriverAction::Throttle(0.10)),
/// ];
/// let substrate = VehicleSubstrate::new(DefectSet::thesis(), scene, script)
///     .with_label("defective-ca")
///     .with_duration_s(20.0);
/// let report = Experiment::new(&substrate).run().unwrap();
/// // The thesis vehicle strikes the parked object and terminates early.
/// assert_eq!(report.terminal_event.as_deref(), Some("collision"));
/// assert!(report.terminated_early);
/// ```
#[derive(Debug, Clone)]
pub struct VehicleSubstrate {
    /// Physical and control constants.
    pub params: VehicleParams,
    /// The injected defect configuration.
    pub defects: DefectSet,
    /// Scene objects around the host.
    pub scene: Scene,
    /// Scheduled driver/HMI actions.
    pub script: Vec<(f64, DriverAction)>,
    /// Scheduled run length, s.
    pub duration_s: f64,
    /// Signals recorded into the report's series log.
    pub tracked: Vec<String>,
    /// Configuration label used in reports.
    pub label: String,
}

impl VehicleSubstrate {
    /// Creates a substrate with default parameters, a 20 s schedule (every
    /// thesis scenario's length), and no tracked signals.
    pub fn new(defects: DefectSet, scene: Scene, script: Vec<(f64, DriverAction)>) -> Self {
        VehicleSubstrate {
            params: VehicleParams::default(),
            defects,
            scene,
            script,
            duration_s: 20.0,
            tracked: Vec::new(),
            label: "vehicle".to_owned(),
        }
    }

    /// Replaces the vehicle parameters.
    pub fn with_params(mut self, params: VehicleParams) -> Self {
        self.params = params;
        self
    }

    /// Sets the scheduled run length in seconds.
    pub fn with_duration_s(mut self, duration_s: f64) -> Self {
        self.duration_s = duration_s;
        self
    }

    /// Sets the signals to record each tick.
    pub fn with_tracked(mut self, tracked: impl IntoIterator<Item = impl Into<String>>) -> Self {
        self.tracked = tracked.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the configuration label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

impl Substrate for VehicleSubstrate {
    fn name(&self) -> &str {
        "vehicle"
    }

    fn label(&self) -> String {
        self.label.clone()
    }

    fn duration_ms(&self) -> u64 {
        (self.duration_s * 1000.0).round() as u64
    }

    fn build_simulator(&self) -> Simulator {
        build_vehicle(self.params, self.defects, self.scene, self.script.clone())
    }

    fn build_monitors(&self) -> Result<MonitorSuite, EvalError> {
        goals::build_suite(&self.params)
    }

    /// The monitors and figures read the probe-derived signals, not the
    /// raw blackboard.
    fn observe<'a>(&self, raw: &'a State) -> Cow<'a, State> {
        Cow::Owned(probe::derive(raw, &self.params))
    }

    /// A forward or rear collision aborts the run after the grace window
    /// (the thesis's CarSim early termination).
    fn terminal_event(&self, observed: &State) -> Option<&'static str> {
        let hit = |name| {
            observed
                .get(name)
                .and_then(|v| v.as_bool())
                .unwrap_or(false)
        };
        if hit(sig::COLLISION) {
            Some("collision")
        } else if hit(sig::REAR_COLLISION) {
            Some("rear_collision")
        } else {
            None
        }
    }

    fn tracked_signals(&self) -> &[String] {
        &self.tracked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::SceneObject;
    use esafe_harness::Experiment;

    fn parked_ahead() -> Scene {
        Scene {
            lead: Some(SceneObject::constant(20.0, 0.0)),
            rear: None,
        }
    }

    fn creep_script() -> Vec<(f64, DriverAction)> {
        vec![
            (0.5, DriverAction::Enable("CA".into(), true)),
            (1.0, DriverAction::Throttle(0.10)),
        ]
    }

    #[test]
    fn healthy_vehicle_never_terminates_early() {
        let substrate = VehicleSubstrate::new(DefectSet::none(), parked_ahead(), creep_script());
        let report = Experiment::new(&substrate).run().unwrap();
        assert!(report.terminal_event.is_none());
        assert!(!report.terminated_early);
        assert_eq!(report.ticks, 20_000, "1 kHz × 20 s");
        assert!(!report.any_violations());
    }

    #[test]
    fn thesis_defects_collide_and_are_localized() {
        let substrate = VehicleSubstrate::new(DefectSet::thesis(), parked_ahead(), creep_script())
            .with_tracked(["host.speed"]);
        let report = Experiment::new(&substrate).run().unwrap();
        assert_eq!(report.terminal_event.as_deref(), Some("collision"));
        assert!(report.terminated_early);
        assert!(!report.violations_for("4B:PA").is_empty());
        assert!(!report.series.downsample("host.speed", 16).is_empty());
    }
}
