//! Property tests pinning the batched simulator to the scalar one:
//! random subsystem chains under random lane-retirement schedules must
//! produce **bit-identical** per-lane frame sequences and tick counts
//! on both batched paths (native [`LaneVec`] registration and the
//! [`SimulatorBatch::from_scalar`] migration wrapper) — the sim-side
//! twin of the logic crate's `batched_fused_matches_scalar_fused`
//! properties.

use esafe_logic::{SignalId, SignalTable};
use esafe_sim::{
    LaneSubsystem, LaneVec, SignalRead, SignalWrite, SimTime, Simulator, SimulatorBatch,
};
use proptest::prelude::*;
use std::sync::Arc;

/// An `f64` strategy over `[lo, hi)` in steps of 1/1024 (the vendored
/// proptest shim only samples integer ranges). Coarse steps are fine —
/// bit-identity must hold for *every* float, not just round ones.
fn real(lo: f64, hi: f64) -> impl Strategy<Value = f64> {
    (0u64..4096).prop_map(move |x| lo + (hi - lo) * x as f64 / 4096.0)
}

/// An `Option<u64>` retirement-tick strategy: half the lanes never
/// retire, the rest retire at a random tick.
fn retirement() -> impl Strategy<Value = Option<u64>> {
    prop_oneof![
        Just(None),
        Just(None),
        (1u64..25).prop_map(Some),
        (1u64..25).prop_map(Some),
    ]
}

/// The signal namespace every random chain runs over: four reals, a
/// latched flag, and a stateful tick counter.
struct Signals {
    table: Arc<SignalTable>,
    reals: [SignalId; 4],
    flag: SignalId,
    count: SignalId,
}

fn signals() -> Signals {
    let mut b = SignalTable::builder();
    let reals = [b.real("r0"), b.real("r1"), b.real("r2"), b.real("r3")];
    let flag = b.bool("flag");
    let count = b.int("count");
    Signals {
        table: b.finish(),
        reals,
        flag,
        count,
    }
}

/// One random stage of a subsystem chain. Parameters are per-lane
/// (the stage parameters plus a lane-dependent delta), so lanes diverge
/// the way distinct sweep cells do.
#[derive(Debug, Clone, Copy)]
enum StageKind {
    /// `dst = gain * src + bias` — pure affine dataflow.
    Gain { gain: f64, bias: f64 },
    /// First-order lag of `dst` toward `src` — state carried through
    /// the double buffer.
    Lag { alpha: f64 },
    /// Latches `flag` once `src` exceeds a threshold — boolean state.
    Latch { threshold: f64 },
    /// Counts flag ticks into `count` via **internal** subsystem state,
    /// which must freeze at retirement exactly like a scalar simulator
    /// that stops being stepped.
    Counter,
}

/// A [`StageKind`] bound to concrete signals and one lane's parameter
/// delta. The single `step_lane` body serves the scalar path (blanket
/// [`esafe_sim::Subsystem`] impl), the native batched path
/// ([`LaneVec`]), and the `from_scalar` wrapper — so any divergence the
/// test finds is in the engines, not the arithmetic.
struct Stage {
    kind: StageKind,
    src: SignalId,
    dst: SignalId,
    flag: SignalId,
    count: SignalId,
    delta: f64,
    ticks_flagged: u64,
}

impl LaneSubsystem for Stage {
    fn name(&self) -> &str {
        "stage"
    }

    fn step_lane<R: SignalRead, W: SignalWrite>(&mut self, t: &SimTime, prev: &R, next: &mut W) {
        match self.kind {
            StageKind::Gain { gain, bias } => {
                let x = prev.real_or(self.src, 0.0);
                next.set(self.dst, (gain + self.delta) * x + bias);
            }
            StageKind::Lag { alpha } => {
                let x = prev.real_or(self.src, 0.0);
                let y = prev.real_or(self.dst, 0.0);
                let a = (alpha + self.delta).clamp(0.0, 1.0);
                next.set(self.dst, y + a * (x - y) * t.dt_seconds());
            }
            StageKind::Latch { threshold } => {
                let latched = prev.bool_or(self.flag, false)
                    || prev.real_or(self.src, 0.0) > threshold + self.delta;
                next.set(self.flag, latched);
            }
            StageKind::Counter => {
                self.ticks_flagged += u64::from(prev.bool_or(self.flag, false));
                next.set(self.count, self.ticks_flagged as i64);
            }
        }
    }
}

fn stage_kind() -> impl Strategy<Value = StageKind> {
    prop_oneof![
        (real(-2.0, 2.0), real(-1.0, 1.0)).prop_map(|(gain, bias)| StageKind::Gain { gain, bias }),
        real(0.1, 5.0).prop_map(|alpha| StageKind::Lag { alpha }),
        real(-1.0, 3.0).prop_map(|threshold| StageKind::Latch { threshold }),
        Just(StageKind::Counter),
    ]
}

/// A chain blueprint: stage kinds plus src/dst wiring indices into the
/// four-real pool, instantiable any number of times (scalar per lane,
/// batched per lane) with identical arithmetic.
#[derive(Debug, Clone)]
struct Blueprint {
    stages: Vec<(StageKind, usize, usize)>,
}

fn blueprint() -> impl Strategy<Value = Blueprint> {
    proptest::collection::vec((stage_kind(), 0usize..4, 0usize..4), 1..6)
        .prop_map(|stages| Blueprint { stages })
}

impl Blueprint {
    /// Builds lane `l`'s instance of stage `i`.
    fn stage(&self, i: usize, lane: usize, sig: &Signals) -> Stage {
        let (kind, src, dst) = self.stages[i];
        Stage {
            kind,
            src: sig.reals[src],
            dst: sig.reals[dst],
            flag: sig.flag,
            count: sig.count,
            // A deterministic per-lane parameter spread, like distinct
            // sweep cells sharing one subsystem structure.
            delta: lane as f64 * 0.125,
            ticks_flagged: 0,
        }
    }

    fn scalar_simulator(&self, lane: usize, sig: &Signals, seeds: &[f64]) -> Simulator {
        let mut sim = Simulator::new(10, &sig.table);
        for i in 0..self.stages.len() {
            sim.add(self.stage(i, lane, sig));
        }
        sim.init_with(|f| {
            for (&id, &x) in sig.reals.iter().zip(seeds) {
                f.set(id, x);
            }
            f.set(sig.flag, false);
            f.set(sig.count, 0i64);
        });
        sim
    }
}

/// Steps scalar simulators and both batched engines through the same
/// retirement schedule, asserting every lane's every-tick frame and
/// final tick count match bit for bit.
fn check_equivalence(
    bp: &Blueprint,
    lanes: usize,
    seeds: &[f64],
    retire: &[Option<u64>],
    ticks: u64,
) {
    let sig = signals();

    let mut scalars: Vec<Simulator> = (0..lanes)
        .map(|l| bp.scalar_simulator(l, &sig, seeds))
        .collect();

    let mut native = SimulatorBatch::new(10, &sig.table, lanes);
    for i in 0..bp.stages.len() {
        native.add(LaneVec::from_fn(lanes, |l| bp.stage(i, l, &sig)));
    }
    for l in 0..lanes {
        native.init_lane_with(l, |lane| {
            for (&id, &x) in sig.reals.iter().zip(seeds) {
                lane.set(id, x);
            }
            lane.set(sig.flag, false);
            lane.set(sig.count, 0i64);
        });
    }

    let wrapped_scalars: Vec<Simulator> = (0..lanes)
        .map(|l| bp.scalar_simulator(l, &sig, seeds))
        .collect();
    let mut wrapped = SimulatorBatch::from_scalar(wrapped_scalars);

    for tick in 1..=ticks {
        for (l, sim) in scalars.iter_mut().enumerate() {
            if retire[l].is_none_or(|r| tick <= r) {
                sim.step();
            }
        }
        native.step();
        wrapped.step();
        for (l, r) in retire.iter().enumerate().take(lanes) {
            if *r == Some(tick) {
                native.retire_lane(l);
                wrapped.retire_lane(l);
            }
        }

        for (l, scalar) in scalars.iter().enumerate() {
            for id in sig.table.ids() {
                let want = scalar.state().get(id);
                prop_assert_eq!(
                    native.state().get(id, l),
                    want,
                    "native lane {} tick {} signal {}",
                    l,
                    tick,
                    sig.table.name(id)
                );
                prop_assert_eq!(
                    wrapped.state().get(id, l),
                    want,
                    "wrapped lane {} tick {} signal {}",
                    l,
                    tick,
                    sig.table.name(id)
                );
            }
        }
    }

    for l in 0..lanes {
        prop_assert_eq!(native.lane_tick(l), scalars[l].tick(), "native lane {}", l);
        prop_assert_eq!(
            wrapped.lane_tick(l),
            scalars[l].tick(),
            "wrapped lane {}",
            l
        );
        let frozen = retire[l].is_some_and(|r| r <= ticks);
        prop_assert_eq!(native.is_active(l), !frozen);
        prop_assert_eq!(wrapped.is_active(l), !frozen);
    }
}

proptest! {
    /// Batched simulation ≡ scalar simulation, per lane, bit for bit —
    /// under random chains, lane counts, seeds, and retirement ticks,
    /// on both the native (`LaneVec`) and `from_scalar` engines.
    #[test]
    fn batched_sim_matches_scalar_sim_per_lane(
        bp in blueprint(),
        lanes in 2usize..7,
        seeds in proptest::collection::vec(real(-2.0, 2.0), 4),
        retire in proptest::collection::vec(retirement(), 7),
        ticks in 8u64..30,
    ) {
        check_equivalence(&bp, lanes, &seeds, &retire[..lanes], ticks);
    }

    /// The all-lanes-survive case at a wider stripe (no retirement
    /// masking, width past the mixed test's maximum).
    #[test]
    fn batched_sim_matches_scalar_sim_wide(
        bp in blueprint(),
        seeds in proptest::collection::vec(real(-2.0, 2.0), 4),
        ticks in 8u64..20,
    ) {
        check_equivalence(&bp, 16, &seeds, &vec![None; 16], ticks);
    }
}
