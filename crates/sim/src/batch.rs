//! Batched simulation: step `B` runs per subsystem through lane-major
//! signal slabs.
//!
//! A [`SimulatorBatch`] is the SoA twin of [`Simulator`]: instead of `B`
//! double-buffered [`Frame`] pairs stepped one run at a time (`B` virtual
//! dispatches per subsystem per tick, each chasing its own heap
//! allocations), the whole stripe's state lives in two [`FrameBatch`]
//! slabs — one contiguous row per signal × lanes, the same layout
//! [`FusedSuiteBatch`](esafe_logic::FusedSuiteBatch) evaluates monitor
//! nodes in — and each [`BatchSubsystem`] advances **all** lanes in a
//! straight-line lane loop before the next subsystem runs.
//!
//! Batching is sound because of the kernel's one-tick observation delay:
//! every subsystem reads the frozen previous slab and writes the next
//! one, so lanes never see each other and the per-lane evaluation order
//! inside a subsystem is immaterial. Bit-identity with scalar simulation
//! comes for free from the migration path:
//!
//! * [`LaneSubsystem`] — a subsystem written once against the
//!   [`SignalRead`]/[`SignalWrite`] access traits. The blanket
//!   `impl Subsystem` runs it scalar over [`Frame`]s; [`LaneVec`] runs
//!   one private instance per lane over slab lane views. Both paths
//!   monomorphize the **same** step body, so the arithmetic (and its
//!   floating-point rounding) is identical by construction.
//! * [`SimulatorBatch::from_scalar`] — wraps already-built scalar
//!   [`Simulator`]s wholesale: each lane's boxed subsystem chain steps
//!   against per-lane scratch frames copied in and out of the slab. Three
//!   frame copies per lane per tick, but zero changes to the substrate —
//!   the incremental-migration on-ramp.
//!
//! Retired lanes ([`SimulatorBatch::retire_lane`]) are carried forward
//! frozen by the whole-slab double-buffer memcpy; their per-lane tick
//! counters ([`SimulatorBatch::lane_tick`]) stop, exactly like a scalar
//! simulator that is no longer stepped.

use crate::{SimTime, Simulator, Subsystem};
use esafe_logic::{Frame, FrameBatch, SignalRead, SignalTable, SignalWrite};
use std::sync::Arc;

/// Which lanes of a batch are still advancing. Passed to every
/// [`BatchSubsystem::step_batch`] so subsystems skip retired lanes —
/// their slab rows hold a retired run's frozen final state, and their
/// per-lane internal state must stop advancing.
#[derive(Debug, Clone)]
pub struct LaneMask {
    active: Vec<bool>,
    retired: usize,
}

impl LaneMask {
    fn new(lanes: usize) -> Self {
        LaneMask {
            active: vec![true; lanes],
            retired: 0,
        }
    }

    /// Number of lanes, retired included.
    pub fn lanes(&self) -> usize {
        self.active.len()
    }

    /// Whether `lane` is still advancing.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    #[inline]
    pub fn is_active(&self, lane: usize) -> bool {
        self.active[lane]
    }

    /// Number of lanes still advancing.
    pub fn active_lanes(&self) -> usize {
        self.active.len() - self.retired
    }

    fn retire(&mut self, lane: usize) {
        if std::mem::replace(&mut self.active[lane], false) {
            self.retired += 1;
        }
    }
}

/// A simulated component advancing **all lanes of a stripe at once**:
/// reads the previous tick's slab, writes the next tick's, skipping
/// retired lanes. The batched analogue of [`Subsystem`].
pub trait BatchSubsystem {
    /// Display name (used in logs and error messages).
    fn name(&self) -> &str;

    /// Advances one tick for every active lane: read `prev`, write
    /// outputs into `next`. Must not write lanes where
    /// `lanes.is_active(l)` is false — those rows carry a retired run's
    /// frozen final state.
    fn step_batch(
        &mut self,
        t: &SimTime,
        prev: &FrameBatch,
        next: &mut FrameBatch,
        lanes: &LaneMask,
    );
}

/// A subsystem whose step body is generic over signal storage — the one
/// definition that runs both scalar (over [`Frame`]s, via the blanket
/// [`Subsystem`] impl) and batched (over slab lane views, via
/// [`LaneVec`]). Because both paths monomorphize this same body, batched
/// simulation is bit-identical to scalar simulation by construction.
pub trait LaneSubsystem {
    /// Display name (used in logs and error messages).
    fn name(&self) -> &str;

    /// Advances one tick for one run: read `prev`, write outputs into
    /// `next`.
    fn step_lane<R: SignalRead, W: SignalWrite>(&mut self, t: &SimTime, prev: &R, next: &mut W);
}

impl<T: LaneSubsystem> Subsystem for T {
    fn name(&self) -> &str {
        LaneSubsystem::name(self)
    }

    fn step(&mut self, t: &SimTime, prev: &Frame, next: &mut Frame) {
        self.step_lane(t, prev, next);
    }
}

/// One [`LaneSubsystem`] instance per lane, stepped as a straight-line
/// lane loop: the standard way to register a migrated subsystem with a
/// [`SimulatorBatch`]. Monomorphized per subsystem type — no per-lane
/// virtual dispatch, no per-lane `Frame` copies.
#[derive(Debug)]
pub struct LaneVec<T: LaneSubsystem> {
    subs: Vec<T>,
}

impl<T: LaneSubsystem> LaneVec<T> {
    /// Wraps one pre-built instance per lane.
    ///
    /// # Panics
    ///
    /// Panics if `subs` is empty.
    pub fn new(subs: Vec<T>) -> Self {
        assert!(!subs.is_empty(), "a lane vector needs at least one lane");
        LaneVec { subs }
    }

    /// Builds `lanes` instances from a per-lane constructor.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn from_fn(lanes: usize, f: impl FnMut(usize) -> T) -> Self {
        Self::new((0..lanes).map(f).collect())
    }
}

impl<T: LaneSubsystem> BatchSubsystem for LaneVec<T> {
    fn name(&self) -> &str {
        LaneSubsystem::name(&self.subs[0])
    }

    fn step_batch(
        &mut self,
        t: &SimTime,
        prev: &FrameBatch,
        next: &mut FrameBatch,
        lanes: &LaneMask,
    ) {
        debug_assert_eq!(self.subs.len(), lanes.lanes(), "one instance per lane");
        for (l, sub) in self.subs.iter_mut().enumerate() {
            if lanes.is_active(l) {
                sub.step_lane(t, &prev.lane(l), &mut next.lane_mut(l));
            }
        }
    }
}

/// The batched fixed-step simulator: a registered [`BatchSubsystem`]
/// list over a double-buffered pair of [`FrameBatch`] slabs. See the
/// [module docs](self).
pub struct SimulatorBatch {
    subsystems: Vec<Box<dyn BatchSubsystem>>,
    /// The current (front) slab.
    state: FrameBatch,
    /// The scratch (back) slab the next tick is composed into.
    scratch: FrameBatch,
    /// Per-lane tick counts; a lane's counter freezes at retirement, so
    /// it always equals the tick count of the equivalent scalar
    /// simulator that stopped being stepped at the same moment.
    ticks: Vec<u64>,
    /// Global tick count (== every active lane's tick count).
    tick: u64,
    dt_millis: u64,
    mask: LaneMask,
}

impl SimulatorBatch {
    /// Creates a batch of `lanes` runs with the given tick period over
    /// the given signal namespace.
    ///
    /// # Panics
    ///
    /// Panics if `dt_millis` or `lanes` is zero.
    pub fn new(dt_millis: u64, table: &Arc<SignalTable>, lanes: usize) -> Self {
        assert!(dt_millis > 0, "tick period must be positive");
        SimulatorBatch {
            subsystems: Vec::new(),
            state: FrameBatch::new(table, lanes),
            scratch: FrameBatch::new(table, lanes),
            ticks: vec![0; lanes],
            tick: 0,
            dt_millis,
            mask: LaneMask::new(lanes),
        }
    }

    /// Wraps already-built scalar simulators — one per lane — into a
    /// batch whose per-lane behaviour is bit-identical to stepping them
    /// individually: each tick, every lane's subsystem chain runs
    /// against scratch frames copied in and out of the slab. This is the
    /// incremental-migration path for substrates without a native
    /// batched builder; hot substrates should register
    /// [`LaneVec`]-wrapped subsystems instead and skip the copies.
    ///
    /// # Panics
    ///
    /// Panics if `sims` is empty, or if the simulators disagree on tick
    /// period, current tick, or signal table.
    pub fn from_scalar(sims: Vec<Simulator>) -> Self {
        assert!(!sims.is_empty(), "a batch needs at least one lane");
        let dt_millis = sims[0].dt_millis;
        let tick = sims[0].tick;
        let table = Arc::clone(sims[0].table());
        assert!(
            sims.iter().all(|s| s.dt_millis == dt_millis),
            "lanes must share one tick period"
        );
        assert!(
            sims.iter().all(|s| s.tick == tick),
            "lanes must share one start tick"
        );
        let lanes = sims.len();
        let mut state = FrameBatch::new(&table, lanes);
        let mut chains = Vec::with_capacity(lanes);
        for (l, sim) in sims.into_iter().enumerate() {
            state.write_lane_from(l, &sim.state);
            chains.push(sim.subsystems);
        }
        let scratch = state.clone();
        let adapter = ScalarLanes {
            chains,
            prev: table.frame(),
            next: table.frame(),
        };
        SimulatorBatch {
            subsystems: vec![Box::new(adapter)],
            state,
            scratch,
            ticks: vec![tick; lanes],
            tick,
            dt_millis,
            mask: LaneMask::new(lanes),
        }
    }

    /// The shared signal namespace.
    pub fn table(&self) -> &Arc<SignalTable> {
        self.state.table()
    }

    /// Number of lanes (runs), retired included.
    pub fn lanes(&self) -> usize {
        self.mask.lanes()
    }

    /// Registers a batched subsystem (stepped in registration order).
    pub fn add(&mut self, s: impl BatchSubsystem + 'static) {
        self.subsystems.push(Box::new(s));
    }

    /// Seeds one lane's initial state in place: the lane is cleared to
    /// all-unset, then `seed` writes into it — the per-lane analogue of
    /// [`Simulator::init_with`].
    pub fn init_lane_with(&mut self, lane: usize, seed: impl FnOnce(&mut esafe_logic::LaneMut)) {
        self.state.clear_lane(lane);
        seed(&mut self.state.lane_mut(lane));
        self.ticks[lane] = 0;
    }

    /// Global tick count (== every active lane's tick count).
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// `lane`'s tick count — frozen at its retirement tick, exactly like
    /// a scalar simulator that stopped being stepped.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn lane_tick(&self, lane: usize) -> u64 {
        self.ticks[lane]
    }

    /// `lane`'s simulated time in seconds (same arithmetic as
    /// [`Simulator::seconds`]).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn lane_seconds(&self, lane: usize) -> f64 {
        (self.ticks[lane] * self.dt_millis) as f64 / 1000.0
    }

    /// Tick period in milliseconds.
    pub fn dt_millis(&self) -> u64 {
        self.dt_millis
    }

    /// Whether `lane` is still advancing.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn is_active(&self, lane: usize) -> bool {
        self.mask.is_active(lane)
    }

    /// Number of lanes still advancing.
    pub fn active_lanes(&self) -> usize {
        self.mask.active_lanes()
    }

    /// Freezes a lane: subsequent steps carry its current state forward
    /// untouched and its tick counter stops. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn retire_lane(&mut self, lane: usize) {
        self.mask.retire(lane);
    }

    /// The current state slab.
    pub fn state(&self) -> &FrameBatch {
        &self.state
    }

    /// Mutable access to the current state slab — for observation-time
    /// derived-signal writes (probes) that subsystems never read.
    pub fn state_mut(&mut self) -> &mut FrameBatch {
        &mut self.state
    }

    /// Advances every active lane one tick and returns the new state
    /// slab. The double-buffer refresh is one whole-slab memcpy (which
    /// is also what carries retired lanes forward frozen); nothing on
    /// this path allocates.
    pub fn step(&mut self) -> &FrameBatch {
        let t = SimTime {
            tick: self.tick + 1,
            dt_millis: self.dt_millis,
        };
        self.scratch.copy_from(&self.state);
        for s in &mut self.subsystems {
            s.step_batch(&t, &self.state, &mut self.scratch, &self.mask);
        }
        std::mem::swap(&mut self.state, &mut self.scratch);
        self.tick += 1;
        for (tick, &active) in self.ticks.iter_mut().zip(&self.mask.active) {
            *tick += u64::from(active);
        }
        &self.state
    }
}

impl std::fmt::Debug for SimulatorBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulatorBatch")
            .field("tick", &self.tick)
            .field("dt_millis", &self.dt_millis)
            .field("lanes", &self.lanes())
            .field("active", &self.active_lanes())
            .field(
                "subsystems",
                &self.subsystems.iter().map(|s| s.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

/// The [`SimulatorBatch::from_scalar`] adapter: every lane's boxed
/// scalar subsystem chain, stepped per lane against scratch frames
/// copied in and out of the slab.
struct ScalarLanes {
    chains: Vec<Vec<Box<dyn Subsystem>>>,
    prev: Frame,
    next: Frame,
}

impl BatchSubsystem for ScalarLanes {
    fn name(&self) -> &str {
        "scalar-lanes"
    }

    fn step_batch(
        &mut self,
        t: &SimTime,
        prev: &FrameBatch,
        next: &mut FrameBatch,
        lanes: &LaneMask,
    ) {
        for (l, chain) in self.chains.iter_mut().enumerate() {
            if !lanes.is_active(l) {
                continue;
            }
            prev.read_lane_into(l, &mut self.prev);
            // `next` already carries the memcpy'd previous state, so
            // reading it back replicates the scalar double-buffer
            // refresh for this lane.
            next.read_lane_into(l, &mut self.next);
            for s in chain.iter_mut() {
                s.step(t, &self.prev, &mut self.next);
            }
            next.write_lane_from(l, &self.next);
        }
    }
}
