//! Deterministic fixed-step simulation kernel.
//!
//! Both evaluation substrates of the thesis — the distributed elevator of
//! Chapter 4 and the semi-autonomous vehicle of Chapter 5 — are discrete
//! systems sampled at a fixed period (1 ms states in the CarSim runs).
//! This crate provides the shared machinery:
//!
//! * a [`Simulator`] that steps registered [`Subsystem`]s against a shared
//!   signal blackboard with **one-tick observation delay**: every
//!   subsystem reads the *previous* tick's snapshot and writes the next
//!   one, matching the thesis's rule that monitored values are known one
//!   state late;
//! * actuation plumbing: [`FirstOrderLag`], [`RateLimiter`], [`DelayLine`];
//! * [`SeriesLog`] for recording the time series behind the thesis's
//!   figures.
//!
//! The blackboard *is* an [`esafe_logic::Frame`] over the simulator's
//! [`SignalTable`] — the signal set is declared once at build time, and
//! stepping **double-buffers two frames** instead of cloning maps: the
//! previous tick's frame is memcpy'd into the scratch frame, subsystems
//! write through [`SignalId`]-typed accessors, and the buffers swap.
//! Run-time goal monitors compiled with
//! [`CompiledMonitor::compile_in`](esafe_logic::CompiledMonitor::compile_in)
//! against the same table attach without adapters, so the whole per-tick
//! loop holds zero `String` allocations.
//!
//! # Example
//!
//! ```
//! use esafe_sim::{SimTime, Simulator, Subsystem};
//! use esafe_logic::{Frame, SignalId, SignalTable};
//!
//! struct Counter {
//!     n: SignalId,
//! }
//! impl Subsystem for Counter {
//!     fn name(&self) -> &str { "counter" }
//!     fn step(&mut self, _t: &SimTime, prev: &Frame, next: &mut Frame) {
//!         next.set(self.n, prev.real_or(self.n, 0.0) + 1.0);
//!     }
//! }
//!
//! let mut b = SignalTable::builder();
//! let n = b.real("n");
//! let table = b.finish();
//!
//! let mut sim = Simulator::new(1, &table);
//! sim.add(Counter { n });
//! sim.init_with(|frame| frame.set(n, 0.0));
//! for _ in 0..5 { sim.step(); }
//! assert_eq!(sim.state().real_or(n, -1.0), 5.0);
//! ```

use esafe_logic::{Frame, SignalId, SignalTable, Value};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

pub mod batch;

pub use batch::{BatchSubsystem, LaneMask, LaneSubsystem, LaneVec, SimulatorBatch};
pub use esafe_logic::{FrameBatch, LaneMut, LaneRef, SignalRead, SignalWrite};

/// Simulation time: the current tick and the tick period.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimTime {
    /// Ticks elapsed since simulation start (the state being computed).
    pub tick: u64,
    /// Tick period in milliseconds.
    pub dt_millis: u64,
}

impl SimTime {
    /// Elapsed time in seconds.
    pub fn seconds(&self) -> f64 {
        (self.tick * self.dt_millis) as f64 / 1000.0
    }

    /// Tick period in seconds.
    pub fn dt_seconds(&self) -> f64 {
        self.dt_millis as f64 / 1000.0
    }
}

/// A simulated component: reads the previous tick's signals, writes the
/// next tick's.
///
/// Subsystems are stepped in registration order, but because every
/// subsystem reads the same previous snapshot, ordering does not leak
/// information within a tick — all inter-subsystem communication takes at
/// least one tick, as in the thesis's state model. Subsystems hold the
/// [`SignalId`]s they read and write, resolved once at construction.
pub trait Subsystem {
    /// Display name (used in logs and error messages).
    fn name(&self) -> &str;

    /// Advances one tick: read `prev`, write outputs into `next`.
    fn step(&mut self, t: &SimTime, prev: &Frame, next: &mut Frame);
}

/// The fixed-step simulator: a registered subsystem list over a
/// double-buffered pair of [`Frame`]s sharing one [`SignalTable`].
pub struct Simulator {
    subsystems: Vec<Box<dyn Subsystem>>,
    /// The current (front) snapshot.
    state: Frame,
    /// The scratch (back) frame the next tick is composed into.
    scratch: Frame,
    tick: u64,
    dt_millis: u64,
}

impl Simulator {
    /// Creates a simulator with the given tick period in milliseconds
    /// over the given signal namespace.
    ///
    /// # Panics
    ///
    /// Panics if `dt_millis` is zero.
    pub fn new(dt_millis: u64, table: &Arc<SignalTable>) -> Self {
        assert!(dt_millis > 0, "tick period must be positive");
        Simulator {
            subsystems: Vec::new(),
            state: table.frame(),
            scratch: table.frame(),
            tick: 0,
            dt_millis,
        }
    }

    /// The shared signal namespace.
    pub fn table(&self) -> &Arc<SignalTable> {
        self.state.table()
    }

    /// Registers a subsystem (stepped in registration order).
    pub fn add(&mut self, s: impl Subsystem + 'static) {
        self.subsystems.push(Box::new(s));
    }

    /// Sets the initial state (tick 0 snapshot).
    ///
    /// # Panics
    ///
    /// Panics if `frame` indexes a different table.
    pub fn init(&mut self, frame: Frame) {
        self.state.copy_from(&frame);
        self.tick = 0;
    }

    /// Seeds the initial state in place: `seed` receives a fresh all-unset
    /// frame over the simulator's table.
    pub fn init_with(&mut self, seed: impl FnOnce(&mut Frame)) {
        let mut frame = self.table().frame();
        seed(&mut frame);
        self.init(frame);
    }

    /// Current tick count.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Tick period in milliseconds.
    pub fn dt_millis(&self) -> u64 {
        self.dt_millis
    }

    /// Current simulated time in seconds.
    pub fn seconds(&self) -> f64 {
        (self.tick * self.dt_millis) as f64 / 1000.0
    }

    /// The current state snapshot.
    pub fn state(&self) -> &Frame {
        &self.state
    }

    /// Advances one tick and returns the new state. The double-buffer
    /// refresh is a memcpy; nothing on this path allocates.
    pub fn step(&mut self) -> &Frame {
        let t = SimTime {
            tick: self.tick + 1,
            dt_millis: self.dt_millis,
        };
        self.scratch.copy_from(&self.state);
        for s in &mut self.subsystems {
            s.step(&t, &self.state, &mut self.scratch);
        }
        std::mem::swap(&mut self.state, &mut self.scratch);
        self.tick += 1;
        &self.state
    }

    /// Runs until `ticks` have elapsed or `observer` returns `false`.
    /// The observer sees each new state as it is produced.
    pub fn run(&mut self, ticks: u64, mut observer: impl FnMut(u64, &Frame) -> bool) {
        for _ in 0..ticks {
            self.step();
            if !observer(self.tick, &self.state) {
                break;
            }
        }
    }
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("tick", &self.tick)
            .field("dt_millis", &self.dt_millis)
            .field("signals", &self.table().len())
            .field(
                "subsystems",
                &self.subsystems.iter().map(|s| s.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

/// First-order actuator lag: `value` approaches `target` with time
/// constant `tau` (the plant response behind the thesis's Min/Max
/// actuation-delay relationships, eq. 4.2–4.5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FirstOrderLag {
    /// Time constant in seconds.
    pub tau_s: f64,
    /// Current output.
    pub value: f64,
}

impl FirstOrderLag {
    /// Creates a lag at an initial value.
    pub fn new(tau_s: f64, initial: f64) -> Self {
        FirstOrderLag {
            tau_s,
            value: initial,
        }
    }

    /// Advances by `dt_s` toward `target`, returning the new output.
    pub fn step(&mut self, target: f64, dt_s: f64) -> f64 {
        if self.tau_s <= 0.0 {
            self.value = target;
        } else {
            let alpha = 1.0 - (-dt_s / self.tau_s).exp();
            self.value += (target - self.value) * alpha;
        }
        self.value
    }
}

/// Slew-rate limiter: output moves toward the target at a bounded rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateLimiter {
    /// Maximum rate of change per second (absolute).
    pub max_rate_per_s: f64,
    /// Current output.
    pub value: f64,
}

impl RateLimiter {
    /// Creates a limiter at an initial value.
    pub fn new(max_rate_per_s: f64, initial: f64) -> Self {
        RateLimiter {
            max_rate_per_s,
            value: initial,
        }
    }

    /// Advances by `dt_s` toward `target`, returning the new output.
    pub fn step(&mut self, target: f64, dt_s: f64) -> f64 {
        let max_delta = self.max_rate_per_s * dt_s;
        let delta = (target - self.value).clamp(-max_delta, max_delta);
        self.value += delta;
        self.value
    }
}

/// A fixed-latency value pipe modeling network/communication delay.
/// [`Value`] is `Copy`, so shifting the line never allocates.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayLine {
    queue: VecDeque<Value>,
    delay_ticks: usize,
    default: Value,
}

impl DelayLine {
    /// Creates a delay line that emits `default` until the first pushed
    /// value has aged `delay_ticks`.
    pub fn new(delay_ticks: usize, default: Value) -> Self {
        DelayLine {
            queue: VecDeque::with_capacity(delay_ticks + 1),
            delay_ticks,
            default,
        }
    }

    /// Pushes this tick's input and pops the value from `delay_ticks` ago.
    pub fn shift(&mut self, input: Value) -> Value {
        self.queue.push_back(input);
        if self.queue.len() > self.delay_ticks {
            self.queue.pop_front().expect("length checked")
        } else {
            self.default
        }
    }
}

/// Records named time series for figure reproduction.
///
/// Series are keyed by signal *name* (reports and figure tooling stay
/// name-addressable), but per-tick sampling goes through
/// [`SeriesLog::sample`] with a resolved [`SignalId`] — a map lookup of an
/// existing key plus a `Vec` push, no per-tick `String` allocation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SeriesLog {
    series: BTreeMap<String, Vec<(f64, f64)>>,
}

impl SeriesLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a `(time, value)` point to the named series. The name is
    /// only copied when its series is first created, so steady-state
    /// sampling allocates nothing but the point itself.
    pub fn push(&mut self, name: &str, time_s: f64, value: f64) {
        if let Some(points) = self.series.get_mut(name) {
            points.push((time_s, value));
        } else {
            self.series.insert(name.to_owned(), vec![(time_s, value)]);
        }
    }

    /// Samples a numeric or boolean signal from a frame into the series
    /// named after the signal (booleans record as 0/1). Unset or symbolic
    /// signals are skipped.
    pub fn sample(&mut self, frame: &Frame, id: SignalId, time_s: f64) {
        if let Some(x) = sample_point(frame.get(id)) {
            self.push(frame.table().name(id), time_s, x);
        }
    }

    /// Samples a signal's full column from a recorded [`FrameTrace`] into
    /// the series named after the signal, timed by the trace's own tick
    /// period — the batch analogue of calling [`SeriesLog::sample`] once
    /// per recorded frame, but a single pass over one contiguous column
    /// instead of a map lookup per sample.
    ///
    /// [`FrameTrace`]: esafe_logic::FrameTrace
    pub fn sample_trace(&mut self, trace: &esafe_logic::FrameTrace, id: SignalId) {
        let column = trace.column(id);
        let mut points: Vec<(f64, f64)> = Vec::with_capacity(column.len());
        for (i, slot) in column.iter().enumerate() {
            if let Some(x) = sample_point(*slot) {
                points.push((trace.time_s(i), x));
            }
        }
        if points.is_empty() {
            return;
        }
        self.append_points(trace.table().name(id), points);
    }

    /// Appends a batch of pre-collected points to the named series
    /// (creating it if absent). The experiment loop buffers each tracked
    /// signal's points in a plain `Vec` during the run — an indexed push
    /// per tick instead of a map lookup — and lands them here once;
    /// empty batches are skipped so no empty series appears.
    pub fn append_points(&mut self, name: &str, points: Vec<(f64, f64)>) {
        if points.is_empty() {
            return;
        }
        if let Some(existing) = self.series.get_mut(name) {
            existing.extend(points);
        } else {
            self.series.insert(name.to_owned(), points);
        }
    }

    /// The recorded points of a series.
    pub fn series(&self, name: &str) -> Option<&[(f64, f64)]> {
        self.series.get(name).map(Vec::as_slice)
    }

    /// Names of all recorded series.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// Downsamples a series to at most `max_points` evenly spaced points
    /// (for terminal rendering of figures).
    pub fn downsample(&self, name: &str, max_points: usize) -> Vec<(f64, f64)> {
        let Some(points) = self.series(name) else {
            return Vec::new();
        };
        if points.len() <= max_points || max_points == 0 {
            return points.to_vec();
        }
        let stride = points.len().div_ceil(max_points);
        points.iter().step_by(stride).copied().collect()
    }
}

/// How a slot value becomes a figure point: booleans as 0/1, numerics
/// as themselves, symbolic or unset slots skipped — the one sampling
/// rule shared by live runs ([`SeriesLog::sample`]), trace replay
/// ([`SeriesLog::sample_trace`]), and the experiment loop's buffered
/// sampling.
#[inline]
pub fn sample_point(value: Option<Value>) -> Option<f64> {
    match value {
        Some(Value::Bool(b)) => Some(if b { 1.0 } else { 0.0 }),
        Some(v) => v.as_real(),
        None => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esafe_logic::SignalTableBuilder;

    struct Echo {
        from: SignalId,
        to: SignalId,
    }

    impl Subsystem for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn step(&mut self, _t: &SimTime, prev: &Frame, next: &mut Frame) {
            if let Some(v) = prev.get(self.from) {
                next.set(self.to, v);
            }
        }
    }

    fn abc() -> (Arc<SignalTable>, [SignalId; 3]) {
        let mut b = SignalTableBuilder::new();
        let ids = [b.real("a"), b.real("b"), b.real("c")];
        (b.finish(), ids)
    }

    #[test]
    fn subsystems_see_previous_tick_only() {
        // a -> b -> c echo chain: values propagate one hop per tick even
        // though both echoes run every tick.
        let (table, [a, b, c]) = abc();
        let mut sim = Simulator::new(1, &table);
        sim.add(Echo { from: a, to: b });
        sim.add(Echo { from: b, to: c });
        sim.init_with(|f| {
            f.set(a, 7.0);
            f.set(b, 0.0);
            f.set(c, 0.0);
        });
        sim.step();
        assert_eq!(sim.state().real_or(b, -1.0), 7.0);
        assert_eq!(sim.state().real_or(c, -1.0), 0.0);
        sim.step();
        assert_eq!(sim.state().real_or(c, -1.0), 7.0);
    }

    #[test]
    fn run_stops_when_observer_returns_false() {
        let (table, [a, b, _]) = abc();
        let mut sim = Simulator::new(1, &table);
        sim.add(Echo { from: a, to: b });
        sim.init_with(|f| {
            f.set(a, 1.0);
            f.set(b, 0.0);
        });
        let mut seen = 0;
        sim.run(100, |tick, _| {
            seen += 1;
            tick < 5
        });
        assert_eq!(seen, 5);
        assert_eq!(sim.tick(), 5);
    }

    #[test]
    fn seconds_accounts_for_dt() {
        let (table, _) = abc();
        let mut sim = Simulator::new(10, &table);
        for _ in 0..100 {
            sim.step();
        }
        assert!((sim.seconds() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn first_order_lag_converges_monotonically() {
        let mut lag = FirstOrderLag::new(0.1, 0.0);
        let mut last = 0.0;
        for _ in 0..1000 {
            let v = lag.step(1.0, 0.001);
            assert!(v >= last && v <= 1.0);
            last = v;
        }
        assert!(last > 0.99);
    }

    #[test]
    fn zero_tau_is_passthrough() {
        let mut lag = FirstOrderLag::new(0.0, 0.0);
        assert_eq!(lag.step(5.0, 0.001), 5.0);
    }

    #[test]
    fn rate_limiter_bounds_slew() {
        let mut rl = RateLimiter::new(10.0, 0.0);
        let v = rl.step(100.0, 0.1);
        assert_eq!(v, 1.0); // 10/s * 0.1s
        let v2 = rl.step(-100.0, 0.1);
        assert_eq!(v2, 0.0);
    }

    #[test]
    fn delay_line_shifts_by_configured_ticks() {
        let mut dl = DelayLine::new(2, Value::Int(0));
        assert_eq!(dl.shift(Value::Int(1)), Value::Int(0));
        assert_eq!(dl.shift(Value::Int(2)), Value::Int(0));
        assert_eq!(dl.shift(Value::Int(3)), Value::Int(1));
        assert_eq!(dl.shift(Value::Int(4)), Value::Int(2));
    }

    #[test]
    fn zero_delay_line_is_passthrough() {
        let mut dl = DelayLine::new(0, Value::Bool(false));
        assert_eq!(dl.shift(Value::Bool(true)), Value::Bool(true));
    }

    #[test]
    fn series_log_records_and_downsamples() {
        let mut log = SeriesLog::new();
        for i in 0..100 {
            log.push("x", i as f64, (i * 2) as f64);
        }
        assert_eq!(log.series("x").unwrap().len(), 100);
        let ds = log.downsample("x", 10);
        assert!(ds.len() <= 10);
        assert_eq!(ds[0], (0.0, 0.0));
        assert!(log.series("missing").is_none());
    }

    #[test]
    fn series_log_samples_frame_traces_like_live_frames() {
        let mut b = SignalTableBuilder::new();
        let speed = b.real("speed");
        let flag = b.bool("flag");
        let table = b.finish();
        let mut trace = esafe_logic::FrameTrace::new(&table, 10);
        let mut frame = table.frame();
        for i in 0..4 {
            frame.set(speed, i as f64);
            if i == 2 {
                frame.set(flag, true);
            }
            trace.push(&frame);
        }
        // Reference: sample each frame live at the trace's own times.
        let mut live = SeriesLog::new();
        let mut scratch = table.frame();
        for i in 0..trace.len() {
            trace.read_into(i, &mut scratch);
            live.sample(&scratch, speed, trace.time_s(i));
            live.sample(&scratch, flag, trace.time_s(i));
        }
        let mut batch = SeriesLog::new();
        batch.sample_trace(&trace, speed);
        batch.sample_trace(&trace, flag);
        assert_eq!(batch, live, "trace sampling must match live sampling");
        assert_eq!(batch.series("speed").unwrap().len(), 4);
        // `flag` is unset for the first two samples, then latches true.
        assert_eq!(batch.series("flag").unwrap(), &[(0.02, 1.0), (0.03, 1.0)]);
    }

    #[test]
    fn series_log_samples_bools_as_binary() {
        let mut b = SignalTableBuilder::new();
        let flag = b.bool("flag");
        let cmd = b.sym("cmd");
        let none = b.real("none");
        let table = b.finish();
        let mut frame = table.frame();
        frame.set(flag, true);
        frame.set(cmd, Value::sym("GO"));
        let mut log = SeriesLog::new();
        log.sample(&frame, flag, 0.5);
        log.sample(&frame, cmd, 0.5); // symbolic: skipped
        log.sample(&frame, none, 0.5); // unset: skipped
        assert_eq!(log.series("flag").unwrap(), &[(0.5, 1.0)]);
        assert!(log.series("cmd").is_none());
    }
}
