//! Deterministic fixed-step simulation kernel.
//!
//! Both evaluation substrates of the thesis — the distributed elevator of
//! Chapter 4 and the semi-autonomous vehicle of Chapter 5 — are discrete
//! systems sampled at a fixed period (1 ms states in the CarSim runs).
//! This crate provides the shared machinery:
//!
//! * a [`Simulator`] that steps registered [`Subsystem`]s against a shared
//!   signal blackboard with **one-tick observation delay**: every
//!   subsystem reads the *previous* tick's snapshot and writes the next
//!   one, matching the thesis's rule that monitored values are known one
//!   state late;
//! * actuation plumbing: [`FirstOrderLag`], [`RateLimiter`], [`DelayLine`];
//! * [`SeriesLog`] for recording the time series behind the thesis's
//!   figures.
//!
//! The blackboard *is* [`esafe_logic::State`], so run-time goal monitors
//! attach without adapters.
//!
//! # Example
//!
//! ```
//! use esafe_sim::{SimTime, Simulator, Subsystem};
//! use esafe_logic::State;
//!
//! struct Counter;
//! impl Subsystem for Counter {
//!     fn name(&self) -> &str { "counter" }
//!     fn step(&mut self, _t: &SimTime, prev: &State, next: &mut State) {
//!         let n = prev.get("n").and_then(|v| v.as_real()).unwrap_or(0.0);
//!         next.set("n", n + 1.0);
//!     }
//! }
//!
//! let mut sim = Simulator::new(1);
//! sim.add(Counter);
//! sim.init(State::new().with_real("n", 0.0));
//! for _ in 0..5 { sim.step(); }
//! assert_eq!(sim.state().get("n").unwrap().as_real(), Some(5.0));
//! ```

use esafe_logic::{State, Value};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Simulation time: the current tick and the tick period.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimTime {
    /// Ticks elapsed since simulation start (the state being computed).
    pub tick: u64,
    /// Tick period in milliseconds.
    pub dt_millis: u64,
}

impl SimTime {
    /// Elapsed time in seconds.
    pub fn seconds(&self) -> f64 {
        (self.tick * self.dt_millis) as f64 / 1000.0
    }

    /// Tick period in seconds.
    pub fn dt_seconds(&self) -> f64 {
        self.dt_millis as f64 / 1000.0
    }
}

/// A simulated component: reads the previous tick's signals, writes the
/// next tick's.
///
/// Subsystems are stepped in registration order, but because every
/// subsystem reads the same previous snapshot, ordering does not leak
/// information within a tick — all inter-subsystem communication takes at
/// least one tick, as in the thesis's state model.
pub trait Subsystem {
    /// Display name (used in logs and error messages).
    fn name(&self) -> &str;

    /// Advances one tick: read `prev`, write outputs into `next`.
    fn step(&mut self, t: &SimTime, prev: &State, next: &mut State);
}

/// The fixed-step simulator.
pub struct Simulator {
    subsystems: Vec<Box<dyn Subsystem>>,
    state: State,
    tick: u64,
    dt_millis: u64,
}

impl Simulator {
    /// Creates a simulator with the given tick period in milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `dt_millis` is zero.
    pub fn new(dt_millis: u64) -> Self {
        assert!(dt_millis > 0, "tick period must be positive");
        Simulator {
            subsystems: Vec::new(),
            state: State::new(),
            tick: 0,
            dt_millis,
        }
    }

    /// Registers a subsystem (stepped in registration order).
    pub fn add(&mut self, s: impl Subsystem + 'static) {
        self.subsystems.push(Box::new(s));
    }

    /// Sets the initial state (tick 0 snapshot).
    pub fn init(&mut self, state: State) {
        self.state = state;
        self.tick = 0;
    }

    /// Current tick count.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Tick period in milliseconds.
    pub fn dt_millis(&self) -> u64 {
        self.dt_millis
    }

    /// Current simulated time in seconds.
    pub fn seconds(&self) -> f64 {
        (self.tick * self.dt_millis) as f64 / 1000.0
    }

    /// The current state snapshot.
    pub fn state(&self) -> &State {
        &self.state
    }

    /// Advances one tick and returns the new state.
    pub fn step(&mut self) -> &State {
        let t = SimTime {
            tick: self.tick + 1,
            dt_millis: self.dt_millis,
        };
        let prev = self.state.clone();
        let mut next = prev.clone();
        for s in &mut self.subsystems {
            s.step(&t, &prev, &mut next);
        }
        self.state = next;
        self.tick += 1;
        &self.state
    }

    /// Runs until `ticks` have elapsed or `observer` returns `false`.
    /// The observer sees each new state as it is produced.
    pub fn run(&mut self, ticks: u64, mut observer: impl FnMut(u64, &State) -> bool) {
        for _ in 0..ticks {
            self.step();
            if !observer(self.tick, &self.state) {
                break;
            }
        }
    }
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("tick", &self.tick)
            .field("dt_millis", &self.dt_millis)
            .field(
                "subsystems",
                &self.subsystems.iter().map(|s| s.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

/// First-order actuator lag: `value` approaches `target` with time
/// constant `tau` (the plant response behind the thesis's Min/Max
/// actuation-delay relationships, eq. 4.2–4.5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FirstOrderLag {
    /// Time constant in seconds.
    pub tau_s: f64,
    /// Current output.
    pub value: f64,
}

impl FirstOrderLag {
    /// Creates a lag at an initial value.
    pub fn new(tau_s: f64, initial: f64) -> Self {
        FirstOrderLag {
            tau_s,
            value: initial,
        }
    }

    /// Advances by `dt_s` toward `target`, returning the new output.
    pub fn step(&mut self, target: f64, dt_s: f64) -> f64 {
        if self.tau_s <= 0.0 {
            self.value = target;
        } else {
            let alpha = 1.0 - (-dt_s / self.tau_s).exp();
            self.value += (target - self.value) * alpha;
        }
        self.value
    }
}

/// Slew-rate limiter: output moves toward the target at a bounded rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateLimiter {
    /// Maximum rate of change per second (absolute).
    pub max_rate_per_s: f64,
    /// Current output.
    pub value: f64,
}

impl RateLimiter {
    /// Creates a limiter at an initial value.
    pub fn new(max_rate_per_s: f64, initial: f64) -> Self {
        RateLimiter {
            max_rate_per_s,
            value: initial,
        }
    }

    /// Advances by `dt_s` toward `target`, returning the new output.
    pub fn step(&mut self, target: f64, dt_s: f64) -> f64 {
        let max_delta = self.max_rate_per_s * dt_s;
        let delta = (target - self.value).clamp(-max_delta, max_delta);
        self.value += delta;
        self.value
    }
}

/// A fixed-latency value pipe modeling network/communication delay.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayLine {
    queue: VecDeque<Value>,
    delay_ticks: usize,
    default: Value,
}

impl DelayLine {
    /// Creates a delay line that emits `default` until the first pushed
    /// value has aged `delay_ticks`.
    pub fn new(delay_ticks: usize, default: Value) -> Self {
        DelayLine {
            queue: VecDeque::with_capacity(delay_ticks + 1),
            delay_ticks,
            default,
        }
    }

    /// Pushes this tick's input and pops the value from `delay_ticks` ago.
    pub fn shift(&mut self, input: Value) -> Value {
        self.queue.push_back(input);
        if self.queue.len() > self.delay_ticks {
            self.queue.pop_front().expect("length checked")
        } else {
            self.default.clone()
        }
    }
}

/// Records named time series for figure reproduction.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SeriesLog {
    series: BTreeMap<String, Vec<(f64, f64)>>,
}

impl SeriesLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a `(time, value)` point to the named series.
    pub fn push(&mut self, name: &str, time_s: f64, value: f64) {
        self.series
            .entry(name.to_owned())
            .or_default()
            .push((time_s, value));
    }

    /// Samples a numeric or boolean signal from a state into the series
    /// (booleans record as 0/1). Missing or symbolic signals are skipped.
    pub fn sample(&mut self, name: &str, time_s: f64, state: &State) {
        match state.get(name) {
            Some(Value::Bool(b)) => self.push(name, time_s, if *b { 1.0 } else { 0.0 }),
            Some(v) => {
                if let Some(x) = v.as_real() {
                    self.push(name, time_s, x);
                }
            }
            None => {}
        }
    }

    /// The recorded points of a series.
    pub fn series(&self, name: &str) -> Option<&[(f64, f64)]> {
        self.series.get(name).map(Vec::as_slice)
    }

    /// Names of all recorded series.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// Downsamples a series to at most `max_points` evenly spaced points
    /// (for terminal rendering of figures).
    pub fn downsample(&self, name: &str, max_points: usize) -> Vec<(f64, f64)> {
        let Some(points) = self.series(name) else {
            return Vec::new();
        };
        if points.len() <= max_points || max_points == 0 {
            return points.to_vec();
        }
        let stride = points.len().div_ceil(max_points);
        points.iter().step_by(stride).copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo {
        from: &'static str,
        to: &'static str,
    }

    impl Subsystem for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn step(&mut self, _t: &SimTime, prev: &State, next: &mut State) {
            if let Some(v) = prev.get(self.from) {
                next.set(self.to, v.clone());
            }
        }
    }

    #[test]
    fn subsystems_see_previous_tick_only() {
        // a -> b -> c echo chain: values propagate one hop per tick even
        // though both echoes run every tick.
        let mut sim = Simulator::new(1);
        sim.add(Echo { from: "a", to: "b" });
        sim.add(Echo { from: "b", to: "c" });
        sim.init(
            State::new()
                .with_real("a", 7.0)
                .with_real("b", 0.0)
                .with_real("c", 0.0),
        );
        sim.step();
        assert_eq!(sim.state().get("b").unwrap().as_real(), Some(7.0));
        assert_eq!(sim.state().get("c").unwrap().as_real(), Some(0.0));
        sim.step();
        assert_eq!(sim.state().get("c").unwrap().as_real(), Some(7.0));
    }

    #[test]
    fn run_stops_when_observer_returns_false() {
        let mut sim = Simulator::new(1);
        sim.add(Echo { from: "a", to: "b" });
        sim.init(State::new().with_real("a", 1.0).with_real("b", 0.0));
        let mut seen = 0;
        sim.run(100, |tick, _| {
            seen += 1;
            tick < 5
        });
        assert_eq!(seen, 5);
        assert_eq!(sim.tick(), 5);
    }

    #[test]
    fn seconds_accounts_for_dt() {
        let mut sim = Simulator::new(10);
        sim.init(State::new());
        for _ in 0..100 {
            sim.step();
        }
        assert!((sim.seconds() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn first_order_lag_converges_monotonically() {
        let mut lag = FirstOrderLag::new(0.1, 0.0);
        let mut last = 0.0;
        for _ in 0..1000 {
            let v = lag.step(1.0, 0.001);
            assert!(v >= last && v <= 1.0);
            last = v;
        }
        assert!(last > 0.99);
    }

    #[test]
    fn zero_tau_is_passthrough() {
        let mut lag = FirstOrderLag::new(0.0, 0.0);
        assert_eq!(lag.step(5.0, 0.001), 5.0);
    }

    #[test]
    fn rate_limiter_bounds_slew() {
        let mut rl = RateLimiter::new(10.0, 0.0);
        let v = rl.step(100.0, 0.1);
        assert_eq!(v, 1.0); // 10/s * 0.1s
        let v2 = rl.step(-100.0, 0.1);
        assert_eq!(v2, 0.0);
    }

    #[test]
    fn delay_line_shifts_by_configured_ticks() {
        let mut dl = DelayLine::new(2, Value::Int(0));
        assert_eq!(dl.shift(Value::Int(1)), Value::Int(0));
        assert_eq!(dl.shift(Value::Int(2)), Value::Int(0));
        assert_eq!(dl.shift(Value::Int(3)), Value::Int(1));
        assert_eq!(dl.shift(Value::Int(4)), Value::Int(2));
    }

    #[test]
    fn zero_delay_line_is_passthrough() {
        let mut dl = DelayLine::new(0, Value::Bool(false));
        assert_eq!(dl.shift(Value::Bool(true)), Value::Bool(true));
    }

    #[test]
    fn series_log_records_and_downsamples() {
        let mut log = SeriesLog::new();
        for i in 0..100 {
            log.push("x", i as f64, (i * 2) as f64);
        }
        assert_eq!(log.series("x").unwrap().len(), 100);
        let ds = log.downsample("x", 10);
        assert!(ds.len() <= 10);
        assert_eq!(ds[0], (0.0, 0.0));
        assert!(log.series("missing").is_none());
    }

    #[test]
    fn series_log_samples_bools_as_binary() {
        let mut log = SeriesLog::new();
        let s = State::new().with_bool("flag", true).with_sym("cmd", "GO");
        log.sample("flag", 0.5, &s);
        log.sample("cmd", 0.5, &s); // symbolic: skipped
        log.sample("none", 0.5, &s); // missing: skipped
        assert_eq!(log.series("flag").unwrap(), &[(0.5, 1.0)]);
        assert!(log.series("cmd").is_none());
    }
}
