//! Shared helpers for the reproduction harness and benchmarks.

use esafe_harness::{Experiment, SweepAggregate, SweepStats};
use esafe_logic::Frame;
use esafe_scenarios::{catalog, grid, mega, runner, ScenarioReport};
use esafe_vehicle::config::DefectSet;
use esafe_vehicle::VehicleFamily;

/// Figure-number → (scenario, signals) mapping for the thesis's
/// Figures 5.2–5.15.
pub fn figure_map(figure: &str) -> Option<(u8, Vec<&'static str>)> {
    Some(match figure {
        "5.2" => (1, vec!["ca.accel_request"]),
        "5.3" => (1, vec!["pa.accel_request"]),
        "5.4" => (
            2,
            vec!["arbiter.accel_cmd", "ca.accel_request", "ca.selected"],
        ),
        "5.5" => (
            3,
            vec!["ca.accel_request", "host.speed", "world.lead_distance"],
        ),
        "5.6" => (3, vec!["acc.accel_request"]),
        "5.7" => (4, vec!["acc.accel_request", "acc.accel_request_rate"]),
        "5.8" => (4, vec!["acc.active", "host.speed", "arbiter.accel_cmd"]),
        "5.9" => (5, vec!["driver.throttle", "acc.active"]),
        "5.10" => (
            6,
            vec!["lca.active", "lca.steering_request", "arbiter.steering_cmd"],
        ),
        "5.11" => (6, vec!["host.speed", "acc.selected", "lca.selected"]),
        "5.12" => (7, vec!["rca.active", "world.rear_distance", "host.speed"]),
        "5.13" => (8, vec!["acc.active", "acc.selected"]),
        "5.14" => (
            9,
            vec!["pa.accel_request", "arbiter.accel_cmd", "pa.selected"],
        ),
        "5.15" => (10, vec!["acc.active", "arbiter.accel_cmd", "host.speed"]),
        _ => return None,
    })
}

/// Runs a scenario under the thesis defect set (cached per call site —
/// runs are deterministic, so callers may memoize freely).
pub fn thesis_run(scenario: u8) -> ScenarioReport {
    runner::run(&catalog::scenario(scenario), DefectSet::thesis())
        .expect("scenario formulas compile against the simulator signals")
}

/// The per-defect ablation, fanned across cores: which defect
/// configuration produces which goal violations in a scenario. Covers
/// the fixed system, the full thesis population, and every
/// single-defect cell. Returns `(label, violated monitor ids)` in
/// configuration order.
pub fn ablation(scenario: u8) -> Vec<(String, Vec<String>)> {
    let cells = grid::cells(&[scenario], &grid::ablation_configs());
    let sweep = grid::run_parallel(cells.clone()).expect("scenario runs");
    cells
        .iter()
        .zip(&sweep.runs)
        .map(|(cell, run)| {
            let ids = run.violations.iter().map(|(id, _)| id.clone()).collect();
            (cell.config.clone(), ids)
        })
        .collect()
}

/// Runs the full ten-scenario × fourteen-configuration evaluation grid
/// in parallel and returns its order-independent aggregate.
pub fn full_grid_aggregate() -> SweepAggregate {
    full_grid_timed().0
}

/// [`full_grid_aggregate`] plus the sweep's timing/amortization stats —
/// the source of the `repro --grid --json` breakdown. Runs as a
/// **streaming reduction** (per-worker partial aggregates, no retained
/// reports), which the regression tests pin as identical to the
/// collect-all path.
pub fn full_grid_timed() -> (SweepAggregate, SweepStats) {
    grid::run_parallel_aggregate(grid::full_grid()).expect("grid runs")
}

/// One-off calibration of the fused monitor hot path: the 49-monitor
/// vehicle `observe` cost per tick, measured by recording a clean
/// scenario-1 run's observed frames ([`Experiment::with_frame_recording`])
/// and replaying them through a template-instantiated (fused) suite —
/// monitoring cost only, no simulation in the loop. Also reports the
/// suite's cross-monitor CSE node counts.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ObserveCalibration {
    /// Fused suite `observe` cost per tick, nanoseconds.
    pub observe_ns_per_tick: f64,
    /// Monitors (goals + subgoals) in the calibrated suite.
    pub monitors: usize,
    /// Expression nodes summed over the per-monitor programs (what
    /// per-monitor evaluation would walk).
    pub cse_source_nodes: usize,
    /// Nodes in the deduplicated fused DAG (what one tick evaluates).
    pub cse_unique_nodes: usize,
}

/// Records one clean (defect-free) scenario-1 run with frame recording
/// and materializes its first `max_ticks` observed frames over the
/// family's table, so a timed replay loop is monitoring only — no
/// per-tick column-to-frame assembly. **The one recorded-run harness**
/// behind [`observe_calibration`] and the `fused_observe`/
/// `batched_observe` criterion benches: they must all measure the same
/// frame stream to stay comparable. ([`batch_calibration`] instead
/// ticks live mega-grid stripes, because it must price simulation too.)
pub fn recorded_clean_frames(family: &VehicleFamily, max_ticks: usize) -> Vec<Frame> {
    let cells = grid::cells(&[1], &[("none".to_owned(), DefectSet::none())]);
    let substrate = grid::build_cell_in(family, &cells[0], 0);
    let report = Experiment::new(&substrate)
        .with_config(runner::thesis_config())
        .with_frame_recording(true)
        .run()
        .expect("scenario formulas compile against the simulator signals");
    let trace = report.trace.expect("frame recording enabled");
    (0..trace.len().min(max_ticks))
        .map(|i| {
            let mut frame = family.table().frame();
            trace.read_into(i, &mut frame);
            frame
        })
        .collect()
}

/// Replicates recorded frames into tick-major stripe inputs:
/// `result[t]` is the `width`-lane input at tick `t` (the same
/// recorded frame in every lane) — the batched-replay analogue of
/// feeding one frame to a scalar suite.
pub fn replicate_lanes(frames: &[Frame], width: usize) -> Vec<Vec<Frame>> {
    frames.iter().map(|f| vec![f.clone(); width]).collect()
}

/// Measures [`ObserveCalibration`] on this machine (≈100 ms: one 20 s
/// recorded run plus a few replay passes).
pub fn observe_calibration() -> ObserveCalibration {
    let family = VehicleFamily::default();
    let frames = recorded_clean_frames(&family, usize::MAX);
    let mut suite = family.template().instantiate();
    let observe_pass = |suite: &mut esafe_monitor::MonitorSuite| {
        suite.reset();
        for frame in &frames {
            suite.observe(frame).expect("recorded frames are complete");
        }
    };
    // Warm-up pass, then timed passes.
    observe_pass(&mut suite);
    let passes = 3u32;
    let started = std::time::Instant::now();
    for _ in 0..passes {
        observe_pass(&mut suite);
    }
    let elapsed = started.elapsed();
    let program = family.template().fused_program().clone();
    ObserveCalibration {
        observe_ns_per_tick: elapsed.as_nanos() as f64 / (passes as usize * frames.len()) as f64,
        monitors: program.roots(),
        cse_source_nodes: program.source_nodes(),
        cse_unique_nodes: program.unique_nodes(),
    }
}

/// One measured point of the batch-width calibration: the **full
/// stripe loop** cost per tick *per run* when `width` runs advance
/// together — batched simulation, in-place probe observation, and the
/// fused monitor pass — split into its sim and observe shares.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WidthPoint {
    /// Lanes per stripe.
    pub width: usize,
    /// Whole stripe-loop cost per tick per lane, nanoseconds
    /// (`sim + observe`).
    pub ns_per_tick_per_run: f64,
    /// The [`SimulatorBatch::step`](esafe_sim::SimulatorBatch::step)
    /// share of `ns_per_tick_per_run`.
    pub sim_ns_per_tick_per_run: f64,
    /// The observation share of `ns_per_tick_per_run`: in-place probe
    /// derivation plus the fused monitor slab pass (DAG + trackers).
    pub observe_ns_per_tick_per_run: f64,
}

/// The batch-width calibration: the scalar full-loop baseline plus one
/// [`WidthPoint`] per candidate stripe width, measured by ticking real
/// mega-grid cells — simulate **and** monitor, the same loop the
/// striped sweep runs — so the chosen width reflects how sim cost
/// amortizes across lanes, not just the monitor pass.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BatchCalibration {
    /// Timed ticks per measurement (after a short warm-up).
    pub ticks: usize,
    /// Scalar baseline — one cell through `Simulator` + scalar probe
    /// observe + fused `MonitorSuite` — nanoseconds per tick per run.
    pub scalar_ns_per_tick_per_run: f64,
    /// Batched cost per candidate width, cheapest engine for a sweep
    /// stripe being the smallest `ns_per_tick_per_run`.
    pub widths: Vec<WidthPoint>,
}

impl BatchCalibration {
    /// The calibrated stripe width: the candidate with the lowest
    /// per-run cost (ties break toward the narrower stripe, which
    /// schedules better).
    pub fn best_width(&self) -> usize {
        self.best_point()
            .map_or(esafe_harness::DEFAULT_BATCH_WIDTH, |p| p.width)
    }

    /// The winning [`WidthPoint`] (`None` only for an empty sweep).
    pub fn best_point(&self) -> Option<&WidthPoint> {
        self.widths.iter().min_by(|a, b| {
            a.ns_per_tick_per_run
                .total_cmp(&b.ns_per_tick_per_run)
                .then(a.width.cmp(&b.width))
        })
    }

    /// The calibrated width's per-run cost, nanoseconds per tick.
    pub fn best_ns_per_tick_per_run(&self) -> f64 {
        self.best_point()
            .map_or(self.scalar_ns_per_tick_per_run, |p| p.ns_per_tick_per_run)
    }
}

/// Ticks each calibration measurement is timed over (after
/// [`CALIBRATION_WARMUP`] untimed warm-up ticks).
const CALIBRATION_TICKS: u64 = 1000;
/// Untimed ticks that settle caches, branch predictors, and the
/// scenario's initial transient before timing starts.
const CALIBRATION_WARMUP: u64 = 200;

/// Measures [`BatchCalibration`] on this machine: one scalar mega-cell
/// baseline, then one real stripe per candidate width (2–128) of
/// distinct mega-grid cells stepped through a native
/// [`SimulatorBatch`](esafe_sim::SimulatorBatch) with in-place probe
/// observation and one fused
/// [`MonitorSuiteBatch`](esafe_monitor::MonitorSuiteBatch) pass per tick —
/// the striped sweep's tick loop, minus series sampling and terminal
/// checks (both negligible). The sim share is timed inline around
/// `sim.step()`; the observe share is the remainder.
pub fn batch_calibration() -> BatchCalibration {
    use esafe_harness::Substrate as _;
    use std::time::{Duration, Instant};

    let family = VehicleFamily::default();
    let cells = mega::mega_grid();

    // Scalar baseline: one cell, one `Simulator`, one fused suite.
    let sub = mega::build_mega_cell_in(&family, &cells[0], 0);
    let mut sim = sub.build_simulator();
    let mut suite = family.template().instantiate();
    let mut observed = sub.signal_table().frame();
    let mut scalar_tick = |sim: &mut esafe_sim::Simulator| {
        let raw = sim.step();
        sub.observe(raw, &mut observed);
        suite.observe(&observed).expect("mega frames are complete");
    };
    for _ in 0..CALIBRATION_WARMUP {
        scalar_tick(&mut sim);
    }
    let started = Instant::now();
    for _ in 0..CALIBRATION_TICKS {
        scalar_tick(&mut sim);
    }
    let scalar_ns_per_tick_per_run = started.elapsed().as_nanos() as f64 / CALIBRATION_TICKS as f64;

    let widths = [2usize, 4, 8, 16, 32, 64, 128]
        .into_iter()
        .map(|width| {
            let subs: Vec<_> = cells[..width]
                .iter()
                .map(|c| mega::build_mega_cell_in(&family, c, 0))
                .collect();
            let group: Vec<&_> = subs.iter().collect();
            let table = subs[0].signal_table().clone();
            let mut raw = table.frame();
            let mut observed = table.frame();
            let mut sim = esafe_vehicle::VehicleSubstrate::build_simulator_batch(&group)
                .expect("the vehicle substrate has a native batched builder");
            let mut batch = family.template().instantiate_batch(width);
            let mut sim_time = Duration::ZERO;
            let mut tick = |sim: &mut esafe_sim::SimulatorBatch,
                            batch: &mut esafe_monitor::MonitorSuiteBatch,
                            sim_time: &mut Duration| {
                let t0 = Instant::now();
                sim.step();
                *sim_time += t0.elapsed();
                for (l, sub) in subs.iter().enumerate() {
                    sub.observe_lane(sim.state_mut(), l, &mut raw, &mut observed);
                }
                batch
                    .observe_slab(sim.state())
                    .expect("mega frames are complete");
            };
            for _ in 0..CALIBRATION_WARMUP {
                tick(&mut sim, &mut batch, &mut sim_time);
            }
            sim_time = Duration::ZERO;
            let started = Instant::now();
            for _ in 0..CALIBRATION_TICKS {
                tick(&mut sim, &mut batch, &mut sim_time);
            }
            let lane_ticks = (CALIBRATION_TICKS as usize * width) as f64;
            let total = started.elapsed().as_nanos() as f64 / lane_ticks;
            let sim_ns = sim_time.as_nanos() as f64 / lane_ticks;
            WidthPoint {
                width,
                ns_per_tick_per_run: total,
                sim_ns_per_tick_per_run: sim_ns,
                observe_ns_per_tick_per_run: total - sim_ns,
            }
        })
        .collect();

    BatchCalibration {
        ticks: CALIBRATION_TICKS as usize,
        scalar_ns_per_tick_per_run,
        widths,
    }
}

/// Runs the full default mega grid (`esafe_scenarios::mega`, ≥10⁴
/// cells) through the batched streaming engine at the given stripe
/// width, returning the aggregate, sweep stats, and cell count.
pub fn full_mega_timed(width: usize) -> (SweepAggregate, SweepStats, usize) {
    let cells = mega::mega_grid();
    let count = cells.len();
    let (aggregate, stats) =
        mega::run_mega_aggregate(cells, width).expect("mega-grid formulas compile");
    (aggregate, stats, count)
}

/// Runs an explicit mega cell list (typically [`mega_cells_subset`])
/// through the batched streaming engine, uncheckpointed.
pub fn mega_timed_over(
    cells: Vec<esafe_scenarios::mega::MegaCell>,
    width: usize,
) -> (SweepAggregate, SweepStats) {
    mega::run_mega_aggregate(cells, width).expect("mega-grid formulas compile")
}

/// The mega grid's first `subset` cells (seeds and labels keep their
/// full-grid positions), or the whole grid when `subset` is `None` —
/// the `repro --mega-grid --subset` space, sized for smoke runs and
/// the CI kill-and-resume check.
pub fn mega_cells_subset(subset: Option<usize>) -> Vec<esafe_scenarios::mega::MegaCell> {
    let cells = mega::mega_grid();
    match subset {
        Some(n) => cells.into_iter().take(n).collect(),
        None => cells,
    }
}

/// Provenance of a checkpointed mega run, carried into the schema-v6
/// summary.
#[derive(Debug, Clone, PartialEq)]
pub struct MegaCheckpointInfo {
    /// The journal path a resumed run recovered from (`None` for a
    /// fresh `--checkpoint` run).
    pub resumed_from: Option<String>,
    /// Cells replayed from the journal instead of re-running.
    pub resumed_cells: usize,
    /// Intact journal records after the run (recovered + appended).
    pub journal_records: usize,
}

/// Runs `cells` through the checkpointed mega engine
/// ([`mega::run_mega_aggregate_checkpointed`]): `resume` reopens the
/// journal at `checkpoint` (recovering its intact records and
/// truncating any torn tail), otherwise a fresh journal is created
/// there. Fault isolation is on — failing cells land in
/// [`SweepAggregate::quarantined`], not in an abort.
///
/// # Errors
///
/// Returns the journal's [`esafe_harness::ExperimentError::Journal`]
/// on create/open/mismatch/I-O failure, or a cell's error only if the
/// journal itself failed.
pub fn full_mega_checkpointed(
    cells: Vec<esafe_scenarios::mega::MegaCell>,
    width: usize,
    checkpoint: &str,
    resume: bool,
) -> Result<(SweepAggregate, SweepStats, usize, MegaCheckpointInfo), esafe_harness::ExperimentError>
{
    let count = cells.len();
    let mut journal = if resume {
        esafe_harness::SweepJournal::open(checkpoint)?
    } else {
        mega::create_mega_journal(checkpoint, &cells)?
    };
    let resumed_cells = journal.completed_cells();
    let (aggregate, stats) = mega::run_mega_aggregate_checkpointed(cells, width, &mut journal)?;
    let info = MegaCheckpointInfo {
        resumed_from: resume.then(|| checkpoint.to_owned()),
        resumed_cells,
        journal_records: journal.records(),
    };
    Ok((aggregate, stats, count, info))
}

/// The machine-readable `repro --mega-grid --json` summary — **schema
/// v6**, written to `BENCH_megagrid.json`: the ≥10⁴-cell sweep's
/// wall-clock and worker-time totals, the batch-width calibration that
/// chose the stripe width (the full sim+observe stripe loop, with the
/// chosen width's sim/observe split), the fault-isolation and
/// checkpoint/resume provenance, and the order-independent aggregate.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MegaGridSummary {
    /// Summary schema version (v4 introduced the mega-grid fields and
    /// the monitor-only width calibration; v5 recalibrated over the
    /// full sim+observe stripe loop and recorded the chosen width's
    /// sim/observe split; v6 adds the robustness provenance —
    /// `quarantined_cells`, `retries`, `resumed_from`, `resumed_cells`,
    /// `journal_records` — and zeroes the calibration fields when
    /// `--width` forces the stripe width; v1–v3 are the
    /// `BENCH_grid.json` history).
    pub schema: u32,
    /// Cells in the swept parameter space.
    pub cells: usize,
    /// Total sweep wall-clock, milliseconds.
    pub wall_clock_ms: f64,
    /// Wall-clock per monitored run, milliseconds.
    pub ms_per_run: f64,
    /// Per-run setup time summed over all workers, milliseconds.
    pub setup_ms: f64,
    /// Tick-loop time summed over all workers, milliseconds.
    pub tick_ms: f64,
    /// The stripe width the calibration selected for the sweep.
    pub batch_width: usize,
    /// Scalar full-loop baseline (sim + probe observe + fused
    /// monitors, one run at a time), ns per tick per run.
    pub scalar_ns_per_tick_per_run: f64,
    /// Full stripe-loop cost at `batch_width`, ns per tick per run —
    /// the acceptance quantity (at or below the scalar baseline).
    pub batched_ns_per_tick_per_run: f64,
    /// The [`SimulatorBatch::step`](esafe_sim::SimulatorBatch::step)
    /// share of `batched_ns_per_tick_per_run`.
    pub batched_sim_ns_per_tick_per_run: f64,
    /// The observation share of `batched_ns_per_tick_per_run`:
    /// in-place probe derivation plus the fused monitor slab pass.
    pub batched_observe_ns_per_tick_per_run: f64,
    /// The full width sweep behind the choice.
    pub width_calibration: Vec<WidthPoint>,
    /// Runs that compiled their monitor suite from scratch.
    pub suite_compiles: usize,
    /// Runs whose suite came from a template instantiation (stripe
    /// lanes count here).
    pub suite_instantiations: usize,
    /// Runs that reset and reused a worker's pooled suite.
    pub suite_reuses: usize,
    /// Cells quarantined by fault isolation instead of completing
    /// (`aggregate.quarantined` carries the full per-cell provenance).
    pub quarantined_cells: usize,
    /// Retry attempts consumed across the sweep.
    pub retries: usize,
    /// The journal path a resumed run recovered from (`null` unless
    /// `--resume`).
    pub resumed_from: Option<String>,
    /// Cells replayed from the journal instead of re-running (0 for a
    /// fresh or uncheckpointed run).
    pub resumed_cells: usize,
    /// Intact journal records after the run (0 when uncheckpointed).
    pub journal_records: usize,
    /// The order-independent classification totals.
    pub aggregate: SweepAggregate,
}

/// Serializes the mega-grid aggregate + timing + width calibration +
/// checkpoint provenance as pretty JSON (schema v6). `calibration` is
/// `None` when `--width` forced the stripe width (the calibration
/// fields are zeroed); `checkpoint` is `None` for an uncheckpointed
/// run.
///
/// # Errors
///
/// Returns a `serde_json::Error` if serialization fails (never expected
/// for these types).
pub fn mega_summary_json(
    aggregate: &SweepAggregate,
    wall: std::time::Duration,
    stats: &SweepStats,
    calibration: Option<&BatchCalibration>,
    cells: usize,
    batch_width: usize,
    checkpoint: Option<&MegaCheckpointInfo>,
) -> Result<String, serde_json::Error> {
    let wall_clock_ms = wall.as_secs_f64() * 1000.0;
    let best = calibration.and_then(BatchCalibration::best_point);
    let summary = MegaGridSummary {
        schema: 6,
        cells,
        wall_clock_ms,
        ms_per_run: if aggregate.runs == 0 {
            0.0
        } else {
            wall_clock_ms / aggregate.runs as f64
        },
        setup_ms: stats.setup.as_secs_f64() * 1000.0,
        tick_ms: stats.ticking.as_secs_f64() * 1000.0,
        batch_width,
        scalar_ns_per_tick_per_run: calibration.map_or(0.0, |c| c.scalar_ns_per_tick_per_run),
        batched_ns_per_tick_per_run: calibration
            .map_or(0.0, BatchCalibration::best_ns_per_tick_per_run),
        batched_sim_ns_per_tick_per_run: best.map_or(0.0, |p| p.sim_ns_per_tick_per_run),
        batched_observe_ns_per_tick_per_run: best.map_or(0.0, |p| p.observe_ns_per_tick_per_run),
        width_calibration: calibration.map_or_else(Vec::new, |c| c.widths.clone()),
        suite_compiles: stats.suites_compiled,
        suite_instantiations: stats.suites_instantiated,
        suite_reuses: stats.suites_reused,
        quarantined_cells: aggregate.quarantined.len(),
        retries: aggregate.retries,
        resumed_from: checkpoint.and_then(|c| c.resumed_from.clone()),
        resumed_cells: checkpoint.map_or(0, |c| c.resumed_cells),
        journal_records: checkpoint.map_or(0, |c| c.journal_records),
        aggregate: aggregate.clone(),
    };
    serde_json::to_string_pretty(&summary)
}

/// The machine-readable `repro --grid --json` summary: wall-clock timing
/// plus the order-independent grid aggregate, one JSON object per
/// benchmark run so successive PRs have a trajectory to compare.
///
/// Schema history: **v1** had `wall_clock_ms` / `ms_per_run` /
/// `aggregate` only; **v2** adds the setup/tick attribution and the
/// suite amortization counters, so future wins (and regressions) name
/// the phase they came from; **v3** adds the fused-monitor calibration —
/// `observe_ns_per_tick` and the cross-monitor CSE node counts — and is
/// produced by the streaming (per-worker-reduced) grid sweep.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GridSummary {
    /// Summary schema version (bump when fields change meaning).
    pub schema: u32,
    /// Total grid wall-clock, milliseconds.
    pub wall_clock_ms: f64,
    /// Wall-clock per monitored run, milliseconds.
    pub ms_per_run: f64,
    /// Per-run setup time summed over all workers, milliseconds
    /// (suite acquisition, simulator build, scratch frames).
    pub setup_ms: f64,
    /// Tick-loop time summed over all workers, milliseconds.
    pub tick_ms: f64,
    /// Fused 49-monitor vehicle `observe` cost per tick, nanoseconds
    /// (replay-calibrated, monitoring only — see `observe_calibration`).
    pub observe_ns_per_tick: f64,
    /// Vehicle goal-suite expression nodes before cross-monitor
    /// deduplication (summed per-monitor trees).
    pub cse_source_nodes: usize,
    /// Nodes in the deduplicated fused DAG one tick actually evaluates.
    pub cse_unique_nodes: usize,
    /// Runs that compiled their monitor suite from scratch.
    pub suite_compiles: usize,
    /// Runs that instantiated a suite from the sweep's compile-once
    /// template.
    pub suite_instantiations: usize,
    /// Runs that reset and reused a worker's pooled suite.
    pub suite_reuses: usize,
    /// The order-independent classification totals.
    pub aggregate: SweepAggregate,
}

/// Serializes the grid aggregate + timing + fused-monitor calibration
/// as pretty JSON (schema v3).
///
/// # Errors
///
/// Returns a `serde_json::Error` if serialization fails (never expected
/// for these types).
pub fn grid_summary_json(
    aggregate: &SweepAggregate,
    wall: std::time::Duration,
    stats: &SweepStats,
    calibration: &ObserveCalibration,
) -> Result<String, serde_json::Error> {
    let wall_clock_ms = wall.as_secs_f64() * 1000.0;
    let summary = GridSummary {
        schema: 3,
        wall_clock_ms,
        ms_per_run: if aggregate.runs == 0 {
            0.0
        } else {
            wall_clock_ms / aggregate.runs as f64
        },
        setup_ms: stats.setup.as_secs_f64() * 1000.0,
        tick_ms: stats.ticking.as_secs_f64() * 1000.0,
        observe_ns_per_tick: calibration.observe_ns_per_tick,
        cse_source_nodes: calibration.cse_source_nodes,
        cse_unique_nodes: calibration.cse_unique_nodes,
        suite_compiles: stats.suites_compiled,
        suite_instantiations: stats.suites_instantiated,
        suite_reuses: stats.suites_reused,
        aggregate: aggregate.clone(),
    };
    serde_json::to_string_pretty(&summary)
}

/// The machine-readable `repro --serve-bench --json` summary —
/// **schema v2 (`serve-bench`)**, written to `BENCH_serve.json`: a
/// fleet of replayed elevator runs streamed through one
/// [`esafe_serve::MonitorService`] shard worker, with the sustained
/// concurrency, the end-to-end stream-tick throughput, and — new in
/// v2 — the degradation counters (evictions, quarantines, dropped
/// reports, shard restarts) that a faulty fleet (`--faulty N`)
/// exercises.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServeBenchSummary {
    /// Serve-bench summary schema version.
    pub schema: u32,
    /// Streams held live at once (the fleet size): every close is
    /// immediately replaced until `total_streams` have launched, so the
    /// shard sustains this occupancy for the whole measured window.
    pub concurrent_streams: usize,
    /// Streams launched (and closed) over the run.
    pub total_streams: usize,
    /// Frames each stream replays before ending.
    pub ticks_per_stream: u64,
    /// Total frames monitored, summed over every stream's close-out
    /// summary — the work quantity behind the throughput figures.
    pub stream_ticks: u64,
    /// Monitors evaluated per stream tick (the elevator goal suite).
    pub monitors: usize,
    /// Length of the shared recorded elevator trace the fleet replays
    /// (members start at staggered offsets, wrapping).
    pub trace_ticks: usize,
    /// Lanes provisioned on the shard
    /// ([`lanes_per_shard`](esafe_serve::ServiceConfig::lanes_per_shard)).
    pub shard_lanes: usize,
    /// Waves between periodic violation drains
    /// ([`report_every`](esafe_serve::ServiceConfig::report_every)).
    pub report_every: u64,
    /// Violation intervals reported across the whole fleet (periodic
    /// drains plus close-out summaries — the two never overlap).
    pub violation_intervals: usize,
    /// Percentage of launched streams wrapped in a seeded
    /// [`FaultPlan`](esafe_serve::FaultPlan) (0 = the healthy fleet).
    pub faulty_pct: u32,
    /// Streams actually launched faulty.
    pub faulty_streams: usize,
    /// Streams removed by eviction rather than a clean close (stall
    /// deadline + corrupt quarantine + restart losses).
    pub evicted_streams: usize,
    /// Evictions whose reason was the stall deadline.
    pub stalled_evictions: usize,
    /// Evictions whose reason was transport corruption (quarantine).
    pub corrupt_evictions: usize,
    /// Supervisor shard restarts observed during the run.
    pub shard_restarts: usize,
    /// Report events the shard dropped under the
    /// [`DropAndCount`](esafe_serve::ReportOverflow::DropAndCount)
    /// policy (always 0 here: the benchmark runs the lossless default).
    pub reports_dropped: u64,
    /// End-to-end wall-clock, seconds: connect of the first stream to
    /// close of the last, reports consumed on the caller's thread.
    pub wall_clock_s: f64,
    /// `stream_ticks / wall_clock_s` — monitored frames per second
    /// through the single shard worker.
    pub stream_ticks_per_s: f64,
    /// `1e9 / stream_ticks_per_s` — cost of one monitored frame.
    pub ns_per_stream_tick: f64,
}

/// Drives the fleet-service benchmark behind `repro --serve-bench`:
/// `concurrent` replayed elevator streams held live on one
/// [`MonitorService`](esafe_serve::MonitorService) shard (each close
/// immediately replaced until `total` streams have run), measuring
/// end-to-end stream-tick throughput from the report channel.
///
/// The service runs one worker thread per signal-table family — here
/// exactly one — so the quoted throughput is a single-core figure; the
/// caller's thread only consumes reports and issues replacement
/// connects.
///
/// # Panics
///
/// Panics if `concurrent` is zero, `total < concurrent`,
/// `ticks_per_stream` is zero, or `faulty_pct > 100`; propagates an
/// unexpected clean shard stop.
pub fn serve_bench(
    concurrent: usize,
    total: usize,
    ticks_per_stream: u64,
    faulty_pct: u32,
) -> ServeBenchSummary {
    use esafe_serve::{EvictReason, MonitorService, ReportEvent, ServiceConfig};

    assert!(concurrent > 0, "an empty fleet measures nothing");
    assert!(total >= concurrent, "total streams must cover the fleet");
    assert!(ticks_per_stream > 0, "streams must carry frames");
    assert!(faulty_pct <= 100, "faulty_pct is a percentage");

    const FAULT_SEED: u64 = 0xE5AF_E5EB;
    let workload = esafe_scenarios::FleetWorkload::elevator(2048);
    let config = ServiceConfig {
        lanes_per_shard: concurrent,
        report_capacity: 4096,
        report_every: 64,
        // A faulty fleet needs the stall deadline, or a seeded stall
        // window longer than the stream would pin its lane forever.
        stall_limit: if faulty_pct > 0 { Some(1024) } else { None },
        ..ServiceConfig::default()
    };
    let report_every = config.report_every;
    let mut service = MonitorService::new(config);
    service.load_suite(workload.template());
    let table = std::sync::Arc::clone(workload.table());
    let monitors = workload.template().len();

    // Bresenham-style spread: exactly `faulty_pct`% of launches are
    // faulty, evenly interleaved with healthy ones.
    let is_faulty = |index: usize| {
        (index as u64 * u64::from(faulty_pct)) % 100 >= 100 - u64::from(faulty_pct)
            && faulty_pct > 0
    };
    let mut faulty_streams = 0usize;
    let launch = |service: &mut MonitorService, index: usize, faulty_streams: &mut usize| {
        let source: Box<dyn esafe_serve::StreamSource> = if is_faulty(index) {
            *faulty_streams += 1;
            Box::new(workload.faulty_stream(index, ticks_per_stream, FAULT_SEED))
        } else {
            Box::new(workload.stream(index, ticks_per_stream))
        };
        service
            .connect(&table, source)
            .expect("a loaded shard accepts streams");
    };

    let started = std::time::Instant::now();
    let mut launched = 0usize;
    while launched < concurrent {
        launch(&mut service, launched, &mut faulty_streams);
        launched += 1;
    }

    let mut closed = 0usize;
    let mut stream_ticks = 0u64;
    let mut violation_intervals = 0usize;
    let mut evicted_streams = 0usize;
    let mut stalled_evictions = 0usize;
    let mut corrupt_evictions = 0usize;
    let mut shard_restarts = 0usize;
    let mut reports_dropped = 0u64;
    let count_intervals = |violations: &esafe_serve::StreamViolations| {
        violations.iter().map(|(_, v)| v.len()).sum::<usize>()
    };
    while closed < total {
        let mut finished = false;
        match service
            .recv_report()
            .expect("the shard worker must outlive its streams")
        {
            ReportEvent::Violations(report) => {
                violation_intervals += count_intervals(&report.violations);
            }
            ReportEvent::StreamClosed(summary) => {
                finished = true;
                stream_ticks += summary.ticks;
                violation_intervals += count_intervals(&summary.violations);
            }
            ReportEvent::StreamEvicted(eviction) => {
                finished = true;
                evicted_streams += 1;
                stream_ticks += eviction.ticks;
                violation_intervals += count_intervals(&eviction.violations);
                match eviction.reason {
                    EvictReason::Stalled { .. } => stalled_evictions += 1,
                    EvictReason::Corrupt { .. } => corrupt_evictions += 1,
                    EvictReason::ShardRestart => {}
                }
            }
            ReportEvent::ReportsDropped { dropped, .. } => reports_dropped += dropped,
            ReportEvent::ShardRestarted { .. } => shard_restarts += 1,
            ReportEvent::SuiteUnloaded { .. } => {}
            ReportEvent::ShardStopped { error: Some(_), .. } => {
                // Followed by evictions and a ShardRestarted: the
                // supervisor keeps the benchmark running, degraded.
            }
            ReportEvent::ShardStopped { error: None, .. } => {
                panic!("shard stopped cleanly mid-benchmark");
            }
        }
        if finished {
            closed += 1;
            if launched < total {
                launch(&mut service, launched, &mut faulty_streams);
                launched += 1;
            }
        }
    }
    let wall = started.elapsed();
    service.shutdown();

    let wall_clock_s = wall.as_secs_f64();
    let stream_ticks_per_s = stream_ticks as f64 / wall_clock_s.max(f64::MIN_POSITIVE);
    ServeBenchSummary {
        schema: 2,
        concurrent_streams: concurrent,
        total_streams: total,
        ticks_per_stream,
        stream_ticks,
        monitors,
        trace_ticks: workload.trace_ticks(),
        shard_lanes: concurrent,
        report_every,
        violation_intervals,
        faulty_pct,
        faulty_streams,
        evicted_streams,
        stalled_evictions,
        corrupt_evictions,
        shard_restarts,
        reports_dropped,
        wall_clock_s,
        stream_ticks_per_s,
        ns_per_stream_tick: 1e9 / stream_ticks_per_s.max(f64::MIN_POSITIVE),
    }
}

/// Serializes the serve-bench summary as pretty JSON (schema v2).
///
/// # Errors
///
/// Returns a `serde_json::Error` if serialization fails (never expected
/// for these types).
pub fn serve_summary_json(summary: &ServeBenchSummary) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(summary)
}

/// The evaluation grid's first `subset` cells (or the whole 140-cell
/// grid when `subset` is `None`) — the `repro --grid --subset` space,
/// sized for corpus smoke runs and the CI record/replay check.
pub fn grid_cells_subset(subset: Option<usize>) -> Vec<esafe_scenarios::grid::GridCell> {
    let cells = grid::full_grid();
    match subset {
        Some(n) => cells.into_iter().take(n).collect(),
        None => cells,
    }
}

/// The machine-readable `repro --grid/--mega-grid --record-corpus
/// --json` summary — **schema v7 (`corpus-record`)**: what one
/// recording sweep archived (runs, ticks, bytes, dictionary and table
/// counts) plus the live aggregate the recording produced, which any
/// later `thesis`-suite replay of the corpus must reproduce bit for
/// bit.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CorpusRecordSummary {
    /// Corpus summary schema version (v7 introduces the trace-corpus
    /// record/replay summaries; v1–v6 are the grid/mega/serve
    /// histories).
    pub schema: u32,
    /// Which sweep was recorded (`grid` or `mega-grid`).
    pub workload: String,
    /// Cells the recording sweep ran.
    pub cells: usize,
    /// Runs archived into the corpus.
    pub corpus_runs: usize,
    /// Ticks archived across all runs.
    pub corpus_ticks: u64,
    /// Bytes of committed corpus data (header + records).
    pub corpus_bytes: u64,
    /// Corpus-global symbol-dictionary entries.
    pub dict_entries: usize,
    /// Archived signal tables.
    pub tables: usize,
    /// Bytes per archived tick — the columnar-codec density.
    pub bytes_per_tick: f64,
    /// Recording wall-clock (simulate + monitor + archive), ms.
    pub wall_clock_ms: f64,
    /// The recording sweep's live aggregate.
    pub aggregate: SweepAggregate,
}

/// Records a grid or mega-grid cell prefix into a fresh corpus at
/// `dir` — the `repro --record-corpus` workload.
///
/// # Errors
///
/// Propagates [`esafe_harness::CorpusError`] from the recording sweep
/// (existing corpus, failing run, I/O failure).
pub fn record_corpus_timed(
    dir: &str,
    mega: bool,
    subset: Option<usize>,
) -> Result<CorpusRecordSummary, esafe_harness::CorpusError> {
    let started = std::time::Instant::now();
    let (workload, cells, aggregate, stats) = if mega {
        let cells = mega_cells_subset(subset);
        let count = cells.len();
        let (aggregate, _, stats) = esafe_scenarios::corpus::record_mega_corpus(dir, cells)?;
        ("mega-grid", count, aggregate, stats)
    } else {
        let cells = grid_cells_subset(subset);
        let count = cells.len();
        let (aggregate, _, stats) = esafe_scenarios::corpus::record_grid_corpus(dir, cells)?;
        ("grid", count, aggregate, stats)
    };
    Ok(CorpusRecordSummary {
        schema: 7,
        workload: workload.to_owned(),
        cells,
        corpus_runs: stats.runs,
        corpus_ticks: stats.ticks,
        corpus_bytes: stats.data_bytes,
        dict_entries: stats.dict_len,
        tables: stats.tables,
        bytes_per_tick: stats.data_bytes as f64 / (stats.ticks.max(1)) as f64,
        wall_clock_ms: started.elapsed().as_secs_f64() * 1000.0,
        aggregate,
    })
}

/// The machine-readable `repro --replay-corpus --json` summary —
/// **schema v7 (`corpus-replay`)**: the archive that was re-monitored,
/// the suite provenance (name + stripe width), whether the corpus was
/// recovered from a torn recording, the batched replay cost per
/// archived tick per run, and the aggregate the suite produced — for
/// the `thesis` suite, bit-identical to the recording sweep's; for any
/// other suite, bit-identical to running that suite live over the same
/// cells.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CorpusReplaySummary {
    /// Corpus summary schema version (see [`CorpusRecordSummary`]).
    pub schema: u32,
    /// The registered suite the corpus was re-monitored with.
    pub suite: String,
    /// Lanes per replay stripe.
    pub width: usize,
    /// Whether the corpus was opened without a commit manifest (a torn
    /// recording recovered to its complete runs).
    pub recovered: bool,
    /// Runs re-monitored.
    pub corpus_runs: usize,
    /// Ticks re-observed across all runs.
    pub corpus_ticks: u64,
    /// Bytes of valid corpus data behind the replay.
    pub corpus_bytes: u64,
    /// Corpus-global symbol-dictionary entries.
    pub dict_entries: usize,
    /// Archived signal tables.
    pub tables: usize,
    /// Opening the corpus (read, CRC-scan, table/dictionary decode), ms
    /// — a fixed per-archive cost, excluded from the per-tick figure.
    pub open_ms: f64,
    /// End-to-end wall-clock (open + suite compile + decode + batched
    /// observe + correlate), ms.
    pub wall_clock_ms: f64,
    /// Replay-engine cost per archived tick per run, nanoseconds
    /// (suite compile + decode + observe + correlate; excludes the
    /// one-time archive open) — the acceptance quantity, compared
    /// against the live batched-observe figure in
    /// `BENCH_megagrid.json`.
    pub replay_ns_per_tick_per_run: f64,
    /// The aggregate the replayed suite produced.
    pub aggregate: SweepAggregate,
}

/// Re-monitors the corpus at `dir` with a registered suite — the
/// `repro --replay-corpus` workload. Zero simulation: archived ticks
/// stream straight into the batched observer.
///
/// # Errors
///
/// Propagates [`esafe_harness::CorpusError`] (unopenable corpus,
/// unknown suite, replay failure).
pub fn replay_corpus_timed(
    dir: &str,
    suite: &str,
    width: usize,
) -> Result<CorpusReplaySummary, esafe_harness::CorpusError> {
    let started = std::time::Instant::now();
    let reader = esafe_harness::TraceCorpusReader::open(dir)?;
    let open = started.elapsed();
    let replay = esafe_harness::replay_corpus(&reader, width, |substrate, table| {
        esafe_scenarios::corpus::suite_for(suite, substrate, table)
    })?;
    let wall = started.elapsed();
    let engine = wall - open;
    let stats = reader.stats();
    Ok(CorpusReplaySummary {
        schema: 7,
        suite: suite.to_owned(),
        width,
        recovered: reader.recovered(),
        corpus_runs: replay.runs,
        corpus_ticks: replay.ticks,
        corpus_bytes: stats.data_bytes,
        dict_entries: stats.dict_len,
        tables: stats.tables,
        open_ms: open.as_secs_f64() * 1000.0,
        wall_clock_ms: wall.as_secs_f64() * 1000.0,
        replay_ns_per_tick_per_run: engine.as_nanos() as f64 / (replay.ticks.max(1)) as f64,
        aggregate: replay.aggregate,
    })
}

/// The machine-readable `repro --grid --suite <name> --json` summary —
/// **schema v7 (`suite-reference`)**: the live reference a corpus
/// replay of the same suite over the same cells is pinned against.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SuiteReferenceSummary {
    /// Corpus summary schema version (see [`CorpusRecordSummary`]).
    pub schema: u32,
    /// The registered suite the live runs were scored with.
    pub suite: String,
    /// Grid cells run live.
    pub cells: usize,
    /// Live wall-clock (simulate + record + re-score), ms.
    pub wall_clock_ms: f64,
    /// The aggregate the suite produced over the live runs.
    pub aggregate: SweepAggregate,
}

/// Runs a grid cell prefix live and scores it with a registered suite
/// — the `repro --grid --suite` reference workload behind the corpus
/// equivalence checks.
///
/// # Errors
///
/// Propagates [`esafe_harness::CorpusError`] (failing run, unknown
/// suite).
pub fn suite_reference_timed(
    subset: Option<usize>,
    suite: &str,
) -> Result<SuiteReferenceSummary, esafe_harness::CorpusError> {
    let started = std::time::Instant::now();
    let cells = grid_cells_subset(subset);
    let count = cells.len();
    let (aggregate, _) = esafe_scenarios::corpus::live_reference(cells, suite)?;
    Ok(SuiteReferenceSummary {
        schema: 7,
        suite: suite.to_owned(),
        cells: count,
        wall_clock_ms: started.elapsed().as_secs_f64() * 1000.0,
        aggregate,
    })
}

/// Serializes any schema-v7 corpus summary as pretty JSON.
///
/// # Errors
///
/// Returns a `serde_json::Error` if serialization fails (never expected
/// for these types).
pub fn corpus_summary_json<T: serde::Serialize>(summary: &T) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_bench_counts_every_stream_tick() {
        let summary = serve_bench(8, 12, 20, 0);
        assert_eq!(summary.total_streams, 12);
        assert_eq!(summary.stream_ticks, 12 * 20);
        assert!(summary.stream_ticks_per_s > 0.0);
        assert_eq!(summary.faulty_streams, 0);
        assert_eq!(summary.evicted_streams, 0);
        assert_eq!(summary.shard_restarts, 0);
    }

    #[test]
    fn faulty_serve_bench_degrades_without_dying() {
        let summary = serve_bench(8, 20, 30, 25);
        assert_eq!(summary.faulty_pct, 25);
        assert_eq!(summary.faulty_streams, 5, "25% of 20 launches");
        // Every stream — healthy or hostile — reached a terminal event.
        assert_eq!(summary.total_streams, 20);
        // Healthy members alone account for at least their full ticks.
        assert!(summary.stream_ticks >= 15 * 30);
        assert_eq!(summary.shard_restarts, 0, "no panics were injected");
        assert_eq!(summary.reports_dropped, 0, "lossless default policy");
    }

    #[test]
    fn figure_map_covers_all_fourteen_figures() {
        for n in 2..=15 {
            let key = format!("5.{n}");
            assert!(figure_map(&key).is_some(), "missing figure {key}");
        }
        assert!(figure_map("5.99").is_none());
    }

    #[test]
    fn ablation_none_config_is_clean() {
        let rows = ablation(1);
        let (label, ids) = &rows[0];
        assert_eq!(label, "none");
        assert!(ids.is_empty());
        let (_, thesis_ids) = &rows[1];
        assert!(!thesis_ids.is_empty());
    }
}
