//! Shared helpers for the reproduction harness and benchmarks.

use esafe_harness::{SweepAggregate, SweepStats};
use esafe_scenarios::{catalog, grid, runner, ScenarioReport};
use esafe_vehicle::config::DefectSet;

/// Figure-number → (scenario, signals) mapping for the thesis's
/// Figures 5.2–5.15.
pub fn figure_map(figure: &str) -> Option<(u8, Vec<&'static str>)> {
    Some(match figure {
        "5.2" => (1, vec!["ca.accel_request"]),
        "5.3" => (1, vec!["pa.accel_request"]),
        "5.4" => (
            2,
            vec!["arbiter.accel_cmd", "ca.accel_request", "ca.selected"],
        ),
        "5.5" => (
            3,
            vec!["ca.accel_request", "host.speed", "world.lead_distance"],
        ),
        "5.6" => (3, vec!["acc.accel_request"]),
        "5.7" => (4, vec!["acc.accel_request", "acc.accel_request_rate"]),
        "5.8" => (4, vec!["acc.active", "host.speed", "arbiter.accel_cmd"]),
        "5.9" => (5, vec!["driver.throttle", "acc.active"]),
        "5.10" => (
            6,
            vec!["lca.active", "lca.steering_request", "arbiter.steering_cmd"],
        ),
        "5.11" => (6, vec!["host.speed", "acc.selected", "lca.selected"]),
        "5.12" => (7, vec!["rca.active", "world.rear_distance", "host.speed"]),
        "5.13" => (8, vec!["acc.active", "acc.selected"]),
        "5.14" => (
            9,
            vec!["pa.accel_request", "arbiter.accel_cmd", "pa.selected"],
        ),
        "5.15" => (10, vec!["acc.active", "arbiter.accel_cmd", "host.speed"]),
        _ => return None,
    })
}

/// Runs a scenario under the thesis defect set (cached per call site —
/// runs are deterministic, so callers may memoize freely).
pub fn thesis_run(scenario: u8) -> ScenarioReport {
    runner::run(&catalog::scenario(scenario), DefectSet::thesis())
        .expect("scenario formulas compile against the simulator signals")
}

/// The per-defect ablation, fanned across cores: which defect
/// configuration produces which goal violations in a scenario. Covers
/// the fixed system, the full thesis population, and every
/// single-defect cell. Returns `(label, violated monitor ids)` in
/// configuration order.
pub fn ablation(scenario: u8) -> Vec<(String, Vec<String>)> {
    let cells = grid::cells(&[scenario], &grid::ablation_configs());
    let sweep = grid::run_parallel(cells.clone()).expect("scenario runs");
    cells
        .iter()
        .zip(&sweep.runs)
        .map(|(cell, run)| {
            let ids = run.violations.iter().map(|(id, _)| id.clone()).collect();
            (cell.config.clone(), ids)
        })
        .collect()
}

/// Runs the full ten-scenario × fourteen-configuration evaluation grid
/// in parallel and returns its order-independent aggregate.
pub fn full_grid_aggregate() -> SweepAggregate {
    grid::run_parallel(grid::full_grid())
        .expect("grid runs")
        .aggregate()
}

/// [`full_grid_aggregate`] plus the sweep's timing/amortization stats —
/// the source of the `repro --grid --json` breakdown.
pub fn full_grid_timed() -> (SweepAggregate, SweepStats) {
    let (report, stats) = grid::run_parallel_timed(grid::full_grid()).expect("grid runs");
    (report.aggregate(), stats)
}

/// The machine-readable `repro --grid --json` summary: wall-clock timing
/// plus the order-independent grid aggregate, one JSON object per
/// benchmark run so successive PRs have a trajectory to compare.
///
/// Schema history: **v1** had `wall_clock_ms` / `ms_per_run` /
/// `aggregate` only; **v2** adds the setup/tick attribution and the
/// suite amortization counters, so future wins (and regressions) name
/// the phase they came from.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GridSummary {
    /// Summary schema version (bump when fields change meaning).
    pub schema: u32,
    /// Total grid wall-clock, milliseconds.
    pub wall_clock_ms: f64,
    /// Wall-clock per monitored run, milliseconds.
    pub ms_per_run: f64,
    /// Per-run setup time summed over all workers, milliseconds
    /// (suite acquisition, simulator build, scratch frames).
    pub setup_ms: f64,
    /// Tick-loop time summed over all workers, milliseconds.
    pub tick_ms: f64,
    /// Runs that compiled their monitor suite from scratch.
    pub suite_compiles: usize,
    /// Runs that instantiated a suite from the sweep's compile-once
    /// template.
    pub suite_instantiations: usize,
    /// Runs that reset and reused a worker's pooled suite.
    pub suite_reuses: usize,
    /// The order-independent classification totals.
    pub aggregate: SweepAggregate,
}

/// Serializes the grid aggregate + timing as pretty JSON (schema v2).
///
/// # Errors
///
/// Returns a `serde_json::Error` if serialization fails (never expected
/// for these types).
pub fn grid_summary_json(
    aggregate: &SweepAggregate,
    wall: std::time::Duration,
    stats: &SweepStats,
) -> Result<String, serde_json::Error> {
    let wall_clock_ms = wall.as_secs_f64() * 1000.0;
    let summary = GridSummary {
        schema: 2,
        wall_clock_ms,
        ms_per_run: if aggregate.runs == 0 {
            0.0
        } else {
            wall_clock_ms / aggregate.runs as f64
        },
        setup_ms: stats.setup.as_secs_f64() * 1000.0,
        tick_ms: stats.ticking.as_secs_f64() * 1000.0,
        suite_compiles: stats.suites_compiled,
        suite_instantiations: stats.suites_instantiated,
        suite_reuses: stats.suites_reused,
        aggregate: aggregate.clone(),
    };
    serde_json::to_string_pretty(&summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_map_covers_all_fourteen_figures() {
        for n in 2..=15 {
            let key = format!("5.{n}");
            assert!(figure_map(&key).is_some(), "missing figure {key}");
        }
        assert!(figure_map("5.99").is_none());
    }

    #[test]
    fn ablation_none_config_is_clean() {
        let rows = ablation(1);
        let (label, ids) = &rows[0];
        assert_eq!(label, "none");
        assert!(ids.is_empty());
        let (_, thesis_ids) = &rows[1];
        assert!(!thesis_ids.is_empty());
    }
}
