//! `repro` — regenerates every table and figure of the thesis's
//! evaluation from the Rust reproduction.
//!
//! ```text
//! repro --table 5.1|5.2|5.3|4.1|4.5|b1..b13|d1..d10
//! repro --figure 5.1..5.15
//! repro --ablation [scenario]
//! repro --grid                 # full scenario × defect sweep, in parallel
//! repro --grid --json <path>   # …plus a machine-readable timing summary
//! repro --mega-grid            # ≥10⁴-cell scenario-parameter sweep (batched)
//! repro --mega-grid --json <path>  # …plus the schema-v6 summary
//! repro --mega-grid --subset <n>   # only the grid's first n cells
//! repro --mega-grid --width <w>    # force the stripe width (skip calibration)
//! repro --mega-grid --checkpoint <path> [--resume]  # durable journal; resume
//!                                  # an interrupted sweep bit-identically
//! repro --serve-bench          # 1000-stream fleet through the monitor service
//! repro --serve-bench --json <path>  # …plus the serve-bench-v2 summary
//! repro --serve-bench --faulty <pct> [--json <path>]  # hostile fleet: pct% faulty streams
//! repro --grid --record-corpus <dir> [--subset <n>]       # archive the sweep's
//!                                  # traces into an on-disk columnar corpus
//! repro --mega-grid --record-corpus <dir> [--subset <n>]  # same, mega cells
//! repro --replay-corpus <dir> [--suite <name>] [--width <w>]  # re-monitor the
//!                                  # archive with a registered suite, zero simulation
//! repro --grid --suite <name> [--subset <n>]  # live reference for the same suite
//! repro --all                  # everything, in thesis order
//! repro --json <scenario>      # dump a scenario's figure series as JSON
//! ```
//!
//! Flags are order-insensitive: `repro --json out.json --mega-grid`
//! and `repro --mega-grid --json out.json` are the same invocation.

use esafe_bench::{
    ablation, batch_calibration, corpus_summary_json, figure_map, full_grid_timed,
    full_mega_checkpointed, grid_summary_json, mega_cells_subset, mega_summary_json,
    mega_timed_over, observe_calibration, record_corpus_timed, replay_corpus_timed, serve_bench,
    serve_summary_json, suite_reference_timed, thesis_run, MegaCheckpointInfo,
};
use esafe_core::render;
use esafe_elevator::ElevatorParams;
use esafe_scenarios::tables;
use esafe_vehicle::config::VehicleParams;

const USAGE: &str = "usage: repro --table <id> | --figure <id> | --ablation [n] \
     | --grid [--suite <name> | --record-corpus <dir>] [--subset <n>] [--json <path>] \
     | --mega-grid [--subset <n>] [--width <w>] [--checkpoint <path> [--resume]] \
       [--record-corpus <dir>] [--json <path>] \
     | --replay-corpus <dir> [--suite <name>] [--width <w>] [--json <path>] \
     | --serve-bench [--faulty <pct>] [--json <path>] \
     | --json <n> | --all";

/// Which evaluation artifact one invocation regenerates.
enum Command {
    Table(String),
    Figure(String),
    Ablation(u8),
    Grid,
    MegaGrid,
    ReplayCorpus(String),
    ServeBench,
    All,
}

/// The parsed command line: one command plus order-insensitive
/// modifier flags (each validated against the command at dispatch).
struct Cli {
    command: Option<Command>,
    json: Option<String>,
    faulty: Option<u32>,
    checkpoint: Option<String>,
    resume: bool,
    subset: Option<usize>,
    width: Option<usize>,
    record_corpus: Option<String>,
    suite: Option<String>,
}

fn usage_error(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

/// Parses flags in any order. Every flag may appear at most once; a
/// second command flag is an error.
fn parse_cli(args: &[String]) -> Cli {
    let mut cli = Cli {
        command: None,
        json: None,
        faulty: None,
        checkpoint: None,
        resume: false,
        subset: None,
        width: None,
        record_corpus: None,
        suite: None,
    };
    let set_command = |cli: &mut Cli, command: Command, flag: &str| {
        if cli.command.is_some() {
            usage_error(&format!("`{flag}` conflicts with an earlier command flag"));
        }
        cli.command = Some(command);
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        // A flag's value is the next argument, which must exist and
        // must not itself look like a flag.
        let value = |i: usize| -> &str {
            match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => v,
                _ => usage_error(&format!("`{flag}` wants a value")),
            }
        };
        let parsed = |i: usize| -> usize {
            value(i)
                .parse()
                .unwrap_or_else(|_| usage_error(&format!("`{flag}` wants a number")))
        };
        match flag {
            "--table" => {
                set_command(&mut cli, Command::Table(value(i).to_owned()), flag);
                i += 2;
            }
            "--figure" => {
                set_command(&mut cli, Command::Figure(value(i).to_owned()), flag);
                i += 2;
            }
            "--ablation" => {
                // The scenario number is optional (default 3).
                let scenario = match args.get(i + 1) {
                    Some(v) if !v.starts_with("--") => {
                        i += 1;
                        v.parse().unwrap_or(3)
                    }
                    _ => 3,
                };
                set_command(&mut cli, Command::Ablation(scenario), flag);
                i += 1;
            }
            "--grid" => {
                set_command(&mut cli, Command::Grid, flag);
                i += 1;
            }
            "--mega-grid" => {
                set_command(&mut cli, Command::MegaGrid, flag);
                i += 1;
            }
            "--replay-corpus" => {
                set_command(&mut cli, Command::ReplayCorpus(value(i).to_owned()), flag);
                i += 2;
            }
            "--serve-bench" => {
                set_command(&mut cli, Command::ServeBench, flag);
                i += 1;
            }
            "--all" => {
                set_command(&mut cli, Command::All, flag);
                i += 1;
            }
            "--json" => {
                cli.json = Some(value(i).to_owned());
                i += 2;
            }
            "--faulty" => {
                cli.faulty = Some(parse_pct(value(i)));
                i += 2;
            }
            "--checkpoint" => {
                cli.checkpoint = Some(value(i).to_owned());
                i += 2;
            }
            "--resume" => {
                cli.resume = true;
                i += 1;
            }
            "--subset" => {
                cli.subset = Some(parsed(i));
                i += 2;
            }
            "--record-corpus" => {
                cli.record_corpus = Some(value(i).to_owned());
                i += 2;
            }
            "--suite" => {
                cli.suite = Some(value(i).to_owned());
                i += 2;
            }
            "--width" => {
                let w = parsed(i);
                if w == 0 {
                    usage_error("`--width` wants a stripe width >= 1");
                }
                cli.width = Some(w);
                i += 2;
            }
            other => usage_error(&format!("unknown argument `{other}`")),
        }
    }
    cli
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage_error("no command given");
    }
    let cli = parse_cli(&args);
    // Modifier flags only make sense under their command.
    if cli.faulty.is_some() && !matches!(cli.command, Some(Command::ServeBench)) {
        usage_error("`--faulty` only applies to --serve-bench");
    }
    let mega = matches!(cli.command, Some(Command::MegaGrid));
    let grid = matches!(cli.command, Some(Command::Grid));
    let replay = matches!(cli.command, Some(Command::ReplayCorpus(_)));
    if cli.checkpoint.is_some() && !mega {
        usage_error("`--checkpoint` only applies to --mega-grid");
    }
    if cli.subset.is_some() && !(mega || grid) {
        usage_error("`--subset` only applies to --grid and --mega-grid");
    }
    if cli.width.is_some() && !(mega || replay) {
        usage_error("`--width` only applies to --mega-grid and --replay-corpus");
    }
    if cli.resume && cli.checkpoint.is_none() {
        usage_error("`--resume` wants a `--checkpoint <path>` to resume from");
    }
    if cli.record_corpus.is_some() && !(mega || grid) {
        usage_error("`--record-corpus` only applies to --grid and --mega-grid");
    }
    if cli.record_corpus.is_some() && (cli.suite.is_some() || cli.checkpoint.is_some()) {
        usage_error("`--record-corpus` conflicts with `--suite` and `--checkpoint`");
    }
    if cli.suite.is_some() && !(grid || replay) {
        usage_error("`--suite` only applies to --grid and --replay-corpus");
    }
    match &cli.command {
        Some(Command::Table(id)) => print_table(id),
        Some(Command::Figure(id)) => print_figure(id),
        Some(Command::Ablation(scenario)) => print_ablation(*scenario),
        Some(Command::Grid) => match (&cli.record_corpus, &cli.suite) {
            (Some(dir), _) => print_record_corpus(dir, false, cli.subset, cli.json.as_deref()),
            (None, Some(suite)) => print_suite_reference(suite, cli.subset, cli.json.as_deref()),
            (None, None) => {
                if cli.subset.is_some() {
                    usage_error(
                        "`--grid --subset` wants `--suite <name>` or `--record-corpus <dir>` \
                         (the plain grid always runs all 140 cells)",
                    );
                }
                print_grid(cli.json.as_deref());
            }
        },
        Some(Command::MegaGrid) => match &cli.record_corpus {
            Some(dir) => print_record_corpus(dir, true, cli.subset, cli.json.as_deref()),
            None => print_mega_grid(&cli),
        },
        Some(Command::ReplayCorpus(dir)) => print_replay_corpus(
            dir,
            cli.suite.as_deref().unwrap_or("thesis"),
            cli.width.unwrap_or(esafe_harness::DEFAULT_REPLAY_WIDTH),
            cli.json.as_deref(),
        ),
        Some(Command::ServeBench) => {
            print_serve_bench(cli.json.as_deref(), cli.faulty.unwrap_or(0));
        }
        Some(Command::All) => print_all(),
        None => match &cli.json {
            // Bare `--json <n>` dumps a scenario's figure series.
            Some(raw) => {
                let n: u8 = raw
                    .parse()
                    .unwrap_or_else(|_| usage_error("bare `--json` wants a scenario number"));
                let report = thesis_run(n);
                println!("{}", tables::series_json(&report).expect("serializable"));
            }
            None => usage_error("no command given"),
        },
    }
}

/// Runs the ≥10⁴-cell scenario-parameter mega grid (or its `--subset`
/// prefix): calibrate the stripe width on live mega-cell stripes (sim +
/// observe) unless `--width` forces one, stream the space through the
/// batched striped engine with O(workers × width) memory — durably
/// journaled under `--checkpoint`, resuming bit-identically under
/// `--resume` — and (with `--json`) write the schema-v6
/// `BENCH_megagrid.json` summary.
fn print_mega_grid(cli: &Cli) {
    let cells = mega_cells_subset(cli.subset);
    let cell_count = cells.len();
    let (width, calibration) = match cli.width {
        Some(w) => {
            println!("stripe width forced to {w} (--width given, calibration skipped)");
            (w, None)
        }
        None => {
            let calibration = batch_calibration();
            println!(
                "batch-width calibration over {} live mega-cell ticks (sim + 49-monitor fused observe):",
                calibration.ticks
            );
            println!(
                "  scalar    {:>8.1} ns/tick/run",
                calibration.scalar_ns_per_tick_per_run
            );
            for point in &calibration.widths {
                println!(
                    "  width {:>3} {:>8.1} ns/tick/run  (sim {:.1} + observe {:.1})",
                    point.width,
                    point.ns_per_tick_per_run,
                    point.sim_ns_per_tick_per_run,
                    point.observe_ns_per_tick_per_run
                );
            }
            let width = calibration.best_width();
            println!("selected stripe width: {width}");
            (width, Some(calibration))
        }
    };

    let started = std::time::Instant::now();
    let (aggregate, stats, checkpoint): (_, _, Option<MegaCheckpointInfo>) = match &cli.checkpoint {
        Some(path) => {
            let (aggregate, stats, _, info) =
                full_mega_checkpointed(cells, width, path, cli.resume).unwrap_or_else(|e| {
                    eprintln!("checkpointed mega grid failed: {e}");
                    std::process::exit(1);
                });
            (aggregate, stats, Some(info))
        }
        None => {
            let (aggregate, stats) = mega_timed_over(cells, width);
            (aggregate, stats, None)
        }
    };
    let wall = started.elapsed();
    println!(
        "Mega grid: {} cells swept, {} runs ({} early terminations, {} collisions)",
        cell_count, aggregate.runs, aggregate.terminated_early, aggregate.terminal_events
    );
    println!(
        "Classification totals: {} hits, {} false negatives, {} false positives",
        aggregate.hits, aggregate.false_negatives, aggregate.false_positives
    );
    if let Some(info) = &checkpoint {
        match &info.resumed_from {
            Some(journal) => println!(
                "checkpoint: resumed {} completed cells from {journal}; {} records journaled",
                info.resumed_cells, info.journal_records
            ),
            None => println!("checkpoint: {} records journaled", info.journal_records),
        }
    }
    if !aggregate.quarantined.is_empty() || aggregate.retries > 0 {
        println!(
            "fault isolation: {} cells quarantined, {} retries",
            aggregate.quarantined.len(),
            aggregate.retries
        );
        for failure in &aggregate.quarantined {
            println!(
                "  cell {} (seed {:#018x}, {} retries): {:?}",
                failure.cell, failure.seed, failure.retries, failure.reason
            );
        }
    }
    println!(
        "wall clock: {:.3} s ({:.2} ms/run); worker time: {:.3} s setup + {:.3} s ticking",
        wall.as_secs_f64(),
        wall.as_secs_f64() * 1000.0 / aggregate.runs.max(1) as f64,
        stats.setup.as_secs_f64(),
        stats.ticking.as_secs_f64()
    );
    println!(
        "suites: {} compiled, {} instantiated, {} reused",
        stats.suites_compiled, stats.suites_instantiated, stats.suites_reused
    );
    if let Some(path) = &cli.json {
        let json = mega_summary_json(
            &aggregate,
            wall,
            &stats,
            calibration.as_ref(),
            cell_count,
            width,
            checkpoint.as_ref(),
        )
        .expect("summary serializes");
        std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write `{path}`: {e}"));
        println!("summary written to {path}");
    }
}

/// Records a grid or mega-grid cell prefix into a fresh on-disk trace
/// corpus: every run executes serially with frame recording on, its
/// columns archived as it finishes, and the commit manifest published
/// atomically at the end. With `--json`, writes the schema-v7
/// `corpus-record` summary.
fn print_record_corpus(dir: &str, mega: bool, subset: Option<usize>, json_path: Option<&str>) {
    let workload = if mega { "--mega-grid" } else { "--grid" };
    match subset {
        Some(n) => println!("recording the first {n} {workload} cells into corpus {dir}"),
        None => println!("recording the full {workload} sweep into corpus {dir}"),
    }
    let summary = record_corpus_timed(dir, mega, subset).unwrap_or_else(|e| {
        eprintln!("corpus recording failed: {e}");
        std::process::exit(1);
    });
    println!(
        "archived {} runs / {} ticks in {:.3} s: {} bytes ({:.2} bytes/tick), \
         {} dictionary symbols, {} signal tables",
        summary.corpus_runs,
        summary.corpus_ticks,
        summary.wall_clock_ms / 1000.0,
        summary.corpus_bytes,
        summary.bytes_per_tick,
        summary.dict_entries,
        summary.tables
    );
    println!(
        "recording aggregate: {} runs, {} hits, {} false negatives, {} false positives",
        summary.aggregate.runs,
        summary.aggregate.hits,
        summary.aggregate.false_negatives,
        summary.aggregate.false_positives
    );
    if let Some(path) = json_path {
        let json = corpus_summary_json(&summary).expect("summary serializes");
        std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write `{path}`: {e}"));
        println!("summary written to {path}");
    }
}

/// Re-monitors an archived corpus with a registered goal suite —
/// including one the corpus was never recorded with — at batched-
/// observe speed with zero simulation. With `--json`, writes the
/// schema-v7 `corpus-replay` summary.
fn print_replay_corpus(dir: &str, suite: &str, width: usize, json_path: Option<&str>) {
    println!("replaying corpus {dir} with suite `{suite}` at stripe width {width}");
    let summary = replay_corpus_timed(dir, suite, width).unwrap_or_else(|e| {
        eprintln!("corpus replay failed: {e}");
        std::process::exit(1);
    });
    if summary.recovered {
        println!(
            "corpus had no commit manifest (torn recording): recovered {} complete runs",
            summary.corpus_runs
        );
    }
    println!(
        "re-monitored {} runs / {} ticks in {:.3} s \
         (open {:.1} ms + replay engine {:.1} ns/tick/run)",
        summary.corpus_runs,
        summary.corpus_ticks,
        summary.wall_clock_ms / 1000.0,
        summary.open_ms,
        summary.replay_ns_per_tick_per_run
    );
    println!(
        "replay aggregate: {} runs, {} hits, {} false negatives, {} false positives, \
         {} early terminations, {} collisions",
        summary.aggregate.runs,
        summary.aggregate.hits,
        summary.aggregate.false_negatives,
        summary.aggregate.false_positives,
        summary.aggregate.terminated_early,
        summary.aggregate.terminal_events
    );
    println!("{:<24} total violation intervals", "monitor");
    for (id, count) in &summary.aggregate.violations_by_monitor {
        println!("{id:<24} {count}");
    }
    if let Some(path) = json_path {
        let json = corpus_summary_json(&summary).expect("summary serializes");
        std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write `{path}`: {e}"));
        println!("summary written to {path}");
    }
}

/// Runs a grid cell prefix live and scores the recorded runs with a
/// registered suite — the reference a `--replay-corpus --suite` run
/// over the same cells is pinned against. With `--json`, writes the
/// schema-v7 `suite-reference` summary.
fn print_suite_reference(suite: &str, subset: Option<usize>, json_path: Option<&str>) {
    match subset {
        Some(n) => println!("live reference: first {n} grid cells scored with suite `{suite}`"),
        None => println!("live reference: full grid scored with suite `{suite}`"),
    }
    let summary = suite_reference_timed(subset, suite).unwrap_or_else(|e| {
        eprintln!("live suite reference failed: {e}");
        std::process::exit(1);
    });
    println!(
        "scored {} cells in {:.3} s",
        summary.cells,
        summary.wall_clock_ms / 1000.0
    );
    println!(
        "reference aggregate: {} runs, {} hits, {} false negatives, {} false positives",
        summary.aggregate.runs,
        summary.aggregate.hits,
        summary.aggregate.false_negatives,
        summary.aggregate.false_positives
    );
    if let Some(path) = json_path {
        let json = corpus_summary_json(&summary).expect("summary serializes");
        std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write `{path}`: {e}"));
        println!("summary written to {path}");
    }
}

/// Parses the `--faulty` percentage argument.
fn parse_pct(raw: &str) -> u32 {
    let pct: u32 = raw.parse().unwrap_or_else(|_| {
        eprintln!("--faulty wants a percentage 0..=100, got `{raw}`");
        std::process::exit(2);
    });
    if pct > 100 {
        eprintln!("--faulty wants a percentage 0..=100, got {pct}");
        std::process::exit(2);
    }
    pct
}

/// Runs the fleet-service benchmark: 1000 concurrent replayed elevator
/// streams held live on one `esafe-serve` shard worker (2000 streams
/// total — every close is immediately replaced), and (with `json_path`)
/// writes the serve-bench-v2 `BENCH_serve.json` summary. With
/// `faulty_pct > 0`, that share of the fleet misbehaves under seeded
/// fault plans (stalls, disconnects, corrupt frames, shuffled ticks)
/// and the degradation counters show how the service coped.
fn print_serve_bench(json_path: Option<&str>, faulty_pct: u32) {
    const CONCURRENT: usize = 1000;
    const TOTAL: usize = 2000;
    const TICKS_PER_STREAM: u64 = 400;
    println!(
        "serve bench: {CONCURRENT} concurrent streams, {TOTAL} total, \
         {TICKS_PER_STREAM} ticks each, one shard worker, {faulty_pct}% faulty"
    );
    let summary = serve_bench(CONCURRENT, TOTAL, TICKS_PER_STREAM, faulty_pct);
    println!(
        "monitored {} stream-ticks x {} monitors in {:.3} s",
        summary.stream_ticks, summary.monitors, summary.wall_clock_s
    );
    println!(
        "throughput: {:.0} stream-ticks/s ({:.1} ns/stream-tick); \
         {} violation intervals reported",
        summary.stream_ticks_per_s, summary.ns_per_stream_tick, summary.violation_intervals
    );
    if faulty_pct > 0 {
        println!(
            "degradation: {} faulty streams; {} evicted ({} stalled, {} corrupt); \
             {} shard restarts; {} reports dropped",
            summary.faulty_streams,
            summary.evicted_streams,
            summary.stalled_evictions,
            summary.corrupt_evictions,
            summary.shard_restarts,
            summary.reports_dropped
        );
    }
    if let Some(path) = json_path {
        let json = serve_summary_json(&summary).expect("summary serializes");
        std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write `{path}`: {e}"));
        println!("summary written to {path}");
    }
}

/// Runs the full 10-scenario × 14-configuration grid in parallel —
/// streaming each worker's reports into a partial aggregate, so memory
/// stays O(workers) however large the grid — and prints the
/// order-independent aggregate. With `json_path`, also writes the
/// machine-readable timing/result summary so future changes have a
/// benchmark trajectory to compare against.
fn print_grid(json_path: Option<&str>) {
    let started = std::time::Instant::now();
    let (aggregate, stats) = full_grid_timed();
    let wall = started.elapsed();
    println!(
        "Full evaluation grid: {} runs ({} early terminations, {} collisions)",
        aggregate.runs, aggregate.terminated_early, aggregate.terminal_events
    );
    println!(
        "Classification totals: {} hits, {} false negatives, {} false positives",
        aggregate.hits, aggregate.false_negatives, aggregate.false_positives
    );
    println!("{:<10} total violation intervals", "monitor");
    for (id, count) in &aggregate.violations_by_monitor {
        println!("{id:<10} {count}");
    }
    println!("wall clock: {:.3} s", wall.as_secs_f64());
    println!(
        "worker time: {:.3} s setup + {:.3} s ticking; suites: {} compiled, \
         {} instantiated, {} reused",
        stats.setup.as_secs_f64(),
        stats.ticking.as_secs_f64(),
        stats.suites_compiled,
        stats.suites_instantiated,
        stats.suites_reused
    );
    let calibration = observe_calibration();
    println!(
        "fused observe: {:.0} ns/tick over {} monitors; CSE: {} -> {} nodes \
         ({:.2}x shared)",
        calibration.observe_ns_per_tick,
        calibration.monitors,
        calibration.cse_source_nodes,
        calibration.cse_unique_nodes,
        calibration.cse_source_nodes as f64 / calibration.cse_unique_nodes as f64
    );
    if let Some(path) = json_path {
        let json =
            grid_summary_json(&aggregate, wall, &stats, &calibration).expect("summary serializes");
        std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write `{path}`: {e}"));
        println!("summary written to {path}");
    }
}

fn print_all() {
    for t in ["5.1", "5.2", "5.3", "4.1", "4.6", "4.9", "4.5"] {
        print_table(t);
        println!();
    }
    print_figure("5.1");
    for n in 2..=15 {
        print_figure(&format!("5.{n}"));
        println!();
    }
    for n in 1..=10 {
        print_table(&format!("d{n}"));
        println!();
    }
    print_ablation(3);
}

fn print_table(id: &str) {
    let vparams = VehicleParams::default();
    let eparams = ElevatorParams::default();
    match id {
        // Tables 5.1/5.2: the nine vehicle safety goals as KAOS cards.
        "5.1" | "5.2" => {
            let specs = esafe_vehicle::goals::specs(&vparams);
            let range: &[usize] = if id == "5.1" {
                &[0, 1, 2, 3]
            } else {
                &[4, 5, 6, 7, 8]
            };
            println!("Safety goals for a semi-autonomous vehicle (Table {id})");
            for &i in range {
                println!("{}. {}", i + 1, render::goal_card(&specs[i].goal));
            }
        }
        "5.3" => print!("{}", tables::monitoring_matrix()),
        // Chapter 4 elevator ICPA tables.
        "4.1" | "4.2" | "4.3" | "4.4" => {
            println!("Elevator ICPA for Maintain[DoorClosedOrElevatorStopped] (Tables 4.1-4.4)");
            print!(
                "{}",
                render::icpa_table(&esafe_elevator::icpa::door_or_stopped_icpa(&eparams))
            );
        }
        "4.6" => print!(
            "{}",
            render::icpa_table(&esafe_elevator::icpa::overweight_icpa(&eparams))
        ),
        "4.9" => print!(
            "{}",
            render::icpa_table(&esafe_elevator::icpa::hoistway_icpa(&eparams))
        ),
        // Table 4.5 and Appendix B: realizability patterns.
        "4.5" => {
            let tables_b = esafe_core::catalog::appendix_b();
            println!(
                "{}",
                render::catalog_markdown("Table 4.5 / B.1", &tables_b[0].1)
            );
        }
        b if b.starts_with('b') => {
            let idx: usize = b[1..].parse().unwrap_or(0);
            let tables_b = esafe_core::catalog::appendix_b();
            match tables_b.get(idx.wrapping_sub(1)) {
                Some((name, rows)) => {
                    println!("{}", render::catalog_markdown(name, rows));
                }
                None => eprintln!("no appendix table {b} (b1..b13)"),
            }
        }
        // Tables D.1–D.11: per-scenario violations.
        d if d.starts_with('d') => {
            let n: u8 = d[1..].parse().unwrap_or(0);
            if (1..=10).contains(&n) {
                let report = thesis_run(n);
                print!("{}", tables::violation_table(&report));
            } else {
                eprintln!("no violation table {d} (d1..d10)");
            }
        }
        other => eprintln!("unknown table id `{other}`"),
    }
}

fn print_figure(id: &str) {
    if id == "5.1" {
        // The architecture diagram, rendered as a wiring list.
        println!("Figure 5.1: semi-autonomous automotive system (wiring)");
        let graph = esafe_vehicle::icpa_model::control_graph();
        for agent in graph.agents() {
            let controls: Vec<&str> = agent.controlled_vars().iter().map(String::as_str).collect();
            let monitors: Vec<&str> = agent.monitored_vars().iter().map(String::as_str).collect();
            println!(
                "  {:<20} writes [{}] reads [{}]",
                agent.name(),
                controls.join(", "),
                monitors.join(", ")
            );
        }
        return;
    }
    let Some((scenario, signals)) = figure_map(id) else {
        eprintln!("unknown figure id `{id}` (5.1..5.15)");
        return;
    };
    println!("Figure {id} (from scenario {scenario}):");
    let report = thesis_run(scenario);
    for signal in signals {
        print!("{}", tables::ascii_figure(&report, signal, 72));
    }
}

fn print_ablation(scenario: u8) {
    println!("Defect ablation for scenario {scenario} (parallel sweep):");
    println!("{:<32} violated monitors", "configuration");
    for (label, ids) in ablation(scenario) {
        let list = if ids.is_empty() {
            "(none)".to_owned()
        } else {
            ids.join(", ")
        };
        println!("{label:<32} {list}");
    }
}
