//! The tentpole comparison: per-tick cost of the seed's string-keyed
//! `State` map sampling vs. the interned `SignalTable`/`Frame` pipeline.
//!
//! Each "tick" models what the experiment loop does every millisecond:
//! refresh the snapshot from the previous tick, write a handful of
//! subsystem outputs, and feed a panel of goal monitors.
//!
//! * `map_tick` — the seed representation's per-tick cost model: the
//!   seed `Simulator::step` cloned the full `BTreeMap<String, Value>`
//!   twice (prev snapshot + next scratch), the vehicle probe cloned it a
//!   third time, subsystems wrote through `String` keys, and each
//!   monitor resolved its variables by name per tick. The model below
//!   reproduces exactly those costs (3 map clones + keyed writes +
//!   per-monitor name lookups) and *omits* the temporal-node evaluation
//!   both pipelines share — so the measured map/frame ratio is a
//!   conservative floor, not an inflated headline.
//! * `frame_tick` — the redesign: memcpy the frame double buffer, store
//!   values into `SignalId`-indexed slots, and observe through the
//!   id-compiled path *including* full temporal evaluation. Zero
//!   allocations.

use criterion::{criterion_group, criterion_main, Criterion};
use esafe_logic::{parse, CompiledMonitor, State};
use esafe_vehicle::config::VehicleParams;
use esafe_vehicle::signals::{self as sig, vehicle_table};
use std::hint::black_box;

/// Signals a tick's subsystems re-publish in this model.
const WRITES: [(&str, f64); 8] = [
    (sig::HOST_SPEED, 3.2),
    (sig::HOST_ACCEL, 0.4),
    (sig::HOST_JERK, 0.1),
    (sig::HOST_POSITION, 41.0),
    (sig::ACCEL_CMD, 0.5),
    (sig::ACCEL_CMD_RATE, 0.0),
    (sig::LEAD_DISTANCE, 18.0),
    (sig::LEAD_SPEED, 0.0),
];

/// A panel of goal-shaped formulas over the vehicle namespace.
const GOALS: [&str; 4] = [
    "host.accel <= 2.0",
    "arbiter.accel_cmd_rate <= 2.5",
    "held_for(host.speed <= 0.01, 300ticks) -> arbiter.accel_cmd <= 0.0",
    "world.lead_distance > 0.0 || host.speed <= 0.01",
];

fn seed_state() -> State {
    let (table, _sigs) = vehicle_table();
    let mut s = State::new();
    for id in table.ids() {
        // Seed every declared signal so both paths sample a same-sized
        // namespace; reals suffice for the monitored panel.
        s.set(table.name(id).to_owned(), 0.0f64);
    }
    s
}

fn map_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("state_throughput");
    group.sample_size(200);
    // Per-monitor variable lists, resolved once (as the seed's compiled
    // monitors held their names once); lookups still run per tick.
    let goal_vars: Vec<Vec<String>> = GOALS
        .iter()
        .map(|g| parse(g).unwrap().vars().into_iter().collect())
        .collect();
    let state = seed_state();
    group.bench_function("map_tick", |b| {
        b.iter(|| {
            // Seed Simulator::step: prev snapshot + next scratch clones.
            let prev = state.clone();
            let mut next = prev.clone();
            for (name, v) in WRITES {
                next.set(name, v);
            }
            // Seed vehicle observe: probe derivation cloned the map again.
            let observed = next.clone();
            // Seed monitor observe: per-tick name resolution per variable
            // reference. Temporal-node evaluation is excluded *here* but
            // still paid by the frame path below, so the measured ratio
            // understates the frame path's advantage (see module docs).
            for vars in &goal_vars {
                for name in vars {
                    black_box(observed.get(name));
                }
            }
            black_box(observed.len())
        })
    });
    group.finish();
}

fn frame_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("state_throughput");
    group.sample_size(200);
    let (table, sigs) = vehicle_table();
    let mut monitors: Vec<CompiledMonitor> = GOALS
        .iter()
        .map(|g| CompiledMonitor::compile_in(&parse(g).unwrap(), &table).unwrap())
        .collect();
    let writes = [
        (sigs.host_speed, 3.2),
        (sigs.host_accel, 0.4),
        (sigs.host_jerk, 0.1),
        (sigs.host_position, 41.0),
        (sigs.accel_cmd, 0.5),
        (sigs.accel_cmd_rate, 0.0),
        (sigs.lead_distance, 18.0),
        (sigs.lead_speed, 0.0),
    ];
    let mut prev = table.frame();
    for id in table.ids() {
        prev.set(id, 0.0f64);
    }
    let mut next = table.frame();
    let mut observed = table.frame();
    group.bench_function("frame_tick", |b| {
        b.iter(|| {
            // The redesigned pipeline, same tick structure: double-buffer
            // memcpy, id-indexed writes, the observed-frame memcpy, and
            // monitor observation through compiled ids — *including* the
            // temporal-node evaluation the map model above omits.
            next.copy_from(&prev);
            for (id, v) in writes {
                next.set(id, v);
            }
            observed.copy_from(&next);
            for m in &mut monitors {
                let _ = black_box(m.observe(&observed).unwrap());
            }
            black_box(observed.len())
        })
    });
    group.finish();
}

fn end_to_end_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("state_throughput");
    group.sample_size(10);
    // The full monitored vehicle substrate, 1000 ticks: every subsystem
    // step, probe derivation, and all 49 monitors on the frame pipeline.
    group.bench_function("vehicle_1000_monitored_ticks", |b| {
        use esafe_vehicle::config::DefectSet;
        use esafe_vehicle::dynamics::Scene;
        let (table, sigs) = vehicle_table();
        let params = VehicleParams::default();
        b.iter(|| {
            let mut sim = esafe_vehicle::builder::build_vehicle(
                params,
                DefectSet::none(),
                Scene::default(),
                vec![],
                &table,
                &sigs,
            );
            let mut suite = esafe_vehicle::goals::build_suite(&table, &params).unwrap();
            let mut observed = table.frame();
            for _ in 0..1000 {
                sim.step();
                observed.copy_from(sim.state());
                esafe_vehicle::probe::derive_into(&mut observed, &sigs, &params);
                suite.observe(&observed).unwrap();
            }
            suite.finish();
            black_box(sim.tick())
        })
    });
    group.finish();
}

criterion_group!(benches, map_sampling, frame_sampling, end_to_end_simulator);
criterion_main!(benches);
