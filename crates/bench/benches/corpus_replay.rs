//! Offline re-monitoring throughput: replaying an archived trace
//! corpus through a goal suite, end to end — open nothing, simulate
//! nothing, just decode columns into the lane slab and sweep the fused
//! DAG across stripes.
//!
//! * `decode_only` — the codec floor: materializing every archived
//!   run's columns (delta/varint/dictionary decode), no monitoring;
//! * `replay_strict_w{N}` — the full `repro --replay-corpus` path at
//!   stripe width N: per-group suite compilation, column decode
//!   straight into the [`FrameBatch`] slab, `observe_slab` per tick,
//!   correlation and violation extraction per lane.
//!
//! Each iteration covers the whole corpus (printed below as runs ×
//! ticks); divide by total ticks for the ns/tick/run figure the
//! acceptance bound in `repro --replay-corpus --json` reports against
//! `BENCH_megagrid.json`.
//!
//! [`FrameBatch`]: esafe_logic::FrameBatch

use criterion::{criterion_group, criterion_main, Criterion};
use esafe_scenarios::corpus::{record_grid_corpus, suite_for};
use esafe_scenarios::grid;

fn corpus_replay(c: &mut Criterion) {
    let mut dir = std::env::temp_dir();
    dir.push(format!("esafe-bench-corpus-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cells = grid::cells(&[1, 2, 10], &grid::ablation_configs()[..4]);
    let (_, _, stats) = record_grid_corpus(&dir, cells).expect("recording succeeds");
    let reader = esafe_harness::TraceCorpusReader::open(&dir).expect("committed corpus opens");
    println!(
        "corpus: {} runs, {} ticks, {} bytes ({:.2} bytes/tick)",
        stats.runs,
        stats.ticks,
        stats.data_bytes,
        stats.data_bytes as f64 / stats.ticks.max(1) as f64,
    );

    let mut group = c.benchmark_group("corpus_replay");
    group.sample_size(10);

    group.bench_function("decode_only", |b| {
        b.iter(|| {
            for i in 0..reader.len() {
                let trace = reader.decode_trace(i).expect("archived runs decode");
                assert_eq!(trace.len() as u64, reader.meta(i).ticks);
            }
        })
    });

    group.bench_function("decode_into_slab_w8", |b| {
        let table = reader.table(0).expect("one table");
        let mut slab = esafe_logic::FrameBatch::new(table, 8);
        b.iter(|| {
            let mut decoders: Vec<_> = (0..reader.len())
                .map(|i| reader.decoder(i).expect("archived runs open"))
                .collect();
            for (lane, dec) in decoders.iter_mut().enumerate() {
                while dec.write_tick(&mut slab, lane % 8, reader.dict()).is_some() {}
            }
        })
    });

    for width in [1usize, 4, 12] {
        group.bench_function(format!("replay_strict_w{width}"), |b| {
            b.iter(|| {
                let replay = esafe_harness::replay_corpus(&reader, width, |substrate, table| {
                    suite_for("strict", substrate, table)
                })
                .expect("replay succeeds");
                assert_eq!(replay.runs, reader.len());
            })
        });
    }

    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, corpus_replay);
criterion_main!(benches);
