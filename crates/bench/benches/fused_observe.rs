//! Per-monitor vs fused suite evaluation on the vehicle family — the
//! cross-monitor CSE win behind `repro --grid`'s `tick_ms`.
//!
//! Both suites come from the same [`SuiteTemplate`]: `per_monitor`
//! walks 49 separate expression trees per tick (with stateless
//! short-circuiting), `fused` makes one pass over the deduplicated
//! suite-level DAG in which every shared subformula — `probe.forward`,
//! `probe.auto_accel_source == '…'`, the speed/accel atoms — is
//! evaluated once. The observed frames are a real recorded run
//! (scenario 1, thesis defects), replayed per iteration so temporal
//! cells see realistic edges.
//!
//! [`SuiteTemplate`]: esafe_monitor::SuiteTemplate

use criterion::{criterion_group, criterion_main, Criterion};
use esafe_harness::Experiment;
use esafe_logic::FrameTrace;
use esafe_monitor::MonitorSuite;
use esafe_scenarios::{grid, runner};
use esafe_vehicle::config::DefectSet;
use esafe_vehicle::VehicleFamily;

/// Records the observed-frame stream of one monitored vehicle run.
fn recorded_trace(family: &VehicleFamily, scenario: u8, defects: DefectSet) -> FrameTrace {
    let cells = grid::cells(&[scenario], &[("bench".to_owned(), defects)]);
    let substrate = grid::build_cell_in(family, &cells[0], 0);
    Experiment::new(&substrate)
        .with_config(runner::thesis_config())
        .with_frame_recording(true)
        .run()
        .expect("scenario formulas compile against the simulator signals")
        .trace
        .expect("frame recording enabled")
}

/// One full replay of the recording through the suite.
fn replay(suite: &mut MonitorSuite, trace: &FrameTrace) -> usize {
    suite.replay(trace).expect("recorded frames are complete");
    suite.take_violations().len()
}

fn fused_observe(c: &mut Criterion) {
    let family = VehicleFamily::default();
    let trace = recorded_trace(&family, 1, DefectSet::thesis());
    let program = family.template().fused_program();
    println!(
        "vehicle suite: {} monitors, {} source nodes -> {} fused nodes \
         (dedup ratio {:.2}x), {} temporal cells, {} frames/replay",
        program.roots(),
        program.source_nodes(),
        program.unique_nodes(),
        program.source_nodes() as f64 / program.unique_nodes() as f64,
        program.state_cells(),
        trace.len(),
    );

    let mut group = c.benchmark_group("fused_observe");
    group.sample_size(10);

    let mut per_monitor = family.template().instantiate_per_monitor();
    group.bench_function("vehicle_replay_per_monitor", |b| {
        b.iter(|| replay(&mut per_monitor, &trace))
    });

    let mut fused = family.template().instantiate();
    group.bench_function("vehicle_replay_fused", |b| {
        b.iter(|| replay(&mut fused, &trace))
    });

    group.finish();
}

criterion_group!(benches, fused_observe);
criterion_main!(benches);
