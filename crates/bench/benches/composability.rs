//! Cost of the Chapter 3 composability judgements (model enumeration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esafe_core::compose;
use esafe_logic::{parse, Expr};
use std::hint::black_box;

fn classify_families(c: &mut Criterion) {
    let mut group = c.benchmark_group("classify");
    for n in [2usize, 4, 6, 8] {
        // A chain decomposition a -> v0, v0 -> v1, …, v(n-1) -> b of a -> b.
        let mut subgoals = vec![parse("a -> v0").unwrap()];
        for i in 0..n - 1 {
            subgoals.push(parse(&format!("v{i} -> v{}", i + 1)).unwrap());
        }
        subgoals.push(parse(&format!("v{} -> b", n - 1)).unwrap());
        let parent = parse("a -> b").unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("chain_{n}")),
            &(parent, subgoals),
            |bench, (parent, subgoals)| {
                bench.iter(|| {
                    black_box(compose::classify(parent, std::slice::from_ref(subgoals)).unwrap())
                })
            },
        );
    }
    group.finish();
}

fn and_reduction(c: &mut Criterion) {
    c.bench_function("and_reduction_conditions", |b| {
        let parent = parse("a -> b").unwrap();
        let subs: Vec<Expr> = vec![
            parse("a -> c").unwrap(),
            parse("c -> d").unwrap(),
            parse("d -> b").unwrap(),
        ];
        b.iter(|| black_box(compose::and_reduction(&subs, &parent).unwrap()))
    });
}

criterion_group!(benches, classify_families, and_reduction);
criterion_main!(benches);
