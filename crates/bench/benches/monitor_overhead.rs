//! Per-tick cost of run-time goal monitoring: one monitor across formula
//! sizes, and the full 49-monitor vehicle suite — all on the id-compiled
//! [`Frame`] path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esafe_logic::{parse, CompiledMonitor, SignalTable};
use esafe_vehicle::config::VehicleParams;
use esafe_vehicle::signals::vehicle_table;
use std::hint::black_box;

fn single_monitor(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_monitor_tick");
    let cases = [
        ("atom", "p"),
        ("implication", "p -> q"),
        ("temporal", "prev(p) && once_within(q, 100ticks) -> r"),
        (
            "goal4_shape",
            "(held_for(p, 300ticks) && !once_within(q, 300ticks) && r) -> !s",
        ),
    ];
    let mut b = SignalTable::builder();
    let (p, q, r, s) = (b.bool("p"), b.bool("q"), b.bool("r"), b.bool("s"));
    let table = b.finish();
    let mut frame = table.frame();
    frame.set(p, true);
    frame.set(q, false);
    frame.set(r, true);
    frame.set(s, false);
    for (name, src) in cases {
        let expr = parse(src).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &expr, |bench, e| {
            let mut m = CompiledMonitor::compile_in(e, &table).unwrap();
            bench.iter(|| black_box(m.observe(&frame).unwrap()));
        });
    }
    group.finish();
}

fn full_suite(c: &mut Criterion) {
    let params = VehicleParams::default();
    let (table, sigs) = vehicle_table();
    // A representative derived frame.
    let mut sim = esafe_vehicle::builder::build_vehicle(
        params,
        esafe_vehicle::config::DefectSet::none(),
        esafe_vehicle::dynamics::Scene::default(),
        vec![],
        &table,
        &sigs,
    );
    sim.step();
    let frame = esafe_vehicle::probe::derive(sim.state(), &sigs, &params);

    // The per-monitor reference engine: 49 separate tree walks per tick.
    c.bench_function("vehicle_suite_49_monitors_tick", |b| {
        let mut suite = esafe_vehicle::goals::build_suite(&table, &params).unwrap();
        b.iter(|| suite.observe(black_box(&frame)).unwrap());
    });

    // The fused engine: one pass over the deduplicated suite-level DAG.
    c.bench_function("vehicle_suite_49_monitors_fused_tick", |b| {
        let mut suite = esafe_vehicle::goals::build_suite(&table, &params)
            .unwrap()
            .template()
            .instantiate();
        b.iter(|| suite.observe(black_box(&frame)).unwrap());
    });
}

criterion_group!(benches, single_monitor, full_suite);
criterion_main!(benches);
