//! Per-tick cost of run-time goal monitoring: one monitor across formula
//! sizes, and the full 49-monitor vehicle suite.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esafe_logic::{parse, CompiledMonitor, State};
use esafe_vehicle::config::VehicleParams;
use std::hint::black_box;

fn single_monitor(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_monitor_tick");
    let cases = [
        ("atom", "p"),
        ("implication", "p -> q"),
        ("temporal", "prev(p) && once_within(q, 100ticks) -> r"),
        (
            "goal4_shape",
            "(held_for(p, 300ticks) && !once_within(q, 300ticks) && r) -> !s",
        ),
    ];
    let state = State::new()
        .with_bool("p", true)
        .with_bool("q", false)
        .with_bool("r", true)
        .with_bool("s", false);
    for (name, src) in cases {
        let expr = parse(src).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &expr, |b, e| {
            let mut m = CompiledMonitor::compile(e).unwrap();
            b.iter(|| black_box(m.observe(&state).unwrap()));
        });
    }
    group.finish();
}

fn full_suite(c: &mut Criterion) {
    let params = VehicleParams::default();
    c.bench_function("vehicle_suite_49_monitors_tick", |b| {
        let mut suite = esafe_vehicle::goals::build_suite(&params).unwrap();
        // A representative derived state.
        let mut sim = esafe_vehicle::builder::build_vehicle(
            params,
            esafe_vehicle::config::DefectSet::none(),
            esafe_vehicle::dynamics::Scene::default(),
            vec![],
        );
        sim.step();
        let state = esafe_vehicle::probe::derive(sim.state(), &params);
        b.iter(|| suite.observe(black_box(&state)).unwrap());
    });
}

criterion_group!(benches, single_monitor, full_suite);
criterion_main!(benches);
