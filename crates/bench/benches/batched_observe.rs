//! Scalar fused vs batched (slab-of-lanes) suite evaluation on the
//! vehicle family — the per-run win behind `repro --mega-grid`'s
//! stripe engine.
//!
//! All engines execute the same deduplicated [`FusedSuiteProgram`]
//! DAG; they differ in how many runs step through it per pass:
//!
//! * `scalar_per_run` — one run per iteration
//!   ([`SuiteTemplate::instantiate`]), the `repro --grid` per-lane
//!   baseline: its per-iteration time **is** the per-run cost;
//! * `batched_w{N}_per_pass` — N lanes per iteration
//!   ([`SuiteTemplate::instantiate_batch`]): each DAG node is decoded
//!   once and swept across all N lanes' slab rows before the pass
//!   moves to the next node. Criterion reports the **raw per-pass**
//!   time, which covers N runs — divide by N before comparing against
//!   `scalar_per_run` (so batched wins whenever `per_pass < N ×
//!   per_run`). Batched at or below scalar per run is the acceptance
//!   criterion of the mega-grid workload; `repro --mega-grid` prints
//!   the already-normalized comparison.
//!
//! The observed frames are a real recorded run (scenario 1, clean
//! system), pre-materialized per lane
//! ([`esafe_bench::recorded_clean_frames`] /
//! [`esafe_bench::replicate_lanes`] — the same harness the
//! calibrations use) so the timed loop is monitoring only.
//!
//! [`FusedSuiteProgram`]: esafe_logic::FusedSuiteProgram
//! [`SuiteTemplate`]: esafe_monitor::SuiteTemplate
//! [`SuiteTemplate::instantiate`]: esafe_monitor::SuiteTemplate::instantiate
//! [`SuiteTemplate::instantiate_batch`]: esafe_monitor::SuiteTemplate::instantiate_batch

use criterion::{criterion_group, criterion_main, Criterion};
use esafe_bench::{recorded_clean_frames, replicate_lanes};
use esafe_vehicle::VehicleFamily;

/// Ticks replayed per pass (bounds the width-16 lane replica set).
const TICKS: usize = 1000;

fn batched_observe(c: &mut Criterion) {
    let family = VehicleFamily::default();
    let frames = recorded_clean_frames(&family, TICKS);
    println!(
        "vehicle suite: {} monitors over {} fused nodes, {} ticks/pass",
        family.template().fused_program().roots(),
        family.template().fused_program().unique_nodes(),
        frames.len(),
    );

    let mut group = c.benchmark_group("batched_observe");
    group.sample_size(10);

    let mut scalar = family.template().instantiate();
    group.bench_function("vehicle_observe_scalar_per_run", |b| {
        b.iter(|| {
            scalar.reset();
            for frame in &frames {
                scalar.observe(frame).expect("recorded frames are complete");
            }
        })
    });

    for width in [4usize, 8, 16] {
        let lane_frames = replicate_lanes(&frames, width);
        let mut batch = family.template().instantiate_batch(width);
        // One iteration advances `width` runs — see the module docs for
        // how to normalize against the scalar case.
        group.bench_function(format!("vehicle_observe_batched_w{width}_per_pass"), |b| {
            b.iter(|| {
                batch.reset();
                for stripe in &lane_frames {
                    batch
                        .observe_batch(stripe)
                        .expect("recorded frames are complete");
                }
            })
        });
    }

    group.finish();
}

criterion_group!(benches, batched_observe);
criterion_main!(benches);
