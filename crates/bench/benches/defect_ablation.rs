//! Ablation cost: the scenario-3 defect grid through the sweep runner,
//! parallel vs serial (the design-choice ablation DESIGN.md calls out).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esafe_scenarios::grid;
use esafe_vehicle::config::DefectSet;
use std::hint::black_box;

fn ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario3_ablation");
    group.sample_size(10);
    let configs = vec![
        ("none".to_owned(), DefectSet::none()),
        ("thesis".to_owned(), DefectSet::thesis()),
        (
            "ca_only".to_owned(),
            DefectSet {
                ca_intermittent_braking: true,
                ..DefectSet::none()
            },
        ),
        (
            "acc_only".to_owned(),
            DefectSet {
                acc_requests_while_disengaged: true,
                ..DefectSet::none()
            },
        ),
    ];
    let cells = grid::cells(&[3], &configs);
    for parallel in [true, false] {
        let label = if parallel { "parallel" } else { "serial" };
        group.bench_with_input(BenchmarkId::from_parameter(label), &cells, |b, cells| {
            b.iter(|| {
                let sweep = if parallel {
                    grid::run_parallel(cells.clone())
                } else {
                    grid::run_serial(cells.clone())
                };
                black_box(sweep.unwrap().aggregate())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
