//! Ablation cost: scenario 3 under individual defect configurations (the
//! design-choice ablation DESIGN.md calls out).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esafe_scenarios::{catalog, runner};
use esafe_vehicle::config::DefectSet;
use std::hint::black_box;

fn ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario3_ablation");
    group.sample_size(10);
    let configs: Vec<(&str, DefectSet)> = vec![
        ("none", DefectSet::none()),
        ("thesis", DefectSet::thesis()),
        (
            "ca_only",
            DefectSet {
                ca_intermittent_braking: true,
                ..DefectSet::none()
            },
        ),
        (
            "acc_only",
            DefectSet {
                acc_requests_while_disengaged: true,
                ..DefectSet::none()
            },
        ),
    ];
    for (name, defects) in configs {
        group.bench_with_input(BenchmarkId::from_parameter(name), &defects, |b, d| {
            b.iter(|| black_box(runner::run(&catalog::scenario(3), *d).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
