//! Suite acquisition cost: full recompilation (the pre-template path,
//! once per sweep cell) vs template instantiation vs pooled reset — the
//! amortization ladder behind `repro --grid`'s `setup_ms`.

use criterion::{criterion_group, criterion_main, Criterion};
use esafe_elevator::{ElevatorFamily, ElevatorParams};
use esafe_vehicle::config::VehicleParams;
use esafe_vehicle::VehicleFamily;

fn suite_instantiation(c: &mut Criterion) {
    let mut group = c.benchmark_group("suite_instantiation");
    group.sample_size(20);

    // The per-run-compile reference: table-resolved parse-tree walk over
    // all 49 vehicle goal/subgoal formulas.
    let (table, _sigs) = esafe_vehicle::signals::vehicle_table();
    let params = VehicleParams::default();
    group.bench_function("vehicle_full_recompile", |b| {
        b.iter(|| esafe_vehicle::goals::build_suite(&table, &params).expect("goal tables compile"))
    });

    // The amortized path: compile once into a template (outside the
    // loop), stamp out a suite per iteration.
    let family = VehicleFamily::default();
    group.bench_function("vehicle_template_instantiate", |b| {
        b.iter(|| family.template().instantiate())
    });

    // The pooled path: one suite reset in place per iteration.
    let mut pooled = family.template().instantiate();
    group.bench_function("vehicle_pooled_reset", |b| {
        b.iter(|| {
            pooled.reset();
            pooled.goal_ids().len()
        })
    });

    let eparams = ElevatorParams::default();
    let (etable, _esigs) = esafe_elevator::model::elevator_table(&eparams);
    group.bench_function("elevator_full_recompile", |b| {
        b.iter(|| {
            esafe_elevator::goals::build_suite(&etable, &eparams).expect("goal tables compile")
        })
    });
    let efamily = ElevatorFamily::default();
    group.bench_function("elevator_template_instantiate", |b| {
        b.iter(|| efamily.template().instantiate())
    });

    group.finish();
}

criterion_group!(benches, suite_instantiation);
criterion_main!(benches);
