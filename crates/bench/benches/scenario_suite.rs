//! End-to-end cost of one monitored 20 s scenario (20k ticks × 49
//! monitors + simulation).

use criterion::{criterion_group, criterion_main, Criterion};
use esafe_scenarios::{catalog, runner};
use esafe_vehicle::config::DefectSet;
use std::hint::black_box;

fn scenario_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario");
    group.sample_size(10);
    group.bench_function("scenario1_thesis_defects", |b| {
        b.iter(|| black_box(runner::run(&catalog::scenario(1), DefectSet::thesis()).unwrap()))
    });
    group.bench_function("scenario1_fixed", |b| {
        b.iter(|| black_box(runner::run(&catalog::scenario(1), DefectSet::none()).unwrap()))
    });
    group.bench_function("scenario9_short_horizon", |b| {
        b.iter(|| black_box(runner::run(&catalog::scenario(9), DefectSet::thesis()).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, scenario_runs);
criterion_main!(benches);
