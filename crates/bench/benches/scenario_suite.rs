//! End-to-end cost of monitored scenario runs through the generic
//! experiment harness, single runs and multi-cell sweeps (20k ticks ×
//! 49 monitors + simulation per run).

use criterion::{criterion_group, criterion_main, Criterion};
use esafe_scenarios::{catalog, grid, runner};
use esafe_vehicle::config::DefectSet;
use std::hint::black_box;

fn scenario_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario");
    group.sample_size(10);
    group.bench_function("scenario1_thesis_defects", |b| {
        b.iter(|| black_box(runner::run(&catalog::scenario(1), DefectSet::thesis()).unwrap()))
    });
    group.bench_function("scenario1_fixed", |b| {
        b.iter(|| black_box(runner::run(&catalog::scenario(1), DefectSet::none()).unwrap()))
    });
    group.bench_function("scenario9_short_horizon", |b| {
        b.iter(|| black_box(runner::run(&catalog::scenario(9), DefectSet::thesis()).unwrap()))
    });
    group.finish();
}

fn scenario_sweeps(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_sweep");
    group.sample_size(10);
    let configs = vec![
        ("none".to_owned(), DefectSet::none()),
        ("thesis (all)".to_owned(), DefectSet::thesis()),
    ];
    let scenarios: Vec<u8> = (1..=10).collect();
    let cells = grid::cells(&scenarios, &configs);
    group.bench_function("catalog_x2_parallel", |b| {
        b.iter(|| black_box(grid::run_parallel(cells.clone()).unwrap().aggregate()))
    });
    group.bench_function("catalog_x2_serial", |b| {
        b.iter(|| black_box(grid::run_serial(cells.clone()).unwrap().aggregate()))
    });
    group.finish();
}

criterion_group!(benches, scenario_runs, scenario_sweeps);
criterion_main!(benches);
