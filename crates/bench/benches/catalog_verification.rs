//! Cost of deriving and machine-checking the Appendix B realizability
//! catalog (351 + rows, each with model-enumeration soundness checks).

use criterion::{criterion_group, criterion_main, Criterion};
use esafe_core::catalog::{self, Capability, GoalForm, LiftPos, Shape};
use std::hint::black_box;

fn catalog_bench(c: &mut Criterion) {
    c.bench_function("resolve_one_row", |b| {
        let form = GoalForm::new(Shape::OrConsequent, LiftPos::FirstAntecedent);
        let caps = [
            Capability::Observable,
            Capability::Controllable,
            Capability::Unavailable,
        ];
        b.iter(|| black_box(catalog::resolve(&form, &caps)))
    });
    c.bench_function("table_b1_simple_form", |b| {
        let form = GoalForm::new(Shape::Simple, LiftPos::None);
        b.iter(|| black_box(catalog::table(&form)))
    });
    let mut group = c.benchmark_group("appendix_b_full");
    group.sample_size(10);
    group.bench_function("all_thirteen_tables", |b| {
        b.iter(|| black_box(catalog::appendix_b()))
    });
    group.finish();
}

criterion_group!(benches, catalog_bench);
criterion_main!(benches);
