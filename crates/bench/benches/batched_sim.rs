//! Scalar `Simulator` vs [`SimulatorBatch`] stepping on the vehicle
//! substrate — the sim-side win behind `repro --mega-grid`'s stripe
//! engine (the simulation twin of `batched_observe`).
//!
//! All engines run the same eight vehicle subsystems over the same
//! mega-grid cells; they differ in how many runs advance per tick:
//!
//! * `scalar_per_run` — one cell per iteration: `TICKS` ticks of one
//!   `Simulator` (B virtual dispatches per subsystem per tick across a
//!   sweep, each chasing its own double-buffered `Frame` pair);
//! * `batched_w{N}_per_pass` — N distinct cells per iteration through
//!   one [`SimulatorBatch`]: every subsystem advances all N lanes of
//!   the lane-major [`FrameBatch`](esafe_logic::FrameBatch) slab before
//!   the next subsystem runs. Criterion reports the **raw per-pass**
//!   time, which covers N runs — divide by N before comparing against
//!   `scalar_per_run` (batched wins whenever `per_pass < N × per_run`).
//!
//! Widths 1–128 bracket the mega-grid calibration's candidate set; the
//! width-1 point prices the batch engine's fixed overhead against the
//! scalar baseline.
//!
//! [`SimulatorBatch`]: esafe_sim::SimulatorBatch

use criterion::{criterion_group, criterion_main, Criterion};
use esafe_harness::Substrate as _;
use esafe_scenarios::mega;
use esafe_vehicle::{VehicleFamily, VehicleSubstrate};

/// Ticks stepped per pass (a fifth of a full 50 s mega-cell run —
/// enough to leave the initial transient).
const TICKS: u64 = 1000;

fn batched_sim(c: &mut Criterion) {
    let family = VehicleFamily::default();
    let cells = mega::mega_grid();

    let mut group = c.benchmark_group("batched_sim");
    group.sample_size(10);

    let sub = mega::build_mega_cell_in(&family, &cells[0], 0);
    group.bench_function("vehicle_sim_scalar_per_run", |b| {
        b.iter(|| {
            let mut sim = sub.build_simulator();
            for _ in 0..TICKS {
                sim.step();
            }
            sim.tick()
        })
    });

    for width in [1usize, 4, 16, 64, 128] {
        let subs: Vec<_> = cells[..width]
            .iter()
            .map(|cell| mega::build_mega_cell_in(&family, cell, 0))
            .collect();
        let group_refs: Vec<&_> = subs.iter().collect();
        // One iteration advances `width` runs — see the module docs for
        // how to normalize against the scalar case.
        group.bench_function(format!("vehicle_sim_batched_w{width}_per_pass"), |b| {
            b.iter(|| {
                let mut sim = VehicleSubstrate::build_simulator_batch(&group_refs)
                    .expect("the vehicle substrate has a native batched builder");
                for _ in 0..TICKS {
                    sim.step();
                }
                sim.tick()
            })
        });
    }

    group.finish();
}

criterion_group!(benches, batched_sim);
criterion_main!(benches);
