//! Simulation throughput: elevator ticks per second with and without the
//! goal monitors attached (both on the shared-table frame pipeline).

use criterion::{criterion_group, criterion_main, Criterion};
use esafe_elevator::{build_elevator, faults::ElevatorFaults, goals, model, ElevatorParams};
use std::hint::black_box;

fn throughput(c: &mut Criterion) {
    let params = ElevatorParams::default();
    let (table, sigs) = model::elevator_table(&params);
    let mut group = c.benchmark_group("elevator");
    group.bench_function("1000_ticks_unmonitored", |b| {
        b.iter(|| {
            let mut sim = build_elevator(params, ElevatorFaults::none(), 5, &table, &sigs);
            for _ in 0..1000 {
                sim.step();
            }
            black_box(sim.tick())
        })
    });
    group.bench_function("1000_ticks_monitored", |b| {
        b.iter(|| {
            let mut sim = build_elevator(params, ElevatorFaults::none(), 5, &table, &sigs);
            let mut suite = goals::build_suite(&table, &params).unwrap();
            for _ in 0..1000 {
                sim.step();
                suite.observe(sim.state()).unwrap();
            }
            suite.finish();
            black_box(suite.correlate(0))
        })
    });
    group.finish();
}

criterion_group!(benches, throughput);
criterion_main!(benches);
