//! Simulation throughput: elevator ticks per second with and without the
//! goal monitors attached.

use criterion::{criterion_group, criterion_main, Criterion};
use esafe_elevator::{build_elevator, faults::ElevatorFaults, goals, ElevatorParams};
use std::hint::black_box;

fn throughput(c: &mut Criterion) {
    let params = ElevatorParams::default();
    let mut group = c.benchmark_group("elevator");
    group.bench_function("1000_ticks_unmonitored", |b| {
        b.iter(|| {
            let mut sim = build_elevator(params, ElevatorFaults::none(), 5);
            for _ in 0..1000 {
                sim.step();
            }
            black_box(sim.tick())
        })
    });
    group.bench_function("1000_ticks_monitored", |b| {
        b.iter(|| {
            let mut sim = build_elevator(params, ElevatorFaults::none(), 5);
            let mut suite = goals::build_suite(&params).unwrap();
            for _ in 0..1000 {
                sim.step();
                suite.observe(sim.state()).unwrap();
            }
            suite.finish();
            black_box(suite.correlate(0))
        })
    });
    group.finish();
}

criterion_group!(benches, throughput);
criterion_main!(benches);
