//! Cost of the ICPA machinery: path tracing, table construction, and
//! machine verification of a decomposition.

use criterion::{criterion_group, criterion_main, Criterion};
use esafe_elevator::ElevatorParams;
use esafe_vehicle::config::VehicleParams;
use std::hint::black_box;

fn icpa(c: &mut Criterion) {
    let eparams = ElevatorParams::default();
    let graph = esafe_elevator::icpa::control_graph(&eparams);
    c.bench_function("trace_door_closed_path", |b| {
        b.iter(|| black_box(graph.trace("door_closed")))
    });
    c.bench_function("build_door_icpa_table", |b| {
        b.iter(|| black_box(esafe_elevator::icpa::door_or_stopped_icpa(&eparams)))
    });
    let table = esafe_elevator::icpa::overweight_icpa(&eparams);
    c.bench_function("verify_overweight_icpa", |b| {
        b.iter(|| black_box(table.verify()))
    });
    let vparams = VehicleParams::default();
    c.bench_function("build_vehicle_goal1_icpa", |b| {
        b.iter(|| black_box(esafe_vehicle::icpa_model::icpa_goal_1(&vparams)))
    });
}

criterion_group!(benches, icpa);
criterion_main!(benches);
