//! Quick component-level timing of one mega-grid stripe: how the
//! per-lane-tick budget splits between batched simulation, in-place
//! probe observation, the fused monitor DAG pass, and verdict trackers.
//!
//! Run with `cargo run --release -p esafe-bench --example profile_stripe`.

use esafe_harness::Substrate;
use esafe_scenarios::mega;
use esafe_vehicle::VehicleFamily;
use std::time::Instant;

fn main() {
    let ticks = 5000u64;
    let family = VehicleFamily::default();
    let cells = mega::mega_grid();
    for width in [16usize, 32, 64, 128] {
        let subs: Vec<_> = cells[..width]
            .iter()
            .map(|c| mega::build_mega_cell_in(&family, c, 0))
            .collect();
        let group: Vec<&_> = subs.iter().collect();
        let table = subs[0].signal_table().clone();
        let mut raw = table.frame();
        let mut observed = table.frame();

        // (a) batched sim stepping only.
        let mut sim = Substrate::build_simulator_batch(&group).expect("native vehicle batch");
        let t0 = Instant::now();
        for _ in 0..ticks {
            sim.step();
        }
        let sim_ns = t0.elapsed().as_nanos() as f64 / (ticks as usize * width) as f64;

        // (b) sim + in-place probe observe.
        let mut sim = Substrate::build_simulator_batch(&group).expect("native vehicle batch");
        let t0 = Instant::now();
        for _ in 0..ticks {
            sim.step();
            for (l, sub) in subs.iter().enumerate() {
                sub.observe_lane(sim.state_mut(), l, &mut raw, &mut observed);
            }
        }
        let simobs_ns = t0.elapsed().as_nanos() as f64 / (ticks as usize * width) as f64;

        // (c) sim + observe + raw fused DAG pass (no verdict trackers).
        let mut sim = Substrate::build_simulator_batch(&group).expect("native vehicle batch");
        let mut fused = family.template().fused_program().instantiate_batch(width);
        let t0 = Instant::now();
        for _ in 0..ticks {
            sim.step();
            for (l, sub) in subs.iter().enumerate() {
                sub.observe_lane(sim.state_mut(), l, &mut raw, &mut observed);
            }
            fused.observe_slab(sim.state()).expect("complete frames");
        }
        let dag_ns = t0.elapsed().as_nanos() as f64 / (ticks as usize * width) as f64;

        // (d) sim + observe + full monitor suite pass (DAG + trackers).
        let mut sim = Substrate::build_simulator_batch(&group).expect("native vehicle batch");
        let mut suite = family.template().instantiate_batch(width);
        let t0 = Instant::now();
        for _ in 0..ticks {
            sim.step();
            for (l, sub) in subs.iter().enumerate() {
                sub.observe_lane(sim.state_mut(), l, &mut raw, &mut observed);
            }
            suite.observe_slab(sim.state()).expect("complete frames");
        }
        let full_ns = t0.elapsed().as_nanos() as f64 / (ticks as usize * width) as f64;

        println!("width {width:4}, ns per lane-tick:");
        println!("  sim step only      {sim_ns:8.1}");
        println!(
            "  + probe observe    {simobs_ns:8.1}  (observe {:.1})",
            simobs_ns - sim_ns
        );
        println!(
            "  + fused DAG        {dag_ns:8.1}  (dag {:.1})",
            dag_ns - simobs_ns
        );
        println!(
            "  + suite trackers   {full_ns:8.1}  (trackers {:.1})",
            full_ns - dag_ns
        );
    }
}
