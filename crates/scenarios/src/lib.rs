//! The ten evaluation scenarios of the thesis's Chapter 5 (§5.4.1–§5.4.10)
//! and the machinery that regenerates its tables and figures:
//!
//! * [`catalog`] — the ten [`Scenario`] descriptors (world, driver script,
//!   expected phenomena);
//! * [`runner`] — executes a scenario against a [`DefectSet`], monitoring
//!   all 49 goal/subgoal monitors and recording the figure time series;
//! * [`tables`] — renders the per-scenario violation tables (D.1–D.11),
//!   the Table 5.3 monitoring matrix, and the figure series.
//!
//! # Example
//!
//! ```no_run
//! use esafe_scenarios::{catalog, runner};
//! use esafe_vehicle::config::DefectSet;
//!
//! let report = runner::run(&catalog::scenario(1), DefectSet::thesis()).unwrap();
//! // Scenario 1 ends in an early termination and vehicle-level goal-2
//! // violations with no 2A coverage (false negatives).
//! assert!(report.terminated_early);
//! ```

pub mod catalog;
pub mod runner;
pub mod tables;

pub use catalog::{scenario, Scenario};
pub use runner::{run, ScenarioReport};
