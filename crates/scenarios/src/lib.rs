//! The ten evaluation scenarios of the thesis's Chapter 5 (§5.4.1–§5.4.10)
//! and the machinery that regenerates its tables and figures:
//!
//! * [`catalog`] — the ten [`Scenario`] descriptors (world, driver script,
//!   expected phenomena);
//! * [`runner`] — lifts a scenario × [`DefectSet`](esafe_vehicle::config::DefectSet) cell into a
//!   [`esafe_vehicle::substrate::VehicleSubstrate`] and executes it
//!   through the generic [`esafe_harness::Experiment`] loop, monitoring
//!   all 49 goal/subgoal monitors and recording the figure time series
//!   (grids of cells run in parallel via [`esafe_harness::Sweep`]);
//! * [`tables`] — renders the per-scenario violation tables (D.1–D.11),
//!   the Table 5.3 monitoring matrix, and the figure series;
//! * [`grid`] — the 140-cell scenario × defect evaluation grid, swept on
//!   the batched striped engine (`repro --grid`);
//! * [`mega`] — the ≥10⁴-cell scenario-*parameter* mega grid (headways ×
//!   lead speeds × throttle levels × defect configurations), streamed
//!   with O(workers × stripe width) memory (`repro --mega-grid`);
//! * [`fleet`] — the fleet-service replay workload behind
//!   `repro --serve-bench`: one recorded elevator run fanned out as
//!   thousands of concurrent monitor-service streams.
//!
//! # Example
//!
//! ```no_run
//! use esafe_scenarios::{catalog, runner};
//! use esafe_vehicle::config::DefectSet;
//!
//! let report = runner::run(&catalog::scenario(1), DefectSet::thesis()).unwrap();
//! // Scenario 1 ends in an early termination and vehicle-level goal-2
//! // violations with no 2A coverage (false negatives).
//! assert!(report.terminated_early);
//! ```

pub mod catalog;
pub mod corpus;
pub mod fleet;
pub mod grid;
pub mod mega;
pub mod runner;
pub mod tables;

pub use catalog::{scenario, Scenario};
pub use fleet::FleetWorkload;
pub use grid::GridCell;
pub use mega::MegaCell;
pub use runner::{run, ScenarioReport};
