//! Scenario × defect sweep grids: the batch-parallel evaluation axis.
//!
//! A [`GridCell`] names one (scenario, defect configuration) pair; the
//! grid builders produce cell vectors for [`esafe_harness::Sweep`] to
//! fan across cores. Because every vehicle run is fully deterministic,
//! the parallel sweep is bit-identical to the serial one — which the
//! workspace's determinism tests pin.

use crate::catalog;
use crate::runner;
use esafe_harness::{
    ExperimentError, Sweep, SweepAggregate, SweepReport, SweepStats, DEFAULT_BATCH_WIDTH,
};
use esafe_vehicle::config::DefectSet;
use esafe_vehicle::substrate::{VehicleFamily, VehicleSubstrate};

/// One cell of a scenario × defect grid.
#[derive(Debug, Clone)]
pub struct GridCell {
    /// Scenario number, 1–10.
    pub scenario: u8,
    /// The defect configuration's label (e.g. `"thesis (all)"`).
    pub config: String,
    /// The defect configuration.
    pub defects: DefectSet,
}

/// The defect-ablation axis: the fixed system, the thesis's full defect
/// population, and every single-defect configuration.
pub fn ablation_configs() -> Vec<(String, DefectSet)> {
    let mut configs = vec![
        ("none".to_owned(), DefectSet::none()),
        ("thesis (all)".to_owned(), DefectSet::thesis()),
    ];
    configs.extend(
        DefectSet::singles()
            .into_iter()
            .map(|(name, set)| (name.to_owned(), set)),
    );
    configs
}

/// The cells of `scenarios` × `configs`, scenario-major.
pub fn cells(scenarios: &[u8], configs: &[(String, DefectSet)]) -> Vec<GridCell> {
    scenarios
        .iter()
        .flat_map(|&scenario| {
            configs.iter().map(move |(config, defects)| GridCell {
                scenario,
                config: config.clone(),
                defects: *defects,
            })
        })
        .collect()
}

/// The full evaluation grid: all ten scenarios × the full ablation axis
/// (140 monitored runs).
pub fn full_grid() -> Vec<GridCell> {
    let scenarios: Vec<u8> = (1..=10).collect();
    cells(&scenarios, &ablation_configs())
}

/// The substrate for one grid cell, self-compiling its monitors per run
/// (the per-run-compile reference path the template-backed sweep is
/// golden-tested against; vehicle runs are deterministic, so the
/// per-cell seed is unused).
pub fn build_cell(cell: &GridCell, _seed: u64) -> VehicleSubstrate {
    let scenario = catalog::scenario(cell.scenario);
    runner::substrate(&scenario, cell.defects)
        .with_label(format!("scenario-{}/{}", cell.scenario, cell.config))
}

/// The substrate for one grid cell within a shared [`VehicleFamily`]:
/// the cell reuses the family's signal table and compile-once suite
/// template.
pub fn build_cell_in(family: &VehicleFamily, cell: &GridCell, _seed: u64) -> VehicleSubstrate {
    let scenario = catalog::scenario(cell.scenario);
    runner::substrate_in(family, &scenario, cell.defects)
        .with_label(format!("scenario-{}/{}", cell.scenario, cell.config))
}

/// A sweep over the given cells under the thesis timing policy.
pub fn sweep(grid: Vec<GridCell>) -> Sweep<GridCell> {
    Sweep::new(grid).with_config(runner::thesis_config())
}

/// Runs a grid in parallel across cores on the **batched** engine:
/// suite compilation amortized through one [`VehicleFamily`] built for
/// the whole sweep, and same-template cells grouped into lock-step
/// stripes whose monitors evaluate through one slab-of-lanes pass per
/// tick ([`Sweep::run_batched`]). Reports are bit-identical to the
/// scalar paths — pinned against [`run_serial`] and the per-run-compile
/// reference by the workspace's golden sweep tests.
///
/// # Errors
///
/// Returns the first failing cell's [`ExperimentError`].
pub fn run_parallel(grid: Vec<GridCell>) -> Result<SweepReport, ExperimentError> {
    run_parallel_timed(grid).map(|(report, _)| report)
}

/// [`run_parallel`] plus the sweep's [`SweepStats`] (setup/tick split,
/// suite amortization counters) for the benchmark trajectory.
///
/// # Errors
///
/// Returns the first failing cell's [`ExperimentError`].
pub fn run_parallel_timed(
    grid: Vec<GridCell>,
) -> Result<(SweepReport, SweepStats), ExperimentError> {
    let family = VehicleFamily::default();
    sweep(grid).run_batched_timed(
        |cell, seed| build_cell_in(&family, cell, seed),
        DEFAULT_BATCH_WIDTH,
    )
}

/// Runs a grid serially (the reference the parallel path must match),
/// on the same family-amortized path as [`run_parallel`].
///
/// # Errors
///
/// Returns the first failing cell's [`ExperimentError`].
pub fn run_serial(grid: Vec<GridCell>) -> Result<SweepReport, ExperimentError> {
    let family = VehicleFamily::default();
    sweep(grid).run_serial(|cell, seed| build_cell_in(&family, cell, seed))
}

/// Runs a grid in parallel as a **batched streaming reduction**: cells
/// group into lock-step stripes (one batched monitor pass per tick for
/// a whole stripe), and every stripe's reports fold into a per-worker
/// partial aggregate the moment the stripe completes, so no report is
/// retained and memory stays O(workers × stripe width) no matter how
/// many cells the grid holds. The aggregate is identical to
/// `run_parallel(..).aggregate()` (pinned by the workspace's regression
/// tests); use the collect-all paths when per-run detail is needed.
/// This is the engine behind `repro --grid` and `repro --mega-grid`.
///
/// # Errors
///
/// Returns the first failing cell's [`ExperimentError`], by cell order.
pub fn run_parallel_aggregate(
    grid: Vec<GridCell>,
) -> Result<(SweepAggregate, SweepStats), ExperimentError> {
    let family = VehicleFamily::default();
    sweep(grid).run_aggregate_batched(
        |cell, seed| build_cell_in(&family, cell, seed),
        DEFAULT_BATCH_WIDTH,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grid_is_scenarios_times_configs() {
        let grid = full_grid();
        assert_eq!(grid.len(), 10 * 14);
        assert_eq!(grid[0].scenario, 1);
        assert_eq!(grid[0].config, "none");
        assert_eq!(grid[14].scenario, 2);
    }

    #[test]
    fn family_grid_matches_per_run_compile_grid() {
        // The template-amortized sweep (the production path) against the
        // reference sweep that recompiles every cell's suite.
        let grid = cells(
            &[1, 2],
            &[
                ("none".to_owned(), DefectSet::none()),
                ("thesis (all)".to_owned(), DefectSet::thesis()),
            ],
        );
        let (amortized, stats) = run_parallel_timed(grid.clone()).unwrap();
        let reference = sweep(grid).run(build_cell).unwrap();
        assert_eq!(amortized, reference, "template path must be bit-identical");
        assert_eq!(stats.suites_compiled, 0, "no cell may recompile the suite");
        assert_eq!(stats.suites_instantiated + stats.suites_reused, 4);
    }

    #[test]
    fn parallel_grid_matches_serial_grid() {
        // A small but representative slice: two early-terminating
        // scenarios × three configs, parallel vs serial.
        let configs = vec![
            ("none".to_owned(), DefectSet::none()),
            ("thesis (all)".to_owned(), DefectSet::thesis()),
            (
                "ca_intermittent_braking".to_owned(),
                DefectSet {
                    ca_intermittent_braking: true,
                    ..DefectSet::none()
                },
            ),
        ];
        let grid = cells(&[1, 2], &configs);
        let parallel = run_parallel(grid.clone()).unwrap();
        let serial = run_serial(grid).unwrap();
        assert_eq!(parallel, serial, "rayon path must be bit-identical");
        assert_eq!(parallel.aggregate(), serial.aggregate());
        assert_eq!(parallel.runs.len(), 6);
    }
}
