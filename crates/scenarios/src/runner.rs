//! Scenario execution: simulate, monitor, record, classify.
//!
//! Since the harness refactor this module is a thin adapter: it lifts a
//! [`Scenario`] into a [`VehicleSubstrate`] and runs it through the
//! substrate-generic [`esafe_harness::Experiment`] loop, which owns the
//! tick schedule (derived from the simulator's own tick period), the
//! early-termination grace window, series sampling, and the
//! hit/false-positive/false-negative correlation.

use crate::catalog::Scenario;
use esafe_harness::{Experiment, ExperimentConfig, ExperimentError, RunReport};
use esafe_monitor::{CorrelationReport, ViolationInterval};
use esafe_sim::SeriesLog;
use esafe_vehicle::config::DefectSet;
use esafe_vehicle::substrate::{VehicleFamily, VehicleSubstrate};
use serde::{Deserialize, Serialize};

/// The timing policy of the thesis's vehicle evaluation: the CarSim
/// environment aborts ~100 ms after a collision (§5.4.1), and detections
/// are correlated within a ±250 ms window covering command-to-plant
/// actuation lag.
pub fn thesis_config() -> ExperimentConfig {
    ExperimentConfig {
        post_terminal_ms: 100,
        correlation_window_ms: 250,
    }
}

/// The outcome of one monitored scenario run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Scenario number.
    pub number: u8,
    /// The defect configuration used.
    pub defects: DefectSet,
    /// The timing policy the run was classified under.
    pub config: ExperimentConfig,
    /// Wall-clock end of the run, s.
    pub end_time_s: f64,
    /// Whether the run aborted before its 20 s schedule.
    pub terminated_early: bool,
    /// Whether a forward or rear collision occurred.
    pub collision: bool,
    /// Violations per monitor id (empty lists omitted).
    pub violations: Vec<(String, Vec<ViolationInterval>)>,
    /// Hit / false-positive / false-negative classification.
    pub correlation: CorrelationReport,
    /// Recorded figure series.
    #[serde(skip)]
    pub series: SeriesLog,
}

impl ScenarioReport {
    /// Violation intervals for a monitor id.
    pub fn violations_for(&self, id: &str) -> &[ViolationInterval] {
        self.violations
            .iter()
            .find(|(mid, _)| mid == id)
            .map(|(_, v)| v.as_slice())
            .unwrap_or(&[])
    }

    /// Whether any monitor recorded a violation.
    pub fn any_violations(&self) -> bool {
        !self.violations.is_empty()
    }

    /// Wraps a generic harness report into the scenario-numbered form.
    pub fn from_run(number: u8, defects: DefectSet, run: RunReport) -> Self {
        ScenarioReport {
            number,
            defects,
            config: run.config,
            end_time_s: run.end_time_s,
            terminated_early: run.terminated_early,
            collision: run.terminal_event.is_some(),
            violations: run.violations,
            correlation: run.correlation,
            series: run.series,
        }
    }
}

/// Builds the substrate configuration for a scenario × defect cell. The
/// substrate self-compiles its monitor suite per run — the reference
/// path; sweeps amortize compilation with [`substrate_in`].
pub fn substrate(scenario: &Scenario, defects: DefectSet) -> VehicleSubstrate {
    configure(
        VehicleSubstrate::new(defects, scenario.scene, scenario.script.clone()),
        scenario,
    )
}

/// Builds the substrate for a scenario × defect cell **within a
/// family**: the cell shares the family's signal table and compile-once
/// suite template, so a sweep pays formula compilation once instead of
/// once per cell. Reports are bit-identical to [`substrate`]'s.
pub fn substrate_in(
    family: &VehicleFamily,
    scenario: &Scenario,
    defects: DefectSet,
) -> VehicleSubstrate {
    configure(
        family.substrate(defects, scenario.scene, scenario.script.clone()),
        scenario,
    )
}

fn configure(substrate: VehicleSubstrate, scenario: &Scenario) -> VehicleSubstrate {
    substrate
        .with_duration_s(scenario.duration_s)
        .with_tracked(scenario.figure_signals.iter().copied())
        .with_label(format!("scenario-{}", scenario.number))
}

/// Runs a scenario under the given defect configuration through the
/// generic experiment harness.
///
/// # Errors
///
/// Returns [`ExperimentError`] if a goal formula fails to compile or
/// references a missing signal (a programming error caught by tests).
pub fn run(scenario: &Scenario, defects: DefectSet) -> Result<ScenarioReport, ExperimentError> {
    let substrate = substrate(scenario, defects);
    let report = Experiment::new(&substrate)
        .with_config(thesis_config())
        .run()?;
    Ok(ScenarioReport::from_run(scenario.number, defects, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn scenario_1_reproduces_the_thesis_structure() {
        let report = run(&catalog::scenario(1), DefectSet::thesis()).unwrap();
        // Early termination shortly after the collision, ≈12.5–13 s.
        assert!(report.terminated_early, "must abort early");
        assert!(report.collision);
        assert!(
            report.end_time_s > 11.0 && report.end_time_s < 14.5,
            "terminated at {}",
            report.end_time_s
        );
        // Vehicle-level accel and jerk goals fire…
        assert!(!report.violations_for("1").is_empty(), "goal 1 must fire");
        assert!(!report.violations_for("2").is_empty(), "goal 2 must fire");
        // …with no Arbiter-level coverage (false negatives).
        assert!(report.violations_for("1A").is_empty());
        let row1 = report.correlation.for_goal("1").unwrap();
        assert!(row1.false_negatives > 0, "goal 1 shows residual emergence");
        // The PA defect shows up as subgoal false positives.
        assert!(!report.violations_for("4B:PA").is_empty());
        assert!(!report.violations_for("2B:PA").is_empty());
        // CA's cancel edge violates its jerk-request subgoal.
        assert!(!report.violations_for("2B:CA").is_empty());
    }

    #[test]
    fn scenario_1_fixed_system_is_clean() {
        let report = run(&catalog::scenario(1), DefectSet::none()).unwrap();
        assert!(!report.collision);
        assert!(!report.terminated_early);
        assert!(
            report.violations.is_empty(),
            "fixed system must be violation-free, got {:?}",
            report
                .violations
                .iter()
                .map(|(id, v)| (id.clone(), v.len()))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn scenario_2_adds_goal_3_and_terminates_earlier() {
        let r1 = run(&catalog::scenario(1), DefectSet::thesis()).unwrap();
        let r2 = run(&catalog::scenario(2), DefectSet::thesis()).unwrap();
        assert!(!r2.violations_for("3").is_empty(), "goal 3 must fire");
        assert!(!r2.violations_for("3A").is_empty());
        assert!(
            r2.end_time_s < r1.end_time_s,
            "scenario 2 terminates earlier ({} vs {})",
            r2.end_time_s,
            r1.end_time_s
        );
    }

    #[test]
    fn scenario_10_ghost_acceleration_is_a_hit() {
        let report = run(&catalog::scenario(10), DefectSet::thesis()).unwrap();
        assert!(!report.violations_for("4").is_empty(), "goal 4 must fire");
        assert!(!report.violations_for("4A").is_empty());
        assert!(!report.violations_for("4B:ACC").is_empty());
        let row = report.correlation.for_goal("4").unwrap();
        assert!(row.hits > 0);
    }

    #[test]
    fn scenario_reports_round_trip_through_serde() {
        let report = run(&catalog::scenario(9), DefectSet::thesis()).unwrap();
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: ScenarioReport = serde_json::from_str(&json).unwrap();
        // The series log is `#[serde(skip)]`: it deserializes to its
        // `Default` and everything else round-trips exactly.
        assert_eq!(back.series, SeriesLog::default());
        let stripped = ScenarioReport {
            series: SeriesLog::default(),
            ..report
        };
        assert_eq!(back, stripped);
    }
}
