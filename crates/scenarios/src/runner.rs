//! Scenario execution: simulate, monitor, record, classify.

use crate::catalog::Scenario;
use esafe_monitor::{CorrelationReport, MonitorError, ViolationInterval};
use esafe_sim::SeriesLog;
use esafe_vehicle::builder::build_vehicle;
use esafe_vehicle::config::{DefectSet, VehicleParams};
use esafe_vehicle::{probe, signals as sig};
use serde::{Deserialize, Serialize};

/// How long after a collision the simulation environment keeps producing
/// states before aborting ("early termination", thesis §5.4.1: violations
/// were observed up to ~100 ms before the termination point).
const POST_IMPACT_TICKS: u64 = 100;

/// Correlation window for hit/false-positive/false-negative
/// classification, ticks. Covers the actuation lag between a command-level
/// subgoal violation and its plant-level consequence.
pub const CORRELATION_WINDOW_TICKS: u64 = 250;

/// The outcome of one monitored scenario run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Scenario number.
    pub number: u8,
    /// The defect configuration used.
    pub defects: DefectSet,
    /// Wall-clock end of the run, s.
    pub end_time_s: f64,
    /// Whether the run aborted before its 20 s schedule.
    pub terminated_early: bool,
    /// Whether a forward or rear collision occurred.
    pub collision: bool,
    /// Violations per monitor id (empty lists omitted).
    pub violations: Vec<(String, Vec<ViolationInterval>)>,
    /// Hit / false-positive / false-negative classification.
    pub correlation: CorrelationReport,
    /// Recorded figure series.
    #[serde(skip)]
    pub series: SeriesLog,
}

impl ScenarioReport {
    /// Violation intervals for a monitor id.
    pub fn violations_for(&self, id: &str) -> &[ViolationInterval] {
        self.violations
            .iter()
            .find(|(mid, _)| mid == id)
            .map(|(_, v)| v.as_slice())
            .unwrap_or(&[])
    }

    /// Whether any monitor recorded a violation.
    pub fn any_violations(&self) -> bool {
        !self.violations.is_empty()
    }
}

/// Runs a scenario under the given defect configuration.
///
/// The loop advances the 1 kHz simulation, derives the probe signals,
/// feeds all 49 monitors, records figure series, and applies the thesis's
/// early-termination behaviour (the CarSim run aborts shortly after a
/// collision).
///
/// # Errors
///
/// Returns [`MonitorError`] if a goal formula references a missing signal
/// (a programming error caught by tests).
pub fn run(scenario: &Scenario, defects: DefectSet) -> Result<ScenarioReport, MonitorError> {
    let params = VehicleParams::default();
    let mut suite = esafe_vehicle::goals::build_suite(&params)
        .expect("goal tables compile");
    let mut sim = build_vehicle(params, defects, scenario.scene, scenario.script.clone());
    let mut series = SeriesLog::new();

    let total_ticks = (scenario.duration_s * 1000.0) as u64;
    let mut impact_tick: Option<u64> = None;
    let mut terminated_early = false;
    let mut collision = false;

    for tick in 1..=total_ticks {
        sim.step();
        let derived = probe::derive(sim.state(), &params);
        suite.observe(&derived)?;
        let t = sim.seconds();
        for name in &scenario.figure_signals {
            series.sample(name, t, &derived);
        }

        let hit_front = derived
            .get(sig::COLLISION)
            .and_then(|v| v.as_bool())
            .unwrap_or(false);
        let hit_rear = derived
            .get(sig::REAR_COLLISION)
            .and_then(|v| v.as_bool())
            .unwrap_or(false);
        if (hit_front || hit_rear) && impact_tick.is_none() {
            impact_tick = Some(tick);
            collision = true;
        }
        if let Some(it) = impact_tick {
            if tick >= it + POST_IMPACT_TICKS {
                terminated_early = tick < total_ticks;
                break;
            }
        }
    }
    suite.finish();

    let mut violations = Vec::new();
    for (id, _, _) in suite.location_matrix() {
        let v = suite.violations(&id).unwrap_or(&[]);
        if !v.is_empty() {
            violations.push((id, v.to_vec()));
        }
    }

    Ok(ScenarioReport {
        number: scenario.number,
        defects,
        end_time_s: sim.seconds(),
        terminated_early,
        collision,
        violations,
        correlation: suite.correlate(CORRELATION_WINDOW_TICKS),
        series,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn scenario_1_reproduces_the_thesis_structure() {
        let report = run(&catalog::scenario(1), DefectSet::thesis()).unwrap();
        // Early termination shortly after the collision, ≈12.5–13 s.
        assert!(report.terminated_early, "must abort early");
        assert!(report.collision);
        assert!(
            report.end_time_s > 11.0 && report.end_time_s < 14.5,
            "terminated at {}",
            report.end_time_s
        );
        // Vehicle-level accel and jerk goals fire…
        assert!(!report.violations_for("1").is_empty(), "goal 1 must fire");
        assert!(!report.violations_for("2").is_empty(), "goal 2 must fire");
        // …with no Arbiter-level coverage (false negatives).
        assert!(report.violations_for("1A").is_empty());
        let row1 = report.correlation.for_goal("1").unwrap();
        assert!(row1.false_negatives > 0, "goal 1 shows residual emergence");
        // The PA defect shows up as subgoal false positives.
        assert!(!report.violations_for("4B:PA").is_empty());
        assert!(!report.violations_for("2B:PA").is_empty());
        // CA's cancel edge violates its jerk-request subgoal.
        assert!(!report.violations_for("2B:CA").is_empty());
    }

    #[test]
    fn scenario_1_fixed_system_is_clean() {
        let report = run(&catalog::scenario(1), DefectSet::none()).unwrap();
        assert!(!report.collision);
        assert!(!report.terminated_early);
        assert!(
            report.violations.is_empty(),
            "fixed system must be violation-free, got {:?}",
            report
                .violations
                .iter()
                .map(|(id, v)| (id.clone(), v.len()))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn scenario_2_adds_goal_3_and_terminates_earlier() {
        let r1 = run(&catalog::scenario(1), DefectSet::thesis()).unwrap();
        let r2 = run(&catalog::scenario(2), DefectSet::thesis()).unwrap();
        assert!(!r2.violations_for("3").is_empty(), "goal 3 must fire");
        assert!(!r2.violations_for("3A").is_empty());
        assert!(
            r2.end_time_s < r1.end_time_s,
            "scenario 2 terminates earlier ({} vs {})",
            r2.end_time_s,
            r1.end_time_s
        );
    }

    #[test]
    fn scenario_10_ghost_acceleration_is_a_hit() {
        let report = run(&catalog::scenario(10), DefectSet::thesis()).unwrap();
        assert!(!report.violations_for("4").is_empty(), "goal 4 must fire");
        assert!(!report.violations_for("4A").is_empty());
        assert!(!report.violations_for("4B:ACC").is_empty());
        let row = report.correlation.for_goal("4").unwrap();
        assert!(row.hits > 0);
    }
}
