//! The fleet-service workload: many concurrent elevator runs streamed
//! through the [`esafe_serve`] monitor service.
//!
//! A [`FleetWorkload`] records one healthy elevator run once and then
//! fans it out as any number of concurrent [`ReplaySource`] streams —
//! each starting at its own offset into the shared trace, so the
//! shard's lanes carry *different* signal histories without the
//! benchmark paying for per-stream simulation or producer threads. The
//! serve benchmark (`repro --serve-bench`) drives a thousand of these
//! through one shard worker.

use esafe_elevator::faults::ElevatorFaults;
use esafe_elevator::{build_elevator, ElevatorFamily};
use esafe_logic::{Frame, SignalTable};
use esafe_monitor::SuiteTemplate;
use esafe_serve::{FaultPlan, FaultySource, ReplaySource};
use std::sync::Arc;

/// A shared recorded run plus the compiled goal suite of its family —
/// everything a fleet of replay streams needs.
#[derive(Debug, Clone)]
pub struct FleetWorkload {
    family: ElevatorFamily,
    trace: Arc<Vec<Frame>>,
}

impl FleetWorkload {
    /// Records `trace_ticks` of a healthy elevator run (fixed seed, no
    /// faults) against the default [`ElevatorFamily`].
    ///
    /// # Panics
    ///
    /// Panics if `trace_ticks` is zero.
    pub fn elevator(trace_ticks: u64) -> Self {
        assert!(trace_ticks > 0, "an empty trace cannot be replayed");
        let family = ElevatorFamily::default();
        let mut sim = build_elevator(
            *family.params(),
            ElevatorFaults::none(),
            7,
            family.table(),
            family.sigs(),
        );
        let mut trace = Vec::with_capacity(trace_ticks as usize);
        for _ in 0..trace_ticks {
            sim.step();
            trace.push(sim.state().clone());
        }
        FleetWorkload {
            family,
            trace: Arc::new(trace),
        }
    }

    /// The fleet's shared signal table.
    pub fn table(&self) -> &Arc<SignalTable> {
        self.family.table()
    }

    /// The compiled Chapter 4 goal suite, ready to load into a service.
    pub fn template(&self) -> &Arc<SuiteTemplate> {
        self.family.template()
    }

    /// The recorded trace length in ticks.
    pub fn trace_ticks(&self) -> usize {
        self.trace.len()
    }

    /// One fleet member: a replay of `ticks` frames starting `index`
    /// ticks into the shared trace (wrapping), so concurrent members
    /// observe staggered histories.
    pub fn stream(&self, index: usize, ticks: u64) -> ReplaySource {
        ReplaySource::new(Arc::clone(&self.trace), index, ticks)
    }

    /// One *misbehaving* fleet member: the same staggered replay
    /// wrapped in a seeded [`FaultPlan`] — stalls, mid-run disconnects,
    /// corrupt frames, duplicated or reordered ticks — deterministic in
    /// (`seed`, `index`). The faulty-fleet benchmark (`repro
    /// --serve-bench --faulty`) mixes these into a healthy fleet to
    /// measure monitoring throughput under hostile load.
    pub fn faulty_stream(&self, index: usize, ticks: u64, seed: u64) -> FaultySource<ReplaySource> {
        let plan = FaultPlan::seeded(seed.wrapping_add(index as u64), ticks.max(1));
        FaultySource::new(self.stream(index, ticks), plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esafe_serve::{Poll, StreamSource};

    #[test]
    fn workload_records_once_and_fans_out() {
        let workload = FleetWorkload::elevator(50);
        assert_eq!(workload.trace_ticks(), 50);
        // Collect the full trace through an offset-0 member.
        let mut base = Vec::new();
        let mut member = workload.stream(0, 50);
        let mut f = workload.table().frame();
        while member.poll_frame(&mut f) == Poll::Frame {
            base.push(f.clone());
        }
        assert_eq!(base.len(), 50);
        // A staggered member replays the same trace shifted (wrapping):
        // frame i of stream(k) is trace frame (k + i) mod len.
        let mut b = workload.stream(10, 55);
        let mut got = 0usize;
        while b.poll_frame(&mut f) == Poll::Frame {
            assert_eq!(f, base[(10 + got) % 50], "offset replay at tick {got}");
            got += 1;
        }
        assert_eq!(got, 55, "a member may outlive one trace lap");
    }

    #[test]
    fn faulty_members_are_deterministic_and_terminate() {
        let workload = FleetWorkload::elevator(30);
        let mut f = workload.table().frame();
        for index in 0..8 {
            let mut a = workload.faulty_stream(index, 40, 42);
            let mut b = workload.faulty_stream(index, 40, 42);
            let mut polls = 0u64;
            loop {
                let pa = a.poll_frame(&mut f);
                let mut g = workload.table().frame();
                let pb = b.poll_frame(&mut g);
                assert_eq!(pa, pb, "member {index} must replay identically");
                match pa {
                    Poll::Frame => assert_eq!(f, g, "member {index} frames must match"),
                    Poll::Pending => {}
                    Poll::End | Poll::Corrupt(_) => break,
                }
                polls += 1;
                assert!(polls < 10_000, "member {index} must terminate");
            }
        }
    }
}
