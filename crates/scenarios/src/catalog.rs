//! The ten driving scenarios (thesis §5.4).
//!
//! Each scenario is "representative of real driver behaviors, both those
//! the driver is expected to do regularly … and those the driver might do
//! in error", scheduled for 20 s of simulation at 1 kHz.

use esafe_vehicle::driver::DriverAction;
use esafe_vehicle::dynamics::{Scene, SceneObject};
use serde::Serialize;

/// A scenario descriptor.
#[derive(Debug, Clone, Serialize)]
pub struct Scenario {
    /// Scenario number, 1–10.
    pub number: u8,
    /// The thesis's §5.4 title.
    pub title: String,
    /// What the thesis observed in this scenario (used in reports).
    pub expected: String,
    /// Scene objects.
    pub scene: Scene,
    /// Scheduled driver/HMI actions.
    pub script: Vec<(f64, DriverAction)>,
    /// Scheduled run length, s (every scenario is 20 s in the thesis).
    pub duration_s: f64,
    /// Signals to record for this scenario's figures.
    pub figure_signals: Vec<&'static str>,
}

fn enable(f: &str, b: bool) -> DriverAction {
    DriverAction::Enable(f.into(), b)
}

fn engage(f: &str, b: bool) -> DriverAction {
    DriverAction::Engage(f.into(), b)
}

/// Returns scenario `n` (1–10).
///
/// # Panics
///
/// Panics if `n` is outside 1–10.
pub fn scenario(n: u8) -> Scenario {
    let stopped_ahead_20m = Scene {
        lead: Some(SceneObject::constant(20.0, 0.0)),
        rear: None,
    };
    let slow_ahead = Scene {
        lead: Some(SceneObject::constant(30.0, 6.0)),
        rear: None,
    };
    let stopped_behind = Scene {
        lead: None,
        rear: Some(SceneObject::constant(10.0, 0.0)),
    };
    let stopped_ahead_3m = Scene {
        lead: Some(SceneObject::constant(3.0, 0.0)),
        rear: None,
    };

    match n {
        1 => Scenario {
            number: 1,
            title: "CA enabled, ACC enabled, stopped vehicle in path".into(),
            expected: "CA begins a braking action, cancels it briefly, resumes \
                       (Fig. 5.2); PA requests acceleration without being \
                       enabled (Fig. 5.3); goals 1 and 2 violated shortly \
                       before early termination with no corresponding \
                       1A/1B violations."
                .into(),
            scene: stopped_ahead_20m,
            script: vec![
                (0.3, enable("CA", true)),
                (0.3, enable("ACC", true)),
                (1.0, DriverAction::Throttle(0.10)),
            ],
            duration_s: 20.0,
            figure_signals: vec![
                "ca.accel_request",
                "pa.accel_request",
                "host.accel",
                "host.jerk",
                "host.speed",
                "arbiter.accel_cmd",
            ],
        },
        2 => Scenario {
            number: 2,
            title: "CA engaged, ACC enabled, PA enabled, stopped vehicle in path".into(),
            expected: "The driver engages PA just after CA begins its hard \
                       brake; steering arbitration (reversed priority) \
                       forwards PA's request while CA remains selected \
                       (Fig. 5.4); goals 1–3 violated; terminates earlier \
                       than scenario 1."
                .into(),
            scene: stopped_ahead_20m,
            script: vec![
                (0.3, enable("CA", true)),
                (0.3, enable("ACC", true)),
                (1.0, DriverAction::Throttle(0.10)),
                (12.46, enable("PA", true)),
                (12.46, engage("PA", true)),
            ],
            duration_s: 20.0,
            figure_signals: vec![
                "arbiter.accel_cmd",
                "ca.accel_request",
                "ca.selected",
                "pa.accel_request",
                "host.speed",
            ],
        },
        3 => Scenario {
            number: 3,
            title: "CA engaged, ACC enabled, throttle pedal applied, stopped \
                    vehicle in path"
                .into(),
            expected: "CA engages against the throttle but brakes \
                       intermittently and the host strikes the parked \
                       vehicle (Fig. 5.5); ACC sends requests controlling \
                       to 0 m/s although not engaged (Fig. 5.6)."
                .into(),
            scene: stopped_ahead_20m,
            script: vec![
                (0.3, enable("CA", true)),
                (0.3, enable("ACC", true)),
                (0.5, DriverAction::Throttle(0.25)),
            ],
            duration_s: 20.0,
            figure_signals: vec![
                "ca.accel_request",
                "acc.accel_request",
                "host.speed",
                "host.accel",
                "world.lead_distance",
            ],
        },
        4 => Scenario {
            number: 4,
            title: "throttle pedal applied, ACC engaged, CA enabled, slow \
                    vehicle in path"
                .into(),
            expected: "ACC engaged under an applied throttle briefly takes \
                       control, loses it until the pedal is released, then \
                       decelerates and accelerates following the slow lead \
                       (Figs. 5.7, 5.8); goal-5 violations."
                .into(),
            scene: slow_ahead,
            script: vec![
                (0.3, enable("CA", true)),
                (0.3, enable("ACC", true)),
                (0.5, DriverAction::Throttle(0.40)),
                (2.0, engage("ACC", true)),
                (2.0, DriverAction::SetSpeed(20.0)),
                (8.0, DriverAction::Throttle(0.0)),
            ],
            duration_s: 20.0,
            figure_signals: vec![
                "acc.accel_request",
                "acc.accel_request_rate",
                "acc.active",
                "arbiter.accel_source",
                "host.speed",
                "arbiter.accel_cmd",
            ],
        },
        5 => Scenario {
            number: 5,
            title: "throttle pedal applied, ACC engaged, CA enabled, brake \
                    pedal applied, slow vehicle in path"
                .into(),
            expected: "After the driver releases the throttle, ACC gains \
                       control of acceleration 0.101 s later (Fig. 5.9)."
                .into(),
            scene: slow_ahead,
            script: vec![
                (0.3, enable("CA", true)),
                (0.3, enable("ACC", true)),
                (0.5, DriverAction::Throttle(0.40)),
                (2.0, engage("ACC", true)),
                (2.0, DriverAction::SetSpeed(20.0)),
                (6.0, DriverAction::Brake(0.30)),
                (7.0, DriverAction::Brake(0.0)),
                (10.0, DriverAction::Throttle(0.0)),
            ],
            duration_s: 20.0,
            figure_signals: vec![
                "driver.throttle",
                "acc.active",
                "arbiter.accel_source",
                "arbiter.accel_cmd",
                "host.speed",
            ],
        },
        6 => Scenario {
            number: 6,
            title: "throttle pedal applied, ACC engaged, CA enabled, LCA \
                    engaged, slow vehicle in path"
                .into(),
            expected: "LCA gains control 1 ms after enable but its steering \
                       requests never change the steering command \
                       (Fig. 5.10); the vehicle's speed integrates through \
                       zero and goes negative with LCA and ACC still active \
                       and selected (Fig. 5.11); goal-8 violations."
                .into(),
            scene: Scene {
                // The lead brakes to a halt at 6 s: the ACC follow law's
                // target goes negative once the gap closes below the
                // minimum headway, and with the reverse inhibit missing
                // the host is driven backward (Fig. 5.11).
                lead: Some(SceneObject::stopping(12.0, 1.5, 6.0)),
                rear: None,
            },
            script: vec![
                (0.3, enable("CA", true)),
                (0.3, enable("ACC", true)),
                (0.3, enable("LCA", true)),
                (0.5, DriverAction::Throttle(0.30)),
                (2.0, engage("ACC", true)),
                (2.0, DriverAction::SetSpeed(15.0)),
                (4.0, DriverAction::Throttle(0.0)),
                (5.0, engage("LCA", true)),
            ],
            duration_s: 20.0,
            figure_signals: vec![
                "lca.active",
                "lca.steering_request",
                "arbiter.steering_cmd",
                "host.speed",
                "acc.selected",
                "lca.selected",
                "arbiter.accel_cmd",
            ],
        },
        7 => Scenario {
            number: 7,
            title: "in reverse, RCA enabled, stopped vehicle in path".into(),
            expected: "RCA is enabled from the start but never engages; the \
                       host backs into the stopped vehicle behind it \
                       (Fig. 5.12) with no goal violation — the hazard is \
                       invisible to the monitors (total emergence)."
                .into(),
            scene: stopped_behind,
            script: vec![
                (0.2, DriverAction::Gear("R".into())),
                (0.3, enable("RCA", true)),
                (1.0, DriverAction::Throttle(0.15)),
            ],
            duration_s: 20.0,
            figure_signals: vec![
                "rca.active",
                "rca.enabled",
                "host.speed",
                "world.rear_distance",
            ],
        },
        8 => Scenario {
            number: 8,
            title: "in reverse, ACC engaged, stopped vehicle in path".into(),
            expected: "ACC accepts engagement in reverse at 2.0 s and is \
                       selected as the acceleration source at 2.05 s \
                       (Fig. 5.13); goal-8 violations at vehicle, Arbiter, \
                       and ACC levels."
                .into(),
            scene: stopped_behind,
            script: vec![
                (0.2, DriverAction::Gear("R".into())),
                (0.3, enable("ACC", true)),
                (0.5, DriverAction::Throttle(0.20)),
                (1.8, DriverAction::Throttle(0.0)),
                (1.85, DriverAction::Brake(0.30)),
                (2.0, engage("ACC", true)),
                (2.0, DriverAction::SetSpeed(10.0)),
                (2.6, DriverAction::Brake(0.0)),
            ],
            duration_s: 20.0,
            figure_signals: vec![
                "acc.active",
                "acc.selected",
                "arbiter.accel_source",
                "arbiter.accel_cmd",
                "host.speed",
            ],
        },
        9 => Scenario {
            number: 9,
            title: "stopped, PA engaged, stopped vehicle in path".into(),
            expected: "PA is selected as the acceleration source, but the \
                       forwarded command does not equal PA's request \
                       (Fig. 5.14); subgoal 4B fires at PA with no parent \
                       violation (false positive — redundant coverage \
                       masked the defect)."
                .into(),
            scene: stopped_ahead_3m,
            script: vec![(0.3, enable("PA", true)), (2.0, engage("PA", true))],
            duration_s: 20.0,
            figure_signals: vec![
                "pa.accel_request",
                "pa.selected",
                "arbiter.accel_cmd",
                "arbiter.accel_source",
                "host.speed",
            ],
        },
        10 => Scenario {
            number: 10,
            title: "stopped, ACC engaged, stopped vehicle in path".into(),
            expected: "The driver attempts to engage ACC at 2.0 s; ACC never \
                       becomes active nor is it selected to control \
                       steering, yet the vehicle begins to accelerate \
                       (Fig. 5.15); goal 4 and subgoals 4A/4B fire."
                .into(),
            scene: stopped_ahead_20m,
            script: vec![
                (0.3, enable("ACC", true)),
                (2.0, engage("ACC", true)),
                (2.0, DriverAction::SetSpeed(10.0)),
            ],
            duration_s: 20.0,
            figure_signals: vec![
                "acc.active",
                "acc.accel_request",
                "arbiter.accel_cmd",
                "arbiter.accel_source",
                "host.speed",
                "host.accel",
            ],
        },
        other => panic!("scenario number {other} out of range 1–10"),
    }
}

/// All ten scenarios.
pub fn all() -> Vec<Scenario> {
    (1..=10).map(scenario).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_scenarios_with_twenty_second_schedules() {
        let scenarios = all();
        assert_eq!(scenarios.len(), 10);
        for s in &scenarios {
            assert_eq!(s.duration_s, 20.0);
            assert!(!s.figure_signals.is_empty());
            assert!(!s.expected.is_empty());
        }
    }

    #[test]
    fn reverse_scenarios_select_reverse_gear() {
        for n in [7, 8] {
            let s = scenario(n);
            assert!(
                s.script
                    .iter()
                    .any(|(_, a)| matches!(a, DriverAction::Gear(g) if g == "R")),
                "scenario {n} must shift to reverse"
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn scenario_zero_panics() {
        let _ = scenario(0);
    }
}
