//! Trace-corpus workloads: record evaluation grids into an on-disk
//! [`TraceCorpusWriter`] archive, and re-monitor the archive offline
//! with a *named goal suite* — including one the corpus was never
//! recorded with.
//!
//! This is the operational payoff of treating safety as an emergent,
//! re-checkable property: a changed safety requirement (`strict`) is
//! re-evaluated over the recorded evidence base at batched-observe
//! speed with zero simulation cost, and the result is pinned
//! bit-identical to running the new suite live over the same cells
//! ([`live_reference`]).
//!
//! # The suite registry
//!
//! * `thesis` — the goal suites exactly as the substrates compile them
//!   live ([`VehicleParams::default`] / [`ElevatorParams::default`]
//!   thresholds). Replaying a corpus with `thesis` reproduces the
//!   recording sweep's aggregate.
//! * `strict` — the same goal *structure* with tightened monitoring
//!   thresholds: vehicle `accel_limit` and `jerk_limit` halved,
//!   elevator stop and emergency-brake margins doubled. Strict
//!   parameters feed **only** goal-suite construction, never the
//!   simulator: the vehicle's arbiter and feature rate-limiters read
//!   `VehicleParams` too, so handing strict parameters to
//!   [`VehicleFamily::new`] would change the dynamics being judged
//!   rather than the judgement.

use crate::{grid, mega, runner};
use esafe_elevator::ElevatorParams;
use esafe_harness::corpus::CorpusStats;
use esafe_harness::{
    replay_corpus, CorpusError, CorpusReplay, SweepAggregate, SweepStats, TraceCorpusReader,
    TraceCorpusWriter,
};
use esafe_logic::SignalTable;
use esafe_monitor::MonitorSuite;
use esafe_vehicle::{VehicleFamily, VehicleParams};
use std::path::Path;
use std::sync::Arc;

/// The registered re-monitoring suite names, in display order.
pub const SUITE_NAMES: &[&str] = &["thesis", "strict"];

/// The tightened vehicle **monitoring** thresholds of the `strict`
/// suite. Only ever passed to [`esafe_vehicle::goals::build_suite`] —
/// see the [module docs](self) for why these must not reach the
/// simulator.
pub fn strict_vehicle_params() -> VehicleParams {
    let d = VehicleParams::default();
    VehicleParams {
        accel_limit: d.accel_limit / 2.0,
        jerk_limit: d.jerk_limit / 2.0,
        ..d
    }
}

/// The tightened elevator **monitoring** thresholds of the `strict`
/// suite (doubled hoistway margins).
pub fn strict_elevator_params() -> ElevatorParams {
    let d = ElevatorParams::default();
    ElevatorParams {
        stop_margin_m: d.stop_margin_m * 2.0,
        ebrake_margin_m: d.ebrake_margin_m * 2.0,
        ..d
    }
}

/// Builds the named goal suite for a substrate, compiled against the
/// given signal table (live table or a corpus reader's re-interned
/// table — goal formulas resolve signals by name).
///
/// # Errors
///
/// [`CorpusError::Replay`] for an unknown suite or substrate name, or
/// a formula that fails to compile against the table.
pub fn suite_for(
    suite: &str,
    substrate: &str,
    table: &Arc<SignalTable>,
) -> Result<MonitorSuite, CorpusError> {
    let compile_err = |e: esafe_logic::EvalError| {
        CorpusError::Replay(format!("suite `{suite}` failed to compile: {e}"))
    };
    match (suite, substrate) {
        ("thesis", "vehicle") => {
            esafe_vehicle::goals::build_suite(table, &VehicleParams::default()).map_err(compile_err)
        }
        ("strict", "vehicle") => {
            esafe_vehicle::goals::build_suite(table, &strict_vehicle_params()).map_err(compile_err)
        }
        ("thesis", "elevator") => {
            esafe_elevator::goals::build_suite(table, &ElevatorParams::default())
                .map_err(compile_err)
        }
        ("strict", "elevator") => {
            esafe_elevator::goals::build_suite(table, &strict_elevator_params())
                .map_err(compile_err)
        }
        ("thesis" | "strict", other) => Err(CorpusError::Replay(format!(
            "no registered suite for substrate `{other}`"
        ))),
        (other, _) => Err(CorpusError::Replay(format!(
            "unknown suite `{other}` (registered: {})",
            SUITE_NAMES.join(", ")
        ))),
    }
}

/// Records a scenario × defect grid into a fresh corpus at `dir`,
/// returning the recording sweep's aggregate and stats plus the
/// committed corpus totals. Runs serially (the corpus is append-only);
/// the aggregate is bit-identical to the parallel sweep's.
///
/// # Errors
///
/// Fails if `dir` already holds a corpus, or on the first failing run
/// or I/O failure.
pub fn record_grid_corpus(
    dir: impl AsRef<Path>,
    cells: Vec<grid::GridCell>,
) -> Result<(SweepAggregate, SweepStats, CorpusStats), CorpusError> {
    let sweep = grid::sweep(cells);
    let mut writer = TraceCorpusWriter::create(dir, runner::thesis_config())?;
    let family = VehicleFamily::default();
    let (aggregate, stats) = sweep.run_aggregate_recorded(
        |cell, seed| grid::build_cell_in(&family, cell, seed),
        &mut writer,
    )?;
    let corpus = writer.finish()?;
    Ok((aggregate, stats, corpus))
}

/// Records a mega-grid cell list into a fresh corpus at `dir` — the
/// `repro --mega-grid --record-corpus` workload.
///
/// # Errors
///
/// As [`record_grid_corpus`].
pub fn record_mega_corpus(
    dir: impl AsRef<Path>,
    cells: Vec<mega::MegaCell>,
) -> Result<(SweepAggregate, SweepStats, CorpusStats), CorpusError> {
    let sweep = mega::mega_sweep(cells);
    let mut writer = TraceCorpusWriter::create(dir, runner::thesis_config())?;
    let family = VehicleFamily::default();
    let (aggregate, stats) = sweep.run_aggregate_recorded(
        |cell, seed| mega::build_mega_cell_in(&family, cell, seed),
        &mut writer,
    )?;
    let corpus = writer.finish()?;
    Ok((aggregate, stats, corpus))
}

/// Re-monitors the corpus at `dir` with the named suite in stripes of
/// `width` lanes, returning the replay outcome alongside the reader
/// (for stats and recovery reporting).
///
/// # Errors
///
/// Fails on an unopenable corpus, an unknown suite, or a replay
/// failure.
pub fn replay_with_suite(
    dir: impl AsRef<Path>,
    suite: &str,
    width: usize,
) -> Result<(CorpusReplay, TraceCorpusReader), CorpusError> {
    let reader = TraceCorpusReader::open(dir)?;
    let replay = replay_corpus(&reader, width, |substrate, table| {
        suite_for(suite, substrate, table)
    })?;
    Ok((replay, reader))
}

/// The live reference for corpus replay over a grid subset: runs the
/// cells live (default dynamics, frame recording on) and scores each
/// run with the named suite, producing the aggregate
/// `--replay-corpus --suite <name>` must reproduce bit for bit.
///
/// # Errors
///
/// Fails on the first failing run or a suite failure.
pub fn live_reference(
    cells: Vec<grid::GridCell>,
    suite: &str,
) -> Result<(SweepAggregate, SweepStats), CorpusError> {
    let sweep = grid::sweep(cells);
    let family = VehicleFamily::default();
    sweep.run_aggregate_rescored(
        |cell, seed| grid::build_cell_in(&family, cell, seed),
        |substrate, table| suite_for(suite, substrate, table),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_params_tighten_only_monitoring_thresholds() {
        let thesis = VehicleParams::default();
        let strict = strict_vehicle_params();
        assert_eq!(strict.accel_limit, thesis.accel_limit / 2.0);
        assert_eq!(strict.jerk_limit, thesis.jerk_limit / 2.0);
        // Everything the simulator reads is untouched.
        assert_eq!(strict.accel_tau_s, thesis.accel_tau_s);
        assert_eq!(strict.max_brake_decel, thesis.max_brake_decel);
        assert_eq!(strict.ca_margin_m, thesis.ca_margin_m);
    }

    #[test]
    fn the_registry_rejects_unknown_names() {
        let family = VehicleFamily::default();
        assert!(suite_for("thesis", "vehicle", family.table()).is_ok());
        assert!(suite_for("strict", "vehicle", family.table()).is_ok());
        assert!(matches!(
            suite_for("lenient", "vehicle", family.table()),
            Err(CorpusError::Replay(_))
        ));
        assert!(matches!(
            suite_for("thesis", "submarine", family.table()),
            Err(CorpusError::Replay(_))
        ));
    }

    #[test]
    fn record_then_replay_round_trips_the_recording_aggregate() {
        let mut dir = std::env::temp_dir();
        dir.push(format!("esafe-scen-corpus-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let cells = grid::cells(&[1, 4], &grid::ablation_configs()[..2]);
        let (recorded, _, stats) = record_grid_corpus(&dir, cells).unwrap();
        assert_eq!(stats.runs, 4);

        let (replay, reader) = replay_with_suite(&dir, "thesis", 3).unwrap();
        assert!(!reader.recovered());
        assert_eq!(replay.aggregate, recorded);

        let (strict, _) = replay_with_suite(&dir, "strict", 3).unwrap();
        assert!(
            strict.aggregate != recorded,
            "the strict suite must judge the same runs differently"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
