//! Table and figure rendering: the thesis's Tables D.1–D.11 (goal and
//! subgoal violations per scenario), Table 5.3 (monitoring locations), and
//! ASCII renderings of the Figure 5.2–5.15 time series.

use crate::runner::ScenarioReport;
use esafe_vehicle::config::VehicleParams;
use std::fmt::Write as _;

/// Renders the Table D.`<n>` analogue: every goal/subgoal violation of a
/// scenario run with onset time and duration, followed by the
/// hit/false-positive/false-negative classification.
pub fn violation_table(report: &ScenarioReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Goal and subgoal violations for Scenario {} \
         (end {:.3} s{}{})",
        report.number,
        report.end_time_s,
        if report.terminated_early {
            ", terminated early"
        } else {
            ""
        },
        if report.collision { ", collision" } else { "" },
    );
    let _ = writeln!(
        out,
        "{:<8} {:>10} {:>12} {:>10}",
        "monitor", "onset (s)", "duration (ms)", "count"
    );
    if report.violations.is_empty() {
        let _ = writeln!(out, "(no violations detected)");
    }
    for (id, intervals) in &report.violations {
        for v in intervals {
            let _ = writeln!(
                out,
                "{:<8} {:>10.3} {:>12} {:>10}",
                id,
                v.start_tick as f64 / 1000.0,
                v.duration_ticks(),
                intervals.len()
            );
        }
    }
    let _ = writeln!(
        out,
        "\nClassification (window ±{} ms):",
        report.config.correlation_window_ms
    );
    let _ = write!(out, "{}", report.correlation);
    out
}

/// Renders the Table 5.3 analogue: the goal/subgoal monitoring-location
/// matrix.
pub fn monitoring_matrix() -> String {
    let params = VehicleParams::default();
    let (table, _sigs) = esafe_vehicle::signals::vehicle_table();
    let suite = esafe_vehicle::goals::build_suite(&table, &params).expect("goal tables compile");
    let locations = ["Vehicle", "Arbiter", "CA", "RCA", "PA", "LCA", "ACC"];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Monitoring locations of goals and subgoals (Table 5.3)"
    );
    let _ = write!(out, "{:<8}", "id");
    for l in locations {
        let _ = write!(out, " {l:>8}");
    }
    let _ = writeln!(out);
    for (id, _parent, location) in suite.location_matrix() {
        let _ = write!(out, "{id:<8}");
        for l in locations {
            let mark = if location.as_str() == l { "X" } else { "" };
            let _ = write!(out, " {mark:>8}");
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders one recorded series as an ASCII strip chart (the terminal
/// analogue of a thesis figure).
pub fn ascii_figure(report: &ScenarioReport, signal: &str, width: usize) -> String {
    let points = report.series.downsample(signal, width.max(8));
    let mut out = String::new();
    let _ = writeln!(out, "Scenario {}: {}", report.number, signal);
    if points.is_empty() {
        let _ = writeln!(out, "(no data recorded)");
        return out;
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for (_, v) in &points {
        lo = lo.min(*v);
        hi = hi.max(*v);
    }
    if (hi - lo).abs() < 1e-12 {
        hi = lo + 1.0;
    }
    const ROWS: usize = 12;
    let mut grid = vec![vec![b' '; points.len()]; ROWS];
    for (col, (_, v)) in points.iter().enumerate() {
        let frac = (v - lo) / (hi - lo);
        let row = ((1.0 - frac) * (ROWS - 1) as f64).round() as usize;
        grid[row.min(ROWS - 1)][col] = b'*';
    }
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{hi:>9.2}")
        } else if i == ROWS - 1 {
            format!("{lo:>9.2}")
        } else {
            " ".repeat(9)
        };
        let _ = writeln!(out, "{label} |{}", String::from_utf8_lossy(row));
    }
    let t0 = points.first().map(|(t, _)| *t).unwrap_or(0.0);
    let t1 = points.last().map(|(t, _)| *t).unwrap_or(0.0);
    let _ = writeln!(out, "{:>9} +{}", "", "-".repeat(points.len()));
    let _ = writeln!(out, "{:>10} t = {t0:.3} s … {t1:.3} s", "");
    out
}

/// Exports a report's series as JSON (for external plotting).
///
/// # Errors
///
/// Returns a `serde_json::Error` if serialization fails (never expected
/// for these types).
pub fn series_json(report: &ScenarioReport) -> Result<String, serde_json::Error> {
    let pairs: Vec<(String, Vec<(f64, f64)>)> = report
        .series
        .names()
        .map(|n| {
            (
                n.to_owned(),
                report.series.series(n).unwrap_or(&[]).to_vec(),
            )
        })
        .collect();
    serde_json::to_string_pretty(&pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{catalog, runner};
    use esafe_vehicle::config::DefectSet;

    #[test]
    fn matrix_has_all_rows_and_columns() {
        let m = monitoring_matrix();
        assert!(m.contains("Vehicle"));
        assert!(m.contains("1B:CA"));
        assert!(m.contains("9B:ACC"));
        assert_eq!(m.lines().count(), 2 + 49);
    }

    #[test]
    fn violation_table_and_figures_render_for_scenario_9() {
        let report = runner::run(&catalog::scenario(9), DefectSet::thesis()).unwrap();
        let table = violation_table(&report);
        assert!(table.contains("Scenario 9"));
        assert!(table.contains("Classification"));
        let fig = ascii_figure(&report, "pa.accel_request", 60);
        assert!(fig.contains("*"));
        let json = series_json(&report).unwrap();
        assert!(json.contains("pa.accel_request"));
    }

    #[test]
    fn missing_signal_renders_placeholder() {
        let report = runner::run(&catalog::scenario(9), DefectSet::none()).unwrap();
        let fig = ascii_figure(&report, "not.a.signal", 40);
        assert!(fig.contains("no data"));
    }
}
