//! The mega-grid: a ≥10⁴-cell scenario-*parameter* sweep.
//!
//! The thesis's evaluation grid is ten hand-written scenarios × fourteen
//! defect configurations — 140 cells. Kopetz's system-of-systems
//! analysis (arXiv:1311.3629) argues that emergent-safety claims only
//! become trustworthy when they are swept across large spaces of
//! constituent-system parameter combinations, not a handful of curated
//! points. This module opens that workload: instead of enumerating
//! scenarios, it enumerates the *physics* of scenario 1's shape — a
//! host vehicle creeping toward traffic under driver throttle with CA
//! and ACC enabled — across
//!
//! * **headways** — the lead object's initial gap (how much room the
//!   collision-avoidance margin has to work with),
//! * **lead speeds** — parked through rolling traffic (whether the gap
//!   closes, holds, or opens),
//! * **throttle levels** — how hard the scripted driver pushes into the
//!   gap, and
//! * **defect configurations** — the full ablation axis (fixed system,
//!   thesis population, every single defect).
//!
//! The default space ([`mega_grid`]) is 12 × 8 × 8 × 14 = **10 752
//! monitored runs**, swept through the batched striped engine with
//! O(workers × stripe width) memory ([`run_mega_aggregate`]) — the
//! `repro --mega-grid` workload, summarized in `BENCH_megagrid.json`
//! (schema v6). [`run_mega_aggregate_checkpointed`] is the durable
//! form behind `repro --mega-grid --checkpoint`: fault-isolated cells
//! plus a crash-recoverable [`SweepJournal`] so an interrupted sweep
//! resumes bit-identically.

use crate::runner;
use esafe_harness::{ExperimentError, Quarantine, Sweep, SweepAggregate, SweepJournal, SweepStats};
use esafe_vehicle::config::DefectSet;
use esafe_vehicle::driver::DriverAction;
use esafe_vehicle::dynamics::{Scene, SceneObject};
use esafe_vehicle::substrate::{VehicleFamily, VehicleSubstrate};

use crate::grid::ablation_configs;

/// Scheduled length of every mega-grid run, seconds. Shorter than the
/// thesis's 20 s scenarios: the parameterized approach either collides
/// or stabilizes within a few seconds, and the point of the mega grid
/// is coverage of the parameter space, not long tails.
pub const MEGA_DURATION_S: f64 = 5.0;

/// One cell of the mega grid: a fully parameterized single-lead
/// approach under one defect configuration.
#[derive(Debug, Clone)]
pub struct MegaCell {
    /// Lead object's initial bumper-to-bumper gap, m.
    pub headway_m: f64,
    /// Lead object's (constant) speed, m/s — 0.0 is parked traffic.
    pub lead_speed: f64,
    /// Scripted driver throttle demand, 0–1.
    pub throttle: f64,
    /// The defect configuration's label (e.g. `"thesis (all)"`).
    pub config: String,
    /// The defect configuration.
    pub defects: DefectSet,
}

/// The default headway axis, m (12 points, 4–80 m: from inside the CA
/// engagement envelope to far beyond it).
pub fn headways() -> Vec<f64> {
    vec![
        4.0, 6.0, 8.0, 10.0, 14.0, 18.0, 24.0, 30.0, 38.0, 48.0, 62.0, 80.0,
    ]
}

/// The default lead-speed axis, m/s (8 points, parked to rolling).
pub fn lead_speeds() -> Vec<f64> {
    vec![0.0, 0.5, 1.0, 2.0, 3.0, 4.5, 6.0, 9.0]
}

/// The default throttle axis (8 points, creep to hard push).
pub fn throttles() -> Vec<f64> {
    vec![0.05, 0.08, 0.12, 0.16, 0.20, 0.26, 0.33, 0.40]
}

/// The cells of `headways × lead_speeds × throttles × configs`,
/// headway-major (the order only matters for stable labels and seeds —
/// the aggregate is order-independent).
pub fn mega_cells(
    headways: &[f64],
    lead_speeds: &[f64],
    throttles: &[f64],
    configs: &[(String, DefectSet)],
) -> Vec<MegaCell> {
    let mut cells =
        Vec::with_capacity(headways.len() * lead_speeds.len() * throttles.len() * configs.len());
    for &headway_m in headways {
        for &lead_speed in lead_speeds {
            for &throttle in throttles {
                for (config, defects) in configs {
                    cells.push(MegaCell {
                        headway_m,
                        lead_speed,
                        throttle,
                        config: config.clone(),
                        defects: *defects,
                    });
                }
            }
        }
    }
    cells
}

/// The full default mega grid: 12 headways × 8 lead speeds × 8
/// throttle levels × the 14-configuration ablation axis = 10 752 cells.
pub fn mega_grid() -> Vec<MegaCell> {
    mega_cells(
        &headways(),
        &lead_speeds(),
        &throttles(),
        &ablation_configs(),
    )
}

/// The substrate for one mega cell within a shared [`VehicleFamily`]:
/// scenario 1's shape (enable CA and ACC, then push the throttle into
/// the gap), parameterized by the cell's axes. No tracked signals — the
/// mega grid streams aggregates, not figure series.
pub fn build_mega_cell_in(family: &VehicleFamily, cell: &MegaCell, _seed: u64) -> VehicleSubstrate {
    let scene = Scene {
        lead: Some(SceneObject::constant(cell.headway_m, cell.lead_speed)),
        rear: None,
    };
    let script = vec![
        (0.3, DriverAction::Enable("CA".into(), true)),
        (0.3, DriverAction::Enable("ACC".into(), true)),
        (1.0, DriverAction::Throttle(cell.throttle)),
    ];
    family
        .substrate(cell.defects, scene, script)
        .with_duration_s(MEGA_DURATION_S)
        .with_label(format!(
            "mega/h{}/v{}/t{}/{}",
            cell.headway_m, cell.lead_speed, cell.throttle, cell.config
        ))
}

/// A sweep over mega cells under the thesis timing policy.
pub fn mega_sweep(cells: Vec<MegaCell>) -> Sweep<MegaCell> {
    Sweep::new(cells).with_config(runner::thesis_config())
}

/// Runs a mega grid as a **batched streaming reduction** with the given
/// stripe width: one [`VehicleFamily`] compiled for the whole sweep,
/// same-configuration cells ticking in lock-step stripes, per-worker
/// partial aggregates merged at join — O(workers × width) memory
/// however many cells the space holds.
///
/// # Errors
///
/// Returns the first failing cell's [`ExperimentError`], by cell order.
pub fn run_mega_aggregate(
    cells: Vec<MegaCell>,
    width: usize,
) -> Result<(SweepAggregate, SweepStats), ExperimentError> {
    let family = VehicleFamily::default();
    mega_sweep(cells)
        .run_aggregate_batched(|cell, seed| build_mega_cell_in(&family, cell, seed), width)
}

/// Creates a fresh checkpoint journal describing a mega sweep over
/// `cells` — the header pins the sweep's base seed, cell count, and
/// timing policy, so [`run_mega_aggregate_checkpointed`] can refuse a
/// journal that belongs to a different sweep.
///
/// # Errors
///
/// Fails if `path` already exists (resume with [`SweepJournal::open`])
/// or on I/O failure.
pub fn create_mega_journal(
    path: impl AsRef<std::path::Path>,
    cells: &[MegaCell],
) -> Result<SweepJournal, ExperimentError> {
    SweepJournal::create(path, 0, cells.len(), runner::thesis_config())
}

/// [`run_mega_aggregate`] with durable progress: completed cells are
/// appended to `journal` as they finish, cells the journal already
/// holds are skipped and replayed from their records, and the final
/// aggregate is bit-identical to an uninterrupted run. Fault isolation
/// is on (the default [`Quarantine`]): a panicking or erroring cell is
/// recorded in [`SweepAggregate::quarantined`] instead of aborting a
/// multi-hour sweep.
///
/// # Errors
///
/// Returns [`ExperimentError::Journal`] on a journal/sweep mismatch or
/// journal I/O failure.
pub fn run_mega_aggregate_checkpointed(
    cells: Vec<MegaCell>,
    width: usize,
    journal: &mut SweepJournal,
) -> Result<(SweepAggregate, SweepStats), ExperimentError> {
    let family = VehicleFamily::default();
    mega_sweep(cells)
        .with_quarantine(Quarantine::default())
        .run_aggregate_batched_checkpointed(
            |cell, seed| build_mega_cell_in(&family, cell, seed),
            width,
            journal,
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use esafe_harness::Substrate;

    #[test]
    fn default_mega_grid_opens_at_least_ten_thousand_cells() {
        let grid = mega_grid();
        assert!(
            grid.len() >= 10_000,
            "mega grid must open a ≥10⁴-cell space, got {}",
            grid.len()
        );
        assert_eq!(grid.len(), 12 * 8 * 8 * 14);
        // Labels are unique, so every cell is a distinct configuration.
        let family = VehicleFamily::default();
        let mut labels: Vec<String> = grid
            .iter()
            .map(|c| build_mega_cell_in(&family, c, 0).label())
            .collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), grid.len(), "labels must be unique");
    }

    #[test]
    fn mega_slice_batched_aggregate_matches_scalar() {
        // A small but mixed slice: short headways collide under the
        // thesis defects, long ones stay clean.
        let configs = vec![
            ("none".to_owned(), DefectSet::none()),
            ("thesis (all)".to_owned(), DefectSet::thesis()),
        ];
        let cells = mega_cells(&[6.0, 30.0], &[0.0, 3.0], &[0.12, 0.33], &configs);
        assert_eq!(cells.len(), 16);
        let family = VehicleFamily::default();
        let build = |cell: &MegaCell, seed: u64| build_mega_cell_in(&family, cell, seed);
        let (scalar, _) = mega_sweep(cells.clone())
            .run_aggregate_serial(build)
            .unwrap();
        let (batched, stats) = run_mega_aggregate(cells, 4).unwrap();
        assert_eq!(batched, scalar, "batched mega sweep diverged from scalar");
        assert_eq!(stats.runs(), 16);
        assert_eq!(stats.suites_compiled, 0, "family sweeps never recompile");
        assert!(
            batched.terminal_events > 0,
            "short headways under the thesis defects must collide"
        );
        assert!(
            batched.terminal_events < batched.runs,
            "long clean headways must survive"
        );
        // Sanity: a mega substrate runs the advertised schedule.
        let sub = build_mega_cell_in(&family, &mega_grid()[0], 0);
        assert_eq!(sub.duration_ms(), (MEGA_DURATION_S * 1000.0) as u64);
    }

    #[test]
    fn mega_checkpointed_resume_matches_the_uninterrupted_aggregate() {
        let configs = vec![
            ("none".to_owned(), DefectSet::none()),
            ("thesis (all)".to_owned(), DefectSet::thesis()),
        ];
        let cells = mega_cells(&[6.0, 30.0], &[0.0], &[0.12, 0.33], &configs);
        assert_eq!(cells.len(), 8);
        let (reference, _) = run_mega_aggregate(cells.clone(), 2).unwrap();

        let mut path = std::env::temp_dir();
        path.push(format!("esafe-mega-journal-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let mut journal = create_mega_journal(&path, &cells).unwrap();
        let (checkpointed, stats) =
            run_mega_aggregate_checkpointed(cells.clone(), 2, &mut journal).unwrap();
        assert_eq!(
            checkpointed, reference,
            "checkpointing must not change results"
        );
        assert_eq!(stats.runs(), 8);
        assert_eq!(journal.completed_cells(), 8);
        drop(journal);

        // A resume of the completed journal replays everything from
        // records: same aggregate, zero cells re-run.
        let mut reopened = SweepJournal::open(&path).unwrap();
        let (resumed, resumed_stats) =
            run_mega_aggregate_checkpointed(cells, 2, &mut reopened).unwrap();
        assert_eq!(resumed, reference);
        assert_eq!(resumed_stats.runs(), 0);
        std::fs::remove_file(&path).unwrap();
    }
}
