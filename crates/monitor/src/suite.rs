//! Monitor suites: goal and subgoal monitors bound to architecture
//! locations (thesis Table 5.3).

use crate::correlate::{CorrelationReport, CorrelationRow, SubgoalStats};
use crate::violation::{IntervalTracker, ViolationInterval};
use esafe_logic::{CompiledMonitor, EvalError, Expr, Frame, SignalTable};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Where in the architecture a monitor runs (e.g. `Vehicle`, `Arbiter`,
/// `CA`). Purely a label; the state samples are shared.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Location(String);

impl Location {
    /// Creates a location label.
    pub fn new(name: impl Into<String>) -> Self {
        Location(name.into())
    }

    /// The label text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Location {
    fn from(s: &str) -> Self {
        Location::new(s)
    }
}

/// An evaluation error raised by a specific monitor in a suite.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorError {
    /// The failing monitor's id.
    pub monitor_id: String,
    /// The underlying evaluation error.
    pub source: EvalError,
}

impl fmt::Display for MonitorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "monitor `{}`: {}", self.monitor_id, self.source)
    }
}

impl std::error::Error for MonitorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

#[derive(Debug, Clone)]
struct Entry {
    id: String,
    parent: Option<String>,
    location: Location,
    expr: Expr,
    monitor: CompiledMonitor,
    tracker: IntervalTracker,
}

/// A set of goal and subgoal monitors fed from a shared [`Frame`] stream.
///
/// The suite is bound to one [`SignalTable`] at construction; every goal
/// formula is compiled against it
/// ([`CompiledMonitor::compile_in`]), so all variable references resolve
/// to [`SignalId`](esafe_logic::SignalId)s once and
/// [`MonitorSuite::observe`] is pure id-indexed slot access.
///
/// Goals are top-level entries; subgoals name their parent goal. After the
/// run, [`MonitorSuite::correlate`] produces the hit / false-positive /
/// false-negative classification of §5.1.2.
#[derive(Debug, Clone)]
pub struct MonitorSuite {
    table: Arc<SignalTable>,
    entries: Vec<Entry>,
}

impl MonitorSuite {
    /// Creates an empty suite over the given signal namespace.
    pub fn new(table: Arc<SignalTable>) -> Self {
        MonitorSuite {
            table,
            entries: Vec::new(),
        }
    }

    /// The signal namespace the suite's monitors are compiled against.
    pub fn table(&self) -> &Arc<SignalTable> {
        &self.table
    }

    /// Adds a system-level goal monitor.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] if the goal contains future operators or
    /// references a signal outside the suite's table.
    pub fn add_goal(
        &mut self,
        id: impl Into<String>,
        location: Location,
        expr: Expr,
    ) -> Result<(), EvalError> {
        self.add_entry(id.into(), None, location, expr)
    }

    /// Adds a subgoal monitor under the parent goal `parent_id`.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] if the goal contains future operators or
    /// references a signal outside the suite's table.
    ///
    /// # Panics
    ///
    /// Panics if `parent_id` has not been added yet — the hierarchy is
    /// declared top-down.
    pub fn add_subgoal(
        &mut self,
        id: impl Into<String>,
        parent_id: impl Into<String>,
        location: Location,
        expr: Expr,
    ) -> Result<(), EvalError> {
        let parent_id = parent_id.into();
        assert!(
            self.entries
                .iter()
                .any(|e| e.parent.is_none() && e.id == parent_id),
            "parent goal `{parent_id}` must be added before its subgoals"
        );
        self.add_entry(id.into(), Some(parent_id), location, expr)
    }

    fn add_entry(
        &mut self,
        id: String,
        parent: Option<String>,
        location: Location,
        expr: Expr,
    ) -> Result<(), EvalError> {
        let monitor = CompiledMonitor::compile_in(&expr, &self.table)?;
        self.entries.push(Entry {
            id,
            parent,
            location,
            expr,
            monitor,
            tracker: IntervalTracker::new(),
        });
        Ok(())
    }

    /// Feeds one frame to every monitor — the per-tick hot path: no
    /// string lookups, no allocation.
    ///
    /// # Errors
    ///
    /// Returns a [`MonitorError`] naming the failing monitor.
    pub fn observe(&mut self, frame: &Frame) -> Result<(), MonitorError> {
        for e in &mut self.entries {
            let ok = e.monitor.observe(frame).map_err(|err| MonitorError {
                monitor_id: e.id.clone(),
                source: err,
            })?;
            e.tracker.record(ok);
        }
        Ok(())
    }

    /// Closes any open violation intervals (call once after the run).
    pub fn finish(&mut self) {
        for e in &mut self.entries {
            e.tracker.finish();
        }
    }

    /// Violation intervals recorded for monitor `id` (goals and subgoals).
    pub fn violations(&self, id: &str) -> Option<&[ViolationInterval]> {
        self.entries
            .iter()
            .find(|e| e.id == id)
            .map(|e| e.tracker.intervals())
    }

    /// Ids of all top-level goals, in insertion order.
    pub fn goal_ids(&self) -> Vec<&str> {
        self.entries
            .iter()
            .filter(|e| e.parent.is_none())
            .map(|e| e.id.as_str())
            .collect()
    }

    /// Ids of the subgoals of `goal_id`, in insertion order.
    pub fn subgoal_ids(&self, goal_id: &str) -> Vec<&str> {
        self.entries
            .iter()
            .filter(|e| e.parent.as_deref() == Some(goal_id))
            .map(|e| e.id.as_str())
            .collect()
    }

    /// The `(location, formula)` of a monitor.
    pub fn describe(&self, id: &str) -> Option<(&Location, &Expr)> {
        self.entries
            .iter()
            .find(|e| e.id == id)
            .map(|e| (&e.location, &e.expr))
    }

    /// The monitoring-location matrix: `(id, parent, location)` rows in
    /// insertion order (the shape of thesis Table 5.3).
    pub fn location_matrix(&self) -> Vec<(String, Option<String>, String)> {
        self.entries
            .iter()
            .map(|e| (e.id.clone(), e.parent.clone(), e.location.to_string()))
            .collect()
    }

    /// Classifies detections per §5.1.2 with the given correlation
    /// `window` (ticks of slack between subgoal and goal violations).
    pub fn correlate(&self, window: u64) -> CorrelationReport {
        let mut rows = Vec::new();
        for goal in self.entries.iter().filter(|e| e.parent.is_none()) {
            let goal_violations = goal.tracker.intervals();
            let subs: Vec<&Entry> = self
                .entries
                .iter()
                .filter(|e| e.parent.as_deref() == Some(goal.id.as_str()))
                .collect();

            let mut hits = 0usize;
            let mut false_negatives = 0usize;
            for gv in goal_violations {
                let covered = subs.iter().any(|s| {
                    s.tracker
                        .intervals()
                        .iter()
                        .any(|sv| sv.overlaps(gv, window))
                });
                if covered {
                    hits += 1;
                } else {
                    false_negatives += 1;
                }
            }

            let mut false_positives = 0usize;
            let mut per_subgoal = Vec::new();
            for s in &subs {
                let mut sub_fp = 0usize;
                let sub_viol = s.tracker.intervals();
                for sv in sub_viol {
                    let matched = goal_violations.iter().any(|gv| gv.overlaps(sv, window));
                    if !matched {
                        sub_fp += 1;
                    }
                }
                false_positives += sub_fp;
                per_subgoal.push(SubgoalStats {
                    subgoal_id: s.id.clone(),
                    location: s.location.to_string(),
                    violations: sub_viol.len(),
                    false_positives: sub_fp,
                });
            }

            rows.push(CorrelationRow {
                goal_id: goal.id.clone(),
                goal_violations: goal_violations.len(),
                hits,
                false_negatives,
                false_positives,
                subgoals: per_subgoal,
            });
        }
        CorrelationReport { rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esafe_logic::parse;

    fn table() -> Arc<SignalTable> {
        let mut b = SignalTable::builder();
        b.bool("g");
        b.bool("s");
        b.finish()
    }

    fn suite() -> MonitorSuite {
        let mut m = MonitorSuite::new(table());
        m.add_goal("G", Location::new("System"), parse("g").unwrap())
            .unwrap();
        m.add_subgoal("G.A", "G", Location::new("Sub"), parse("s").unwrap())
            .unwrap();
        m
    }

    fn observe(m: &mut MonitorSuite, goal_ok: bool, sub_ok: bool) {
        let mut f = m.table().clone().frame();
        f.set_named("g", goal_ok);
        f.set_named("s", sub_ok);
        m.observe(&f).unwrap();
    }

    #[test]
    fn hit_when_goal_and_subgoal_overlap() {
        let mut m = suite();
        for (g, s) in [(true, true), (false, false), (true, true)] {
            observe(&mut m, g, s);
        }
        m.finish();
        let r = m.correlate(0);
        let row = r.for_goal("G").unwrap();
        assert_eq!(
            (row.hits, row.false_negatives, row.false_positives),
            (1, 0, 0)
        );
    }

    #[test]
    fn false_negative_when_goal_fires_alone() {
        let mut m = suite();
        for (g, s) in [(true, true), (false, true), (true, true)] {
            observe(&mut m, g, s);
        }
        m.finish();
        let r = m.correlate(0);
        let row = r.for_goal("G").unwrap();
        assert_eq!(
            (row.hits, row.false_negatives, row.false_positives),
            (0, 1, 0)
        );
    }

    #[test]
    fn false_positive_when_subgoal_fires_alone() {
        let mut m = suite();
        for (g, s) in [(true, true), (true, false), (true, true)] {
            observe(&mut m, g, s);
        }
        m.finish();
        let r = m.correlate(0);
        let row = r.for_goal("G").unwrap();
        assert_eq!(
            (row.hits, row.false_negatives, row.false_positives),
            (0, 0, 1)
        );
        assert_eq!(row.subgoals[0].false_positives, 1);
    }

    #[test]
    fn window_turns_near_miss_into_hit() {
        let mut m = suite();
        // Subgoal violated at tick 1, goal at tick 3: 1 tick apart.
        for (g, s) in [
            (true, true),
            (true, false),
            (true, true),
            (false, true),
            (true, true),
        ] {
            observe(&mut m, g, s);
        }
        m.finish();
        assert_eq!(m.correlate(0).for_goal("G").unwrap().hits, 0);
        assert_eq!(m.correlate(2).for_goal("G").unwrap().hits, 1);
        assert_eq!(m.correlate(2).for_goal("G").unwrap().false_positives, 0);
    }

    #[test]
    fn violations_and_matrix_are_reported() {
        let mut m = suite();
        observe(&mut m, false, true);
        m.finish();
        assert_eq!(m.violations("G").unwrap().len(), 1);
        assert_eq!(m.violations("G.A").unwrap().len(), 0);
        assert!(m.violations("missing").is_none());
        let matrix = m.location_matrix();
        assert_eq!(matrix.len(), 2);
        assert_eq!(matrix[1].1.as_deref(), Some("G"));
        assert_eq!(m.goal_ids(), vec!["G"]);
        assert_eq!(m.subgoal_ids("G"), vec!["G.A"]);
    }

    #[test]
    #[should_panic(expected = "must be added before")]
    fn subgoal_requires_parent() {
        let mut m = MonitorSuite::new(table());
        m.add_subgoal("X.A", "X", Location::new("L"), parse("p").unwrap())
            .unwrap();
    }

    #[test]
    fn observe_error_names_the_monitor() {
        let mut m = suite();
        let empty = m.table().clone().frame();
        let err = m.observe(&empty).unwrap_err();
        assert_eq!(err.monitor_id, "G");
        assert!(err.to_string().contains("monitor `G`"));
    }

    #[test]
    fn unknown_signal_fails_at_add_time() {
        let mut m = MonitorSuite::new(table());
        assert!(matches!(
            m.add_goal("X", Location::new("L"), parse("not_declared").unwrap()),
            Err(EvalError::UnknownSignal { .. })
        ));
    }
}
