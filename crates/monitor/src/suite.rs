//! Monitor suites: goal and subgoal monitors bound to architecture
//! locations (thesis Table 5.3).

use crate::correlate::{CorrelationReport, CorrelationRow, SubgoalStats};
use crate::violation::{IntervalTracker, ViolationInterval};
use esafe_logic::{CompiledMonitor, CompiledProgram, EvalError, Expr, Frame, SignalTable};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Where in the architecture a monitor runs (e.g. `Vehicle`, `Arbiter`,
/// `CA`). Purely a label; the state samples are shared.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Location(String);

impl Location {
    /// Creates a location label.
    pub fn new(name: impl Into<String>) -> Self {
        Location(name.into())
    }

    /// The label text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Location {
    fn from(s: &str) -> Self {
        Location::new(s)
    }
}

/// An evaluation error raised by a specific monitor in a suite.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorError {
    /// The failing monitor's id.
    pub monitor_id: String,
    /// The underlying evaluation error.
    pub source: EvalError,
}

impl fmt::Display for MonitorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "monitor `{}`: {}", self.monitor_id, self.source)
    }
}

impl std::error::Error for MonitorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// A monitor's immutable identity — id, place in the goal hierarchy,
/// architecture location, source formula. Shared by `Arc` between a
/// suite's entries and the [`SuiteTemplate`] they were instantiated
/// from, so stamping out a suite clones no strings.
#[derive(Debug)]
struct EntryMeta {
    id: String,
    parent: Option<String>,
    location: Location,
    expr: Expr,
}

#[derive(Debug, Clone)]
struct Entry {
    meta: Arc<EntryMeta>,
    monitor: CompiledMonitor,
    tracker: IntervalTracker,
}

/// A set of goal and subgoal monitors fed from a shared [`Frame`] stream.
///
/// The suite is bound to one [`SignalTable`] at construction; every goal
/// formula is compiled against it
/// ([`CompiledMonitor::compile_in`]), so all variable references resolve
/// to [`SignalId`](esafe_logic::SignalId)s once and
/// [`MonitorSuite::observe`] is pure id-indexed slot access.
///
/// Goals are top-level entries; subgoals name their parent goal. After the
/// run, [`MonitorSuite::correlate`] produces the hit / false-positive /
/// false-negative classification of §5.1.2.
#[derive(Debug, Clone)]
pub struct MonitorSuite {
    table: Arc<SignalTable>,
    entries: Vec<Entry>,
}

impl MonitorSuite {
    /// Creates an empty suite over the given signal namespace.
    pub fn new(table: Arc<SignalTable>) -> Self {
        MonitorSuite {
            table,
            entries: Vec::new(),
        }
    }

    /// The signal namespace the suite's monitors are compiled against.
    pub fn table(&self) -> &Arc<SignalTable> {
        &self.table
    }

    /// Adds a system-level goal monitor.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] if the goal contains future operators or
    /// references a signal outside the suite's table.
    pub fn add_goal(
        &mut self,
        id: impl Into<String>,
        location: Location,
        expr: Expr,
    ) -> Result<(), EvalError> {
        self.add_entry(id.into(), None, location, expr)
    }

    /// Adds a subgoal monitor under the parent goal `parent_id`.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] if the goal contains future operators or
    /// references a signal outside the suite's table.
    ///
    /// # Panics
    ///
    /// Panics if `parent_id` has not been added yet — the hierarchy is
    /// declared top-down.
    pub fn add_subgoal(
        &mut self,
        id: impl Into<String>,
        parent_id: impl Into<String>,
        location: Location,
        expr: Expr,
    ) -> Result<(), EvalError> {
        let parent_id = parent_id.into();
        assert!(
            self.entries
                .iter()
                .any(|e| e.meta.parent.is_none() && e.meta.id == parent_id),
            "parent goal `{parent_id}` must be added before its subgoals"
        );
        self.add_entry(id.into(), Some(parent_id), location, expr)
    }

    fn add_entry(
        &mut self,
        id: String,
        parent: Option<String>,
        location: Location,
        expr: Expr,
    ) -> Result<(), EvalError> {
        let monitor = CompiledMonitor::compile_in(&expr, &self.table)?;
        self.entries.push(Entry {
            meta: Arc::new(EntryMeta {
                id,
                parent,
                location,
                expr,
            }),
            monitor,
            tracker: IntervalTracker::new(),
        });
        Ok(())
    }

    /// Extracts the suite's compile-once artifacts — one shared
    /// `(meta, program)` pair per monitor — as a [`SuiteTemplate`] that
    /// stamps out fresh suites without parsing or name resolution. Cheap:
    /// every element is an `Arc` clone.
    pub fn template(&self) -> SuiteTemplate {
        SuiteTemplate {
            table: self.table.clone(),
            entries: self
                .entries
                .iter()
                .map(|e| TemplateEntry {
                    meta: Arc::clone(&e.meta),
                    program: Arc::clone(e.monitor.program()),
                })
                .collect(),
        }
    }

    /// Returns every monitor to its pre-run state: compiled programs are
    /// kept, monitor history and recorded intervals are cleared in place
    /// (retaining buffer capacity). A reset suite is observationally
    /// identical to a freshly instantiated one — the property run-context
    /// pooling relies on.
    pub fn reset(&mut self) {
        for e in &mut self.entries {
            e.monitor.reset();
            e.tracker.reset();
        }
    }

    /// Feeds one frame to every monitor — the per-tick hot path: no
    /// string lookups, no allocation, one table identity check for the
    /// whole suite.
    ///
    /// # Errors
    ///
    /// Returns a [`MonitorError`] naming the failing monitor.
    ///
    /// # Panics
    ///
    /// Panics if `frame` indexes a different table than the suite is
    /// bound to.
    pub fn observe(&mut self, frame: &Frame) -> Result<(), MonitorError> {
        assert!(
            Arc::ptr_eq(frame.table(), &self.table),
            "frame and suite must share one signal table"
        );
        for e in &mut self.entries {
            let ok = e
                .monitor
                .observe_trusted(frame)
                .map_err(|err| MonitorError {
                    monitor_id: e.meta.id.clone(),
                    source: err,
                })?;
            e.tracker.record(ok);
        }
        Ok(())
    }

    /// Closes any open violation intervals (call once after the run).
    pub fn finish(&mut self) {
        for e in &mut self.entries {
            e.tracker.finish();
        }
    }

    /// Violation intervals recorded for monitor `id` (goals and subgoals).
    pub fn violations(&self, id: &str) -> Option<&[ViolationInterval]> {
        self.entries
            .iter()
            .find(|e| e.meta.id == id)
            .map(|e| e.tracker.intervals())
    }

    /// Drains the recorded violations into owned storage: one
    /// `(id, intervals)` pair per monitor with at least one interval, in
    /// insertion order. The intervals are *moved* out of the trackers
    /// (which keep running but report empty afterwards), so report
    /// assembly copies nothing per monitor beyond the violating ids —
    /// call [`MonitorSuite::correlate`] first, since correlation reads
    /// the same intervals.
    pub fn take_violations(&mut self) -> Vec<(String, Vec<ViolationInterval>)> {
        let mut out = Vec::new();
        for e in &mut self.entries {
            let intervals = e.tracker.take_intervals();
            if !intervals.is_empty() {
                out.push((e.meta.id.clone(), intervals));
            }
        }
        out
    }

    /// Ids of all top-level goals, in insertion order.
    pub fn goal_ids(&self) -> Vec<&str> {
        self.entries
            .iter()
            .filter(|e| e.meta.parent.is_none())
            .map(|e| e.meta.id.as_str())
            .collect()
    }

    /// Ids of the subgoals of `goal_id`, in insertion order.
    pub fn subgoal_ids(&self, goal_id: &str) -> Vec<&str> {
        self.entries
            .iter()
            .filter(|e| e.meta.parent.as_deref() == Some(goal_id))
            .map(|e| e.meta.id.as_str())
            .collect()
    }

    /// The `(location, formula)` of a monitor.
    pub fn describe(&self, id: &str) -> Option<(&Location, &Expr)> {
        self.entries
            .iter()
            .find(|e| e.meta.id == id)
            .map(|e| (&e.meta.location, &e.meta.expr))
    }

    /// The monitoring-location matrix: `(id, parent, location)` rows in
    /// insertion order (the shape of thesis Table 5.3). Borrowed views —
    /// rendering or report assembly decides what to copy.
    pub fn location_matrix(&self) -> Vec<(&str, Option<&str>, &Location)> {
        self.entries
            .iter()
            .map(|e| {
                (
                    e.meta.id.as_str(),
                    e.meta.parent.as_deref(),
                    &e.meta.location,
                )
            })
            .collect()
    }

    /// Classifies detections per §5.1.2 with the given correlation
    /// `window` (ticks of slack between subgoal and goal violations).
    pub fn correlate(&self, window: u64) -> CorrelationReport {
        let mut rows = Vec::new();
        for goal in self.entries.iter().filter(|e| e.meta.parent.is_none()) {
            let goal_violations = goal.tracker.intervals();
            let subs: Vec<&Entry> = self
                .entries
                .iter()
                .filter(|e| e.meta.parent.as_deref() == Some(goal.meta.id.as_str()))
                .collect();

            let mut hits = 0usize;
            let mut false_negatives = 0usize;
            for gv in goal_violations {
                let covered = subs.iter().any(|s| {
                    s.tracker
                        .intervals()
                        .iter()
                        .any(|sv| sv.overlaps(gv, window))
                });
                if covered {
                    hits += 1;
                } else {
                    false_negatives += 1;
                }
            }

            let mut false_positives = 0usize;
            let mut per_subgoal = Vec::new();
            for s in &subs {
                let mut sub_fp = 0usize;
                let sub_viol = s.tracker.intervals();
                for sv in sub_viol {
                    let matched = goal_violations.iter().any(|gv| gv.overlaps(sv, window));
                    if !matched {
                        sub_fp += 1;
                    }
                }
                false_positives += sub_fp;
                per_subgoal.push(SubgoalStats {
                    subgoal_id: s.meta.id.clone(),
                    location: s.meta.location.to_string(),
                    violations: sub_viol.len(),
                    false_positives: sub_fp,
                });
            }

            rows.push(CorrelationRow {
                goal_id: goal.meta.id.clone(),
                goal_violations: goal_violations.len(),
                hits,
                false_negatives,
                false_positives,
                subgoals: per_subgoal,
            });
        }
        CorrelationReport { rows }
    }
}

/// The compile-once form of a [`MonitorSuite`]: every goal/subgoal
/// formula of a substrate *family* compiled against the family's shared
/// [`SignalTable`], held as `Arc`-shared immutable programs.
///
/// Building a suite parses and resolves ~`O(formula size)` work per
/// monitor; a sweep that rebuilt its suite per cell paid that ×cells.
/// A template is built **once per sweep** (typically via
/// [`MonitorSuite::template`] on the first suite compiled) and
/// [`SuiteTemplate::instantiate`] stamps out a per-cell suite in
/// O(monitors): per monitor, two `Arc` clones, a `memcpy` of the
/// temporal state cells, and an empty interval tracker.
///
/// An instantiated suite is observationally identical to one compiled
/// from scratch — same monitors, same ids, same verdicts — which the
/// workspace's golden sweep tests pin bit-for-bit.
#[derive(Debug, Clone)]
pub struct SuiteTemplate {
    table: Arc<SignalTable>,
    entries: Vec<TemplateEntry>,
}

#[derive(Debug, Clone)]
struct TemplateEntry {
    meta: Arc<EntryMeta>,
    program: Arc<CompiledProgram>,
}

impl SuiteTemplate {
    /// The signal namespace the template's monitors are compiled against.
    pub fn table(&self) -> &Arc<SignalTable> {
        &self.table
    }

    /// Number of monitors (goals + subgoals) in the template.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the template holds no monitors.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Stamps out a fresh suite: no parsing, no compilation, no string
    /// copies — O(monitors) Arc clones plus fresh run state.
    pub fn instantiate(&self) -> MonitorSuite {
        MonitorSuite {
            table: self.table.clone(),
            entries: self
                .entries
                .iter()
                .map(|t| Entry {
                    meta: Arc::clone(&t.meta),
                    monitor: t.program.instantiate(),
                    tracker: IntervalTracker::new(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esafe_logic::parse;

    fn table() -> Arc<SignalTable> {
        let mut b = SignalTable::builder();
        b.bool("g");
        b.bool("s");
        b.finish()
    }

    fn suite() -> MonitorSuite {
        let mut m = MonitorSuite::new(table());
        m.add_goal("G", Location::new("System"), parse("g").unwrap())
            .unwrap();
        m.add_subgoal("G.A", "G", Location::new("Sub"), parse("s").unwrap())
            .unwrap();
        m
    }

    fn observe(m: &mut MonitorSuite, goal_ok: bool, sub_ok: bool) {
        let mut f = m.table().clone().frame();
        f.set_named("g", goal_ok);
        f.set_named("s", sub_ok);
        m.observe(&f).unwrap();
    }

    #[test]
    fn hit_when_goal_and_subgoal_overlap() {
        let mut m = suite();
        for (g, s) in [(true, true), (false, false), (true, true)] {
            observe(&mut m, g, s);
        }
        m.finish();
        let r = m.correlate(0);
        let row = r.for_goal("G").unwrap();
        assert_eq!(
            (row.hits, row.false_negatives, row.false_positives),
            (1, 0, 0)
        );
    }

    #[test]
    fn false_negative_when_goal_fires_alone() {
        let mut m = suite();
        for (g, s) in [(true, true), (false, true), (true, true)] {
            observe(&mut m, g, s);
        }
        m.finish();
        let r = m.correlate(0);
        let row = r.for_goal("G").unwrap();
        assert_eq!(
            (row.hits, row.false_negatives, row.false_positives),
            (0, 1, 0)
        );
    }

    #[test]
    fn false_positive_when_subgoal_fires_alone() {
        let mut m = suite();
        for (g, s) in [(true, true), (true, false), (true, true)] {
            observe(&mut m, g, s);
        }
        m.finish();
        let r = m.correlate(0);
        let row = r.for_goal("G").unwrap();
        assert_eq!(
            (row.hits, row.false_negatives, row.false_positives),
            (0, 0, 1)
        );
        assert_eq!(row.subgoals[0].false_positives, 1);
    }

    #[test]
    fn window_turns_near_miss_into_hit() {
        let mut m = suite();
        // Subgoal violated at tick 1, goal at tick 3: 1 tick apart.
        for (g, s) in [
            (true, true),
            (true, false),
            (true, true),
            (false, true),
            (true, true),
        ] {
            observe(&mut m, g, s);
        }
        m.finish();
        assert_eq!(m.correlate(0).for_goal("G").unwrap().hits, 0);
        assert_eq!(m.correlate(2).for_goal("G").unwrap().hits, 1);
        assert_eq!(m.correlate(2).for_goal("G").unwrap().false_positives, 0);
    }

    #[test]
    fn violations_and_matrix_are_reported() {
        let mut m = suite();
        observe(&mut m, false, true);
        m.finish();
        assert_eq!(m.violations("G").unwrap().len(), 1);
        assert_eq!(m.violations("G.A").unwrap().len(), 0);
        assert!(m.violations("missing").is_none());
        let matrix = m.location_matrix();
        assert_eq!(matrix.len(), 2);
        assert_eq!(matrix[1].1, Some("G"));
        assert_eq!(m.goal_ids(), vec!["G"]);
        assert_eq!(m.subgoal_ids("G"), vec!["G.A"]);
    }

    #[test]
    fn take_violations_drains_once_in_insertion_order() {
        let mut m = suite();
        observe(&mut m, false, false);
        observe(&mut m, true, true);
        m.finish();
        let report = m.correlate(0);
        assert_eq!(report.for_goal("G").unwrap().hits, 1);
        let taken = m.take_violations();
        assert_eq!(taken.len(), 2);
        assert_eq!(taken[0].0, "G");
        assert_eq!(taken[0].1, vec![ViolationInterval::new(0, 1)]);
        assert_eq!(taken[1].0, "G.A");
        // Drained: the trackers now report empty.
        assert!(m.take_violations().is_empty());
        assert!(m.violations("G").unwrap().is_empty());
    }

    /// Runs the frames through a suite and returns its drained
    /// violations + classification — the observable outcome of a run.
    fn outcome(mut m: MonitorSuite, frames: &[(bool, bool)]) -> (Vec<(String, usize)>, usize) {
        for &(g, s) in frames {
            observe(&mut m, g, s);
        }
        m.finish();
        let hits = m.correlate(0).for_goal("G").unwrap().hits;
        let violations = m
            .take_violations()
            .into_iter()
            .map(|(id, v)| (id, v.len()))
            .collect();
        (violations, hits)
    }

    #[test]
    fn template_instantiation_matches_full_compilation() {
        let template = suite().template();
        assert_eq!(template.len(), 2);
        assert!(!template.is_empty());
        let frames = [(true, true), (false, false), (true, false)];
        let compiled = outcome(suite(), &frames);
        let instantiated = outcome(template.instantiate(), &frames);
        assert_eq!(instantiated, compiled);
        // Instantiation is repeatable: each instance starts clean.
        assert_eq!(outcome(template.instantiate(), &frames), compiled);
    }

    #[test]
    fn reset_suite_behaves_like_a_fresh_instance() {
        let template = suite().template();
        let frames = [(false, true), (true, true), (true, false)];
        let mut pooled = template.instantiate();
        // Dirty the pooled suite with an unrelated run, then reset.
        for &(g, s) in &[(false, false), (false, false)] {
            observe(&mut pooled, g, s);
        }
        pooled.finish();
        pooled.reset();
        let reused = outcome(pooled, &frames);
        assert_eq!(reused, outcome(template.instantiate(), &frames));
    }

    #[test]
    #[should_panic(expected = "must be added before")]
    fn subgoal_requires_parent() {
        let mut m = MonitorSuite::new(table());
        m.add_subgoal("X.A", "X", Location::new("L"), parse("p").unwrap())
            .unwrap();
    }

    #[test]
    fn observe_error_names_the_monitor() {
        let mut m = suite();
        let empty = m.table().clone().frame();
        let err = m.observe(&empty).unwrap_err();
        assert_eq!(err.monitor_id, "G");
        assert!(err.to_string().contains("monitor `G`"));
    }

    #[test]
    fn unknown_signal_fails_at_add_time() {
        let mut m = MonitorSuite::new(table());
        assert!(matches!(
            m.add_goal("X", Location::new("L"), parse("not_declared").unwrap()),
            Err(EvalError::UnknownSignal { .. })
        ));
    }
}
